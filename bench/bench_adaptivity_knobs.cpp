// E7 — "Adapting adaptivity" (paper §4.3): batching tuples and fixing
// operators reduce per-tuple routing costs, at the price of slower reaction
// to drift. The sweep crosses batch size with drift rate; the counters show
// the paper's predicted knob behaviour: under slow change big batches win
// (fewer routing decisions, same plan quality); under fast change they
// lose plan quality (work_per_tuple rises).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eddy/eddy.h"
#include "operators/selection.h"

namespace tcq {
namespace {

using bench::UniformStream;

constexpr size_t kTuples = 20000;
constexpr uint32_t kFilterCost = 300;

// drift_period = 0 means a static environment.
void RunKnob(benchmark::State& state, uint32_t batch, uint32_t fix,
             size_t drift_period) {
  auto stream = UniformStream(0, kTuples, 100, 7);
  auto sel_a = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(10));
  auto perm_a = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(90));
  auto sel_b = MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(10));
  auto perm_b = MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(90));

  uint64_t invocations = 0, decisions = 0, tuples = 0;
  for (auto _ : state) {
    Eddy eddy(MakeLotteryPolicy(19), Eddy::Options{batch, fix});
    auto s1 = std::make_unique<Selection>("f1", sel_a, kFilterCost);
    auto s2 = std::make_unique<Selection>("f2", perm_b, kFilterCost);
    Selection* f1 = s1.get();
    Selection* f2 = s2.get();
    eddy.AddModule(std::move(s1));
    eddy.AddModule(std::move(s2));
    eddy.SetOutput([](const Tuple&) {});
    bool phase = false;
    for (size_t i = 0; i < stream.size(); ++i) {
      if (drift_period != 0 && i != 0 && i % drift_period == 0) {
        phase = !phase;
        f1->ReplacePredicate(phase ? perm_a : sel_a);
        f2->ReplacePredicate(phase ? sel_b : perm_b);
      }
      eddy.Ingest(0, stream[i]);
    }
    invocations += eddy.module_invocations();
    decisions += eddy.routing_decisions();
    tuples += stream.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["batch"] = batch;
  state.counters["fix_len"] = fix;
  state.counters["drift_period"] = static_cast<double>(drift_period);
  state.counters["work_per_tuple"] =
      static_cast<double>(invocations) / static_cast<double>(tuples);
  state.counters["decisions_per_tuple"] =
      static_cast<double>(decisions) / static_cast<double>(tuples);
}

void BM_BatchSweepStatic(benchmark::State& state) {
  RunKnob(state, static_cast<uint32_t>(state.range(0)), 1,
          /*drift_period=*/0);
}
BENCHMARK(BM_BatchSweepStatic)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_BatchSweepFastDrift(benchmark::State& state) {
  RunKnob(state, static_cast<uint32_t>(state.range(0)), 1,
          /*drift_period=*/500);
}
BENCHMARK(BM_BatchSweepFastDrift)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_FixLenSweep(benchmark::State& state) {
  RunKnob(state, 1, static_cast<uint32_t>(state.range(0)),
          /*drift_period=*/0);
}
BENCHMARK(BM_FixLenSweep)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_BothKnobs(benchmark::State& state) {
  RunKnob(state, static_cast<uint32_t>(state.range(0)),
          static_cast<uint32_t>(state.range(1)), /*drift_period=*/2000);
}
BENCHMARK(BM_BothKnobs)
    ->Args({1, 1})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({256, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
