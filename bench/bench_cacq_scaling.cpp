// E4 — CACQ shared execution vs query-at-a-time (paper §3.1): N similar
// continuous queries (a shared join edge plus per-query range filters) run
// either in ONE shared eddy (grouped filters + shared SteMs + lineage) or in
// N independent eddies, each rebuilding its own join state and filters.
// The shape: shared throughput degrades slowly with N; query-at-a-time
// degrades linearly — the gap is the work sharing.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "bench_common.h"
#include "cacq/shared_eddy.h"
#include "eddy/eddy.h"
#include "exec/executor.h"
#include "operators/selection.h"

namespace tcq {
namespace {

using bench::KVRow;
using bench::KVSchema;
using bench::UniformStream;

constexpr size_t kTuplesPerSide = 3000;
constexpr int64_t kKeyRange = 40;

// Query q: S.k = T.k AND S.v >= lo_q AND S.v < lo_q + 30.
struct QueryParams {
  int64_t lo;
};

std::vector<QueryParams> MakeParams(size_t n) {
  std::vector<QueryParams> out;
  Rng rng(5);
  for (size_t q = 0; q < n; ++q) out.push_back({rng.UniformInt(0, 69)});
  return out;
}

void BM_SharedCACQ(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto params = MakeParams(n);
  auto s = UniformStream(0, kTuplesPerSide, kKeyRange, 1);
  auto t = UniformStream(1, kTuplesPerSide, kKeyRange, 2);

  uint64_t deliveries = 0, tuples = 0;
  for (auto _ : state) {
    SharedEddy eddy(MakeLotteryPolicy(3));
    eddy.RegisterStream(0, KVSchema(0));
    eddy.RegisterStream(1, KVSchema(1));
    eddy.SetOutput([&](QueryId, const Tuple&) { ++deliveries; });
    for (const QueryParams& p : params) {
      CQSpec spec;
      spec.joins.push_back({{0, "k"}, {1, "k"}});
      spec.filters.push_back({{0, "v"}, CmpOp::kGe, Value::Int64(p.lo)});
      spec.filters.push_back({{0, "v"}, CmpOp::kLt, Value::Int64(p.lo + 30)});
      (void)eddy.AddQuery(spec);
    }
    for (size_t i = 0; i < s.size(); ++i) {
      eddy.Ingest(0, s[i]);
      eddy.Ingest(1, t[i]);
    }
    tuples += 2 * kTuplesPerSide;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["queries"] = static_cast<double>(n);
  state.counters["deliveries"] = static_cast<double>(deliveries);
}
BENCHMARK(BM_SharedCACQ)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMillisecond);

void BM_QueryAtATime(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto params = MakeParams(n);
  auto s = UniformStream(0, kTuplesPerSide, kKeyRange, 1);
  auto t = UniformStream(1, kTuplesPerSide, kKeyRange, 2);

  uint64_t deliveries = 0, tuples = 0;
  for (auto _ : state) {
    // One full eddy (own SteMs, own filters) per query.
    std::vector<std::unique_ptr<Eddy>> eddies;
    std::vector<std::shared_ptr<SteM>> stems;
    for (const QueryParams& p : params) {
      auto stem_s = std::make_shared<SteM>("s", 0, KVSchema(0),
                                           StemOptions{.key_attr = "k"});
      auto stem_t = std::make_shared<SteM>("t", 1, KVSchema(1),
                                           StemOptions{.key_attr = "k"});
      auto eddy = std::make_unique<Eddy>(MakeLotteryPolicy(3));
      eddy->AttachSteM(stem_s);
      eddy->AttachSteM(stem_t);
      eddy->AddModule(std::make_unique<SteMProbe>(
          "probeS", stem_s.get(),
          JoinSpec{AttrRef{1, "k"}, AttrRef{0, "k"}, {}}));
      eddy->AddModule(std::make_unique<SteMProbe>(
          "probeT", stem_t.get(),
          JoinSpec{AttrRef{0, "k"}, AttrRef{1, "k"}, {}}));
      eddy->AddModule(std::make_unique<Selection>(
          "flo", MakeCompareConst({0, "v"}, CmpOp::kGe, Value::Int64(p.lo))));
      eddy->AddModule(std::make_unique<Selection>(
          "fhi",
          MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(p.lo + 30))));
      eddy->SetOutput([&](const Tuple&) { ++deliveries; });
      stems.push_back(stem_s);
      stems.push_back(stem_t);
      eddies.push_back(std::move(eddy));
    }
    for (size_t i = 0; i < s.size(); ++i) {
      for (auto& eddy : eddies) {
        eddy->Ingest(0, s[i]);
        eddy->Ingest(1, t[i]);
      }
    }
    tuples += 2 * kTuplesPerSide;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["queries"] = static_cast<double>(n);
  state.counters["deliveries"] = static_cast<double>(deliveries);
}
BENCHMARK(BM_QueryAtATime)
    ->RangeMultiplier(4)
    ->Range(1, 64)
    ->Unit(benchmark::kMillisecond);

// Query add/remove churn: CACQ folds queries in and out of a RUNNING shared
// dataflow; this measures the cost of that adaptivity.
void BM_QueryChurn(benchmark::State& state) {
  auto s = UniformStream(0, 2000, kKeyRange, 1);
  uint64_t churns = 0;
  for (auto _ : state) {
    SharedEddy eddy(MakeLotteryPolicy(3));
    eddy.RegisterStream(0, KVSchema(0));
    eddy.SetOutput([](QueryId, const Tuple&) {});
    std::vector<QueryId> live;
    Rng rng(13);
    for (size_t i = 0; i < s.size(); ++i) {
      eddy.Ingest(0, s[i]);
      if (i % 50 == 0) {
        CQSpec spec;
        int64_t lo = rng.UniformInt(0, 69);
        spec.filters.push_back({{0, "v"}, CmpOp::kGe, Value::Int64(lo)});
        auto id = eddy.AddQuery(spec);
        if (id.ok()) live.push_back(*id);
        if (live.size() > 20) {
          (void)eddy.RemoveQuery(live.front());
          live.erase(live.begin());
        }
        ++churns;
      }
    }
  }
  state.counters["churns"] = static_cast<double>(churns);
}
BENCHMARK(BM_QueryChurn)->Unit(benchmark::kMillisecond);

// Batched vs per-tuple ingest into the shared eddy, on the workload batching
// targets: a network-monitor-style rule set whose point filters spread over
// eight attributes, so every tuple makes eight routing hops through eight
// grouped-filter modules (most rules match nothing — exactly when per-tuple
// routing overhead dominates). Arg(1) is the per-tuple Ingest() baseline;
// larger args cut the stream into IngestBatch() calls, amortizing the stream
// lookup, the QueriesTouching scan, and — via the drain-scoped decision
// cache — all eight ready-computations and rankings across identical-lineage
// tuples. The BENCH_batching.json criterion compares Arg(64) against Arg(1).
void BM_SharedCACQBatchedIngest(benchmark::State& state) {
  size_t batch_size = static_cast<size_t>(state.range(0));
  constexpr size_t kQueries = 64;
  constexpr size_t kAttrs = 8;
  constexpr size_t kStream = 20000;
  constexpr int64_t kWideKeyRange = 4096;

  std::vector<Field> fields;
  for (size_t a = 0; a < kAttrs; ++a) {
    fields.push_back({"a" + std::to_string(a), ValueType::kInt64, 0});
  }
  SchemaRef schema = Schema::Make(std::move(fields));

  std::vector<Tuple> s;
  s.reserve(kStream);
  {
    Rng rng(7);
    for (size_t i = 0; i < kStream; ++i) {
      std::vector<Value> vals;
      vals.reserve(kAttrs);
      for (size_t a = 0; a < kAttrs; ++a) {
        vals.push_back(Value::Int64(rng.UniformInt(0, kWideKeyRange - 1)));
      }
      s.push_back(Tuple::Make(schema, std::move(vals),
                              static_cast<Timestamp>(i)));
    }
  }

  uint64_t tuples = 0, reused = 0;
  for (auto _ : state) {
    SharedEddy eddy(MakeLotteryPolicy(3));
    eddy.RegisterStream(0, schema);
    eddy.SetOutput([](QueryId, const Tuple&) {});
    Rng rng(11);
    for (size_t q = 0; q < kQueries; ++q) {
      CQSpec spec;
      spec.filters.push_back(
          {{0, "a" + std::to_string(q % kAttrs)},
           CmpOp::kEq,
           Value::Int64(rng.UniformInt(0, kWideKeyRange))});
      (void)eddy.AddQuery(spec);
    }
    if (batch_size <= 1) {
      for (const Tuple& t : s) eddy.Ingest(0, t);
    } else {
      TupleBatch batch;
      batch.set_source(0);
      for (const Tuple& t : s) {
        batch.push_back(t);
        if (batch.size() >= batch_size) {
          eddy.IngestBatch(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) eddy.IngestBatch(batch);
    }
    tuples += kStream;
    reused = eddy.routing_decisions_reused();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["batch_size"] = static_cast<double>(batch_size);
  state.counters["decisions_reused"] = static_cast<double>(reused);
}
BENCHMARK(BM_SharedCACQBatchedIngest)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

// E12 — Flux-sharded executor scaling (paper §2.4 + §4.2.2): ONE query
// class (a shared join plus a fan of range filters) partitioned across
// Arg(0) shard replicas, each pumped by its own dispatch unit on its own
// execution object. Ingest is batched; tuples hash-partition on the join
// key at the class boundary. Each iteration runs the workload to full
// drain (delivery count == precomputed ground truth), so wall time covers
// admission, partitioned ingest, parallel pumping, and merge-back.
// Speedup vs Arg(1) measures shard scaling — meaningful only on a
// multi-core host; a 1-core container serializes the shard pumps.
void BM_ShardedExecutor(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  constexpr size_t kSide = 6000;
  constexpr int64_t kKeys = 2048;
  constexpr size_t kFilters = 16;
  constexpr size_t kIngestBatch = 256;
  auto s = UniformStream(0, kSide, kKeys, 21);
  auto t = UniformStream(1, kSide, kKeys, 22);

  // Ground-truth delivery count so every iteration waits for full drain.
  uint64_t expected = 0;
  {
    std::map<int64_t, uint64_t> lhs;
    for (const Tuple& row : s) ++lhs[row.at(0).AsInt64()];
    for (const Tuple& row : t) expected += lhs[row.at(0).AsInt64()];
    for (size_t q = 0; q < kFilters; ++q) {
      const int64_t lo = static_cast<int64_t>(q) * 6;
      for (const Tuple& row : s) {
        if (row.at(1).AsInt64() >= lo) ++expected;
      }
    }
  }

  uint64_t tuples = 0;
  bool drained = true;
  for (auto _ : state) {
    Executor::Options opts;
    opts.num_eos = shards;
    opts.shards = shards;
    Executor exec(opts);
    (void)exec.RegisterStream(0, KVSchema(0));
    (void)exec.RegisterStream(1, KVSchema(1));
    std::atomic<uint64_t> delivered{0};
    Executor::Sink sink = [&delivered](GlobalQueryId, const Tuple&) {
      delivered.fetch_add(1, std::memory_order_relaxed);
    };
    CQSpec join;
    join.joins.push_back({{0, "k"}, {1, "k"}});
    (void)exec.SubmitQuery(join, sink);
    for (size_t q = 0; q < kFilters; ++q) {
      CQSpec f;
      f.filters.push_back({{0, "v"},
                           CmpOp::kGe,
                           Value::Int64(static_cast<int64_t>(q) * 6)});
      (void)exec.SubmitQuery(f, sink);
    }
    exec.Start();
    for (size_t off = 0; off < kSide; off += kIngestBatch) {
      for (SourceId src = 0; src < 2; ++src) {
        const auto& stream = src == 0 ? s : t;
        TupleBatch batch;
        batch.set_source(src);
        const size_t end = std::min(off + kIngestBatch, kSide);
        for (size_t i = off; i < end; ++i) batch.push_back(stream[i]);
        (void)exec.IngestBatch(std::move(batch));
      }
    }
    (void)exec.CloseStream(0);
    (void)exec.CloseStream(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (delivered.load(std::memory_order_relaxed) < expected &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    drained = drained && delivered.load() == expected;
    exec.Stop();
    tuples += 2 * kSide;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["expected"] = static_cast<double>(expected);
  state.counters["drained"] = drained ? 1.0 : 0.0;
}
BENCHMARK(BM_ShardedExecutor)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
