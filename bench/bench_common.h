// Shared workload builders for the benchmark suite (see DESIGN.md §3).

#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tuple/tuple.h"

namespace tcq::bench {

inline SchemaRef KVSchema(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

inline Tuple KVRow(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  static thread_local std::vector<std::pair<SourceId, SchemaRef>> cache;
  for (auto& [s, schema] : cache) {
    if (s == source) {
      return Tuple::Make(schema, {Value::Int64(k), Value::Int64(v)}, ts);
    }
  }
  cache.emplace_back(source, KVSchema(source));
  return Tuple::Make(cache.back().second,
                     {Value::Int64(k), Value::Int64(v)}, ts);
}

/// Uniform random stream over keys [0, key_range) and values [0, 100).
inline std::vector<Tuple> UniformStream(SourceId source, size_t n,
                                        int64_t key_range, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(KVRow(source, rng.UniformInt(0, key_range - 1),
                        rng.UniformInt(0, 99), static_cast<Timestamp>(i)));
  }
  return out;
}

}  // namespace tcq::bench
