// Latency-vs-exactness sweep across disorder bounds (DESIGN.md §12): one
// stream whose arrivals are block-shuffled with actual disorder D = 63 is
// consumed by an event-time tumbling-window query whose punctuations promise
// `max_ts_seen - B` for B in {0, 8, 64, 512}. A small B lets windows fire
// close behind the data (low watermark lag) but breaks the promise for
// shuffled-back tuples, which are dropped as provably late; B >= D recovers
// the exact in-order result at the cost of holding every window open B
// timestamps longer. scripts/bench_disorder.sh turns this sweep into
// BENCH_disorder.json.

#include <algorithm>
#include <map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "window/window_exec.h"

namespace tcq::bench {
namespace {

constexpr size_t kN = 4096;          // tuples, timestamps 1..kN
constexpr size_t kBlock = 64;        // shuffle block: max disorder kBlock-1
constexpr Timestamp kWidth = 100;    // tumbling window width
constexpr size_t kPunctEvery = 32;   // arrivals between punctuations

WindowedQuery TumblingQuery() {
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, kWidth, kWidth,
                                static_cast<Timestamp>(kN), kWidth);
  q.loop.semantics = TimeSemantics::kEvent;
  return q;
}

std::vector<Tuple> DisorderedStream(uint64_t seed) {
  std::vector<Tuple> tuples;
  tuples.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    tuples.push_back(KVRow(0, static_cast<int64_t>(i % 7),
                           static_cast<int64_t>(i % 100),
                           static_cast<Timestamp>(i) + 1));
  }
  Rng rng(seed);
  for (size_t i = 0; i < kN; i += kBlock) {
    size_t end = std::min(i + kBlock, kN);
    for (size_t j = end - 1; j > i; --j) {
      std::swap(tuples[j], tuples[i + rng.UniformInt(0, j - i)]);
    }
  }
  return tuples;
}

/// Tuples the in-order offline evaluation emits (the exactness denominator).
size_t ReferenceTupleCount() {
  std::map<SourceId, StreamHistory> history;
  for (size_t i = 0; i < kN; ++i) {
    history[0].Append(KVRow(0, static_cast<int64_t>(i % 7),
                            static_cast<int64_t>(i % 100),
                            static_cast<Timestamp>(i) + 1));
  }
  size_t total = 0;
  for (const WindowResult& wr : RunOverHistory(TumblingQuery(), history)) {
    total += wr.tuples.size();
  }
  return total;
}

void BM_DisorderBoundSweep(benchmark::State& state) {
  const Timestamp bound = state.range(0);
  const std::vector<Tuple> input = DisorderedStream(11);
  const size_t ref = ReferenceTupleCount();

  size_t emitted = 0;
  uint64_t late = 0;
  double lag_sum = 0;
  size_t inflight_fires = 0;
  for (auto _ : state) {
    OnlineWindowRunner runner(TumblingQuery());
    emitted = late = inflight_fires = 0;
    lag_sum = 0;
    Timestamp max_ts = kMinTimestamp;
    size_t arrivals = 0;
    for (const Tuple& t : input) {
      runner.Ingest(0, t);
      ++arrivals;
      max_ts = std::max(max_ts, t.timestamp());
      if (arrivals % kPunctEvery != 0) continue;
      runner.OnPunctuation(Punctuation{0, max_ts - bound});
      runner.Poll([&](const WindowResult& wr) {
        emitted += wr.tuples.size();
        // Watermark lag: how far arrivals had run past the window's right
        // edge when it fired (timestamp units; arrivals ~ max_ts here).
        lag_sum += static_cast<double>(max_ts - wr.t);
        ++inflight_fires;
      });
    }
    // Seal the tail so exactness counts every window (drops already
    // happened at ingest); these end-of-stream fires carry no lag signal.
    runner.AdvanceWatermark(0, kMaxTimestamp);
    runner.Poll(
        [&](const WindowResult& wr) { emitted += wr.tuples.size(); });
    late = runner.late_dropped(OnlineWindowRunner::LateDrop::kBeyondBound);
    benchmark::DoNotOptimize(emitted);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
  state.counters["exactness"] =
      static_cast<double>(emitted) / static_cast<double>(ref);
  state.counters["late_dropped"] = static_cast<double>(late);
  state.counters["avg_fire_lag"] =
      inflight_fires > 0 ? lag_sum / static_cast<double>(inflight_fires) : 0;
  state.counters["inflight_fires"] = static_cast<double>(inflight_fires);
}
BENCHMARK(BM_DisorderBoundSweep)
    ->Arg(0)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq::bench

BENCHMARK_MAIN();
