// E1 — Eddy adaptivity vs static plans (paper §2.2; shape from Eddies
// [AH00] Figs 6-9): two filters whose selectivities swap halfway through the
// stream. A static plan is optimal for one phase and pessimal for the
// other; the eddy re-learns the order online and tracks the better plan in
// both phases. The `work_per_tuple` counter (module invocations / tuple) is
// the cost the routing policy is minimizing.

#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>

#include "bench_common.h"
#include "common/metrics.h"
#include "eddy/eddy.h"
#include "eddy/routing_policy.h"
#include "operators/selection.h"

namespace tcq {
namespace {

using bench::UniformStream;

// Filter predicates: phase 1 has f1 selective (10%) and f2 permissive
// (90%); phase 2 swaps them. cost_loops makes each filter evaluation
// genuinely expensive so routing quality dominates routing overhead.
constexpr uint32_t kFilterCost = 500;

std::unique_ptr<RoutingPolicy> PolicyFor(int id) {
  switch (id) {
    case 0:
      return MakeFixedOrderPolicy({0, 1});  // static plan: f1 first
    case 1:
      return MakeFixedOrderPolicy({1, 0});  // static plan: f2 first
    case 2:
      return MakeLotteryPolicy(17);
    case 3:
      return MakeGreedyPolicy(0.05, 17);
    default:
      return MakeRoundRobinPolicy();
  }
}

const char* PolicyName(int id) {
  switch (id) {
    case 0:
      return "static(f1,f2)";
    case 1:
      return "static(f2,f1)";
    case 2:
      return "eddy-lottery";
    case 3:
      return "eddy-greedy";
    default:
      return "eddy-roundrobin";
  }
}

void BM_SelectivityDrift(benchmark::State& state) {
  const int policy_id = static_cast<int>(state.range(0));
  const size_t kTuples = 20000;
  auto stream = UniformStream(0, kTuples, 100, 42);

  // Phase predicates over independent attributes.
  auto f1_selective = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(10));
  auto f1_permissive = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(90));
  auto f2_selective = MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(10));
  auto f2_permissive = MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(90));

  auto metrics = std::make_shared<MetricsRegistry>();
  uint64_t invocations = 0, decisions = 0, outputs = 0, tuples = 0;
  for (auto _ : state) {
    Eddy eddy(PolicyFor(policy_id), Eddy::Options{}, metrics,
              PolicyName(policy_id));
    auto s1 = std::make_unique<Selection>("f1", f1_selective, kFilterCost);
    auto s2 = std::make_unique<Selection>("f2", f2_permissive, kFilterCost);
    Selection* f1 = s1.get();
    Selection* f2 = s2.get();
    eddy.AddModule(std::move(s1));
    eddy.AddModule(std::move(s2));
    eddy.SetOutput([](const Tuple&) {});

    for (size_t i = 0; i < stream.size(); ++i) {
      if (i == stream.size() / 2) {
        // The environment drifts: selectivities swap.
        f1->ReplacePredicate(f1_permissive);
        f2->ReplacePredicate(f2_selective);
      }
      eddy.Ingest(0, stream[i]);
    }
    invocations += eddy.module_invocations();
    decisions += eddy.routing_decisions();
    outputs += eddy.tuples_output();
    tuples += stream.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["work_per_tuple"] =
      static_cast<double>(invocations) / static_cast<double>(tuples);
  state.counters["decisions_per_tuple"] =
      static_cast<double>(decisions) / static_cast<double>(tuples);
  state.counters["selected_frac"] =
      static_cast<double>(outputs) / static_cast<double>(tuples);
  state.SetLabel(PolicyName(policy_id));
  // One-shot text dump of the eddy's instruments (routing decisions,
  // per-module selectivity gauges, ...) so a bench run doubles as a smoke
  // test of the metrics exposition.
  static std::once_flag dumped;
  std::call_once(dumped, [&] {
    std::cout << "--- metrics dump (" << PolicyName(policy_id) << ") ---\n"
              << metrics->FormatText();
  });
}
BENCHMARK(BM_SelectivityDrift)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

// Static environment: the eddy should match (not beat) the best static
// plan, paying only its routing overhead [AH00 "does no harm" claim].
void BM_StaticEnvironment(benchmark::State& state) {
  const int policy_id = static_cast<int>(state.range(0));
  const size_t kTuples = 20000;
  auto stream = UniformStream(0, kTuples, 100, 43);
  auto f1 = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(10));
  auto f2 = MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(90));

  uint64_t invocations = 0, tuples = 0;
  for (auto _ : state) {
    Eddy eddy(PolicyFor(policy_id));
    eddy.AddModule(std::make_unique<Selection>("f1", f1, kFilterCost));
    eddy.AddModule(std::make_unique<Selection>("f2", f2, kFilterCost));
    eddy.SetOutput([](const Tuple&) {});
    for (const Tuple& t : stream) eddy.Ingest(0, t);
    invocations += eddy.module_invocations();
    tuples += stream.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["work_per_tuple"] =
      static_cast<double>(invocations) / static_cast<double>(tuples);
  state.SetLabel(PolicyName(policy_id));
}
BENCHMARK(BM_StaticEnvironment)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
