// E11: query-class lifecycle costs. Three experiments:
//   * BM_MergePause — how long a bridging-query submission stalls while two
//     classes (with N SteM entries per stream) merge into one;
//   * BM_PostGcIngest — ingest cost on a stream whose class was GC'd (fast
//     FailedPrecondition) vs a live routed stream;
//   * BM_RebalanceGain — time to drain a skewed workload on 2 EOs (two hot
//     classes pinned to one EO) with the rebalance pass off vs on.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "exec/executor.h"

namespace tcq {
namespace {

SchemaRef Sch(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

Tuple Row(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::Int64(v)}, ts);
}

CQSpec JoinSpec(SourceId l, SourceId r) {
  CQSpec spec;
  spec.joins.push_back({{l, "k"}, {r, "k"}});
  return spec;
}

CQSpec FilterSpec(SourceId s) {
  CQSpec spec;
  spec.filters.push_back({{s, "k"}, CmpOp::kGe, Value::Int64(0)});
  return spec;
}

bool WaitFor(const std::atomic<size_t>& count, size_t n) {
  for (int i = 0; i < 20000; ++i) {
    if (count.load() >= n) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return false;
}

/// Merge pause: two 2-stream join classes, N tuples per stream already
/// absorbed into their SteMs, then a bridging join submitted. The timed
/// region is the SubmitQuery call — it covers both quiesce waits, the
/// state export/import (4 SteMs with N entries each), and re-admission.
void BM_MergePause(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Executor exec({.num_eos = 2, .queue_capacity = 4 * n + 16});
    for (SourceId s = 0; s < 4; ++s) {
      (void)exec.RegisterStream(s, Sch(s));
    }
    std::atomic<size_t> q01{0}, q23{0};
    (void)exec.SubmitQuery(JoinSpec(0, 1),
                           [&](GlobalQueryId, const Tuple&) { ++q01; });
    (void)exec.SubmitQuery(JoinSpec(2, 3),
                           [&](GlobalQueryId, const Tuple&) { ++q23; });
    exec.Start();
    Timestamp ts = 1;
    for (size_t i = 0; i < n; ++i) {
      for (SourceId s = 0; s < 4; ++s) {
        // Unique keys: each tuple joins its counterpart exactly once, so
        // SteMs grow to n entries without a quadratic result blow-up.
        (void)exec.IngestTuple(
            s, Row(s, static_cast<int64_t>(i), 0, ts++));
      }
    }
    WaitFor(q01, n);
    WaitFor(q23, n);

    auto t0 = std::chrono::steady_clock::now();
    (void)exec.SubmitQuery(JoinSpec(1, 2), [](GlobalQueryId, const Tuple&) {});
    auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    exec.Stop();
  }
  state.counters["stem_entries_per_stream"] = static_cast<double>(n);
}
BENCHMARK(BM_MergePause)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(10)  // setup (4N tuples joined) dominates; bound the run
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Ingest cost after the class was GC'd (routed=0: the producer is gone, so
/// the batch fast-fails as unrouted) vs a live class (routed=1: the batch
/// lands in the class fjord and is consumed).
void BM_PostGcIngest(benchmark::State& state) {
  const bool routed = state.range(0) != 0;
  constexpr size_t kBatch = 64;
  Executor exec({.num_eos = 1, .queue_capacity = 1 << 16});
  (void)exec.RegisterStream(0, Sch(0));
  auto id = exec.SubmitQuery(FilterSpec(0), [](GlobalQueryId, const Tuple&) {});
  exec.Start();
  if (!routed) (void)exec.RemoveQuery(*id);  // GC: stream loses its consumer
  Timestamp ts = 1;
  size_t tuples = 0;
  for (auto _ : state) {
    TupleBatch batch(0);
    for (size_t i = 0; i < kBatch; ++i) {
      batch.push_back(Row(0, static_cast<int64_t>(i), 0, ts++));
    }
    benchmark::DoNotOptimize(exec.IngestBatch(std::move(batch)));
    tuples += kBatch;
  }
  exec.Stop();
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["routed"] = routed ? 1 : 0;
}
BENCHMARK(BM_PostGcIngest)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Skewed 2-EO workload: classes for streams 0 and 2 land on eo0, stream
/// 1's on eo1; streams 0 and 2 carry the load. Without rebalance both hot
/// DUs share one thread; with it, one migrates to the near-idle EO. Timed
/// region: Start() until every delivery arrived (ingest is pre-queued).
void BM_RebalanceGain(benchmark::State& state) {
  const bool rebalance = state.range(0) != 0;
  constexpr size_t kHot = 60000, kCold = 200;
  for (auto _ : state) {
    Executor exec({.num_eos = 2,
                   .quantum = 64,
                   .queue_capacity = kHot + 16,
                   .rebalance = rebalance,
                   .rebalance_interval_ms = 2});
    std::atomic<size_t> delivered{0};
    for (SourceId s = 0; s < 3; ++s) {
      (void)exec.RegisterStream(s, Sch(s));
      (void)exec.SubmitQuery(FilterSpec(s),
                             [&](GlobalQueryId, const Tuple&) { ++delivered; });
    }
    Timestamp ts = 1;
    for (size_t i = 0; i < kHot; ++i) {
      (void)exec.IngestTuple(0, Row(0, 1, 0, ts));
      (void)exec.IngestTuple(2, Row(2, 1, 0, ts));
      ++ts;
    }
    for (size_t i = 0; i < kCold; ++i) {
      (void)exec.IngestTuple(1, Row(1, 1, 0, ts++));
    }
    for (SourceId s = 0; s < 3; ++s) (void)exec.CloseStream(s);

    auto t0 = std::chrono::steady_clock::now();
    exec.Start();
    WaitFor(delivered, 2 * kHot + kCold);
    auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    state.counters["migrations"] = static_cast<double>(exec.class_migrations());
    exec.Stop();
  }
  state.counters["rebalance"] = rebalance ? 1 : 0;
}
BENCHMARK(BM_RebalanceGain)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(8)  // each iteration drains a full 40k-tuple workload
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
