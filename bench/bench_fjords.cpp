// E9 — Fjords push vs blocking connections (paper §2.3): with a bursty
// producer, a consumer on a push-queue regains control when no data is
// available and spends the gaps doing other useful work; an Exchange-style
// blocking consumer is stalled. The `other_work` counter is the measure of
// non-blocking progress — the reason Fjords exist.

#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>
#include <thread>

#include "bench_common.h"
#include "common/metrics.h"
#include "fjords/fjord.h"

namespace tcq {
namespace {

constexpr size_t kTuplesTotal = 20000;
constexpr size_t kBurst = 200;

// Producer thread: kBurst tuples, then a quiet gap, repeated.
void ProduceBursts(FjordProducer producer) {
  SchemaRef schema = bench::KVSchema(0);
  size_t sent = 0;
  while (sent < kTuplesTotal) {
    for (size_t i = 0; i < kBurst && sent < kTuplesTotal; ++i, ++sent) {
      while (producer.Produce(bench::KVRow(
                 0, static_cast<int64_t>(sent), 0,
                 static_cast<Timestamp>(sent))) == QueueOp::kWouldBlock) {
        std::this_thread::yield();
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  producer.Close();
}

// A unit of "other computation" the consumer can do while the stream is
// quiet (paper: "the non-blocking dequeue allows the consumer to pursue
// other computation").
uint64_t OtherWorkUnit() {
  volatile uint64_t acc = 0;
  for (int i = 0; i < 50; ++i) acc = acc + static_cast<uint64_t>(i) * 2654435761u;
  return acc;
}

void BM_PushConsumerOverlapsWork(benchmark::State& state) {
  auto metrics = std::make_shared<MetricsRegistry>();
  uint64_t consumed_total = 0, other_work = 0;
  for (auto _ : state) {
    auto endpoints =
        Fjord::Make(FjordMode::kPush, 1024, "bench:push", metrics.get());
    std::thread producer(ProduceBursts, endpoints.producer);
    Tuple t;
    size_t consumed = 0;
    while (true) {
      QueueOp op = endpoints.consumer.Consume(&t);
      if (op == QueueOp::kOk) {
        ++consumed;
      } else if (op == QueueOp::kWouldBlock) {
        // Control returned: overlap other computation with the quiet gap.
        benchmark::DoNotOptimize(OtherWorkUnit());
        ++other_work;
      } else {
        break;
      }
    }
    producer.join();
    consumed_total += consumed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(consumed_total));
  state.counters["other_work_done"] =
      static_cast<double>(other_work) / static_cast<double>(state.iterations());
  // One-shot dump of the queue instruments (depth, blocked ops, residence
  // time histogram) accumulated across iterations.
  static std::once_flag dumped;
  std::call_once(dumped,
                 [&] { std::cout << "--- metrics dump ---\n"
                                 << metrics->FormatText(); });
}
BENCHMARK(BM_PushConsumerOverlapsWork)->Unit(benchmark::kMillisecond);

void BM_BlockingConsumerIsStalled(benchmark::State& state) {
  uint64_t consumed_total = 0, other_work = 0;
  for (auto _ : state) {
    // Exchange semantics: blocking dequeue — no chance to do other work.
    auto endpoints = Fjord::Make(FjordMode::kExchange, 1024);
    std::thread producer(ProduceBursts, endpoints.producer);
    Tuple t;
    size_t consumed = 0;
    while (endpoints.consumer.Consume(&t) == QueueOp::kOk) ++consumed;
    producer.join();
    consumed_total += consumed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(consumed_total));
  state.counters["other_work_done"] = static_cast<double>(other_work);
}
BENCHMARK(BM_BlockingConsumerIsStalled)->Unit(benchmark::kMillisecond);

// Raw queue throughput for the three modalities, single-threaded ping-pong.
void BM_QueueThroughput(benchmark::State& state) {
  FjordMode mode = static_cast<FjordMode>(state.range(0));
  auto endpoints = Fjord::Make(mode, 4096);
  SchemaRef schema = bench::KVSchema(0);
  Tuple in = bench::KVRow(0, 1, 2, 3);
  Tuple out;
  uint64_t transferred = 0;
  for (auto _ : state) {
    (void)endpoints.producer.Produce(in);
    (void)endpoints.consumer.Consume(&out);
    ++transferred;
  }
  state.SetItemsProcessed(static_cast<int64_t>(transferred));
  state.SetLabel(FjordModeName(mode));
}
BENCHMARK(BM_QueueThroughput)->Arg(0)->Arg(1)->Arg(2);

// Batched vs per-tuple transfer through a push fjord: one lock acquisition
// moves the whole batch, so tuples/sec should scale sharply with batch size
// (the BENCH_batching.json criterion compares Arg(64) against Arg(1)).
void BM_QueueBatchTransfer(benchmark::State& state) {
  size_t batch_size = static_cast<size_t>(state.range(0));
  auto endpoints = Fjord::Make(FjordMode::kPush, 4096);
  FjordProducer producer(endpoints.producer);
  TupleBatch staged;
  staged.set_source(0);
  for (size_t i = 0; i < batch_size; ++i) {
    staged.push_back(bench::KVRow(0, static_cast<int64_t>(i), 0,
                                  static_cast<Timestamp>(i)));
  }
  TupleBatch out;
  uint64_t transferred = 0;
  for (auto _ : state) {
    TupleBatch b = staged;  // staging copy is part of the producer's cost
    (void)producer.ProduceBatch(&b);
    out.clear();
    QueueOp op;
    (void)endpoints.consumer.ConsumeBatch(&out, batch_size, &op);
    transferred += batch_size;
  }
  state.SetItemsProcessed(static_cast<int64_t>(transferred));
  state.counters["batch_size"] = static_cast<double>(batch_size);
}
BENCHMARK(BM_QueueBatchTransfer)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
