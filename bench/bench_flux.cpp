// E8 — Flux (paper §2.4; shape from [SHCF03]): (1) online repartitioning
// restores balance under zipf skew — higher total throughput and a bounded
// hot-worker backlog; (2) replicated failover preserves every count while
// unreplicated failure loses state; (3) replication's capacity cost is the
// reliability/performance QoS knob.

#include <benchmark/benchmark.h>

#include <map>

#include "common/rng.h"
#include "flux/flux.h"

namespace tcq {
namespace {

constexpr size_t kWorkers = 8;
constexpr size_t kCapacity = 24;
constexpr int kRounds = 300;
constexpr int kPerRound = 160;

void BM_SkewedGroupBy(benchmark::State& state) {
  bool rebalance = state.range(0) != 0;
  double theta = static_cast<double>(state.range(1)) / 100.0;
  uint64_t processed = 0, moved = 0;
  size_t max_backlog = 0;
  double imbalance = 0;
  for (auto _ : state) {
    Flux flux({.num_workers = kWorkers,
               .worker_capacity = kCapacity,
               .num_buckets = 128,
               .rebalance = rebalance,
               .rebalance_interval = 4});
    Rng rng(3);
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kPerRound; ++i) {
        flux.Ingest(static_cast<int64_t>(rng.Zipf(5000, theta)));
      }
      flux.Tick();
    }
    processed += flux.TotalProcessed();
    moved += flux.buckets_moved();
    max_backlog = std::max(max_backlog, flux.MaxQueueLength());
    imbalance = flux.QueueImbalance();
  }
  state.counters["rebalance"] = rebalance ? 1 : 0;
  state.counters["skew_theta"] = theta;
  state.counters["processed"] =
      static_cast<double>(processed) / static_cast<double>(state.iterations());
  state.counters["max_backlog"] = static_cast<double>(max_backlog);
  state.counters["buckets_moved"] =
      static_cast<double>(moved) / static_cast<double>(state.iterations());
  state.counters["imbalance"] = imbalance;
}
BENCHMARK(BM_SkewedGroupBy)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 60})
    ->Args({1, 60})
    ->Args({0, 90})
    ->Args({1, 90})
    ->Unit(benchmark::kMillisecond);

void BM_Failover(benchmark::State& state) {
  bool replication = state.range(0) != 0;
  uint64_t lost_total = 0;
  uint64_t recovered = 0;
  for (auto _ : state) {
    Flux flux({.num_workers = 4,
               .worker_capacity = 64,
               .num_buckets = 64,
               .replication = replication});
    Rng rng(5);
    std::map<int64_t, uint64_t> truth;
    auto feed = [&](int n) {
      for (int i = 0; i < n; ++i) {
        int64_t key = static_cast<int64_t>(rng.Zipf(500, 0.5));
        flux.Ingest(key);
        ++truth[key];
        if (i % 5 == 0) flux.Tick();
      }
    };
    feed(10000);
    (void)flux.FailWorker(1);
    feed(10000);
    flux.RunUntilDrained();
    uint64_t lost = 0, kept = 0;
    for (const auto& [key, count] : truth) {
      uint64_t got = flux.CountForKey(key);
      kept += std::min(got, count);
      if (got < count) lost += count - got;
    }
    lost_total += lost;
    recovered += kept;
  }
  state.counters["replication"] = replication ? 1 : 0;
  state.counters["lost_results"] =
      static_cast<double>(lost_total) /
      static_cast<double>(state.iterations());
  state.counters["kept_results"] =
      static_cast<double>(recovered) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Failover)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ReplicationOverhead(benchmark::State& state) {
  bool replication = state.range(0) != 0;
  uint64_t ticks_to_drain = 0;
  for (auto _ : state) {
    Flux flux({.num_workers = 4,
               .worker_capacity = 64,
               .num_buckets = 64,
               .replication = replication});
    Rng rng(6);
    for (int i = 0; i < 40000; ++i) {
      flux.Ingest(static_cast<int64_t>(rng.Zipf(500, 0.0)));
    }
    ticks_to_drain += flux.RunUntilDrained();
  }
  state.counters["replication"] = replication ? 1 : 0;
  state.counters["ticks_to_drain"] =
      static_cast<double>(ticks_to_drain) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ReplicationOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
