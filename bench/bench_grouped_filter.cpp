// E3 — Grouped filters vs per-query selections (paper §3.1; shape from CACQ
// [MSHR02]): N range queries over one attribute. The grouped filter answers
// a probe in time proportional to the answer; evaluating N independent
// predicates is linear in N. The gap widens with N — the core shared-
// selection claim.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "common/query_set.h"
#include "operators/grouped_filter.h"
#include "tuple/column_store.h"

namespace tcq {
namespace {

using bench::UniformStream;

constexpr int64_t kDomain = 100000;

// Narrow range queries [q*step, q*step + width] spread over the domain.
struct RangeQuery {
  int64_t lo, hi;
};

std::vector<RangeQuery> MakeQueries(size_t n) {
  std::vector<RangeQuery> out;
  Rng rng(7);
  for (size_t q = 0; q < n; ++q) {
    int64_t lo = rng.UniformInt(0, kDomain - 1000);
    out.push_back({lo, lo + 500});  // ~0.5% of the domain each
  }
  return out;
}

void BM_GroupedFilter(benchmark::State& state) {
  // Paired bounds land in the interval tree (as SharedEddy::AddQuery does).
  size_t n = static_cast<size_t>(state.range(0));
  auto queries = MakeQueries(n);
  GroupedFilter gf({0, "k"});
  for (size_t q = 0; q < n; ++q) {
    gf.AddRange(static_cast<QueryId>(q), Value::Int64(queries[q].lo), true,
                Value::Int64(queries[q].hi), true);
  }
  Rng rng(9);
  uint64_t probes = 0, matches = 0;
  QuerySet out;
  for (auto _ : state) {
    out = QuerySet();
    gf.Match(Value::Int64(rng.UniformInt(0, kDomain - 1)), &out);
    matches += out.Count();
    ++probes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
  state.counters["queries"] = static_cast<double>(n);
  state.counters["avg_matches"] =
      static_cast<double>(matches) / static_cast<double>(probes);
}
BENCHMARK(BM_GroupedFilter)->RangeMultiplier(4)->Range(16, 4096);

// The pre-interval-tree variant: each range as a separate lower and upper
// bound in the sorted lists (a probe walks every satisfied bound).
void BM_GroupedFilterBoundLists(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto queries = MakeQueries(n);
  GroupedFilter gf({0, "k"});
  for (size_t q = 0; q < n; ++q) {
    gf.AddFactor(static_cast<QueryId>(q), CmpOp::kGe,
                 Value::Int64(queries[q].lo));
    gf.AddFactor(static_cast<QueryId>(q), CmpOp::kLe,
                 Value::Int64(queries[q].hi));
  }
  Rng rng(9);
  uint64_t probes = 0, matches = 0;
  QuerySet out;
  for (auto _ : state) {
    out = QuerySet();
    gf.Match(Value::Int64(rng.UniformInt(0, kDomain - 1)), &out);
    matches += out.Count();
    ++probes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
  state.counters["queries"] = static_cast<double>(n);
  state.counters["avg_matches"] =
      static_cast<double>(matches) / static_cast<double>(probes);
}
BENCHMARK(BM_GroupedFilterBoundLists)->RangeMultiplier(4)->Range(16, 4096);

void BM_IndependentPredicates(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto queries = MakeQueries(n);
  std::vector<PredicateRef> preds;
  for (const RangeQuery& q : queries) {
    preds.push_back(
        MakeRange({0, "k"}, Value::Int64(q.lo), Value::Int64(q.hi)));
  }
  SchemaRef schema = bench::KVSchema(0);
  Rng rng(9);
  uint64_t probes = 0, matches = 0;
  for (auto _ : state) {
    Tuple t = bench::KVRow(0, rng.UniformInt(0, kDomain - 1), 0, 0);
    for (const auto& p : preds) {
      if (p->Eval(t)) ++matches;
    }
    ++probes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
  state.counters["queries"] = static_cast<double>(n);
  state.counters["avg_matches"] =
      static_cast<double>(matches) / static_cast<double>(probes);
}
BENCHMARK(BM_IndependentPredicates)->RangeMultiplier(4)->Range(16, 4096);

// Equality workload: thousands of point subscriptions; the grouped filter
// answers with one hash lookup.
void BM_GroupedFilterEquality(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  GroupedFilter gf({0, "k"});
  for (size_t q = 0; q < n; ++q) {
    gf.AddFactor(static_cast<QueryId>(q), CmpOp::kEq,
                 Value::Int64(static_cast<int64_t>(q % kDomain)));
  }
  Rng rng(11);
  QuerySet out;
  for (auto _ : state) {
    out = QuerySet();
    gf.Match(Value::Int64(rng.UniformInt(0, kDomain - 1)), &out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["queries"] = static_cast<double>(n);
}
BENCHMARK(BM_GroupedFilterEquality)->RangeMultiplier(8)->Range(64, 32768);

// --- Columnar batch probes (DESIGN.md §11) ----------------------------------
// The same bound-pair factor set probed two ways over one 1024-row batch:
// per-row through the scalar index vs one MatchBatch sweep over the
// contiguous int64 lane (compiled factor kernels). The items/s ratio at a
// given query count is the vectorization speedup bench_batching.sh gates on.

constexpr size_t kProbeBatch = 1024;

ColumnStore::Ref MakeProbeBatch(size_t rows) {
  ColumnStoreBuilder b(bench::KVSchema(0));
  Rng rng(9);
  for (size_t i = 0; i < rows; ++i) {
    b.AppendTimestamp(static_cast<Timestamp>(i));
    b.Append(0, Value::Int64(rng.UniformInt(0, kDomain - 1)));
    b.Append(1, Value::Int64(0));
  }
  return b.Finish();
}

GroupedFilter MakeBoundPairFilter(size_t n) {
  auto queries = MakeQueries(n);
  GroupedFilter gf({0, "k"});
  for (size_t q = 0; q < n; ++q) {
    gf.AddFactor(static_cast<QueryId>(q), CmpOp::kGe,
                 Value::Int64(queries[q].lo));
    gf.AddFactor(static_cast<QueryId>(q), CmpOp::kLe,
                 Value::Int64(queries[q].hi));
  }
  return gf;
}

void BM_GroupedFilterBatchColumnar(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  GroupedFilter gf = MakeBoundPairFilter(n);
  ColumnStore::Ref batch = MakeProbeBatch(kProbeBatch);
  const Column& col = batch->column(0);
  std::vector<QuerySet> out(kProbeBatch);
  uint64_t probes = 0, matches = 0;
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), QuerySet());
    gf.MatchBatch(col, kProbeBatch, out.data());
    probes += kProbeBatch;
  }
  for (const QuerySet& qs : out) matches += qs.Count();
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(static_cast<int64_t>(probes));
  state.counters["queries"] = static_cast<double>(n);
}
BENCHMARK(BM_GroupedFilterBatchColumnar)->RangeMultiplier(4)->Range(16, 4096);

void BM_GroupedFilterBatchScalar(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  GroupedFilter gf = MakeBoundPairFilter(n);
  ColumnStore::Ref batch = MakeProbeBatch(kProbeBatch);
  const Column& col = batch->column(0);
  std::vector<QuerySet> out(kProbeBatch);
  uint64_t probes = 0, matches = 0;
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), QuerySet());
    for (size_t r = 0; r < kProbeBatch; ++r) {
      gf.Match(col.ValueAt(r), &out[r]);
    }
    probes += kProbeBatch;
  }
  for (const QuerySet& qs : out) matches += qs.Count();
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(static_cast<int64_t>(probes));
  state.counters["queries"] = static_cast<double>(n);
}
BENCHMARK(BM_GroupedFilterBatchScalar)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
