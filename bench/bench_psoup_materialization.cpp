// E5 — PSoup materialized results vs recompute-on-invoke (paper §3.2; shape
// from PSoup [CF02]): disconnected clients invoke standing queries. With
// the Results Structure, an invocation reads the materialized window (cost ~
// answer size); without it, the system re-joins history on every invoke
// (cost grows with history length). The crossover as history grows is the
// materialization claim.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "psoup/psoup.h"

namespace tcq {
namespace {

using bench::KVRow;
using bench::KVSchema;

// Builds a PSoup with `history` tuples per stream and one standing query
// (filter by default, join when `join` is set) with a window of 200.
std::unique_ptr<PSoup> BuildPSoup(size_t history, bool join, QueryId* qid) {
  auto psoup = std::make_unique<PSoup>(PSoup::Options{.seed = 1});
  psoup->RegisterStream(0, KVSchema(0));
  if (join) psoup->RegisterStream(1, KVSchema(1));
  PSoupQuery q;
  if (join) {
    q.where.joins.push_back({{0, "k"}, {1, "k"}});
  } else {
    q.where.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(100)});
  }
  q.window = 200;
  auto id = psoup->Register(q);
  *qid = *id;
  Rng rng(2);
  for (size_t i = 1; i <= history; ++i) {
    psoup->Ingest(0, KVRow(0, rng.UniformInt(0, join ? 199 : 999), 0,
                           static_cast<Timestamp>(i)));
    if (join) {
      psoup->Ingest(1, KVRow(1, rng.UniformInt(0, 199), 0,
                             static_cast<Timestamp>(i)));
    }
  }
  return psoup;
}

void BM_InvokeMaterialized(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  QueryId qid;
  auto psoup = BuildPSoup(history, /*join=*/false, &qid);
  Timestamp now = static_cast<Timestamp>(history);
  size_t answer = 0;
  for (auto _ : state) {
    auto r = psoup->Invoke(qid, now);
    answer = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["history"] = static_cast<double>(history);
  state.counters["answer_size"] = static_cast<double>(answer);
}
BENCHMARK(BM_InvokeMaterialized)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMicrosecond);

void BM_InvokeMaterializedJoin(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  QueryId qid;
  auto psoup = BuildPSoup(history, /*join=*/true, &qid);
  Timestamp now = static_cast<Timestamp>(history);
  size_t answer = 0;
  for (auto _ : state) {
    auto r = psoup->Invoke(qid, now);
    answer = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["history"] = static_cast<double>(history);
  state.counters["answer_size"] = static_cast<double>(answer);
}
BENCHMARK(BM_InvokeMaterializedJoin)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

void BM_InvokeByRecompute(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  QueryId qid;
  auto psoup = BuildPSoup(history, /*join=*/false, &qid);
  Timestamp now = static_cast<Timestamp>(history);
  size_t answer = 0;
  for (auto _ : state) {
    auto r = psoup->InvokeByRecompute(qid, now);
    answer = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["history"] = static_cast<double>(history);
  state.counters["answer_size"] = static_cast<double>(answer);
}
BENCHMARK(BM_InvokeByRecompute)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMicrosecond);

void BM_InvokeByRecomputeJoin(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  QueryId qid;
  auto psoup = BuildPSoup(history, /*join=*/true, &qid);
  Timestamp now = static_cast<Timestamp>(history);
  size_t answer = 0;
  for (auto _ : state) {
    auto r = psoup->InvokeByRecompute(qid, now);
    answer = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["history"] = static_cast<double>(history);
  state.counters["answer_size"] = static_cast<double>(answer);
}
BENCHMARK(BM_InvokeByRecomputeJoin)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

// Registration cost of new-query-over-old-data as history grows (the other
// half of PSoup's symmetry).
void BM_RegisterOverHistory(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto psoup = std::make_unique<PSoup>(PSoup::Options{.seed = 1});
    psoup->RegisterStream(0, KVSchema(0));
    Rng rng(2);
    for (size_t i = 1; i <= history; ++i) {
      psoup->Ingest(0, KVRow(0, rng.UniformInt(0, 49), 0,
                             static_cast<Timestamp>(i)));
    }
    PSoupQuery q;
    q.where.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(25)});
    state.ResumeTiming();
    auto id = psoup->Register(q);
    benchmark::DoNotOptimize(id);
  }
  state.counters["history"] = static_cast<double>(history);
}
BENCHMARK(BM_RegisterOverHistory)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
