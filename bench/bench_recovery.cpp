// Crash-recovery cost model (DESIGN.md §13): what an epoch-stamped
// checkpoint costs as the engine's durable state grows, and what a restore
// costs end to end — snapshot import plus the spool-suffix replay. One
// server hosts an L-join-R continuous query whose SteMs hold N tuples per
// side; BM_Checkpoint quiesces and snapshots that state, BM_Restore rebuilds
// a fresh server from the snapshot plus an N-tuple archived suffix.
// scripts/bench_recovery.sh turns the sweep into BENCH_recovery.json.

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "server/telegraphcq.h"

namespace tcq::bench {
namespace {

std::vector<Field> KVFields() {
  return {{"k", ValueType::kInt64, 0}, {"v", ValueType::kInt64, 0}};
}

TelegraphCQ::Options DurableOptions(const std::string& tag) {
  const auto base =
      std::filesystem::temp_directory_path() / ("tcq_bench_recovery_" + tag);
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base / "spool");
  std::filesystem::create_directories(base / "ckpt");
  TelegraphCQ::Options o;
  o.spool_dir = (base / "spool").string();
  o.checkpoint_dir = (base / "ckpt").string();
  // Nobody consumes the egress during the bench; never let it block the
  // quiesce (sheds are counted, not silently dropped).
  o.egress_shed = ShedPolicy::kDropNewest;
  return o;
}

/// N rows per side, unique keys starting at `key0`: every row lands in a
/// SteM, and each L/R key pair joins exactly once.
void IngestJoinRows(TelegraphCQ* server, int64_t key0, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const int64_t k = key0 + i;
    benchmark::DoNotOptimize(
        server->Push("L", {Value::Int64(k), Value::Int64(i)}, k));
    benchmark::DoNotOptimize(
        server->Push("R", {Value::Int64(k), Value::Int64(i)}, k));
  }
}

void BM_Checkpoint(benchmark::State& state) {
  const int64_t n = state.range(0);
  TelegraphCQ server(DurableOptions("ckpt_" + std::to_string(n)));
  if (!server.DefineStream("L", KVFields()).ok() ||
      !server.DefineStream("R", KVFields()).ok() ||
      !server.Submit("SELECT l.v, r.v FROM L l, R r WHERE l.k = r.k").ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  server.Start();
  IngestJoinRows(&server, 1, n);

  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto epoch = server.Checkpoint();
    const auto t1 = std::chrono::steady_clock::now();
    if (!epoch.ok()) {
      state.SkipWithError(epoch.status().message().c_str());
      break;
    }
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
  }
  auto view = server.Introspect();
  server.Stop();
  state.SetItemsProcessed(state.iterations() * 2 * n);
  if (view.checkpoint_epochs > 0) {
    state.counters["snapshot_bytes"] = static_cast<double>(
        view.checkpoint_bytes / view.checkpoint_epochs);
  }
}

void BM_Restore(benchmark::State& state) {
  const int64_t n = state.range(0);
  const TelegraphCQ::Options opts =
      DurableOptions("restore_" + std::to_string(n));
  // Durable state built once: N rows per side in the snapshot's SteMs, then
  // N archived suffix rows per side past the snapshot's high-water mark.
  {
    TelegraphCQ server(opts);
    if (!server.DefineStream("L", KVFields()).ok() ||
        !server.DefineStream("R", KVFields()).ok() ||
        !server.Submit("SELECT l.v, r.v FROM L l, R r WHERE l.k = r.k")
             .ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    server.Start();
    IngestJoinRows(&server, 1, n);
    if (!server.Checkpoint().ok() || !([&] {
          IngestJoinRows(&server, n + 1, n);
          return server.FlushSpools().ok();
        }())) {
      state.SkipWithError("checkpoint setup failed");
      return;
    }
    server.Stop();
  }

  uint64_t replayed = 0;
  for (auto _ : state) {
    TelegraphCQ server(opts);
    const auto t0 = std::chrono::steady_clock::now();
    auto epoch = server.Restore();
    const auto t1 = std::chrono::steady_clock::now();
    if (!epoch.ok()) {
      state.SkipWithError(epoch.status().message().c_str());
      break;
    }
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    replayed = server.Introspect().restore_replay_tuples;
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
  state.counters["replay_tuples"] = static_cast<double>(replayed);
}

BENCHMARK(BM_Checkpoint)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Restore)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq::bench

BENCHMARK_MAIN();
