// E2 — SteM join hybridization (paper §2.2; shape from SteMs [RDH02]):
// stream S joins a remote-indexed table T. Three plans over identical
// machinery:
//   (a) index-join        : every S tuple pays a remote lookup;
//   (b) hybrid (cache)    : a SteM on T caches fetched entries; repeated
//                           keys (zipf) are served locally;
//   (c) symmetric hash    : T is streamed and built into a SteM up front
//                           (no remote lookups, but full T state).
// The reported `simulated_cost_us` counts remote latency, the dominant cost
// in the paper's wide-area setting — the hybrid tracks whichever of (a)/(c)
// is better as key skew changes, which is the hybridization claim.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eddy/eddy.h"
#include "ingress/remote_index.h"

namespace tcq {
namespace {

using bench::KVRow;
using bench::KVSchema;

constexpr size_t kProbes = 8000;
constexpr int64_t kTableKeys = 2000;
constexpr Timestamp kLookupUs = 1000;

std::vector<Tuple> ZipfProbeStream(double theta, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(kProbes);
  for (size_t i = 0; i < kProbes; ++i) {
    out.push_back(KVRow(0, static_cast<int64_t>(rng.Zipf(kTableKeys, theta)),
                        0, static_cast<Timestamp>(i)));
  }
  return out;
}

void FillIndex(SimulatedRemoteIndex* index) {
  for (int64_t k = 0; k < kTableKeys; ++k) {
    index->Insert(KVRow(1, k, k * 10, 0));
  }
}

void BM_IndexJoinNoCache(benchmark::State& state) {
  double theta = static_cast<double>(state.range(0)) / 100.0;
  auto stream = ZipfProbeStream(theta, 3);
  uint64_t cost = 0, outputs = 0, tuples = 0;
  for (auto _ : state) {
    SimulatedRemoteIndex index(1, KVSchema(1), "k",
                               {.lookup_cost_us = kLookupUs});
    FillIndex(&index);
    Eddy eddy(MakeLotteryPolicy(3));
    eddy.AddModule(std::make_unique<RemoteIndexProbe>(
        "rip", &index, AttrRef{0, "k"}, nullptr));
    eddy.SetOutput([&](const Tuple&) { ++outputs; });
    for (const Tuple& t : stream) eddy.Ingest(0, t);
    cost += static_cast<uint64_t>(index.simulated_cost_us());
    tuples += stream.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["skew_theta"] = theta;
  state.counters["simulated_cost_us"] =
      static_cast<double>(cost) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_IndexJoinNoCache)->Arg(0)->Arg(90)->Arg(120);

void BM_HybridIndexWithSteMCache(benchmark::State& state) {
  double theta = static_cast<double>(state.range(0)) / 100.0;
  auto stream = ZipfProbeStream(theta, 3);
  uint64_t cost = 0, outputs = 0, tuples = 0, hits = 0;
  for (auto _ : state) {
    SimulatedRemoteIndex index(1, KVSchema(1), "k",
                               {.lookup_cost_us = kLookupUs});
    FillIndex(&index);
    auto cache = std::make_shared<SteM>("cacheT", 1, KVSchema(1),
                                        StemOptions{.key_attr = "k"});
    Eddy eddy(MakeLotteryPolicy(3));
    auto probe = std::make_unique<RemoteIndexProbe>(
        "rip", &index, AttrRef{0, "k"}, cache.get());
    RemoteIndexProbe* probe_ptr = probe.get();
    eddy.AddModule(std::move(probe));
    eddy.SetOutput([&](const Tuple&) { ++outputs; });
    for (const Tuple& t : stream) eddy.Ingest(0, t);
    cost += static_cast<uint64_t>(index.simulated_cost_us());
    hits += probe_ptr->cache_hits();
    tuples += stream.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["skew_theta"] = theta;
  state.counters["simulated_cost_us"] =
      static_cast<double>(cost) / static_cast<double>(state.iterations());
  state.counters["cache_hit_frac"] =
      static_cast<double>(hits) /
      static_cast<double>(static_cast<uint64_t>(state.iterations()) * kProbes);
}
BENCHMARK(BM_HybridIndexWithSteMCache)->Arg(0)->Arg(90)->Arg(120);

void BM_SymmetricHashPreloaded(benchmark::State& state) {
  double theta = static_cast<double>(state.range(0)) / 100.0;
  auto stream = ZipfProbeStream(theta, 3);
  uint64_t outputs = 0, tuples = 0;
  for (auto _ : state) {
    // T is streamed in full first (paying bulk transfer once, modeled as one
    // lookup per table page of 50 rows), then S probes locally.
    auto stem_t = std::make_shared<SteM>("stemT", 1, KVSchema(1),
                                         StemOptions{.key_attr = "k"});
    Eddy eddy(MakeLotteryPolicy(3));
    eddy.AttachSteM(stem_t);
    eddy.AddModule(std::make_unique<SteMProbe>(
        "probeT", stem_t.get(),
        JoinSpec{AttrRef{0, "k"}, AttrRef{1, "k"}, {}}));
    eddy.SetRequiredSources(SourceBit(0) | SourceBit(1));
    for (int64_t k = 0; k < kTableKeys; ++k) {
      eddy.Ingest(1, KVRow(1, k, k * 10, 0));
    }
    eddy.SetOutput([&](const Tuple&) { ++outputs; });
    for (const Tuple& t : stream) eddy.Ingest(0, t);
    tuples += stream.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["skew_theta"] = theta;
  // Bulk-stream cost model: full table transfer.
  state.counters["simulated_cost_us"] =
      static_cast<double>(kTableKeys / 50 * kLookupUs);
  state.counters["stem_entries"] = static_cast<double>(kTableKeys);
}
BENCHMARK(BM_SymmetricHashPreloaded)->Arg(0)->Arg(90)->Arg(120);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
