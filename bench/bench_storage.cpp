// E10 — Storage path (paper §4.3): sequential append throughput of the
// stream store, windowed scans whose page pruning keeps cost proportional
// to the window (not the stream), and the replacement-policy comparison:
// the windowed/broadcast-style cyclic read workload favours MRU over LRU,
// which is the paper's broadcast-disk observation.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "storage/buffer_pool.h"
#include "storage/scanner.h"
#include "storage/stream_store.h"

namespace tcq {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::unique_ptr<StreamStore> BuildStore(const std::string& name, size_t n) {
  auto store = StreamStore::Create(TempPath(name), bench::KVSchema(0));
  Rng rng(8);
  for (size_t i = 1; i <= n; ++i) {
    (void)(*store)->Append(bench::KVRow(0, rng.UniformInt(0, 1000), 0,
                                        static_cast<Timestamp>(i)));
  }
  (void)(*store)->Flush();
  return std::move(*store);
}

void BM_AppendThroughput(benchmark::State& state) {
  auto store = StreamStore::Create(TempPath("bench_append.log"),
                                   bench::KVSchema(0));
  Rng rng(8);
  Timestamp ts = 1;
  for (auto _ : state) {
    (void)(*store)->Append(
        bench::KVRow(0, rng.UniformInt(0, 1000), 0, ts++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(ts - 1));
  state.counters["pages_sealed"] =
      static_cast<double>((*store)->pages_sealed());
}
BENCHMARK(BM_AppendThroughput);

void BM_WindowedScan(benchmark::State& state) {
  const size_t kStream = 200000;
  Timestamp width = state.range(0);
  static std::unique_ptr<StreamStore> store =
      BuildStore("bench_scan.log", kStream);
  BufferPool pool({.capacity_pages = 64});
  WindowedScanner scanner(store.get(), &pool);
  Rng rng(9);
  uint64_t scans = 0, tuples = 0;
  for (auto _ : state) {
    Timestamp lo = rng.UniformInt(1, static_cast<int64_t>(kStream) - width);
    std::vector<Tuple> out;
    (void)scanner.Scan(lo, lo + width - 1, &out);
    tuples += out.size();
    ++scans;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["window_width"] = static_cast<double>(width);
  state.counters["pages_per_scan"] =
      static_cast<double>(scanner.pages_visited()) /
      static_cast<double>(scans);
}
BENCHMARK(BM_WindowedScan)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CyclicReadPolicy(benchmark::State& state) {
  // The backward/periodic windowed read workload: cycle over a fixed page
  // range larger than the pool.
  ReplacementPolicy policy = static_cast<ReplacementPolicy>(state.range(0));
  static std::unique_ptr<StreamStore> store =
      BuildStore("bench_cyclic.log", 100000);
  uint64_t pages = store->NumPages();
  BufferPool pool({.capacity_pages = static_cast<size_t>(pages / 2),
                   .policy = policy});
  uint64_t fetches = 0;
  uint64_t p = 0;
  for (auto _ : state) {
    (void)pool.Fetch(store.get(), p);
    p = (p + 1) % pages;
    ++fetches;
  }
  state.SetItemsProcessed(static_cast<int64_t>(fetches));
  state.counters["hit_rate"] = pool.HitRate();
  state.SetLabel(ReplacementPolicyName(policy));
}
BENCHMARK(BM_CyclicReadPolicy)->Arg(0)->Arg(1)->Arg(2);

void BM_MixedAppendAndScan(benchmark::State& state) {
  // The paper's mixed workload: bursty appends racing historical window
  // scans through one buffer pool.
  auto store = StreamStore::Create(TempPath("bench_mixed.log"),
                                   bench::KVSchema(0));
  BufferPool pool({.capacity_pages = 32});
  WindowedScanner scanner(store->get(), &pool);
  Rng rng(10);
  Timestamp ts = 1;
  uint64_t appended = 0, scanned = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)(*store)->Append(
          bench::KVRow(0, rng.UniformInt(0, 1000), 0, ts++));
      ++appended;
    }
    if (ts > 2000) {
      std::vector<Tuple> out;
      Timestamp lo = rng.UniformInt(1, ts - 1000);
      (void)scanner.Scan(lo, lo + 499, &out);
      scanned += out.size();
    }
  }
  state.counters["appended"] = static_cast<double>(appended);
  state.counters["scanned"] = static_cast<double>(scanned);
  state.counters["pool_hit_rate"] = pool.HitRate();
}
BENCHMARK(BM_MixedAppendAndScan);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
