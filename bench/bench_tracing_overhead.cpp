// Tracing overhead (DESIGN.md §9): ingest throughput on the E2/E4 shared-CACQ
// workload (64 point-filter queries over 8 attributes, batched ingest) with
// the tracer compiled in at four settings — disabled (Arg 0, the zero-cost
// baseline: one relaxed atomic load per batch) and sample periods 64 / 8 / 1.
// BENCH_tracing.json compares 1/64 against disabled; the acceptance bound is
// <= 5% regression at the default sampling rate.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cacq/shared_eddy.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace tcq {
namespace {

constexpr size_t kQueries = 64;
constexpr size_t kAttrs = 8;
constexpr size_t kStream = 20000;
constexpr int64_t kWideKeyRange = 4096;
constexpr size_t kBatch = 64;

// state.range(0): 0 = tracer disabled, otherwise the sample period.
void BM_TracedSharedCACQIngest(benchmark::State& state) {
  uint32_t period = static_cast<uint32_t>(state.range(0));

  std::vector<Field> fields;
  for (size_t a = 0; a < kAttrs; ++a) {
    fields.push_back({"a" + std::to_string(a), ValueType::kInt64, 0});
  }
  SchemaRef schema = Schema::Make(std::move(fields));

  std::vector<Tuple> s;
  s.reserve(kStream);
  {
    Rng rng(7);
    for (size_t i = 0; i < kStream; ++i) {
      std::vector<Value> vals;
      vals.reserve(kAttrs);
      for (size_t a = 0; a < kAttrs; ++a) {
        vals.push_back(Value::Int64(rng.UniformInt(0, kWideKeyRange - 1)));
      }
      s.push_back(Tuple::Make(schema, std::move(vals),
                              static_cast<Timestamp>(i)));
    }
  }

  obs::TraceOptions topts;
  topts.enabled = period > 0;
  topts.sample_period = period > 0 ? period : 1;
  obs::Tracer tracer(topts);

  uint64_t tuples = 0;
  for (auto _ : state) {
    SharedEddy eddy(MakeLotteryPolicy(3));
    eddy.RegisterStream(0, schema);
    eddy.SetOutput([](QueryId, const Tuple&) {});
    Rng rng(11);
    for (size_t q = 0; q < kQueries; ++q) {
      CQSpec spec;
      spec.filters.push_back(
          {{0, "a" + std::to_string(q % kAttrs)},
           CmpOp::kEq,
           Value::Int64(rng.UniformInt(0, kWideKeyRange))});
      (void)eddy.AddQuery(spec);
    }
    TupleBatch batch;
    batch.set_source(0);
    for (const Tuple& t : s) {
      batch.push_back(t);
      if (batch.size() >= kBatch) {
        // The batch boundary a DU pump pays: one scope per dequeued batch.
        obs::TraceBatchScope scope(&tracer);
        eddy.IngestBatch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) {
      obs::TraceBatchScope scope(&tracer);
      eddy.IngestBatch(batch);
    }
    tuples += kStream;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["sample_period"] = static_cast<double>(period);
  state.counters["batches_sampled"] =
      static_cast<double>(tracer.batches_sampled());
  state.counters["spans_recorded"] =
      static_cast<double>(tracer.spans_recorded());
}
BENCHMARK(BM_TracedSharedCACQIngest)
    ->Arg(0)
    ->Arg(64)
    ->Arg(8)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
