// E6 — Window classes and their state/cost (paper §4.1.2): a MAX aggregate
// over landmark, sliding, and hopping windows. Landmark MAX runs with O(1)
// state; sliding MAX must retain the window (state grows with width);
// hopping with hop > width recomputes and skips stream portions. Counters
// report peak state bytes alongside throughput.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "window/window_exec.h"

namespace tcq {
namespace {

StreamHistory MakeHistory(Timestamp n) {
  StreamHistory h;
  Rng rng(4);
  SchemaRef schema = bench::KVSchema(0);
  for (Timestamp t = 1; t <= n; ++t) {
    h.Append(bench::KVRow(0, rng.UniformInt(0, 1000000), 0, t));
  }
  return h;
}

constexpr Timestamp kStreamLen = 20000;

void BM_LandmarkMax(benchmark::State& state) {
  StreamHistory h = MakeHistory(kStreamLen);
  auto loop = ForLoopSpec::Landmark(0, 1, 1, kStreamLen);
  size_t peak = 0;
  uint64_t windows = 0;
  for (auto _ : state) {
    auto r = RunAggregateOverHistory(loop, AggFn::kMax, {0, "k"}, h,
                                     1u << 20, &peak);
    windows += r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(windows));
  state.counters["peak_state_bytes"] = static_cast<double>(peak);
}
BENCHMARK(BM_LandmarkMax)->Unit(benchmark::kMillisecond);

void BM_SlidingMax(benchmark::State& state) {
  Timestamp width = state.range(0);
  StreamHistory h = MakeHistory(kStreamLen);
  auto loop = ForLoopSpec::Sliding({0}, width, width, kStreamLen);
  size_t peak = 0;
  uint64_t windows = 0;
  for (auto _ : state) {
    auto r = RunAggregateOverHistory(loop, AggFn::kMax, {0, "k"}, h,
                                     1u << 20, &peak);
    windows += r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(windows));
  state.counters["width"] = static_cast<double>(width);
  state.counters["peak_state_bytes"] = static_cast<double>(peak);
}
BENCHMARK(BM_SlidingMax)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_HoppingMax(benchmark::State& state) {
  Timestamp hop = state.range(0);  // width fixed at 64; hop > width skips
  StreamHistory h = MakeHistory(kStreamLen);
  auto loop = ForLoopSpec::Sliding({0}, 64, 64, kStreamLen, hop);
  size_t peak = 0;
  uint64_t windows = 0;
  for (auto _ : state) {
    auto r = RunAggregateOverHistory(loop, AggFn::kMax, {0, "k"}, h,
                                     1u << 20, &peak);
    windows += r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(windows));
  state.counters["hop"] = static_cast<double>(hop);
  state.counters["class"] =
      static_cast<double>(loop.Classify() == WindowClass::kHopping);
  state.counters["peak_state_bytes"] = static_cast<double>(peak);
}
BENCHMARK(BM_HoppingMax)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// Backward windows (the browsing pattern §4.1.1 motivates): recompute cost
// per window over a long retained history.
void BM_BackwardBrowse(benchmark::State& state) {
  StreamHistory h = MakeHistory(kStreamLen);
  auto loop = ForLoopSpec::Backward(0, 256, kStreamLen, 256, 32);
  uint64_t windows = 0;
  for (auto _ : state) {
    auto r = RunAggregateOverHistory(loop, AggFn::kAvg, {0, "k"}, h);
    windows += r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(windows));
}
BENCHMARK(BM_BackwardBrowse)->Unit(benchmark::kMillisecond);

// Online runner end-to-end: set-based sliding windows over a live stream,
// including the history-pruning path.
void BM_OnlineSlidingSets(benchmark::State& state) {
  Timestamp width = state.range(0);
  SchemaRef schema = bench::KVSchema(0);
  Rng rng(5);
  uint64_t fired = 0, tuples = 0;
  for (auto _ : state) {
    WindowedQuery q;
    q.loop = ForLoopSpec::Sliding({0}, width, width, kStreamLen / 4);
    q.predicates = {
        MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(500000))};
    OnlineWindowRunner runner(q);
    for (Timestamp t = 1; t <= kStreamLen / 4; ++t) {
      runner.Ingest(0, bench::KVRow(0, rng.UniformInt(0, 1000000), 0, t));
      runner.Poll([&](const WindowResult&) { ++fired; });
      ++tuples;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["width"] = static_cast<double>(width);
  state.counters["windows_fired"] = static_cast<double>(fired);
}
BENCHMARK(BM_OnlineSlidingSets)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcq

BENCHMARK_MAIN();
