file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptivity_knobs.dir/bench_adaptivity_knobs.cpp.o"
  "CMakeFiles/bench_adaptivity_knobs.dir/bench_adaptivity_knobs.cpp.o.d"
  "bench_adaptivity_knobs"
  "bench_adaptivity_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptivity_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
