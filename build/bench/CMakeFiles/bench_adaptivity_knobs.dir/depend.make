# Empty dependencies file for bench_adaptivity_knobs.
# This may be replaced when dependencies are built.
