file(REMOVE_RECURSE
  "CMakeFiles/bench_cacq_scaling.dir/bench_cacq_scaling.cpp.o"
  "CMakeFiles/bench_cacq_scaling.dir/bench_cacq_scaling.cpp.o.d"
  "bench_cacq_scaling"
  "bench_cacq_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cacq_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
