# Empty dependencies file for bench_cacq_scaling.
# This may be replaced when dependencies are built.
