file(REMOVE_RECURSE
  "CMakeFiles/bench_eddy_adaptivity.dir/bench_eddy_adaptivity.cpp.o"
  "CMakeFiles/bench_eddy_adaptivity.dir/bench_eddy_adaptivity.cpp.o.d"
  "bench_eddy_adaptivity"
  "bench_eddy_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eddy_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
