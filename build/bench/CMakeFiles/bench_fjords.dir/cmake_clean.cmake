file(REMOVE_RECURSE
  "CMakeFiles/bench_fjords.dir/bench_fjords.cpp.o"
  "CMakeFiles/bench_fjords.dir/bench_fjords.cpp.o.d"
  "bench_fjords"
  "bench_fjords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fjords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
