# Empty dependencies file for bench_fjords.
# This may be replaced when dependencies are built.
