file(REMOVE_RECURSE
  "CMakeFiles/bench_grouped_filter.dir/bench_grouped_filter.cpp.o"
  "CMakeFiles/bench_grouped_filter.dir/bench_grouped_filter.cpp.o.d"
  "bench_grouped_filter"
  "bench_grouped_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grouped_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
