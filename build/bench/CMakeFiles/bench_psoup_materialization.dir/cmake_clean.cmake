file(REMOVE_RECURSE
  "CMakeFiles/bench_psoup_materialization.dir/bench_psoup_materialization.cpp.o"
  "CMakeFiles/bench_psoup_materialization.dir/bench_psoup_materialization.cpp.o.d"
  "bench_psoup_materialization"
  "bench_psoup_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psoup_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
