# Empty dependencies file for bench_psoup_materialization.
# This may be replaced when dependencies are built.
