file(REMOVE_RECURSE
  "CMakeFiles/bench_stem_hybrid_join.dir/bench_stem_hybrid_join.cpp.o"
  "CMakeFiles/bench_stem_hybrid_join.dir/bench_stem_hybrid_join.cpp.o.d"
  "bench_stem_hybrid_join"
  "bench_stem_hybrid_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stem_hybrid_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
