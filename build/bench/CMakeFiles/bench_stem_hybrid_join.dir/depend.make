# Empty dependencies file for bench_stem_hybrid_join.
# This may be replaced when dependencies are built.
