file(REMOVE_RECURSE
  "CMakeFiles/sensor_psoup.dir/sensor_psoup.cpp.o"
  "CMakeFiles/sensor_psoup.dir/sensor_psoup.cpp.o.d"
  "sensor_psoup"
  "sensor_psoup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_psoup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
