# Empty dependencies file for sensor_psoup.
# This may be replaced when dependencies are built.
