
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cacq/query_registry.cpp" "src/CMakeFiles/tcq.dir/cacq/query_registry.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/cacq/query_registry.cpp.o.d"
  "/root/repo/src/cacq/shared_eddy.cpp" "src/CMakeFiles/tcq.dir/cacq/shared_eddy.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/cacq/shared_eddy.cpp.o.d"
  "/root/repo/src/common/clock.cpp" "src/CMakeFiles/tcq.dir/common/clock.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/common/clock.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/tcq.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/tcq.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/tcq.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/common/status.cpp.o.d"
  "/root/repo/src/eddy/eddy.cpp" "src/CMakeFiles/tcq.dir/eddy/eddy.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/eddy/eddy.cpp.o.d"
  "/root/repo/src/eddy/module.cpp" "src/CMakeFiles/tcq.dir/eddy/module.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/eddy/module.cpp.o.d"
  "/root/repo/src/eddy/routing_policy.cpp" "src/CMakeFiles/tcq.dir/eddy/routing_policy.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/eddy/routing_policy.cpp.o.d"
  "/root/repo/src/egress/egress.cpp" "src/CMakeFiles/tcq.dir/egress/egress.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/egress/egress.cpp.o.d"
  "/root/repo/src/exec/dispatch_unit.cpp" "src/CMakeFiles/tcq.dir/exec/dispatch_unit.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/exec/dispatch_unit.cpp.o.d"
  "/root/repo/src/exec/execution_object.cpp" "src/CMakeFiles/tcq.dir/exec/execution_object.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/exec/execution_object.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "src/CMakeFiles/tcq.dir/exec/executor.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/exec/executor.cpp.o.d"
  "/root/repo/src/exec/scheduler.cpp" "src/CMakeFiles/tcq.dir/exec/scheduler.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/exec/scheduler.cpp.o.d"
  "/root/repo/src/fjords/fjord.cpp" "src/CMakeFiles/tcq.dir/fjords/fjord.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/fjords/fjord.cpp.o.d"
  "/root/repo/src/fjords/queue.cpp" "src/CMakeFiles/tcq.dir/fjords/queue.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/fjords/queue.cpp.o.d"
  "/root/repo/src/flux/cluster.cpp" "src/CMakeFiles/tcq.dir/flux/cluster.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/flux/cluster.cpp.o.d"
  "/root/repo/src/flux/flux.cpp" "src/CMakeFiles/tcq.dir/flux/flux.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/flux/flux.cpp.o.d"
  "/root/repo/src/flux/partitioner.cpp" "src/CMakeFiles/tcq.dir/flux/partitioner.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/flux/partitioner.cpp.o.d"
  "/root/repo/src/ingress/generators.cpp" "src/CMakeFiles/tcq.dir/ingress/generators.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/ingress/generators.cpp.o.d"
  "/root/repo/src/ingress/rate.cpp" "src/CMakeFiles/tcq.dir/ingress/rate.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/ingress/rate.cpp.o.d"
  "/root/repo/src/ingress/remote_index.cpp" "src/CMakeFiles/tcq.dir/ingress/remote_index.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/ingress/remote_index.cpp.o.d"
  "/root/repo/src/ingress/source.cpp" "src/CMakeFiles/tcq.dir/ingress/source.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/ingress/source.cpp.o.d"
  "/root/repo/src/ingress/wrapper.cpp" "src/CMakeFiles/tcq.dir/ingress/wrapper.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/ingress/wrapper.cpp.o.d"
  "/root/repo/src/operators/aggregate.cpp" "src/CMakeFiles/tcq.dir/operators/aggregate.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/aggregate.cpp.o.d"
  "/root/repo/src/operators/dup_elim.cpp" "src/CMakeFiles/tcq.dir/operators/dup_elim.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/dup_elim.cpp.o.d"
  "/root/repo/src/operators/grouped_filter.cpp" "src/CMakeFiles/tcq.dir/operators/grouped_filter.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/grouped_filter.cpp.o.d"
  "/root/repo/src/operators/interval_index.cpp" "src/CMakeFiles/tcq.dir/operators/interval_index.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/interval_index.cpp.o.d"
  "/root/repo/src/operators/juggle.cpp" "src/CMakeFiles/tcq.dir/operators/juggle.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/juggle.cpp.o.d"
  "/root/repo/src/operators/predicate.cpp" "src/CMakeFiles/tcq.dir/operators/predicate.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/predicate.cpp.o.d"
  "/root/repo/src/operators/projection.cpp" "src/CMakeFiles/tcq.dir/operators/projection.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/projection.cpp.o.d"
  "/root/repo/src/operators/selection.cpp" "src/CMakeFiles/tcq.dir/operators/selection.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/selection.cpp.o.d"
  "/root/repo/src/operators/sort.cpp" "src/CMakeFiles/tcq.dir/operators/sort.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/sort.cpp.o.d"
  "/root/repo/src/operators/transitive_closure.cpp" "src/CMakeFiles/tcq.dir/operators/transitive_closure.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/operators/transitive_closure.cpp.o.d"
  "/root/repo/src/psoup/data_stem.cpp" "src/CMakeFiles/tcq.dir/psoup/data_stem.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/psoup/data_stem.cpp.o.d"
  "/root/repo/src/psoup/psoup.cpp" "src/CMakeFiles/tcq.dir/psoup/psoup.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/psoup/psoup.cpp.o.d"
  "/root/repo/src/psoup/query_stem.cpp" "src/CMakeFiles/tcq.dir/psoup/query_stem.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/psoup/query_stem.cpp.o.d"
  "/root/repo/src/psoup/results.cpp" "src/CMakeFiles/tcq.dir/psoup/results.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/psoup/results.cpp.o.d"
  "/root/repo/src/query/ast.cpp" "src/CMakeFiles/tcq.dir/query/ast.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/query/ast.cpp.o.d"
  "/root/repo/src/query/catalog.cpp" "src/CMakeFiles/tcq.dir/query/catalog.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/query/catalog.cpp.o.d"
  "/root/repo/src/query/parser.cpp" "src/CMakeFiles/tcq.dir/query/parser.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/query/parser.cpp.o.d"
  "/root/repo/src/query/planner.cpp" "src/CMakeFiles/tcq.dir/query/planner.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/query/planner.cpp.o.d"
  "/root/repo/src/server/telegraphcq.cpp" "src/CMakeFiles/tcq.dir/server/telegraphcq.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/server/telegraphcq.cpp.o.d"
  "/root/repo/src/stem/index.cpp" "src/CMakeFiles/tcq.dir/stem/index.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/stem/index.cpp.o.d"
  "/root/repo/src/stem/stem.cpp" "src/CMakeFiles/tcq.dir/stem/stem.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/stem/stem.cpp.o.d"
  "/root/repo/src/storage/buffer_pool.cpp" "src/CMakeFiles/tcq.dir/storage/buffer_pool.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/storage/buffer_pool.cpp.o.d"
  "/root/repo/src/storage/scanner.cpp" "src/CMakeFiles/tcq.dir/storage/scanner.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/storage/scanner.cpp.o.d"
  "/root/repo/src/storage/stream_store.cpp" "src/CMakeFiles/tcq.dir/storage/stream_store.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/storage/stream_store.cpp.o.d"
  "/root/repo/src/tuple/schema.cpp" "src/CMakeFiles/tcq.dir/tuple/schema.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/tuple/schema.cpp.o.d"
  "/root/repo/src/tuple/tuple.cpp" "src/CMakeFiles/tcq.dir/tuple/tuple.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/tuple/tuple.cpp.o.d"
  "/root/repo/src/tuple/value.cpp" "src/CMakeFiles/tcq.dir/tuple/value.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/tuple/value.cpp.o.d"
  "/root/repo/src/window/time.cpp" "src/CMakeFiles/tcq.dir/window/time.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/window/time.cpp.o.d"
  "/root/repo/src/window/window_exec.cpp" "src/CMakeFiles/tcq.dir/window/window_exec.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/window/window_exec.cpp.o.d"
  "/root/repo/src/window/window_spec.cpp" "src/CMakeFiles/tcq.dir/window/window_spec.cpp.o" "gcc" "src/CMakeFiles/tcq.dir/window/window_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
