file(REMOVE_RECURSE
  "libtcq.a"
)
