# Empty dependencies file for tcq.
# This may be replaced when dependencies are built.
