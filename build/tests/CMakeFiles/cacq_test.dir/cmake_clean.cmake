file(REMOVE_RECURSE
  "CMakeFiles/cacq_test.dir/cacq_test.cpp.o"
  "CMakeFiles/cacq_test.dir/cacq_test.cpp.o.d"
  "cacq_test"
  "cacq_test.pdb"
  "cacq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cacq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
