# Empty compiler generated dependencies file for cacq_test.
# This may be replaced when dependencies are built.
