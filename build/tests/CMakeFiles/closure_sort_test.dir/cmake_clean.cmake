file(REMOVE_RECURSE
  "CMakeFiles/closure_sort_test.dir/closure_sort_test.cpp.o"
  "CMakeFiles/closure_sort_test.dir/closure_sort_test.cpp.o.d"
  "closure_sort_test"
  "closure_sort_test.pdb"
  "closure_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
