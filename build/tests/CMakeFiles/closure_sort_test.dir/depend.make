# Empty dependencies file for closure_sort_test.
# This may be replaced when dependencies are built.
