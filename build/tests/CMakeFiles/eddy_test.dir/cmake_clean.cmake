file(REMOVE_RECURSE
  "CMakeFiles/eddy_test.dir/eddy_test.cpp.o"
  "CMakeFiles/eddy_test.dir/eddy_test.cpp.o.d"
  "eddy_test"
  "eddy_test.pdb"
  "eddy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
