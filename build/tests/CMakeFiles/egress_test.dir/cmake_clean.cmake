file(REMOVE_RECURSE
  "CMakeFiles/egress_test.dir/egress_test.cpp.o"
  "CMakeFiles/egress_test.dir/egress_test.cpp.o.d"
  "egress_test"
  "egress_test.pdb"
  "egress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
