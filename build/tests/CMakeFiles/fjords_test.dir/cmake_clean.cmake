file(REMOVE_RECURSE
  "CMakeFiles/fjords_test.dir/fjords_test.cpp.o"
  "CMakeFiles/fjords_test.dir/fjords_test.cpp.o.d"
  "fjords_test"
  "fjords_test.pdb"
  "fjords_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjords_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
