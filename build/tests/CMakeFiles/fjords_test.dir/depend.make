# Empty dependencies file for fjords_test.
# This may be replaced when dependencies are built.
