file(REMOVE_RECURSE
  "CMakeFiles/flux_test.dir/flux_test.cpp.o"
  "CMakeFiles/flux_test.dir/flux_test.cpp.o.d"
  "flux_test"
  "flux_test.pdb"
  "flux_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
