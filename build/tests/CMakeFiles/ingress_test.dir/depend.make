# Empty dependencies file for ingress_test.
# This may be replaced when dependencies are built.
