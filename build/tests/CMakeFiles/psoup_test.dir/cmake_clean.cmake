file(REMOVE_RECURSE
  "CMakeFiles/psoup_test.dir/psoup_test.cpp.o"
  "CMakeFiles/psoup_test.dir/psoup_test.cpp.o.d"
  "psoup_test"
  "psoup_test.pdb"
  "psoup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psoup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
