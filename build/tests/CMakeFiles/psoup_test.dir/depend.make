# Empty dependencies file for psoup_test.
# This may be replaced when dependencies are built.
