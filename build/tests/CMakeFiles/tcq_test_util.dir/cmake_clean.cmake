file(REMOVE_RECURSE
  "CMakeFiles/tcq_test_util.dir/reference/reference.cpp.o"
  "CMakeFiles/tcq_test_util.dir/reference/reference.cpp.o.d"
  "libtcq_test_util.a"
  "libtcq_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcq_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
