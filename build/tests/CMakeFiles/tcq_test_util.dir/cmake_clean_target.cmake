file(REMOVE_RECURSE
  "libtcq_test_util.a"
)
