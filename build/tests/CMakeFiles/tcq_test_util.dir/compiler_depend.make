# Empty compiler generated dependencies file for tcq_test_util.
# This may be replaced when dependencies are built.
