# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tuple_test[1]_include.cmake")
include("/root/repo/build/tests/fjords_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/stem_test[1]_include.cmake")
include("/root/repo/build/tests/eddy_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/cacq_test[1]_include.cmake")
include("/root/repo/build/tests/window_test[1]_include.cmake")
include("/root/repo/build/tests/psoup_test[1]_include.cmake")
include("/root/repo/build/tests/ingress_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/flux_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/egress_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/closure_sort_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/interval_index_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
