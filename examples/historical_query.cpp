// Historical-query walkthrough (DESIGN.md §13): a spooled stream archives
// everything in the background; a checkpoint snapshots the engine; a
// "crashed" server is rebuilt with Restore(); and a late-arriving windowed
// query is admitted with history_reach so its first windows fire over
// archive it never saw live.
//
//   $ ./historical_query

#include <cstdio>
#include <filesystem>
#include <thread>

#include "server/telegraphcq.h"

using namespace tcq;

namespace {

TelegraphCQ::Options DurableOptions() {
  const auto base = std::filesystem::temp_directory_path() / "tcq_example_hq";
  std::filesystem::create_directories(base / "spool");
  std::filesystem::create_directories(base / "ckpt");
  TelegraphCQ::Options opts;
  opts.spool_dir = (base / "spool").string();
  opts.checkpoint_dir = (base / "ckpt").string();
  return opts;
}

bool PushDay(TelegraphCQ* server, Timestamp day, double price) {
  Status s = server->Push(
      "ClosingStockPrices",
      {Value::TimestampVal(day), Value::String("MSFT"), Value::Double(price)},
      day);
  if (!s.ok()) std::fprintf(stderr, "Push: %s\n", s.ToString().c_str());
  return s.ok();
}

}  // namespace

int main() {
  std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                              "tcq_example_hq");
  const TelegraphCQ::Options opts = DurableOptions();

  // ---- Act 1: live traffic builds an archive, then a checkpoint. --------
  {
    TelegraphCQ server(opts);
    // A punctuating stream: its watermark promise is what later lets the
    // historical windows seal without waiting for fresh live rows.
    auto source = server.DefineStream(
        "ClosingStockPrices",
        {{"timestamp", ValueType::kTimestamp, 0},
         {"stockSymbol", ValueType::kString, 0},
         {"closingPrice", ValueType::kDouble, 0}},
        {.punctuate = true, .disorder_bound = 0});
    if (!source.ok()) {
      std::fprintf(stderr, "DefineStream: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    auto live = server.Submit(
        "SELECT closingPrice FROM ClosingStockPrices "
        "WHERE closingPrice > 50.0");
    if (!live.ok()) {
      std::fprintf(stderr, "Submit: %s\n",
                   live.status().ToString().c_str());
      return 1;
    }
    server.Start();
    for (Timestamp day = 1; day <= 30; ++day) {
      if (!PushDay(&server, day, 50.0 + day % 7)) return 1;
    }
    Delivery d;
    size_t live_results = 0;
    for (int i = 0; i < 2000; ++i) {
      while (live->results->Poll(&d)) {
        if (!d.tuple.IsPunctuation()) ++live_results;
      }
      if (live_results >= 26) break;  // the 4 days with day % 7 == 0 fail
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::printf("live query saw %zu results over 30 archived days\n",
                live_results);

    auto epoch = server.Checkpoint();
    if (!epoch.ok()) {
      std::fprintf(stderr, "Checkpoint: %s\n",
                   epoch.status().ToString().c_str());
      return 1;
    }
    std::printf("checkpoint epoch %llu written\n",
                static_cast<unsigned long long>(*epoch));

    // Traffic after the snapshot still reaches the archive...
    for (Timestamp day = 31; day <= 35; ++day) {
      if (!PushDay(&server, day, 55.0)) return 1;
    }
    Status flushed = server.FlushSpools();
    if (!flushed.ok()) {
      std::fprintf(stderr, "FlushSpools: %s\n", flushed.ToString().c_str());
      return 1;
    }
    server.Stop();
    std::printf("server \"crashed\" with 5 post-checkpoint days archived\n");
  }

  // ---- Act 2: restore = snapshot + spool replay. ------------------------
  TelegraphCQ server(opts);
  auto epoch = server.Restore();
  if (!epoch.ok()) {
    std::fprintf(stderr, "Restore: %s\n", epoch.status().ToString().c_str());
    return 1;
  }
  server.Start();
  auto view = server.Introspect();
  std::printf("restored epoch %llu, replayed %llu archived tuples; "
              "%zu queries reconnected via Handles()\n",
              static_cast<unsigned long long>(*epoch),
              static_cast<unsigned long long>(view.restore_replay_tuples),
              server.Handles().size());

  // ---- Act 3: a continuous-plus-historical query. -----------------------
  // Submitted NOW, but its first windows fire over the archive: weekly
  // windows ending on days 28..34, all in the past. history_reach primes
  // the query's input fjords with the archived suffix before live routing
  // resumes, and the splice is exact — no tuple arrives twice.
  auto weekly = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "for (t = 28; t <= 34; t += 1) { "
      "WindowIs(ClosingStockPrices, t - 6, t); }",
      {.history_reach = kMaxTimestamp});
  if (!weekly.ok()) {
    std::fprintf(stderr, "Submit(history_reach): %s\n",
                 weekly.status().ToString().c_str());
    return 1;
  }
  size_t fired = 0;
  for (int i = 0; i < 2000 && fired < 7; ++i) {
    WindowResult wr;
    while (weekly->windows->Poll(&wr)) {
      std::printf("  window [%lld, %lld]: %zu tuples (from the archive)\n",
                  static_cast<long long>(wr.t - 6),
                  static_cast<long long>(wr.t), wr.tuples.size());
      ++fired;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  if (fired < 7) {
    std::fprintf(stderr, "only %zu of 7 historical windows fired\n", fired);
    return 1;
  }
  std::printf("all %zu historical windows fired without live traffic\n",
              fired);
  return 0;
}
