// Network monitor: CACQ-style shared processing (paper §3.1). Hundreds of
// concurrent monitoring queries over one packet stream — port watchlists,
// host watchlists, large-transfer detection — all executed by ONE shared
// eddy with grouped filters, with queries added and removed while packets
// flow. Prints the sharing statistics that make the CACQ case.
//
//   $ ./network_monitor

#include <cstdio>

#include "cacq/shared_eddy.h"
#include "ingress/generators.h"

using namespace tcq;

int main() {
  // The packet stream: zipf-skewed hosts and ports, as a network monitor
  // would see (a few hot services and talkers).
  PacketGenerator gen("tap0", 0,
                      PacketGenerator::Options{.num_hosts = 5000,
                                               .host_skew = 1.0,
                                               .num_ports = 4096,
                                               .port_skew = 1.1,
                                               .seed = 7,
                                               .count = 60000});

  SharedEddy eddy(MakeLotteryPolicy(1));
  eddy.RegisterStream(0, PacketGenerator::MakeSchema(0));

  std::vector<uint64_t> hits;
  eddy.SetOutput([&](QueryId q, const Tuple&) {
    if (hits.size() <= q) hits.resize(q + 1, 0);
    ++hits[q];
  });

  // 300 standing queries in three families, sharing two grouped filters.
  Rng rng(99);
  std::vector<QueryId> ids;
  auto add_query = [&](CQSpec spec) {
    auto id = eddy.AddQuery(std::move(spec));
    if (id.ok()) ids.push_back(*id);
  };
  for (int i = 0; i < 100; ++i) {
    // Port watchlist: alert on one sensitive port.
    CQSpec spec;
    spec.filters.push_back(
        {{0, "dstPort"}, CmpOp::kEq, Value::Int64(rng.UniformInt(0, 50))});
    add_query(spec);
  }
  for (int i = 0; i < 100; ++i) {
    // Host watchlist: a range of suspicious sources.
    int64_t lo = rng.UniformInt(0, 4900);
    CQSpec spec;
    spec.filters.push_back({{0, "srcHost"}, CmpOp::kGe, Value::Int64(lo)});
    spec.filters.push_back(
        {{0, "srcHost"}, CmpOp::kLe, Value::Int64(lo + 25)});
    add_query(spec);
  }
  for (int i = 0; i < 100; ++i) {
    // Large transfers to a watched port range.
    CQSpec spec;
    spec.filters.push_back(
        {{0, "bytes"}, CmpOp::kGt, Value::Int64(1400 - i)});
    spec.filters.push_back(
        {{0, "dstPort"}, CmpOp::kLt, Value::Int64(100 + i)});
    add_query(spec);
  }

  std::printf("%zu queries registered, %zu shared modules\n", ids.size(),
              eddy.num_modules());

  // Stream packets in batches of 64 — one routing decision serves a run of
  // identical-lineage packets. Halfway through, churn a third of the
  // queries (CACQ's on-the-fly add/remove).
  Tuple pkt;
  TupleBatch batch;
  batch.set_source(0);
  uint64_t n = 0;
  auto flush = [&] {
    eddy.IngestBatch(batch);
    batch.clear();
  };
  while (gen.Next(&pkt)) {
    batch.push_back(std::move(pkt));
    if (batch.size() >= 64) flush();
    if (++n == 30000) {
      flush();  // drain in-flight packets before churning queries
      for (size_t i = 0; i < ids.size(); i += 3) {
        (void)eddy.RemoveQuery(ids[i]);
      }
      std::printf("removed %zu queries mid-stream (packet %llu)\n",
                  ids.size() / 3 + 1, static_cast<unsigned long long>(n));
      for (int i = 0; i < 40; ++i) {
        CQSpec spec;
        spec.filters.push_back(
            {{0, "dstPort"}, CmpOp::kEq, Value::Int64(rng.UniformInt(0, 99))});
        add_query(spec);
      }
      std::printf("added 40 new queries; modules now %zu\n",
                  eddy.num_modules());
    }
  }
  flush();

  uint64_t total_hits = 0, active_with_hits = 0;
  for (uint64_t h : hits) {
    total_hits += h;
    if (h > 0) ++active_with_hits;
  }
  std::printf(
      "\npackets:            %llu\n"
      "deliveries:         %llu (to %llu distinct queries)\n"
      "shared modules:     %zu (for %zu registered queries)\n"
      "routing decisions:  %llu (%.2f per packet)\n"
      "module invocations: %llu (%.2f per packet)\n",
      static_cast<unsigned long long>(n),
      static_cast<unsigned long long>(total_hits),
      static_cast<unsigned long long>(active_with_hits), eddy.num_modules(),
      ids.size(), static_cast<unsigned long long>(eddy.routing_decisions()),
      double(eddy.routing_decisions()) / double(n),
      static_cast<unsigned long long>(eddy.module_invocations()),
      double(eddy.module_invocations()) / double(n));
  std::printf(
      "\nwith 340 queries sharing %zu grouped-filter modules, each packet is\n"
      "routed a handful of times instead of hundreds — the CACQ claim.\n",
      eddy.num_modules());
  return 0;
}
