// Quickstart: define a stream, submit one continuous query in SQL, push a
// few tuples, and read the results from the push egress.
//
//   $ ./quickstart

#include <cstdio>

#include "server/telegraphcq.h"

using namespace tcq;

int main() {
  TelegraphCQ server;

  // 1. Define a stream (the paper's ClosingStockPrices schema, §4.1).
  auto source = server.DefineStream(
      "ClosingStockPrices", {{"timestamp", ValueType::kTimestamp, 0},
                             {"stockSymbol", ValueType::kString, 0},
                             {"closingPrice", ValueType::kDouble, 0}});
  if (!source.ok()) {
    std::fprintf(stderr, "DefineStream: %s\n",
                 source.status().ToString().c_str());
    return 1;
  }

  // 2. Submit a continuous query. It stays standing; results stream out as
  //    data arrives.
  auto handle = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' AND closingPrice > 50.0");
  if (!handle.ok()) {
    std::fprintf(stderr, "Submit: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  std::printf("query %llu registered\n",
              static_cast<unsigned long long>(handle->id));

  server.Start();

  // 3. Push data (a push-server ingress; generators and CSV files work
  //    too — see the other examples). The batch builder is the primary
  //    entry point: rows are appended column-wise and the whole batch
  //    travels the dataflow in columnar form, so filters sweep contiguous
  //    lanes instead of probing tuple by tuple.
  struct Tick {
    Timestamp day;
    const char* symbol;
    double price;
  };
  const Tick ticks[] = {
      {1, "MSFT", 49.5}, {1, "AAPL", 61.0}, {2, "MSFT", 51.25},
      {2, "AAPL", 59.0}, {3, "MSFT", 52.0}, {3, "AAPL", 58.5},
  };
  auto batch = server.NewBatch("ClosingStockPrices");
  if (!batch.ok()) {
    std::fprintf(stderr, "NewBatch: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  for (const Tick& t : ticks) {
    Status s = batch->Append(t.day, {Value::TimestampVal(t.day),
                                     Value::String(t.symbol),
                                     Value::Double(t.price)});
    if (!s.ok()) std::fprintf(stderr, "Append: %s\n", s.ToString().c_str());
  }
  Status s = server.PushBuilt(std::move(*batch));
  if (!s.ok()) std::fprintf(stderr, "PushBuilt: %s\n", s.ToString().c_str());

  // 4. Consume results. Two MSFT days exceed $50.
  std::printf("results:\n");
  for (int received = 0; received < 2;) {
    Delivery d;
    if (handle->results->Poll(&d)) {
      std::printf("  %s\n", d.tuple.ToString().c_str());
      ++received;
    }
  }

  server.Stop();
  std::printf("done\n");
  return 0;
}
