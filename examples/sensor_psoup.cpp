// Sensor PSoup: disconnected operation over a lossy sensor network
// (paper §3.2). Clients register standing queries, disconnect, and later
// return for "the window as of now"; new queries are answered over data
// that arrived before they existed — the data/query symmetry.
//
//   $ ./sensor_psoup

#include <cstdio>

#include "ingress/generators.h"
#include "psoup/psoup.h"

using namespace tcq;

int main() {
  SensorGenerator gen("field-sensors", 0,
                      SensorGenerator::Options{.num_sensors = 8,
                                               .base_temp = 20.0,
                                               .drift = 0.4,
                                               .loss_rate = 0.15,
                                               .seed = 31,
                                               .count = 4000});

  PSoup psoup;
  // Keep 1500 time units of history; older readings are reclaimed.
  psoup.RegisterStream(0, SensorGenerator::MakeSchema(0),
                       /*retention=*/1500);

  // A field engineer registers a hot-spot query, then disconnects.
  PSoupQuery hot;
  hot.where.filters.push_back(
      {{0, "temperature"}, CmpOp::kGt, Value::Double(22.0)});
  hot.window = 300;  // "what ran hot in the last 300 ticks"
  auto hot_id = psoup.Register(hot);
  if (!hot_id.ok()) {
    std::fprintf(stderr, "register: %s\n",
                 hot_id.status().ToString().c_str());
    return 1;
  }
  std::printf("hot-spot query %u registered; engineer disconnects\n",
              *hot_id);

  // Stream half the readings while nobody is connected, batch-at-a-time —
  // PSoup keeps the query's answer materialized the whole time.
  Tuple reading;
  TupleBatch batch;
  batch.set_source(0);
  Timestamp now = 0;
  uint64_t streamed = 0;
  auto flush = [&] {
    psoup.IngestBatch(batch);
    batch.clear();
  };
  while (streamed < 2000 && gen.Next(&reading)) {
    now = std::max(now, reading.timestamp());
    batch.push_back(std::move(reading));
    if (batch.size() >= 32) flush();
    ++streamed;
  }
  flush();

  // The engineer reconnects: the invocation imposes the window on the
  // materialized Results Structure — no recomputation.
  auto answer = psoup.Invoke(*hot_id, now);
  std::printf(
      "reconnect at t=%lld: %zu hot readings in the last 300 ticks "
      "(materialized: %zu)\n",
      static_cast<long long>(now), answer->size(),
      psoup.MaterializedCount(*hot_id));

  // A second client registers a NEW query and immediately asks about the
  // PAST: sensor 3's readings. Old data answers a new query.
  PSoupQuery sensor3;
  sensor3.where.filters.push_back(
      {{0, "sensorId"}, CmpOp::kEq, Value::Int64(3)});
  sensor3.window = 500;
  auto s3_id = psoup.Register(sensor3);
  auto s3_now = psoup.Invoke(*s3_id, now);
  std::printf(
      "new query over old data: sensor 3 produced %zu readings in the last "
      "500 ticks (before the query existed)\n",
      s3_now->size());

  // Stream the rest; both standing queries keep materializing.
  while (gen.Next(&reading)) {
    now = std::max(now, reading.timestamp());
    batch.push_back(std::move(reading));
    if (batch.size() >= 32) flush();
    ++streamed;
  }
  flush();

  auto hot_final = psoup.Invoke(*hot_id, now);
  auto s3_final = psoup.Invoke(*s3_id, now);
  std::printf(
      "final reconnect at t=%lld: hot=%zu, sensor3=%zu\n",
      static_cast<long long>(now), hot_final->size(), s3_final->size());

  // Sanity: the materialized answer equals recomputing from history.
  auto recomputed = psoup.InvokeByRecompute(*hot_id, now);
  std::printf("materialized == recomputed: %s (%zu vs %zu)\n",
              hot_final->size() == recomputed->size() ? "yes" : "NO",
              hot_final->size(), recomputed->size());

  std::printf(
      "\nstreamed %llu readings (%llu lost in the sensor network), "
      "%zu results materialized across all queries\n",
      static_cast<unsigned long long>(streamed),
      static_cast<unsigned long long>(gen.dropped()),
      psoup.TotalMaterialized());
  return 0;
}
