// Stock monitor: runs the paper's §4.1 window-semantics examples verbatim
// over a generated ClosingStockPrices stream — snapshot, landmark, sliding,
// and the sliding self-join "stocks that closed higher than MSFT".
//
//   $ ./stock_monitor

#include <cstdio>

#include "ingress/generators.h"
#include "server/telegraphcq.h"

using namespace tcq;

namespace {

void Fail(const char* what, const Status& s) {
  std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
  std::exit(1);
}

// Drains a windowed query's buffer, printing up to `max_windows` windows.
void PrintWindows(const char* title, TelegraphCQ::ClientHandle* handle,
                  size_t max_windows) {
  std::printf("\n== %s ==\n", title);
  size_t shown = 0;
  for (int patience = 0; patience < 3000 && shown < max_windows;
       ++patience) {
    WindowResult wr;
    while (shown < max_windows && handle->windows->Poll(&wr)) {
      std::printf("  t=%lld: %zu rows\n", static_cast<long long>(wr.t),
                  wr.tuples.size());
      for (size_t i = 0; i < wr.tuples.size() && i < 3; ++i) {
        std::printf("    %s\n", wr.tuples[i].ToString().c_str());
      }
      if (wr.tuples.size() > 3) std::printf("    ...\n");
      ++shown;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

int main() {
  TelegraphCQ server;
  auto sid = server.DefineStream(
      "ClosingStockPrices", {{"timestamp", ValueType::kTimestamp, 0},
                             {"stockSymbol", ValueType::kString, 0},
                             {"closingPrice", ValueType::kDouble, 0}});
  if (!sid.ok()) Fail("DefineStream", sid.status());

  // A wrapper-hosted generator: 4 symbols, 60 trading days.
  auto gen = std::make_unique<StockTickGenerator>(
      "nyse", *sid,
      StockTickGenerator::Options{
          .symbols = {"MSFT", "AAPL", "IBM", "ORCL"},
          .initial_price = 50.0,
          .volatility = 1.5,
          .seed = 2026,
          .days = 60});
  if (Status s = server.AttachSource("ClosingStockPrices", std::move(gen));
      !s.ok()) {
    Fail("AttachSource", s);
  }

  // Example 1 (snapshot): closing prices for MSFT on the first 5 days.
  auto snapshot = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  if (!snapshot.ok()) Fail("snapshot", snapshot.status());

  // Example 2 (landmark): days after day 20 where MSFT closed over $50,
  // standing for 20 days. The result sets grow as the window expands.
  auto landmark = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' AND closingPrice > 50.00 "
      "for (t = 21; t <= 40; t++) { WindowIs(ClosingStockPrices, 21, t); }");
  if (!landmark.ok()) Fail("landmark", landmark.status());

  // Example 3 (sliding): MSFT highs over the five most recent days.
  auto sliding = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' AND closingPrice > 52.0 "
      "for (t = 5; t <= 20; t++) { WindowIs(ClosingStockPrices, t - 4, t); }");
  if (!sliding.ok()) Fail("sliding", sliding.status());

  // Example 5 (sliding self-join): stocks that closed higher than MSFT on
  // the same day, over 5-day windows.
  auto beat_msft = server.Submit(
      "SELECT c2.stockSymbol, c2.closingPrice "
      "FROM ClosingStockPrices c1, ClosingStockPrices c2 "
      "WHERE c1.stockSymbol = 'MSFT' "
      "AND c2.closingPrice > c1.closingPrice "
      "AND c2.timestamp = c1.timestamp "
      "for (t = 5; t <= 15; t++) { "
      "WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }");
  if (!beat_msft.ok()) Fail("beat_msft", beat_msft.status());

  // Plus an ordinary continuous query streaming alongside the windows.
  auto cq = server.Submit(
      "SELECT stockSymbol, closingPrice FROM ClosingStockPrices "
      "WHERE closingPrice > 55.0");
  if (!cq.ok()) Fail("cq", cq.status());

  server.Start();

  PrintWindows("Example 1: snapshot, MSFT days 1-5", &*snapshot, 1);
  PrintWindows("Example 2: landmark, MSFT > $50 from day 21", &*landmark, 5);
  PrintWindows("Example 3: sliding 5-day, MSFT > $52", &*sliding, 5);
  PrintWindows("Example 5: stocks beating MSFT (5-day windows)", &*beat_msft,
               5);

  std::printf("\n== continuous query: ticks over $55 ==\n");
  size_t shown = 0;
  for (int patience = 0; patience < 2000 && shown < 8; ++patience) {
    Delivery d;
    while (shown < 8 && cq->results->Poll(&d)) {
      std::printf("  %s\n", d.tuple.ToString().c_str());
      ++shown;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.Stop();
  std::printf("\ndone; %llu tuples ingested\n",
              static_cast<unsigned long long>(server.tuples_ingested()));
  return 0;
}
