#!/usr/bin/env bash
# Bench smoke for the batched pipeline: runs the batched-vs-per-tuple
# comparisons in bench_fjords (queue batch transfer), bench_cacq_scaling
# (shared-eddy batched ingest), and bench_grouped_filter (columnar MatchBatch
# vs per-row scalar probes) and merges the results into BENCH_batching.json
# at the repo root, including the speedup ratios the acceptance criteria
# read (>= 2x batch-64-vs-1 on fjords/cacq, >= 5x columnar-vs-scalar on the
# grouped filter at 256 queries).
#
# Usage: scripts/bench_batching.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [[ ! -x "$BUILD/bench/bench_fjords" || ! -x "$BUILD/bench/bench_cacq_scaling" \
   || ! -x "$BUILD/bench/bench_grouped_filter" ]]; then
  echo "benchmarks not built; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

MIN_TIME="${TCQ_BENCH_MIN_TIME:-0.3}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_fjords" \
  --benchmark_filter='BM_QueueBatchTransfer' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/fjords.json"

"$BUILD/bench/bench_cacq_scaling" \
  --benchmark_filter='BM_SharedCACQBatchedIngest' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/cacq.json"

"$BUILD/bench/bench_grouped_filter" \
  --benchmark_filter='BM_GroupedFilterBatch(Columnar|Scalar)' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/gf.json"

python3 - "$TMP/fjords.json" "$TMP/cacq.json" "$TMP/gf.json" <<'PY'
import json, sys

def load(path, prefix):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        batch = int(b.get("batch_size", 0)) or int(name.rsplit("/", 1)[-1])
        rows[batch] = {
            "name": name,
            "batch_size": batch,
            "items_per_second": b.get("items_per_second"),
            "cpu_time_ms": b.get("cpu_time") if b.get("time_unit") == "ms"
                           else b.get("cpu_time", 0) / 1e6,
        }
    out = {"results": [rows[k] for k in sorted(rows)]}
    if 1 in rows and 64 in rows:
        out["speedup_64_vs_1"] = rows[64]["items_per_second"] / rows[1]["items_per_second"]
    return out

def load_grouped_filter(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        kind = "columnar" if "Columnar" in name else "scalar"
        queries = int(name.rsplit("/", 1)[-1])
        rows.setdefault(queries, {})[kind] = {
            "name": name,
            "items_per_second": b.get("items_per_second"),
        }
    out = {"results": []}
    for q in sorted(rows):
        entry = {"queries": q}
        entry.update(rows[q])
        col = rows[q].get("columnar", {}).get("items_per_second")
        sca = rows[q].get("scalar", {}).get("items_per_second")
        if col and sca:
            entry["speedup_columnar_vs_scalar"] = col / sca
        out["results"].append(entry)
    ratios = [e["speedup_columnar_vs_scalar"] for e in out["results"]
              if "speedup_columnar_vs_scalar" in e]
    if ratios:
        out["speedup_columnar_vs_scalar_peak"] = max(ratios)
    return out

report = {
    "fjords_queue_batch_transfer": load(sys.argv[1], "fjords"),
    "cacq_batched_ingest": load(sys.argv[2], "cacq"),
    "grouped_filter_batch_probe": load_grouped_filter(sys.argv[3]),
}
with open("BENCH_batching.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

ok = True
for key in ("fjords_queue_batch_transfer", "cacq_batched_ingest"):
    ratio = report[key].get("speedup_64_vs_1")
    status = "n/a" if ratio is None else f"{ratio:.2f}x"
    print(f"{key}: batch-64 vs batch-1 speedup = {status}")
    if ratio is None or ratio < 2.0:
        ok = False
gf_ratio = report["grouped_filter_batch_probe"].get(
    "speedup_columnar_vs_scalar_peak")
status = "n/a" if gf_ratio is None else f"{gf_ratio:.2f}x"
print(f"grouped_filter_batch_probe: columnar vs scalar peak = {status}")
if gf_ratio is None or gf_ratio < 5.0:
    ok = False
print("wrote BENCH_batching.json")
sys.exit(0 if ok else 1)
PY
