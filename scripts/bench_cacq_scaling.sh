#!/usr/bin/env bash
# Bench smoke for the Flux-sharded executor: runs BM_ShardedExecutor at
# 1/2/4/8 shard replicas and writes BENCH_cacq_scaling.json at the repo
# root, including the 4-shard-vs-1-shard speedup ratio the acceptance
# criterion reads (>= 3x is only expected on a host with >= 4 cores; the
# JSON records the host's core count so the number can be read honestly).
#
# Usage: scripts/bench_cacq_scaling.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [[ ! -x "$BUILD/bench/bench_cacq_scaling" ]]; then
  echo "benchmarks not built; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

MIN_TIME="${TCQ_BENCH_MIN_TIME:-0.3}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_cacq_scaling" \
  --benchmark_filter='BM_ShardedExecutor' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/sharded.json"

python3 - "$TMP/sharded.json" <<'PY'
import json, os, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

rows = {}
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    shards = int(b["shards"])
    rows[shards] = {
        "name": b["name"],
        "shards": shards,
        "items_per_second": b.get("items_per_second"),
        "real_time_ms": b.get("real_time") if b.get("time_unit") == "ms"
                        else b.get("real_time", 0) / 1e6,
        "cpu_time_ms": b.get("cpu_time") if b.get("time_unit") == "ms"
                       else b.get("cpu_time", 0) / 1e6,
        "drained": bool(b.get("drained", 0)),
    }

report = {
    "host_cores": os.cpu_count(),
    "results": [rows[k] for k in sorted(rows)],
}
if 1 in rows and 4 in rows:
    report["speedup_4_vs_1"] = (
        rows[4]["items_per_second"] / rows[1]["items_per_second"])
with open("BENCH_cacq_scaling.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

ok = all(r["drained"] for r in report["results"])
ratio = report.get("speedup_4_vs_1")
cores = report["host_cores"] or 1
print(f"host cores: {cores}")
for r in report["results"]:
    print(f"  shards={r['shards']}: {r['items_per_second']:.0f} items/s "
          f"(drained={r['drained']})")
if ratio is not None:
    print(f"4-shard vs 1-shard speedup = {ratio:.2f}x")
    if cores >= 4 and ratio < 3.0:
        print("FAIL: expected >= 3x on a >=4-core host", file=sys.stderr)
        ok = False
    elif cores < 4:
        print(f"(host has {cores} core(s); shard pumps serialize — "
              "speedup criterion applies on multi-core hosts only)")
else:
    ok = False
print("wrote BENCH_cacq_scaling.json")
sys.exit(0 if ok else 1)
PY
