#!/usr/bin/env bash
# Bench smoke for event-time disorder tolerance (DESIGN.md §12): runs the
# bench_disorder_sweep latency-vs-exactness sweep — an event-time tumbling
# window over a block-shuffled stream (actual disorder 63), with punctuation
# bounds B in {0, 8, 64, 512} — and writes BENCH_disorder.json at the repo
# root. Acceptance: a bound covering the true disorder (B = 512 >= 63) must
# be exact (exactness 1.0), an uncovering bound (B = 0) must show the loss
# that buys its lower watermark lag, and lag must grow with the bound.
#
# Usage: scripts/bench_disorder.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [[ ! -x "$BUILD/bench/bench_disorder_sweep" ]]; then
  echo "benchmarks not built; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

MIN_TIME="${TCQ_BENCH_MIN_TIME:-0.3}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_disorder_sweep" \
  --benchmark_filter='BM_DisorderBoundSweep' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/sweep.json"

python3 - "$TMP/sweep.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

rows = {}
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    bound = int(b["name"].rsplit("/", 1)[-1])
    rows[bound] = {
        "name": b["name"],
        "disorder_bound": bound,
        "items_per_second": b.get("items_per_second"),
        "exactness": b.get("exactness"),
        "late_dropped": b.get("late_dropped"),
        "avg_fire_lag": b.get("avg_fire_lag"),
    }

report = {
    "workload": {
        "tuples": 4096,
        "actual_disorder": 63,
        "window_width": 100,
        "punctuation_every": 32,
    },
    "results": [rows[k] for k in sorted(rows)],
}
with open("BENCH_disorder.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

ok = True
for r in report["results"]:
    print(f"bound={r['disorder_bound']:>3}: exactness={r['exactness']:.3f} "
          f"late_dropped={int(r['late_dropped'])} "
          f"avg_fire_lag={r['avg_fire_lag']:.1f}")
if not rows or 512 not in rows or 0 not in rows:
    print("missing sweep points"); ok = False
else:
    if rows[512]["exactness"] < 0.999:
        print("FAIL: covering bound (512) is not exact"); ok = False
    if rows[0]["exactness"] >= 0.999:
        print("FAIL: zero bound shows no exactness loss (no tradeoff)"); ok = False
    if rows[512]["avg_fire_lag"] <= rows[0]["avg_fire_lag"]:
        print("FAIL: watermark lag does not grow with the bound"); ok = False
print("wrote BENCH_disorder.json")
sys.exit(0 if ok else 1)
PY
