#!/usr/bin/env bash
# Bench smoke for the query-class lifecycle: runs bench_exec_lifecycle and
# distills BENCH_exec_lifecycle.json at the repo root with
#   * the bridging-merge pause (ms) at 1k and 10k SteM entries per stream,
#   * post-GC vs routed ingest cost,
#   * the rebalance gain on the skewed 2-EO workload (drain-time ratio,
#     acceptance: rebalance on must migrate and must not be slower).
#
# Usage: scripts/bench_exec_lifecycle.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [[ ! -x "$BUILD/bench/bench_exec_lifecycle" ]]; then
  echo "benchmarks not built; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_exec_lifecycle" \
  --benchmark_format=json >"$TMP/lifecycle.json"

python3 - "$TMP/lifecycle.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

merge, post_gc, rebalance = [], {}, {}
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name = b["name"]
    if name.startswith("BM_MergePause"):
        merge.append({
            "stem_entries_per_stream": int(b["stem_entries_per_stream"]),
            "pause_ms": b["real_time"],
        })
    elif name.startswith("BM_PostGcIngest"):
        key = "routed" if b.get("routed") else "post_gc_unrouted"
        post_gc[key] = {
            "batch_us": b["real_time"],
            "items_per_second": b.get("items_per_second"),
        }
    elif name.startswith("BM_RebalanceGain"):
        key = "rebalance_on" if b.get("rebalance") else "rebalance_off"
        rebalance[key] = {
            "drain_ms": b["real_time"],
            "migrations": int(b.get("migrations", 0)),
        }

report = {
    "merge_pause": sorted(merge, key=lambda r: r["stem_entries_per_stream"]),
    "post_gc_ingest": post_gc,
    "rebalance_skewed_2eo": rebalance,
}
ok = True
if "rebalance_on" in rebalance and "rebalance_off" in rebalance:
    gain = rebalance["rebalance_off"]["drain_ms"] / rebalance["rebalance_on"]["drain_ms"]
    report["rebalance_skewed_2eo"]["gain"] = gain
    migrated = rebalance["rebalance_on"]["migrations"] >= 1
    print(f"rebalance gain (drain off/on) = {gain:.2f}x, "
          f"migrations = {rebalance['rebalance_on']['migrations']}")
    # Gate: the pass must actually migrate, and must not slow the drain
    # down materially (on a single-core runner the parallelism gain is
    # bounded, so >=0.9x tolerates scheduling noise).
    if not migrated or gain < 0.9:
        ok = False
else:
    ok = False
for row in report["merge_pause"]:
    print(f"merge pause @ {row['stem_entries_per_stream']} entries/stream "
          f"= {row['pause_ms']:.3f} ms")

with open("BENCH_exec_lifecycle.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print("wrote BENCH_exec_lifecycle.json")
sys.exit(0 if ok else 1)
PY
