#!/usr/bin/env bash
# Bench smoke for durable state (DESIGN.md §13): runs the bench_recovery
# checkpoint/restore cost sweep — an L-join-R server with N tuples per side
# in its SteMs for N in {1024, 4096, 16384} — and writes BENCH_recovery.json
# at the repo root. Acceptance: snapshot size must grow with state (the
# checkpoint actually exports the SteMs, not just headers), every restore
# must replay its archived suffix (replay_tuples == 2N), and both paths must
# sustain a nonzero tuple rate.
#
# Usage: scripts/bench_recovery.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [[ ! -x "$BUILD/bench/bench_recovery" ]]; then
  echo "benchmarks not built; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

MIN_TIME="${TCQ_BENCH_MIN_TIME:-0.1}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_recovery" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/recovery.json"

python3 - "$TMP/recovery.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

ckpt, restore = {}, {}
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    parts = b["name"].split("/")
    n = int(parts[1])
    row = {
        "name": b["name"],
        "state_tuples_per_side": n,
        "time_ms": b["real_time"],
        "items_per_second": b.get("items_per_second"),
    }
    if parts[0] == "BM_Checkpoint":
        row["snapshot_bytes"] = b.get("snapshot_bytes")
        ckpt[n] = row
    elif parts[0] == "BM_Restore":
        row["replay_tuples"] = b.get("replay_tuples")
        restore[n] = row

report = {
    "workload": {
        "shape": "L join R on unique keys; N tuples per side in SteMs, "
                 "plus an N-per-side archived suffix for the restore replay",
        "sweep": sorted(ckpt),
    },
    "checkpoint": [ckpt[n] for n in sorted(ckpt)],
    "restore": [restore[n] for n in sorted(restore)],
}
with open("BENCH_recovery.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

ok = True
for r in report["checkpoint"]:
    print(f"checkpoint N={r['state_tuples_per_side']:>6}: "
          f"{r['time_ms']:8.2f} ms  snapshot={int(r['snapshot_bytes'])} B")
for r in report["restore"]:
    print(f"restore    N={r['state_tuples_per_side']:>6}: "
          f"{r['time_ms']:8.2f} ms  replayed={int(r['replay_tuples'])}")
if not ckpt or not restore:
    print("missing sweep points"); ok = False
else:
    ns = sorted(ckpt)
    if ckpt[ns[-1]]["snapshot_bytes"] <= ckpt[ns[0]]["snapshot_bytes"]:
        print("FAIL: snapshot size does not grow with SteM state"); ok = False
    for n in sorted(restore):
        if restore[n]["replay_tuples"] != 2 * n:
            print(f"FAIL: restore N={n} replayed "
                  f"{restore[n]['replay_tuples']} tuples, wanted {2 * n}")
            ok = False
    for r in report["checkpoint"] + report["restore"]:
        if not r["items_per_second"] or r["items_per_second"] <= 0:
            print(f"FAIL: {r['name']} shows no throughput"); ok = False
print("wrote BENCH_recovery.json")
sys.exit(0 if ok else 1)
PY
