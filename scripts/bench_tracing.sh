#!/usr/bin/env bash
# Tracing-overhead smoke (DESIGN.md §9): runs bench_tracing_overhead — the
# shared-CACQ batched-ingest workload with the tracer disabled and at sample
# periods 64 / 8 / 1 — and writes BENCH_tracing.json at the repo root with
# the throughput ratios against the disabled baseline. The acceptance
# criterion: <= 5% regression at the default 1/64 sampling rate.
#
# Usage: scripts/bench_tracing.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [[ ! -x "$BUILD/bench/bench_tracing_overhead" ]]; then
  echo "benchmarks not built; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

MIN_TIME="${TCQ_BENCH_MIN_TIME:-0.3}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_tracing_overhead" \
  --benchmark_filter='BM_TracedSharedCACQIngest' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/tracing.json"

python3 - "$TMP/tracing.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

rows = {}
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    period = int(b.get("sample_period", -1))
    if period < 0:
        period = int(b["name"].rsplit("/", 1)[-1])
    rows[period] = {
        "name": b["name"],
        "sample_period": period,
        "items_per_second": b.get("items_per_second"),
        "batches_sampled": b.get("batches_sampled"),
        "spans_recorded": b.get("spans_recorded"),
    }

base = rows.get(0, {}).get("items_per_second")
results = []
for period in sorted(rows):
    row = rows[period]
    row["slowdown_vs_disabled"] = (
        base / row["items_per_second"]
        if base and row.get("items_per_second") else None
    )
    results.append(row)

report = {"workload": "shared-CACQ batched ingest (64 queries, 8 attrs)",
          "results": results}
with open("BENCH_tracing.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

for row in results:
    label = "off" if row["sample_period"] == 0 else f"1/{row['sample_period']}"
    slow = row["slowdown_vs_disabled"]
    print(f"sample {label}: {row['items_per_second']:.0f} items/s"
          + (f" ({slow:.3f}x of disabled)" if slow else ""))
print("wrote BENCH_tracing.json")

slow64 = rows.get(64, {}).get("slowdown_vs_disabled")
if slow64 is None:
    print("missing 1/64 or disabled run", file=sys.stderr)
    sys.exit(1)
if slow64 > 1.05:
    print(f"FAIL: 1/64 sampling costs {100 * (slow64 - 1):.1f}% > 5% bound",
          file=sys.stderr)
    sys.exit(1)
sys.exit(0)
PY
