#!/usr/bin/env bash
# Repo verification gate:
#   0. vectorize: compile scripts/vectorize_probe.cpp with
#      -O3 -march=x86-64-v3 -fopt-info-vec-optimized and fail if any filter
#      kernel family (operators/filter_kernels.h) stops auto-vectorizing
#   1. tier-1 verify: configure + build + full ctest (ROADMAP.md)
#   1b. crash-recovery: the checkpoint/restore suite standalone — the
#       crash-sim multiset-equality pins (DESIGN.md §13) must hold without
#       the parallel-suite CPU noise ctest adds
#   2. AddressSanitizer configure + build + ctest in a separate build dir
#   3. ThreadSanitizer build running the concurrency-heavy suites
#      (exec, exec_lifecycle, exec_sharding, fjords, cacq, obs, window,
#      plus the event-time server suite) — must be TSan-clean
#   4. UBSan build running the trace/queue/routing suites (the seqlock ring
#      and histogram interpolation are the prime UB suspects)
#   5. bench smoke: batched-vs-per-tuple comparison -> BENCH_batching.json,
#      class lifecycle (merge/GC/rebalance) -> BENCH_exec_lifecycle.json,
#      tracing overhead -> BENCH_tracing.json,
#      shard scaling (1/2/4/8 replicas) -> BENCH_cacq_scaling.json,
#      event-time disorder latency/exactness sweep -> BENCH_disorder.json,
#      checkpoint/restore cost sweep -> BENCH_recovery.json,
#      plus a quick 2-shard correctness smoke
#
# Usage: scripts/check.sh [--no-asan] [--no-tsan] [--no-ubsan] [--no-bench]
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_ASAN=1
RUN_TSAN=1
RUN_UBSAN=1
RUN_BENCH=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) RUN_ASAN=0 ;;
    --no-tsan) RUN_TSAN=0 ;;
    --no-ubsan) RUN_UBSAN=0 ;;
    --no-bench) RUN_BENCH=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$(uname -m)" == "x86_64" ]]; then
  echo "== vectorize: filter kernels must auto-vectorize =="
  VEC_OBJ="$(mktemp --suffix=.o)"
  VEC_REPORT="$(g++ -std=c++20 -O3 -march=x86-64-v3 \
    -fopt-info-vec-optimized -Isrc \
    -c scripts/vectorize_probe.cpp -o "$VEC_OBJ" 2>&1)"
  rm -f "$VEC_OBJ"
  VEC_COUNT="$(grep -c "loop vectorized" <<<"$VEC_REPORT" || true)"
  # Distinct filter_kernels.h loop lines with a vectorized report == kernel
  # families that vectorized (AccumBound, AccumRange, MaskCmp, MaskEq,
  # MaskRange, AnyNaN — one for-loop each; instantiations share the line).
  VEC_FAMILIES="$(grep "loop vectorized" <<<"$VEC_REPORT" \
    | grep -o "filter_kernels\.h:[0-9]*" | sort -u | wc -l)"
  echo "vectorized-loop reports: $VEC_COUNT (floor 15);" \
       "kernel families: $VEC_FAMILIES (need 6)"
  FAIL=0
  if (( VEC_COUNT < 15 )); then FAIL=1; fi
  if (( VEC_FAMILIES < 6 )); then FAIL=1; fi
  if (( FAIL )); then
    echo "$VEC_REPORT" >&2
    echo "vectorize gate FAILED" >&2
    exit 1
  fi
else
  echo "== vectorize: skipped (non-x86_64 host) =="
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
# until-pass:2 — the full-stack integration test is sensitive to CPU
# starvation when the whole suite runs in parallel on a small host (window
# audits observe a late arrival); a deterministic failure still fails twice.
# NOTE: --repeat must precede bare -j, which would swallow it as its value.
ctest --test-dir build --output-on-failure --repeat until-pass:2 -j

echo "== crash-recovery: checkpoint/restore suite =="
./build/tests/recovery_test

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== asan: configure + build + ctest =="
  cmake -B build-asan -S . -DTCQ_SANITIZE=address
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure --repeat until-pass:2 -j
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tsan: configure + build + concurrency suites =="
  cmake -B build-tsan -S . -DTCQ_SANITIZE=thread
  cmake --build build-tsan -j --target \
    exec_test exec_lifecycle_test exec_sharding_test fjords_test cacq_test \
    obs_test window_test server_test
  for t in exec_test exec_lifecycle_test exec_sharding_test fjords_test \
           cacq_test obs_test window_test; do
    echo "-- tsan: $t"
    ./build-tsan/tests/"$t"
  done
  # Punctuations flow source -> fjord -> class -> window -> egress across
  # threads; the event-time server suite pins that end-to-end under TSan.
  echo "-- tsan: server_test (event-time suite)"
  ./build-tsan/tests/server_test --gtest_filter='EventTimeServerTest.*'
fi

if [[ "$RUN_UBSAN" == 1 ]]; then
  echo "== ubsan: configure + build + trace/queue/routing suites =="
  cmake -B build-ubsan -S . -DTCQ_SANITIZE=undefined
  cmake --build build-ubsan -j --target obs_test fjords_test eddy_test
  for t in obs_test fjords_test eddy_test; do
    echo "-- ubsan: $t"
    UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/"$t"
  done
fi

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "== bench smoke: BENCH_batching.json =="
  scripts/bench_batching.sh build
  echo "== bench smoke: BENCH_exec_lifecycle.json =="
  scripts/bench_exec_lifecycle.sh build
  echo "== bench smoke: BENCH_tracing.json =="
  scripts/bench_tracing.sh build
  echo "== bench smoke: BENCH_cacq_scaling.json =="
  scripts/bench_cacq_scaling.sh build
  echo "== bench smoke: BENCH_disorder.json =="
  scripts/bench_disorder.sh build
  echo "== bench smoke: BENCH_recovery.json =="
  scripts/bench_recovery.sh build
  echo "== 2-shard correctness smoke =="
  ./build/tests/exec_sharding_test \
    --gtest_filter='ExecShardingTest.ShardedJoinMatchesSingleShardAndReference'
fi

echo "== check.sh: all gates passed =="
