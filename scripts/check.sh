#!/usr/bin/env bash
# Repo verification gate:
#   1. tier-1 verify: configure + build + full ctest (ROADMAP.md)
#   2. AddressSanitizer configure + build + ctest in a separate build dir
#   3. ThreadSanitizer build running the concurrency-heavy suites
#      (exec, exec_lifecycle, exec_sharding, fjords, cacq, obs) — must be
#      TSan-clean
#   4. UBSan build running the trace/queue/routing suites (the seqlock ring
#      and histogram interpolation are the prime UB suspects)
#   5. bench smoke: batched-vs-per-tuple comparison -> BENCH_batching.json,
#      class lifecycle (merge/GC/rebalance) -> BENCH_exec_lifecycle.json,
#      tracing overhead -> BENCH_tracing.json,
#      shard scaling (1/2/4/8 replicas) -> BENCH_cacq_scaling.json,
#      plus a quick 2-shard correctness smoke
#
# Usage: scripts/check.sh [--no-asan] [--no-tsan] [--no-ubsan] [--no-bench]
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_ASAN=1
RUN_TSAN=1
RUN_UBSAN=1
RUN_BENCH=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) RUN_ASAN=0 ;;
    --no-tsan) RUN_TSAN=0 ;;
    --no-ubsan) RUN_UBSAN=0 ;;
    --no-bench) RUN_BENCH=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== asan: configure + build + ctest =="
  cmake -B build-asan -S . -DTCQ_SANITIZE=address
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure -j
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tsan: configure + build + concurrency suites =="
  cmake -B build-tsan -S . -DTCQ_SANITIZE=thread
  cmake --build build-tsan -j --target \
    exec_test exec_lifecycle_test exec_sharding_test fjords_test cacq_test \
    obs_test
  for t in exec_test exec_lifecycle_test exec_sharding_test fjords_test \
           cacq_test obs_test; do
    echo "-- tsan: $t"
    ./build-tsan/tests/"$t"
  done
fi

if [[ "$RUN_UBSAN" == 1 ]]; then
  echo "== ubsan: configure + build + trace/queue/routing suites =="
  cmake -B build-ubsan -S . -DTCQ_SANITIZE=undefined
  cmake --build build-ubsan -j --target obs_test fjords_test eddy_test
  for t in obs_test fjords_test eddy_test; do
    echo "-- ubsan: $t"
    UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/"$t"
  done
fi

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "== bench smoke: BENCH_batching.json =="
  scripts/bench_batching.sh build
  echo "== bench smoke: BENCH_exec_lifecycle.json =="
  scripts/bench_exec_lifecycle.sh build
  echo "== bench smoke: BENCH_tracing.json =="
  scripts/bench_tracing.sh build
  echo "== bench smoke: BENCH_cacq_scaling.json =="
  scripts/bench_cacq_scaling.sh build
  echo "== 2-shard correctness smoke =="
  ./build/tests/exec_sharding_test \
    --gtest_filter='ExecShardingTest.ShardedJoinMatchesSingleShardAndReference'
fi

echo "== check.sh: all gates passed =="
