// Vectorization probe for the hot filter kernels (DESIGN.md §11).
//
// scripts/check.sh compiles this TU with
//     g++ -O3 -fopt-info-vec-optimized
// and counts the compiler's "loop vectorized" reports. Each probe below
// instantiates one (kernel family x lane/comparison type) combination
// exactly as the engine dispatches it — grouped-filter count sweeps
// (AccumBound/AccumRange), eddy selection prefilters (MaskCmp/MaskEq/
// MaskRange), and the NaN-lane guard (AnyNaN). If the report count drops
// below the expected floor, a kernel stopped auto-vectorizing and the
// batch-probe speedups the benches gate on silently erode — the stage
// fails the build instead.
//
// extern "C" out-of-line wrappers keep every loop alive and separately
// reported; nothing here is linked into the engine.

#include "operators/filter_kernels.h"

using namespace tcq::kernels;

extern "C" {

// Grouped-filter bound sweeps: int64 lane vs integral / double literals,
// double lane vs double literals.
void probe_accum_bound_ii(uint8_t* c, const int64_t* v, size_t n,
                          int64_t lit) {
  AccumBound<int64_t, int64_t, Cmp::kGe>(c, v, n, lit);
}
void probe_accum_bound_id(uint8_t* c, const int64_t* v, size_t n,
                          double lit) {
  AccumBound<int64_t, double, Cmp::kLt>(c, v, n, lit);
}
void probe_accum_bound_dd(uint8_t* c, const double* v, size_t n, double lit) {
  AccumBound<double, double, Cmp::kGt>(c, v, n, lit);
}

// Grouped-filter two-sided range sweeps.
void probe_accum_range_ii(uint8_t* c, const int64_t* v, size_t n, int64_t lo,
                          int64_t hi) {
  AccumRange<int64_t, int64_t, true, true>(c, v, n, lo, hi);
}
void probe_accum_range_dd(uint8_t* c, const double* v, size_t n, double lo,
                          double hi) {
  AccumRange<double, double, false, true>(c, v, n, lo, hi);
}

// Eddy selection prefilter mask sweeps.
void probe_mask_cmp_ii(uint8_t* m, const int64_t* v, size_t n, int64_t lit) {
  MaskCmp<int64_t, int64_t, Cmp::kLe>(m, v, n, lit);
}
void probe_mask_cmp_id(uint8_t* m, const int64_t* v, size_t n, double lit) {
  MaskCmp<int64_t, double, Cmp::kGe>(m, v, n, lit);
}
void probe_mask_cmp_dd(uint8_t* m, const double* v, size_t n, double lit) {
  MaskCmp<double, double, Cmp::kNe>(m, v, n, lit);
}
void probe_mask_eq_ii(uint8_t* m, const int64_t* v, size_t n, int64_t lit) {
  MaskEq<int64_t, int64_t>(m, v, n, lit);
}
void probe_mask_eq_id(uint8_t* m, const int64_t* v, size_t n, double lit) {
  MaskEq<int64_t, double>(m, v, n, lit);
}
void probe_mask_eq_dd(uint8_t* m, const double* v, size_t n, double lit) {
  MaskEq<double, double>(m, v, n, lit);
}
void probe_mask_range_ii(uint8_t* m, const int64_t* v, size_t n, int64_t lo,
                         int64_t hi) {
  MaskRange<int64_t, int64_t, true, false>(m, v, n, lo, hi);
}
void probe_mask_range_dd(uint8_t* m, const double* v, size_t n, double lo,
                         double hi) {
  MaskRange<double, double, true, true>(m, v, n, lo, hi);
}

// NaN-lane guard (kernel dispatch refuses lanes containing NaN because
// Value::Compare treats NaN as equal to everything).
bool probe_any_nan(const double* v, size_t n) { return AnyNaN(v, n); }

}  // extern "C"
