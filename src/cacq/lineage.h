// CACQ tuple lineage (paper §3.1): "extra state maintained with each tuple
// as it passes through the CACQ process, to help determine the clients to
// which the output of the disjunctive CACQ query should be transmitted."
// A shared envelope carries the set of queries still live for the tuple;
// modules narrow it (grouped filters), children of SteM probes intersect it
// with the subscribers of the join edge.

#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/query_set.h"
#include "tuple/tuple.h"

namespace tcq {

struct SharedEnvelope {
  Tuple tuple;
  /// Module slots this tuple has satisfied (shared eddies allow up to 64).
  uint64_t done = 0;
  /// Exactly-once sequence bound, as in the single-query eddy.
  Timestamp seq_max = 0;
  /// Queries that may still be satisfied by (a descendant of) this tuple.
  QuerySet live;
  /// Module invocations absorbed, inherited by probe children — the eddy
  /// hop count (routing-quality signal, DESIGN.md §9).
  uint32_t hops = 0;
};

}  // namespace tcq
