#include "cacq/query_registry.h"

namespace tcq {

SourceSet CQSpec::Footprint() const {
  SourceSet s = extra_sources;
  for (const FilterFactor& f : filters) s |= SourceBit(f.attr.source);
  for (const JoinEdge& j : joins) {
    s |= SourceBit(j.left.source) | SourceBit(j.right.source);
  }
  for (const auto& r : residuals) s |= r->sources();
  return s;
}

QueryId QueryRegistry::Add(CQSpec spec) {
  QueryId id = static_cast<QueryId>(queries_.size());
  RegisteredQuery rq;
  rq.id = id;
  rq.footprint = spec.Footprint();
  rq.spec = std::move(spec);
  rq.active = true;
  queries_.push_back(std::move(rq));
  active_.Add(id);
  ForEachSource(queries_.back().footprint, [&](SourceId s) {
    if (by_source_.size() <= s) by_source_.resize(s + 1);
    by_source_[s].Add(id);
  });
  return id;
}

Status QueryRegistry::Remove(QueryId id) {
  if (id >= queries_.size() || !queries_[id].active) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not active");
  }
  queries_[id].active = false;
  active_.Remove(id);
  for (auto& set : by_source_) set.Remove(id);
  return Status::OK();
}

const RegisteredQuery* QueryRegistry::Get(QueryId id) const {
  if (id >= queries_.size()) return nullptr;
  return &queries_[id];
}

RegisteredQuery* QueryRegistry::GetMutable(QueryId id) {
  if (id >= queries_.size()) return nullptr;
  return &queries_[id];
}

const QuerySet& QueryRegistry::QueriesTouching(SourceId source) const {
  if (source >= by_source_.size()) return empty_;
  return by_source_[source];
}

}  // namespace tcq
