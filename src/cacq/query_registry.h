// Declarative continuous-query descriptions and their registry. A CQ is
// decomposed, as in CACQ (paper §3.1), into single-variable boolean factors
// (indexed by grouped filters), equality join edges (executed by shared
// SteMs), and residual multi-variable factors (checked per query once their
// sources are spanned).

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/query_set.h"
#include "common/status.h"
#include "operators/predicate.h"

namespace tcq {

/// A single-variable boolean factor: attr op literal.
struct FilterFactor {
  AttrRef attr;
  CmpOp op = CmpOp::kEq;
  Value literal;
};

/// An equality join edge between two base-stream attributes.
struct JoinEdge {
  AttrRef left;
  AttrRef right;
};

/// A continuous query over the shared eddy.
struct CQSpec {
  std::vector<FilterFactor> filters;
  std::vector<JoinEdge> joins;
  /// Residual multi-variable factors (non-equijoin conditions), applied once
  /// every referenced source is spanned.
  std::vector<PredicateRef> residuals;
  /// Extra sources the query ranges over beyond those mentioned above
  /// (e.g. a pure "SELECT *" pass-through of one stream).
  SourceSet extra_sources = 0;

  /// Union of all sources the query touches.
  SourceSet Footprint() const;
};

struct RegisteredQuery {
  QueryId id = 0;
  CQSpec spec;
  SourceSet footprint = 0;
  bool active = false;
  uint64_t results_delivered = 0;
};

/// Owns query ids and descriptions for one shared eddy.
class QueryRegistry {
 public:
  /// Registers a query; ids are never reused within a registry's lifetime.
  QueryId Add(CQSpec spec);

  Status Remove(QueryId id);

  const RegisteredQuery* Get(QueryId id) const;
  RegisteredQuery* GetMutable(QueryId id);

  /// Active queries whose footprint includes `source`.
  const QuerySet& QueriesTouching(SourceId source) const;

  const QuerySet& active() const { return active_; }
  size_t num_active() const { return active_.Count(); }
  size_t next_id() const { return queries_.size(); }

 private:
  std::vector<RegisteredQuery> queries_;
  QuerySet active_;
  // Per-source interest sets (index = SourceId).
  std::vector<QuerySet> by_source_;
  QuerySet empty_;
};

}  // namespace tcq
