#include "cacq/shared_eddy.h"

#include <cassert>

#include "obs/trace.h"

namespace tcq {

// --- GroupedFilterModule ----------------------------------------------------

ModuleAction GroupedFilterModule::Process(SharedEnvelope* env,
                                          std::vector<SharedEnvelope>*) {
  const Value* v = ResolveAttr(env->tuple, filter_.attr());
  assert(v != nullptr && "grouped-filter attribute missing");
  matched_scratch_ = QuerySet();
  filter_.Match(*v, &matched_scratch_);
  // Kill interested queries whose factors failed: live -= (interested \ matched).
  QuerySet to_kill = filter_.interested();
  to_kill.SubtractWith(matched_scratch_);
  env->live.SubtractWith(to_kill);
  return env->live.Empty() ? ModuleAction::kDrop : ModuleAction::kPass;
}

// --- SharedSteMProbe --------------------------------------------------------

SharedSteMProbe::SharedSteMProbe(std::string name, SteM* stem,
                                 AttrRef probe_key, AttrRef build_key)
    : SharedModule(std::move(name)),
      stem_(stem),
      probe_key_(std::move(probe_key)),
      build_key_(std::move(build_key)) {
  stem_->EnsureIndex(build_key_.name);
}

SchemaRef SharedSteMProbe::ConcatSchemaFor(const SchemaRef& input) {
  const Schema* key = input.get();
  for (const auto& [cached_key, cached] : schema_cache_) {
    if (cached_key == key) return cached;
  }
  SchemaRef out = Schema::Concat(input, stem_->schema());
  schema_cache_.emplace_back(key, out);
  return out;
}

ModuleAction SharedSteMProbe::Process(SharedEnvelope* env,
                                      std::vector<SharedEnvelope>* out) {
  QuerySet child_live = env->live;
  child_live.IntersectWith(subscribers_);
  if (!child_live.Empty()) {
    const Value* key = ResolveAttr(env->tuple, probe_key_);
    assert(key != nullptr && "probe key attribute missing");
    scratch_.clear();
    stem_->ProbeEq(build_key_.name, *key, env->seq_max, &scratch_);
    if (!scratch_.empty()) {
      SchemaRef out_schema = ConcatSchemaFor(env->tuple.schema());
      for (const StemEntry* e : scratch_) {
        SharedEnvelope child;
        child.tuple = Tuple::Concat(env->tuple, e->tuple, out_schema);
        child.seq_max = std::max(env->seq_max, e->seq);
        child.live = child_live;
        out->push_back(std::move(child));
      }
    }
  }
  // The parent always continues: it may still satisfy queries with narrower
  // footprints (single-stream queries over the same source).
  return ModuleAction::kPass;
}

// --- ResidualFilterModule ---------------------------------------------------

void ResidualFilterModule::AddResidual(QueryId q, PredicateRef pred) {
  residuals_.emplace_back(q, std::move(pred));
  interested_.Add(q);
}

void ResidualFilterModule::RemoveQuery(QueryId q) {
  std::erase_if(residuals_,
                [q](const auto& pair) { return pair.first == q; });
  interested_.Remove(q);
}

ModuleAction ResidualFilterModule::Process(SharedEnvelope* env,
                                           std::vector<SharedEnvelope>*) {
  for (const auto& [q, pred] : residuals_) {
    if (!env->live.Contains(q)) continue;
    if (!pred->Eval(env->tuple)) env->live.Remove(q);
  }
  return env->live.Empty() ? ModuleAction::kDrop : ModuleAction::kPass;
}

// --- SharedEddy ---------------------------------------------------------

SharedEddy::SharedEddy(std::unique_ptr<RoutingPolicy> policy,
                       MetricsRegistryRef metrics, std::string label)
    : policy_(std::move(policy)),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      label_(std::move(label)) {
  routing_decisions_ = metrics_->GetCounter(
      MetricName("tcq_shared_eddy_routing_decisions_total", "eddy", label_));
  routing_decisions_reused_ = metrics_->GetCounter(MetricName(
      "tcq_shared_eddy_routing_decisions_reused_total", "eddy", label_));
  module_invocations_ = metrics_->GetCounter(
      MetricName("tcq_shared_eddy_module_invocations_total", "eddy", label_));
  deliveries_ = metrics_->GetCounter(
      MetricName("tcq_shared_eddy_deliveries_total", "eddy", label_));
}

void SharedEddy::RegisterStream(SourceId source, SchemaRef schema,
                                StemOptions stem_opts) {
  StreamInfo info;
  info.schema = std::move(schema);
  info.stem_opts = std::move(stem_opts);
  streams_[source] = std::move(info);
}

size_t SharedEddy::AddModule(std::unique_ptr<SharedModule> module) {
  assert(modules_.size() < 64 && "at most 64 modules per shared eddy");
  modules_.push_back(std::move(module));
  module_stats_.push_back(modules_.back().get());
  std::string slot_label = label_.empty()
                               ? modules_.back()->name()
                               : label_ + "/" + modules_.back()->name();
  slot_selectivity_permille_.push_back(metrics_->GetGauge(
      MetricName("tcq_shared_eddy_module_selectivity_permille", "module",
                 slot_label)));
  policy_->OnModuleCountChanged(modules_.size());
  return modules_.size() - 1;
}

GroupedFilterModule* SharedEddy::FilterModuleFor(const AttrRef& attr) {
  for (auto& m : modules_) {
    auto* gf = dynamic_cast<GroupedFilterModule*>(m.get());
    if (gf != nullptr && gf->attr() == attr) return gf;
  }
  auto mod = std::make_unique<GroupedFilterModule>(
      "gf(" + attr.ToString() + ")", attr);
  GroupedFilterModule* out = mod.get();
  AddModule(std::move(mod));
  return out;
}

SteM* SharedEddy::StemFor(SourceId source) {
  auto it = streams_.find(source);
  assert(it != streams_.end() && "join references an unregistered stream");
  StreamInfo& info = it->second;
  if (!info.stem) {
    std::string stem_name = "stem(s" + std::to_string(source) + ")";
    if (!label_.empty()) stem_name = label_ + "/" + stem_name;
    info.stem = std::make_shared<SteM>(std::move(stem_name), source,
                                       info.schema, info.stem_opts, metrics_);
  }
  return info.stem.get();
}

SharedSteMProbe* SharedEddy::ProbeModuleFor(const AttrRef& probe_key,
                                            const AttrRef& build_key) {
  for (auto& m : modules_) {
    auto* p = dynamic_cast<SharedSteMProbe*>(m.get());
    if (p != nullptr && p->probe_key() == probe_key &&
        p->build_key() == build_key) {
      return p;
    }
  }
  SteM* stem = StemFor(build_key.source);
  auto mod = std::make_unique<SharedSteMProbe>(
      "probe(" + build_key.ToString() + " by " + probe_key.ToString() + ")",
      stem, probe_key, build_key);
  SharedSteMProbe* out = mod.get();
  AddModule(std::move(mod));
  return out;
}

ResidualFilterModule* SharedEddy::ResidualModuleFor(SourceSet span) {
  for (auto& m : modules_) {
    auto* r = dynamic_cast<ResidualFilterModule*>(m.get());
    if (r != nullptr && r->span() == span) return r;
  }
  auto mod = std::make_unique<ResidualFilterModule>(
      "residual(span=" + std::to_string(span) + ")", span);
  ResidualFilterModule* out = mod.get();
  AddModule(std::move(mod));
  return out;
}

Result<QueryId> SharedEddy::AddQuery(CQSpec spec) {
  // Validate references before mutating shared state.
  for (const FilterFactor& f : spec.filters) {
    auto it = streams_.find(f.attr.source);
    if (it == streams_.end()) {
      return Status::NotFound("filter references unregistered stream s" +
                              std::to_string(f.attr.source));
    }
    if (!it->second.schema->IndexOf(f.attr.name, f.attr.source)) {
      return Status::NotFound("no attribute " + f.attr.ToString());
    }
  }
  for (const JoinEdge& j : spec.joins) {
    for (const AttrRef* a : {&j.left, &j.right}) {
      auto it = streams_.find(a->source);
      if (it == streams_.end()) {
        return Status::NotFound("join references unregistered stream s" +
                                std::to_string(a->source));
      }
      if (!it->second.schema->IndexOf(a->name, a->source)) {
        return Status::NotFound("no attribute " + a->ToString());
      }
    }
  }

  // A multi-stream query must be connected by equality join edges: SteMs
  // execute equijoins; a residual-only cross-source predicate would never
  // see concatenated tuples (CACQ executes joins through SteMs, §3.1).
  {
    SourceSet footprint = spec.Footprint();
    std::vector<SourceId> srcs;
    ForEachSource(footprint, [&](SourceId s) { srcs.push_back(s); });
    if (srcs.size() > 1) {
      // Union-find over sources via join edges.
      std::map<SourceId, SourceId> parent;
      for (SourceId s : srcs) parent[s] = s;
      std::function<SourceId(SourceId)> find = [&](SourceId x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      for (const JoinEdge& j : spec.joins) {
        parent[find(j.left.source)] = find(j.right.source);
      }
      for (SourceId s : srcs) {
        if (find(s) != find(srcs.front())) {
          return Status::InvalidArgument(
              "query spans disconnected streams s" +
              std::to_string(srcs.front()) + " and s" + std::to_string(s) +
              ": every stream must be reachable through equality join "
              "edges (cross products and pure non-equijoins across streams "
              "are not executable by shared SteMs)");
        }
      }
    }
  }

  QueryId id = registry_.Add(std::move(spec));
  const CQSpec& s = registry_.Get(id)->spec;
  // Pair a query's single lower and upper bound on one attribute into an
  // interval-tree range factor; everything else goes to the bound lists.
  std::map<std::pair<SourceId, std::string>, std::vector<const FilterFactor*>>
      by_attr;
  for (const FilterFactor& f : s.filters) {
    by_attr[{f.attr.source, f.attr.name}].push_back(&f);
  }
  for (const auto& [key, factors] : by_attr) {
    GroupedFilter* gf = FilterModuleFor(factors.front()->attr)->filter();
    const FilterFactor* lo = nullptr;
    const FilterFactor* hi = nullptr;
    bool other = false;
    for (const FilterFactor* f : factors) {
      if ((f->op == CmpOp::kGe || f->op == CmpOp::kGt) && lo == nullptr) {
        lo = f;
      } else if ((f->op == CmpOp::kLe || f->op == CmpOp::kLt) &&
                 hi == nullptr) {
        hi = f;
      } else {
        other = true;
      }
    }
    if (lo != nullptr && hi != nullptr && !other && factors.size() == 2) {
      gf->AddRange(id, lo->literal, lo->op == CmpOp::kGe, hi->literal,
                   hi->op == CmpOp::kLe);
    } else {
      for (const FilterFactor* f : factors) {
        gf->AddFactor(id, f->op, f->literal);
      }
    }
  }
  for (const JoinEdge& j : s.joins) {
    // Both probe directions share the two SteMs (Fig. 2 topology).
    ProbeModuleFor(j.left, j.right)->Subscribe(id);
    ProbeModuleFor(j.right, j.left)->Subscribe(id);
  }
  for (const PredicateRef& r : s.residuals) {
    ResidualModuleFor(r->sources())->AddResidual(id, r);
  }
  return id;
}

Status SharedEddy::RemoveQuery(QueryId id) {
  TCQ_RETURN_IF_ERROR(registry_.Remove(id));
  for (auto& m : modules_) {
    if (auto* gf = dynamic_cast<GroupedFilterModule*>(m.get())) {
      gf->filter()->RemoveQuery(id);
    } else if (auto* p = dynamic_cast<SharedSteMProbe*>(m.get())) {
      p->Unsubscribe(id);
    } else if (auto* r = dynamic_cast<ResidualFilterModule*>(m.get())) {
      r->RemoveQuery(id);
    }
  }
  return Status::OK();
}

void SharedEddy::Ingest(SourceId source, const Tuple& tuple) {
  if (tuple.IsPunctuation()) {
    // In-band control: never routed through modules or built into SteMs.
    Punctuation p = tuple.AsPunctuation();
    if (watermarks_.OnPunctuation(p) ==
        WatermarkTracker::PunctResult::kAdvanced) {
      if (control_sink_) control_sink_(p);
      AdvanceTime(watermarks_.GlobalWatermark());
    }
    return;
  }
  Timestamp seq = next_seq_++;
  auto it = streams_.find(source);
  assert(it != streams_.end() && "ingest on unregistered stream");
  if (it->second.stem) it->second.stem->Build(tuple, seq);

  SharedEnvelope env;
  env.tuple = tuple;
  env.seq_max = seq;
  env.live = registry_.QueriesTouching(source);
  if (env.live.Empty()) return;  // no active query cares about this stream
  queue_.push_back(std::move(env));
  if (!draining_) Drain();
}

void SharedEddy::IngestBatch(const TupleBatch& batch) {
  if (!batch.empty()) IngestBatchRows(batch);
  if (!batch.punctuations().empty()) ApplyPunctuations(batch);
}

void SharedEddy::ApplyPunctuations(const TupleBatch& batch) {
  // The lane applies after the rows (its contract). Advanced watermarks
  // fan out to the control sink; once all are applied, event-time SteM
  // eviction runs at the new joint watermark (a no-op for unwindowed SteMs).
  bool advanced = false;
  for (const Punctuation& p : batch.punctuations()) {
    if (watermarks_.OnPunctuation(p) ==
        WatermarkTracker::PunctResult::kAdvanced) {
      advanced = true;
      if (control_sink_) control_sink_(p);
    }
  }
  if (advanced) AdvanceTime(watermarks_.GlobalWatermark());
}

void SharedEddy::IngestBatchRows(const TupleBatch& batch) {
  auto it = streams_.find(batch.source());
  assert(it != streams_.end() && "ingest on unregistered stream");
  SteM* stem = it->second.stem.get();
  // One lineage computation for the whole batch (the registry cannot change
  // mid-call: queries are added/removed between ingests).
  const QuerySet live = registry_.QueriesTouching(batch.source());
  const size_t n = batch.size();

  // Sequence numbers are assigned to EVERY row up front — including rows the
  // prefilter will drop — so SteM builds and probe bounds see exactly the
  // numbering per-tuple ingest would have produced.
  const Timestamp seq0 = next_seq_;
  next_seq_ += static_cast<Timestamp>(n);

  // Hoisted build loop: every tuple enters the SteM before any probing.
  // Safe ahead-of-probe because ProbeEq bounds matches by sequence number,
  // so an envelope never joins with same-batch successors. (SteM insert is
  // one of the two row-materializing boundaries of DESIGN.md §11.)
  if (stem != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      stem->Build(batch.RowAt(i), seq0 + static_cast<Timestamp>(i));
    }
  }
  if (live.Empty()) return;  // no active query cares about this stream

  // Columnar prefilter (DESIGN.md §11): every grouped-filter module the
  // whole batch must visit is evaluated once per COLUMN with the compiled
  // kernels, instead of once per row inside Drain. Each row's live set is
  // narrowed exactly as GroupedFilterModule::Process would (the eddy's
  // module-commutativity makes the forced ordering result-neutral), the
  // module's done bit is set batch-wide, and rows whose live set empties
  // are dropped here — never materialized into Tuples, never enqueued.
  uint64_t prefilter_done = 0;
  bool prefiltered = false;
  if (n >= kPrefilterMinRows) {
    const ColumnStore::Ref& cols = batch.columns();
    if (cols != nullptr) {
      obs::TraceContext& tc = obs::CurrentTrace();
      prefiltered = true;
      prefilter_live_.assign(n, live);
      prefilter_hops_.assign(n, 0);
      const SourceSet span = cols->schema()->sources();
      for (size_t slot = 0; slot < modules_.size(); ++slot) {
        auto* gfm = dynamic_cast<GroupedFilterModule*>(modules_[slot].get());
        if (gfm == nullptr) continue;
        const AttrRef& attr = gfm->attr();
        if ((span & SourceBit(attr.source)) == 0) continue;
        const QuerySet& interested = gfm->filter()->interested();
        if (!live.Intersects(interested)) continue;
        auto col_idx = cols->schema()->IndexOf(attr.name, attr.source);
        if (!col_idx) continue;

        int64_t hop_t0 = tc.tracer != nullptr ? NowMicros() : 0;
        prefilter_matched_.assign(n, QuerySet());
        gfm->filter()->MatchBatch(cols->column(*col_idx), n,
                                  prefilter_matched_.data());
        size_t invocations = 0;
        for (size_t r = 0; r < n; ++r) {
          // Rows already dead were dropped by an earlier module; the scalar
          // engine would never have routed them here.
          if (prefilter_live_[r].Empty()) continue;
          QuerySet to_kill = interested;
          to_kill.SubtractWith(prefilter_matched_[r]);
          prefilter_live_[r].SubtractWith(to_kill);
          ++prefilter_hops_[r];
          ModuleAction action = prefilter_live_[r].Empty()
                                    ? ModuleAction::kDrop
                                    : ModuleAction::kPass;
          gfm->RecordResult(action, 0);
          policy_->OnResult(slot, action, 0);
          if (action == ModuleAction::kDrop && tc.tracer != nullptr) {
            tc.tracer->RecordHopCount(prefilter_hops_[r]);
          }
          ++invocations;
        }
        module_invocations_->Inc(invocations);
        prefilter_done |= uint64_t{1} << slot;
        slot_selectivity_permille_[slot]->Set(static_cast<int64_t>(
            module_stats_[slot]->ObservedSelectivity() * 1000.0));
        if (tc.tracer != nullptr) {
          // One batched hop span covers the whole column sweep.
          tc.tracer->RecordHop(slot, gfm->name(), hop_t0,
                               NowMicros() - hop_t0);
        }
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (prefiltered && prefilter_live_[i].Empty()) continue;
    SharedEnvelope env;
    env.tuple = batch.RowAt(i);
    env.seq_max = seq0 + static_cast<Timestamp>(i);
    env.done = prefilter_done;
    if (prefiltered) {
      env.live = std::move(prefilter_live_[i]);
      env.hops = prefilter_hops_[i];
    } else {
      env.live = live;
    }
    queue_.push_back(std::move(env));
  }
  if (!draining_ && !queue_.empty()) Drain();
}

SteM* SharedEddy::GetSteM(SourceId source) const {
  auto it = streams_.find(source);
  if (it == streams_.end()) return nullptr;
  return it->second.stem.get();
}

void SharedEddy::BackfillSteM(SourceId source,
                              const std::vector<Tuple>& history) {
  SteM* stem = GetSteM(source);
  assert(stem != nullptr && "backfill requires an existing SteM");
  for (const Tuple& t : history) stem->Build(t, next_seq_++);
}

void SharedEddy::BuildHistorical(SourceId source, const Tuple& tuple,
                                 Timestamp seq) {
  SteM* stem = GetSteM(source);
  if (stem == nullptr) return;  // no join touches the stream in this replica
  stem->Build(tuple, seq);
}

SharedEddy::ExportedState SharedEddy::ExportState() const {
  assert(queue_.empty() && !draining_ && "export requires a quiescent eddy");
  ExportedState st;
  st.next_seq = next_seq_;
  st.streams.reserve(streams_.size());
  for (const auto& [source, info] : streams_) {
    st.streams.push_back(
        ExportedStream{source, info.schema, info.stem_opts, info.stem});
  }
  registry_.active().ForEach([&](QueryId q) {
    const RegisteredQuery* rq = registry_.Get(q);
    st.queries.push_back(ExportedState::ExportedQuery{
        q, rq->spec, rq->results_delivered});
  });
  return st;
}

void SharedEddy::ImportState(
    ExportedState state, const std::function<void(QueryId, QueryId)>& remap) {
  for (ExportedStream& s : state.streams) {
    assert(!streams_.contains(s.source) &&
           "imported stream already registered (classes own disjoint sets)");
    StreamInfo info;
    info.schema = std::move(s.schema);
    info.stem_opts = std::move(s.stem_opts);
    info.stem = std::move(s.stem);  // built state travels with the SteM
    streams_[s.source] = std::move(info);
  }
  // Reconcile sequence spaces: future tuples must out-sequence every
  // imported entry or the exactly-once probe bound would hide them.
  next_seq_ = std::max(next_seq_, state.next_seq);
  for (ExportedState::ExportedQuery& q : state.queries) {
    Result<QueryId> nid = AddQuery(std::move(q.spec));
    // The spec was admissible in the exporting eddy and every stream it
    // references was just adopted, so re-admission cannot fail.
    assert(nid.ok() && "imported query failed re-admission");
    registry_.GetMutable(*nid)->results_delivered = q.results_delivered;
    remap(q.local_id, *nid);
  }
}

void SharedEddy::AdvanceTime(Timestamp now) {
  for (auto& [source, info] : streams_) {
    if (info.stem) info.stem->AdvanceTime(now);
  }
}

bool SharedEddy::ComputeReady(const SharedEnvelope& env,
                              std::vector<size_t>* ready) const {
  ready->clear();
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (env.done & (uint64_t{1} << i)) continue;
    if (modules_[i]->AppliesTo(env)) ready->push_back(i);
  }
  return !ready->empty();
}

void SharedEddy::DeliverIfComplete(SharedEnvelope&& env) {
  // Deliver to every still-live, still-active query whose footprint the
  // tuple exactly spans (wider-footprint queries needed more joins; their
  // results are the composites).
  SourceSet span = env.tuple.sources();
  env.live.IntersectWith(registry_.active());
  env.live.ForEach([&](QueryId q) {
    const RegisteredQuery* rq = registry_.Get(q);
    if (rq->footprint != span) return;
    deliveries_->Inc();
    ++registry_.GetMutable(q)->results_delivered;
    if (sink_) sink_(q, env.tuple);
  });
}

void SharedEddy::Drain() {
  draining_ = true;
  // Bound once per drain: non-null only inside a sampled trace batch.
  obs::TraceContext& tc = obs::CurrentTrace();
  // Drain-scoped routing-decision cache: envelopes with identical lineage
  // (done-set, live-set, span) see the same ready set, so both the ready
  // computation and the last ranked slot apply verbatim — including across
  // the several hops a tuple makes through a bank of modules, since each
  // hop's lineage key maps to its own cache slot. Per-tuple Ingest drains
  // after every tuple, so the big wins come from IngestBatch, where the
  // envelopes of a batch walk identical hop sequences. Bumping the
  // generation empties the whole cache at once; this happens on expansion
  // (SteM feedback mid-batch): new children change the policy's observed
  // stats, so later envelopes fall back to fresh per-tuple ranking.
  ++drain_generation_;
  while (!queue_.empty()) {
    SharedEnvelope env = std::move(queue_.front());
    queue_.pop_front();

    while (true) {
      SourceSet span = env.tuple.sources();
      CachedDecision& entry = decision_cache_[DecisionCacheIndex(env.done, span)];
      bool fresh = entry.generation != drain_generation_ ||
                   entry.done != env.done || entry.span != span ||
                   !(entry.live == env.live);
      size_t slot;
      if (fresh) {
        entry.generation = drain_generation_;
        entry.done = env.done;
        entry.span = span;
        entry.live = env.live;
        entry.has_ready = ComputeReady(env, &ready_scratch_);
        if (!entry.has_ready) {
          if (tc.tracer != nullptr) tc.tracer->RecordHopCount(env.hops);
          DeliverIfComplete(std::move(env));
          break;
        }
        order_scratch_.clear();
        policy_->Rank(ready_scratch_, module_stats_, &order_scratch_);
        routing_decisions_->Inc();
        slot = order_scratch_.front();
        entry.slot = slot;
      } else {
        if (!entry.has_ready) {
          if (tc.tracer != nullptr) tc.tracer->RecordHopCount(env.hops);
          DeliverIfComplete(std::move(env));
          break;
        }
        slot = entry.slot;
        routing_decisions_reused_->Inc();
      }
      module_invocations_->Inc();
      out_scratch_.clear();
      int64_t hop_t0 = tc.tracer != nullptr ? NowMicros() : 0;
      ModuleAction action = modules_[slot]->Process(&env, &out_scratch_);
      ++env.hops;
      if (tc.tracer != nullptr) {
        tc.tracer->RecordHop(slot, modules_[slot]->name(), hop_t0,
                             NowMicros() - hop_t0);
      }
      if (!out_scratch_.empty()) ++drain_generation_;
      // For stats/ticket purposes a probe that emitted children counts as an
      // expansion even though the parent keeps routing.
      ModuleAction stats_action =
          out_scratch_.empty() ? action : ModuleAction::kExpand;
      modules_[slot]->RecordResult(stats_action, out_scratch_.size());
      policy_->OnResult(slot, stats_action, out_scratch_.size());
      if (fresh || !out_scratch_.empty()) {
        // The selectivity gauge is pure observability; refreshing it on
        // fresh decisions (and expansions) keeps it current without paying
        // the float math on every cached invocation.
        slot_selectivity_permille_[slot]->Set(static_cast<int64_t>(
            module_stats_[slot]->ObservedSelectivity() * 1000.0));
      }
      for (SharedEnvelope& child : out_scratch_) {
        child.done |= env.done | (uint64_t{1} << slot);
        child.hops = env.hops;
        queue_.push_back(std::move(child));
      }
      if (action == ModuleAction::kDrop) {
        if (tc.tracer != nullptr) tc.tracer->RecordHopCount(env.hops);
        break;
      }
      env.done |= (uint64_t{1} << slot);
      // kPass: continue routing the (narrowed) envelope.
    }
  }
  draining_ = false;
}

}  // namespace tcq
