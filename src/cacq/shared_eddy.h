// CACQ: Continuously Adaptive Continuous Queries (paper §3.1). A single
// shared eddy executes the disjunction of all registered queries at once:
//   * grouped filters index the single-variable factors of all queries over
//     the same attribute, so one probe evaluates thousands of predicates;
//   * SteMs are shared across every query interested in a join edge;
//   * tuple lineage (a per-tuple live-query set) tracks which queries each
//     tuple still satisfies, and results are demultiplexed to clients.
// Queries can be added and removed while streams flow.

#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cacq/lineage.h"
#include "cacq/query_registry.h"
#include "common/metrics.h"
#include "eddy/routing_policy.h"
#include "operators/grouped_filter.h"
#include "stem/stem.h"
#include "tuple/tuple_batch.h"
#include "window/time.h"

namespace tcq {

/// A module routable by the shared eddy. Narrows the envelope's live-query
/// set and/or emits child envelopes.
class SharedModule : public RoutableStats {
 public:
  explicit SharedModule(std::string name) : name_(std::move(name)) {}
  virtual ~SharedModule() = default;

  const std::string& name() const { return name_; }

  /// Must this envelope visit the module? (Depends on the tuple's span AND
  /// its live set — a module no live query cares about is skipped, which is
  /// where shared processing wins.)
  virtual bool AppliesTo(const SharedEnvelope& env) const = 0;

  /// Processes the envelope. May narrow env->live, and may append children
  /// (the shared eddy patches their done bits). kDrop means the live set
  /// emptied; kPass keeps routing the (possibly narrowed) envelope.
  virtual ModuleAction Process(SharedEnvelope* env,
                               std::vector<SharedEnvelope>* out) = 0;

 private:
  std::string name_;
};

/// Shared selection: wraps a GroupedFilter over one attribute. Kills, from
/// the envelope's live set, every interested query whose factors the value
/// fails.
class GroupedFilterModule : public SharedModule {
 public:
  GroupedFilterModule(std::string name, AttrRef attr)
      : SharedModule(std::move(name)), filter_(std::move(attr)) {}

  GroupedFilter* filter() { return &filter_; }
  const AttrRef& attr() const { return filter_.attr(); }

  bool AppliesTo(const SharedEnvelope& env) const override {
    return (env.tuple.sources() & SourceBit(filter_.attr().source)) != 0 &&
           env.live.Intersects(filter_.interested());
  }

  ModuleAction Process(SharedEnvelope* env,
                       std::vector<SharedEnvelope>* out) override;

 private:
  GroupedFilter filter_;
  mutable QuerySet matched_scratch_;
};

/// Shared SteM probe for one equality join edge. All queries subscribed to
/// the edge share the stored state and the probe work; children's live sets
/// are the parent's intersected with the edge subscribers. The parent
/// continues routing (it may still satisfy narrower-footprint queries).
class SharedSteMProbe : public SharedModule {
 public:
  SharedSteMProbe(std::string name, SteM* stem, AttrRef probe_key,
                  AttrRef build_key);

  void Subscribe(QueryId q) { subscribers_.Add(q); }
  void Unsubscribe(QueryId q) { subscribers_.Remove(q); }
  const QuerySet& subscribers() const { return subscribers_; }

  SteM* stem() const { return stem_; }
  const AttrRef& probe_key() const { return probe_key_; }
  const AttrRef& build_key() const { return build_key_; }

  bool AppliesTo(const SharedEnvelope& env) const override {
    SourceSet span = env.tuple.sources();
    if (span & SourceBit(stem_->source())) return false;
    if (!(span & SourceBit(probe_key_.source))) return false;
    return env.live.Intersects(subscribers_);
  }

  ModuleAction Process(SharedEnvelope* env,
                       std::vector<SharedEnvelope>* out) override;

 private:
  SchemaRef ConcatSchemaFor(const SchemaRef& input);

  SteM* stem_;
  AttrRef probe_key_;
  AttrRef build_key_;
  QuerySet subscribers_;
  std::vector<std::pair<const Schema*, SchemaRef>> schema_cache_;
  std::vector<const StemEntry*> scratch_;
};

/// Residual multi-variable factors: per-query predicates applied once their
/// sources are spanned (e.g. the non-equi half of a theta-join).
class ResidualFilterModule : public SharedModule {
 public:
  ResidualFilterModule(std::string name, SourceSet span)
      : SharedModule(std::move(name)), span_(span) {}

  void AddResidual(QueryId q, PredicateRef pred);
  void RemoveQuery(QueryId q);

  SourceSet span() const { return span_; }
  const QuerySet& interested() const { return interested_; }

  bool AppliesTo(const SharedEnvelope& env) const override {
    return (span_ & ~env.tuple.sources()) == 0 &&
           env.live.Intersects(interested_);
  }

  ModuleAction Process(SharedEnvelope* env,
                       std::vector<SharedEnvelope>* out) override;

 private:
  SourceSet span_;
  std::vector<std::pair<QueryId, PredicateRef>> residuals_;
  QuerySet interested_;
};

/// The shared eddy itself.
class SharedEddy {
 public:
  /// Receives one delivery per (query, result tuple).
  using Sink = std::function<void(QueryId, const Tuple&)>;

  /// When `metrics` is null the eddy observes itself in a private registry;
  /// `label` distinguishes instances (query classes) sharing one registry.
  explicit SharedEddy(std::unique_ptr<RoutingPolicy> policy,
                      MetricsRegistryRef metrics = nullptr,
                      std::string label = "");

  /// Declares a stream before queries reference it. `stem_opts` configures
  /// the shared SteM created if/when a join touches the stream.
  void RegisterStream(SourceId source, SchemaRef schema,
                      StemOptions stem_opts = StemOptions{});

  void SetOutput(Sink sink) { sink_ = std::move(sink); }

  /// Receives every punctuation that ADVANCED this eddy's watermark view
  /// (duplicates/regressions filtered here, so downstream min-combines see
  /// monotone per-source sequences).
  using ControlSink = std::function<void(const Punctuation&)>;
  void SetControlOutput(ControlSink sink) { control_sink_ = std::move(sink); }

  /// Adds a continuous query on the fly; returns its id.
  Result<QueryId> AddQuery(CQSpec spec);

  /// Removes a query on the fly. In-flight tuples stop being processed for
  /// it immediately (deliveries check liveness).
  Status RemoveQuery(QueryId id);

  /// Ingests one stream tuple and runs the shared dataflow to quiescence.
  /// Equivalent to a batch of one.
  void Ingest(SourceId source, const Tuple& tuple);

  /// Ingests a whole same-source batch under one stream lookup and one
  /// lineage computation, then drains to quiescence. SteM builds are hoisted
  /// ahead of any probing: safe because probes bound matches by sequence
  /// number, so a tuple never sees same-batch successors (identical results
  /// to per-tuple ingest). Within the drain, one routing decision is reused
  /// for every envelope with identical lineage (same done-set, live-set and
  /// span); the eddy falls back to fresh per-tuple ranking as soon as a
  /// module expands an envelope, i.e. when SteM feedback changes mid-batch.
  ///
  /// The batch's control lane applies AFTER the rows: each punctuation feeds
  /// the eddy's watermark tracker (regressions rejected + counted), advanced
  /// ones forward to the control sink, and SteM event-time eviction runs at
  /// the new global watermark.
  void IngestBatch(const TupleBatch& batch);

  /// Event-time watermark view of this eddy (punctuation-driven). NOT part
  /// of ExportState: after a repartition the importer conservatively
  /// restarts at kMinTimestamp and re-earns watermarks from the next
  /// punctuation broadcast — which can only delay downstream firing.
  const WatermarkTracker& watermarks() const { return watermarks_; }
  uint64_t punctuations_applied() const {
    return watermarks_.punctuations_applied();
  }
  uint64_t punctuations_regressed() const {
    return watermarks_.punctuations_regressed();
  }

  /// Advances stream time: evicts shared SteM state per its window options.
  void AdvanceTime(Timestamp now);

  // --- State movement (executor class merge, §4.2.2 re-adjustment) -----------

  /// One registered stream as exported: its schema/options and the shared
  /// SteM (with all built state) by reference — entries are transferred, not
  /// copied.
  struct ExportedStream {
    SourceId source = 0;
    SchemaRef schema;
    StemOptions stem_opts;
    std::shared_ptr<SteM> stem;  // null if no join ever touched the stream
  };

  /// A quiescent eddy's portable state. Valid only when no envelope is in
  /// flight (the queue drained to quiescence, which every Ingest* call
  /// guarantees on return).
  struct ExportedState {
    std::vector<ExportedStream> streams;
    /// Live queries under their exporting-eddy local ids.
    struct ExportedQuery {
      QueryId local_id = 0;
      CQSpec spec;
      uint64_t results_delivered = 0;
    };
    std::vector<ExportedQuery> queries;
    /// The exporter's sequence horizon; the importer advances its own seq
    /// space past it so imported SteM entries stay probe-visible.
    Timestamp next_seq = 1;
  };

  /// Exports registered streams, live queries, and SteM state for merging
  /// into another eddy. The exporting eddy must be quiescent and is expected
  /// to be discarded afterwards (its modules keep raw SteM pointers).
  ExportedState ExportState() const;

  /// Imports a quiescent peer's state: adopts its streams (sources must be
  /// disjoint from this eddy's — executor classes never share a stream),
  /// reconciles the sequence space, and re-admits each query, reporting the
  /// lineage remap old-local-id -> new-local-id through `remap`. Imported
  /// SteM entries keep their original seqs; because next_seq_ jumps past the
  /// exporter's horizon, every future tuple probes them exactly like
  /// locally built state.
  void ImportState(ExportedState state,
                   const std::function<void(QueryId, QueryId)>& remap);

  /// The shared SteM of a stream, or nullptr if no join touches it yet.
  SteM* GetSteM(SourceId source) const;

  /// Builds historical tuples (timestamp-ascending) into a stream's SteM.
  /// PSoup uses this when a newly created SteM must also cover data that
  /// arrived before any join query existed (§3.2: new queries on old data
  /// joining with data yet to come).
  void BackfillSteM(SourceId source, const std::vector<Tuple>& history);

  /// Builds one historical tuple into a stream's SteM preserving its
  /// ORIGINAL sequence number (next_seq_ untouched). No-op when no join has
  /// created a SteM for the stream. The sharded executor replays exported
  /// SteM entries through this when re-partitioning a class, then calls
  /// AdvanceSeqHorizon once with the exporters' max horizon — after which
  /// every future tuple probes the replayed entries exactly like locally
  /// built state (seq < seq_bound holds, the exactly-once rule).
  void BuildHistorical(SourceId source, const Tuple& tuple, Timestamp seq);

  /// Jumps the sequence horizon forward (monotone; regressions ignored) so
  /// entries imported with BuildHistorical stay strictly below every future
  /// tuple's seq.
  void AdvanceSeqHorizon(Timestamp t) { next_seq_ = std::max(next_seq_, t); }

  /// The next sequence number this eddy would assign.
  Timestamp seq_horizon() const { return next_seq_; }

  const QueryRegistry& registry() const { return registry_; }
  size_t num_modules() const { return modules_.size(); }
  // Thin reads over the metrics registry.
  uint64_t routing_decisions() const { return routing_decisions_->Value(); }
  uint64_t routing_decisions_reused() const {
    return routing_decisions_reused_->Value();
  }
  uint64_t module_invocations() const { return module_invocations_->Value(); }
  uint64_t deliveries() const { return deliveries_->Value(); }
  const MetricsRegistryRef& metrics() const { return metrics_; }

 private:
  struct StreamInfo {
    SchemaRef schema;
    StemOptions stem_opts;
    std::shared_ptr<SteM> stem;  // created lazily on first join edge
  };

  GroupedFilterModule* FilterModuleFor(const AttrRef& attr);
  SharedSteMProbe* ProbeModuleFor(const AttrRef& probe_key,
                                  const AttrRef& build_key);
  ResidualFilterModule* ResidualModuleFor(SourceSet span);
  SteM* StemFor(SourceId source);
  size_t AddModule(std::unique_ptr<SharedModule> module);
  void IngestBatchRows(const TupleBatch& batch);
  void ApplyPunctuations(const TupleBatch& batch);
  void Drain();
  bool ComputeReady(const SharedEnvelope& env,
                    std::vector<size_t>* ready) const;
  void DeliverIfComplete(SharedEnvelope&& env);

  std::unique_ptr<RoutingPolicy> policy_;
  QueryRegistry registry_;
  std::map<SourceId, StreamInfo> streams_;
  std::vector<std::unique_ptr<SharedModule>> modules_;
  std::vector<const RoutableStats*> module_stats_;
  Sink sink_;
  ControlSink control_sink_;
  WatermarkTracker watermarks_;
  Timestamp next_seq_ = 1;
  std::deque<SharedEnvelope> queue_;
  bool draining_ = false;

  std::vector<size_t> ready_scratch_;
  std::vector<size_t> order_scratch_;
  std::vector<SharedEnvelope> out_scratch_;

  /// Batches below this size skip the columnar prefilter (building the
  /// column view would cost more than it saves).
  static constexpr size_t kPrefilterMinRows = 4;
  // IngestBatch prefilter scratch (per-row live sets and per-column match
  // results), reused across batches.
  std::vector<QuerySet> prefilter_live_;
  std::vector<QuerySet> prefilter_matched_;
  std::vector<uint32_t> prefilter_hops_;

  /// Drain-scoped routing-decision cache (see Drain()): direct-mapped by
  /// lineage key, so identical-lineage envelopes in one drain reuse the
  /// ready computation and the ranked slot even across multi-hop routes.
  /// Entries are valid only for the current drain generation; expansion
  /// (SteM feedback) bumps the generation and empties the cache at once.
  struct CachedDecision {
    uint64_t generation = 0;
    uint64_t done = 0;
    SourceSet span = 0;
    QuerySet live;
    size_t slot = 0;
    bool has_ready = false;
  };
  static constexpr size_t kDecisionCacheSlots = 16;
  static size_t DecisionCacheIndex(uint64_t done, SourceSet span) {
    uint64_t h =
        (done ^ (static_cast<uint64_t>(span) << 32)) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h >> 60);
  }
  std::array<CachedDecision, kDecisionCacheSlots> decision_cache_;
  uint64_t drain_generation_ = 0;

  MetricsRegistryRef metrics_;
  std::string label_;
  Counter* routing_decisions_;
  Counter* routing_decisions_reused_;
  Counter* module_invocations_;
  Counter* deliveries_;
  std::vector<Gauge*> slot_selectivity_permille_;
};

}  // namespace tcq
