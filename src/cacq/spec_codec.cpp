#include "cacq/spec_codec.h"

namespace tcq {

namespace {

/// Wire tags for the closed predicate hierarchy. Append-only: existing
/// values are pinned by checkpoints on disk.
enum class PredTag : uint8_t {
  kTrue = 0,
  kCompareConst = 1,
  kRange = 2,
  kCompareAttrs = 3,
  kAnd = 4,
  kOr = 5,
  kNot = 6,
};

}  // namespace

void PutAttrRef(CheckpointWriter* w, const AttrRef& attr) {
  w->PutU32(attr.source);
  w->PutString(attr.name);
}

Result<AttrRef> GetAttrRef(CheckpointReader* r) {
  AttrRef attr;
  TCQ_ASSIGN_OR_RETURN(attr.source, r->GetU32());
  TCQ_ASSIGN_OR_RETURN(attr.name, r->GetString());
  return attr;
}

void PutPredicate(CheckpointWriter* w, const PredicateRef& pred) {
  if (auto* p = dynamic_cast<const CompareConst*>(pred.get())) {
    w->PutU8(static_cast<uint8_t>(PredTag::kCompareConst));
    PutAttrRef(w, p->attr());
    w->PutU8(static_cast<uint8_t>(p->op()));
    w->PutValue(p->literal());
  } else if (auto* p = dynamic_cast<const RangePredicate*>(pred.get())) {
    w->PutU8(static_cast<uint8_t>(PredTag::kRange));
    PutAttrRef(w, p->attr());
    w->PutValue(p->lo());
    w->PutValue(p->hi());
    w->PutBool(p->lo_inclusive());
    w->PutBool(p->hi_inclusive());
  } else if (auto* p = dynamic_cast<const CompareAttrs*>(pred.get())) {
    w->PutU8(static_cast<uint8_t>(PredTag::kCompareAttrs));
    PutAttrRef(w, p->left());
    w->PutU8(static_cast<uint8_t>(p->op()));
    PutAttrRef(w, p->right());
  } else if (auto* p = dynamic_cast<const AndPredicate*>(pred.get())) {
    w->PutU8(static_cast<uint8_t>(PredTag::kAnd));
    w->PutU32(static_cast<uint32_t>(p->children().size()));
    for (const PredicateRef& c : p->children()) PutPredicate(w, c);
  } else if (auto* p = dynamic_cast<const OrPredicate*>(pred.get())) {
    w->PutU8(static_cast<uint8_t>(PredTag::kOr));
    w->PutU32(static_cast<uint32_t>(p->children().size()));
    for (const PredicateRef& c : p->children()) PutPredicate(w, c);
  } else if (auto* p = dynamic_cast<const NotPredicate*>(pred.get())) {
    w->PutU8(static_cast<uint8_t>(PredTag::kNot));
    PutPredicate(w, p->child());
  } else {
    // TruePredicate, or a null ref (treated as the neutral element).
    w->PutU8(static_cast<uint8_t>(PredTag::kTrue));
  }
}

Result<PredicateRef> GetPredicate(CheckpointReader* r) {
  TCQ_ASSIGN_OR_RETURN(uint8_t raw, r->GetU8());
  switch (static_cast<PredTag>(raw)) {
    case PredTag::kTrue:
      return MakeTrue();
    case PredTag::kCompareConst: {
      TCQ_ASSIGN_OR_RETURN(AttrRef attr, GetAttrRef(r));
      TCQ_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(CmpOp::kGe)) {
        return Status::IOError("unknown comparison op in checkpoint");
      }
      TCQ_ASSIGN_OR_RETURN(Value lit, r->GetValue());
      return MakeCompareConst(std::move(attr), static_cast<CmpOp>(op),
                              std::move(lit));
    }
    case PredTag::kRange: {
      TCQ_ASSIGN_OR_RETURN(AttrRef attr, GetAttrRef(r));
      TCQ_ASSIGN_OR_RETURN(Value lo, r->GetValue());
      TCQ_ASSIGN_OR_RETURN(Value hi, r->GetValue());
      TCQ_ASSIGN_OR_RETURN(bool lo_inc, r->GetBool());
      TCQ_ASSIGN_OR_RETURN(bool hi_inc, r->GetBool());
      return MakeRange(std::move(attr), std::move(lo), std::move(hi), lo_inc,
                       hi_inc);
    }
    case PredTag::kCompareAttrs: {
      TCQ_ASSIGN_OR_RETURN(AttrRef left, GetAttrRef(r));
      TCQ_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(CmpOp::kGe)) {
        return Status::IOError("unknown comparison op in checkpoint");
      }
      TCQ_ASSIGN_OR_RETURN(AttrRef right, GetAttrRef(r));
      return MakeCompareAttrs(std::move(left), static_cast<CmpOp>(op),
                              std::move(right));
    }
    case PredTag::kAnd:
    case PredTag::kOr: {
      TCQ_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      std::vector<PredicateRef> children;
      children.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        TCQ_ASSIGN_OR_RETURN(PredicateRef c, GetPredicate(r));
        children.push_back(std::move(c));
      }
      return static_cast<PredTag>(raw) == PredTag::kAnd
                 ? MakeAnd(std::move(children))
                 : MakeOr(std::move(children));
    }
    case PredTag::kNot: {
      TCQ_ASSIGN_OR_RETURN(PredicateRef c, GetPredicate(r));
      return MakeNot(std::move(c));
    }
  }
  return Status::IOError("unknown predicate tag in checkpoint");
}

void PutCQSpec(CheckpointWriter* w, const CQSpec& spec) {
  w->PutU32(static_cast<uint32_t>(spec.filters.size()));
  for (const FilterFactor& f : spec.filters) {
    PutAttrRef(w, f.attr);
    w->PutU8(static_cast<uint8_t>(f.op));
    w->PutValue(f.literal);
  }
  w->PutU32(static_cast<uint32_t>(spec.joins.size()));
  for (const JoinEdge& j : spec.joins) {
    PutAttrRef(w, j.left);
    PutAttrRef(w, j.right);
  }
  w->PutU32(static_cast<uint32_t>(spec.residuals.size()));
  for (const PredicateRef& p : spec.residuals) PutPredicate(w, p);
  w->PutU32(spec.extra_sources);
}

Result<CQSpec> GetCQSpec(CheckpointReader* r) {
  CQSpec spec;
  TCQ_ASSIGN_OR_RETURN(uint32_t nf, r->GetU32());
  spec.filters.reserve(nf);
  for (uint32_t i = 0; i < nf; ++i) {
    FilterFactor f;
    TCQ_ASSIGN_OR_RETURN(f.attr, GetAttrRef(r));
    TCQ_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
    if (op > static_cast<uint8_t>(CmpOp::kGe)) {
      return Status::IOError("unknown comparison op in checkpoint");
    }
    f.op = static_cast<CmpOp>(op);
    TCQ_ASSIGN_OR_RETURN(f.literal, r->GetValue());
    spec.filters.push_back(std::move(f));
  }
  TCQ_ASSIGN_OR_RETURN(uint32_t nj, r->GetU32());
  spec.joins.reserve(nj);
  for (uint32_t i = 0; i < nj; ++i) {
    JoinEdge j;
    TCQ_ASSIGN_OR_RETURN(j.left, GetAttrRef(r));
    TCQ_ASSIGN_OR_RETURN(j.right, GetAttrRef(r));
    spec.joins.push_back(std::move(j));
  }
  TCQ_ASSIGN_OR_RETURN(uint32_t nr, r->GetU32());
  spec.residuals.reserve(nr);
  for (uint32_t i = 0; i < nr; ++i) {
    TCQ_ASSIGN_OR_RETURN(PredicateRef p, GetPredicate(r));
    spec.residuals.push_back(std::move(p));
  }
  TCQ_ASSIGN_OR_RETURN(spec.extra_sources, r->GetU32());
  return spec;
}

void PutStemOptions(CheckpointWriter* w, const StemOptions& opts) {
  w->PutString(opts.key_attr);
  w->PutU64(opts.max_count);
  w->PutTimestamp(opts.window);
}

Result<StemOptions> GetStemOptions(CheckpointReader* r) {
  StemOptions opts;
  TCQ_ASSIGN_OR_RETURN(opts.key_attr, r->GetString());
  TCQ_ASSIGN_OR_RETURN(uint64_t mc, r->GetU64());
  opts.max_count = static_cast<size_t>(mc);
  TCQ_ASSIGN_OR_RETURN(opts.window, r->GetTimestamp());
  return opts;
}

}  // namespace tcq
