// Checkpoint serialization of declarative query state: predicates (the
// closed hierarchy of operators/predicate.h), CQSpec decompositions, and
// SteM options. Lives beside the registry because the encodable surface IS
// the CACQ decomposition — anything the planner can produce round-trips.

#pragma once

#include "cacq/query_registry.h"
#include "stem/stem.h"
#include "storage/checkpoint.h"

namespace tcq {

/// Writes `pred` (recursively) into the writer's open section.
/// Punctuation-free by construction: predicates only reference attributes.
void PutPredicate(CheckpointWriter* w, const PredicateRef& pred);
Result<PredicateRef> GetPredicate(CheckpointReader* r);

void PutAttrRef(CheckpointWriter* w, const AttrRef& attr);
Result<AttrRef> GetAttrRef(CheckpointReader* r);

void PutCQSpec(CheckpointWriter* w, const CQSpec& spec);
Result<CQSpec> GetCQSpec(CheckpointReader* r);

void PutStemOptions(CheckpointWriter* w, const StemOptions& opts);
Result<StemOptions> GetStemOptions(CheckpointReader* r);

}  // namespace tcq
