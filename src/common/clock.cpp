#include "common/clock.h"

#include <chrono>

namespace tcq {

Timestamp WallClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace tcq
