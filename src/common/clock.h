// Time abstractions. TelegraphCQ queries may use logical timestamps (tuple
// sequence numbers) or physical timestamps (wall clock); see paper §4.1.2.
// Benchmarks and tests run against a virtual clock for determinism.

#pragma once

#include <atomic>
#include <cstdint>

namespace tcq {

/// Timestamps are int64. Logical time counts tuples; physical time counts
/// microseconds.
using Timestamp = int64_t;

constexpr Timestamp kMinTimestamp = INT64_MIN;
constexpr Timestamp kMaxTimestamp = INT64_MAX;

/// Clock interface so executors can run on wall-clock or simulated time.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds.
  virtual Timestamp Now() const = 0;
};

/// Real wall-clock time (microseconds since steady_clock epoch).
class WallClock : public Clock {
 public:
  Timestamp Now() const override;
};

/// A manually advanced clock for deterministic tests and simulations.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}
  Timestamp Now() const override {
    return now_.load(std::memory_order_acquire);
  }
  void Advance(Timestamp delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void Set(Timestamp t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<Timestamp> now_;
};

/// Monotonic logical sequence numbers for a stream (thread-safe).
class SequenceCounter {
 public:
  explicit SequenceCounter(Timestamp start = 0) : next_(start) {}
  Timestamp Next() { return next_.fetch_add(1, std::memory_order_relaxed); }
  Timestamp Peek() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> next_;
};

}  // namespace tcq
