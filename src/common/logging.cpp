#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tcq {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mutex;
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  const char* tag = "?";
  switch (level_) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarning:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kOff:
      break;
  }
  stream_ << "[" << tag << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace tcq
