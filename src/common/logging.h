// Minimal leveled logger. Disabled below the compile/run-time threshold so
// hot-path TCQ_VLOG calls cost one branch.

#pragma once

#include <sstream>
#include <string>

namespace tcq {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogSink {
  // Swallows a disabled log statement's stream operators.
  template <typename T>
  LogSink& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define TCQ_LOG(level)                                              \
  if (::tcq::LogLevel::k##level < ::tcq::GetLogLevel()) {           \
  } else                                                            \
    ::tcq::internal::LogMessage(::tcq::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace tcq
