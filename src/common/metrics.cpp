#include "common/metrics.h"

#include <chrono>
#include <sstream>

namespace tcq {

uint64_t MetricsSnapshot::HistogramData::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t seen = 0;
  uint64_t prev_bound = 0;
  for (const auto& [le, c] : buckets) {
    if (seen + c > rank) {
      // +inf bucket has no finite upper edge to interpolate toward.
      if (le == UINT64_MAX) return prev_bound;
      double frac = c == 0 ? 1.0
                           : (static_cast<double>(rank - seen) + 1.0) /
                                 static_cast<double>(c);
      return prev_bound + static_cast<uint64_t>(
                              frac * static_cast<double>(le - prev_bound));
    }
    seen += c;
    prev_bound = le;
  }
  return prev_bound;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const MetricsSnapshot::HistogramData* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterFamilySum(const std::string& prefix) const {
  uint64_t sum = 0;
  for (const auto& [n, v] : counters) {
    if (n.compare(0, prefix.size(), prefix) == 0) sum += v;
  }
  return sum;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.count = h->Count();
    data.sum = h->Sum();
    for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
      uint64_t c = h->BucketCount(i);
      if (c > 0) data.buckets.emplace_back(Histogram::BucketBound(i), c);
    }
    data.p50 = data.ApproxQuantile(0.50);
    data.p95 = data.ApproxQuantile(0.95);
    data.p99 = data.ApproxQuantile(0.99);
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

size_t MetricsRegistry::num_instruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::FormatText() const {
  return FormatText(Snapshot());
}

namespace {

// "fam{k="v"}" + "_sum" -> "fam_sum{k="v"}" (suffix goes before the labels).
std::string SuffixedName(const std::string& name, const std::string& suffix) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

// Same, but merging an extra le label into any existing label set.
std::string BucketName(const std::string& name, const std::string& le) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + "_bucket{le=\"" + le + "\"}";
  }
  std::string labels = name.substr(brace + 1, name.size() - brace - 2);
  return name.substr(0, brace) + "_bucket{" + labels + ",le=\"" + le + "\"}";
}

// Metric family = name up to the label set. "tcq_queue_depth{queue="a"}" and
// "tcq_queue_depth{queue="b"}" are two series of one family.
std::string FamilyOf(const std::string& name) {
  return name.substr(0, name.find('{'));
}

// Emits the "# HELP"/"# TYPE" header the first time a family is seen.
// Snapshot maps are name-ordered, so a family's series are contiguous and
// `last` alone suffices; the exposition format requires exactly one header
// per family, before its first sample.
void EmitFamilyHeader(std::ostringstream& out, const std::string& name,
                      const char* type, std::string* last) {
  std::string family = FamilyOf(name);
  if (family == *last) return;
  *last = family;
  out << "# HELP " << family << " " << family << "\n";
  out << "# TYPE " << family << " " << type << "\n";
}

}  // namespace

std::string MetricsRegistry::FormatText(const MetricsSnapshot& snap) {
  std::ostringstream out;
  std::string last_family;
  for (const auto& [name, v] : snap.counters) {
    EmitFamilyHeader(out, name, "counter", &last_family);
    out << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    EmitFamilyHeader(out, name, "gauge", &last_family);
    out << name << " " << v << "\n";
  }
  for (const auto& h : snap.histograms) {
    EmitFamilyHeader(out, h.name, "histogram", &last_family);
    // Prometheus histograms are cumulative per bucket.
    uint64_t cumulative = 0;
    for (const auto& [le, c] : h.buckets) {
      cumulative += c;
      out << BucketName(h.name,
                        le == UINT64_MAX ? "+Inf" : std::to_string(le))
          << " " << cumulative << "\n";
    }
    out << SuffixedName(h.name, "_sum") << " " << h.sum << "\n";
    out << SuffixedName(h.name, "_count") << " " << h.count << "\n";
  }
  return out.str();
}

MetricsRegistryRef OrPrivateRegistry(MetricsRegistryRef metrics) {
  return metrics != nullptr ? std::move(metrics)
                            : std::make_shared<MetricsRegistry>();
}

std::string MetricName(const std::string& family, const std::string& label_key,
                       const std::string& label_value) {
  if (label_value.empty()) return family;
  return family + "{" + label_key + "=\"" + EscapeLabelValue(label_value) +
         "\"}";
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace tcq
