// Unified metrics & introspection layer. Every adaptive component of the
// Figure-1/Figure-5 stack (eddy routing, SteM state, Fjord queues, the
// executor's EOs/DUs, egress shedding) registers named instruments with a
// MetricsRegistry; a cheap Snapshot() gives a consistent-enough point-in-time
// view and FormatText() renders a Prometheus-style text dump. Adaptivity is
// the paper's whole premise — this layer is what makes it observable.
//
// Design:
//  * Instruments (Counter, Gauge, Histogram) are lock-free std::atomic on
//    the hot path; registration (name -> instrument) takes a mutex once.
//  * Instrument pointers returned by the registry are stable for the
//    registry's lifetime, so components cache them and never re-look-up.
//  * Components that are not handed a registry create a private one, so the
//    same code path runs with and without external observation.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tcq {

/// Monotone event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, selectivity permille, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency/size histogram. Bucket i counts observations with
/// value < 2^i (the last bucket is +inf), covering 1us..~8.4s when values
/// are microseconds. Observe() is three relaxed atomic adds.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 24;  // 2^0 .. 2^23, then +inf

  void Observe(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of bucket i (inclusive, "le"); UINT64_MAX for the last.
  static uint64_t BucketBound(size_t i) {
    return i + 1 >= kNumBuckets + 1 ? UINT64_MAX : (uint64_t{1} << (i + 1)) - 1;
  }

  static size_t BucketFor(uint64_t value) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (value < (uint64_t{1} << (i + 1))) return i;
    }
    return kNumBuckets;  // +inf
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets + 1> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Point-in-time copy of every instrument in a registry.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<std::pair<uint64_t, uint64_t>> buckets;  // (le, count)
    /// Derived quantiles (see ApproxQuantile), precomputed by Snapshot()
    /// so Introspect() callers and the tcq$latency stream share one
    /// interpolation. 0 when the histogram is empty.
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    /// Quantile q in [0,1], linearly interpolated within the covering
    /// bucket (monotone in q); 0 when empty.
    uint64_t ApproxQuantile(double q) const;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;

  /// Lookup helpers (0 / nullptr when absent).
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  const HistogramData* FindHistogram(const std::string& name) const;
  /// Sum of every counter whose name starts with `prefix` — aggregates one
  /// metric family across instance labels.
  uint64_t CounterFamilySum(const std::string& prefix) const;
};

/// Thread-safe instrument registry. Get* returns the existing instrument
/// when the name is already registered, so instances sharing a name share
/// (aggregate into) one instrument.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Prometheus-style text exposition of the current snapshot.
  std::string FormatText() const;
  static std::string FormatText(const MetricsSnapshot& snap);

  size_t num_instruments() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

using MetricsRegistryRef = std::shared_ptr<MetricsRegistry>;

/// The registry handed in, or a fresh private one — so components observe
/// themselves identically whether or not anyone is watching.
MetricsRegistryRef OrPrivateRegistry(MetricsRegistryRef metrics);

/// "family{key="value"}" (or just "family" when the label is empty). The
/// label value is escaped per the Prometheus exposition format.
std::string MetricName(const std::string& family, const std::string& label_key,
                       const std::string& label_value);

/// Prometheus label-value escaping: backslash, double quote, and newline.
/// Callers assembling label sets by hand must apply this to each value.
std::string EscapeLabelValue(const std::string& value);

/// Microseconds on the steady clock, for enqueue->dequeue latencies.
int64_t NowMicros();

}  // namespace tcq
