// QuerySet: a dynamic bitset over registered continuous-query ids. CACQ tuple
// lineage (paper §3.1) tracks, per tuple, which queries are still "live" for
// it; grouped filters return the set of queries a value satisfies.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcq {

using QueryId = uint32_t;

class QuerySet {
 public:
  QuerySet() = default;
  explicit QuerySet(size_t num_queries)
      : bits_((num_queries + 63) / 64, 0), size_(num_queries) {}

  /// A set of the given size with every query present.
  static QuerySet All(size_t num_queries) {
    QuerySet s(num_queries);
    for (size_t i = 0; i < num_queries; ++i) s.Add(static_cast<QueryId>(i));
    return s;
  }

  size_t size() const { return size_; }

  void Resize(size_t num_queries) {
    bits_.resize((num_queries + 63) / 64, 0);
    size_ = num_queries;
  }

  void Add(QueryId q) {
    EnsureCapacity(q);
    bits_[q >> 6] |= (uint64_t{1} << (q & 63));
  }

  void Remove(QueryId q) {
    if ((q >> 6) < bits_.size()) bits_[q >> 6] &= ~(uint64_t{1} << (q & 63));
  }

  bool Contains(QueryId q) const {
    return (q >> 6) < bits_.size() &&
           (bits_[q >> 6] >> (q & 63)) & 1;
  }

  bool Empty() const {
    for (uint64_t w : bits_) {
      if (w) return false;
    }
    return true;
  }

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : bits_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// In-place intersection; the result has the max of the two word widths.
  void IntersectWith(const QuerySet& other) {
    size_t n = std::min(bits_.size(), other.bits_.size());
    for (size_t i = 0; i < n; ++i) bits_[i] &= other.bits_[i];
    for (size_t i = n; i < bits_.size(); ++i) bits_[i] = 0;
  }

  void UnionWith(const QuerySet& other) {
    if (other.bits_.size() > bits_.size()) bits_.resize(other.bits_.size(), 0);
    if (other.size_ > size_) size_ = other.size_;
    for (size_t i = 0; i < other.bits_.size(); ++i) bits_[i] |= other.bits_[i];
  }

  void SubtractWith(const QuerySet& other) {
    size_t n = std::min(bits_.size(), other.bits_.size());
    for (size_t i = 0; i < n; ++i) bits_[i] &= ~other.bits_[i];
  }

  bool Intersects(const QuerySet& other) const {
    size_t n = std::min(bits_.size(), other.bits_.size());
    for (size_t i = 0; i < n; ++i) {
      if (bits_[i] & other.bits_[i]) return true;
    }
    return false;
  }

  /// Calls fn(QueryId) for every member, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < bits_.size(); ++w) {
      uint64_t word = bits_[w];
      while (word) {
        int b = __builtin_ctzll(word);
        fn(static_cast<QueryId>(w * 64 + static_cast<size_t>(b)));
        word &= word - 1;
      }
    }
  }

  std::vector<QueryId> ToVector() const {
    std::vector<QueryId> out;
    out.reserve(Count());
    ForEach([&](QueryId q) { out.push_back(q); });
    return out;
  }

  bool operator==(const QuerySet& other) const {
    size_t n = std::max(bits_.size(), other.bits_.size());
    for (size_t i = 0; i < n; ++i) {
      uint64_t a = i < bits_.size() ? bits_[i] : 0;
      uint64_t b = i < other.bits_.size() ? other.bits_[i] : 0;
      if (a != b) return false;
    }
    return true;
  }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    ForEach([&](QueryId q) {
      if (!first) out += ",";
      out += std::to_string(q);
      first = false;
    });
    out += "}";
    return out;
  }

 private:
  void EnsureCapacity(QueryId q) {
    size_t need = (static_cast<size_t>(q) >> 6) + 1;
    if (bits_.size() < need) bits_.resize(need, 0);
    if (size_ <= q) size_ = q + 1;
  }

  std::vector<uint64_t> bits_;
  size_t size_ = 0;
};

}  // namespace tcq
