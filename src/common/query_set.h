// QuerySet: a dynamic bitset over registered continuous-query ids. CACQ tuple
// lineage (paper §3.1) tracks, per tuple, which queries are still "live" for
// it; grouped filters return the set of queries a value satisfies.
//
// Lineage travels with EVERY envelope through the shared eddy, so copying a
// QuerySet is on the ingest hot path. Sets up to kInlineWords*64 queries live
// in an inline buffer — copying them is a memcpy, no allocation; only larger
// registries spill to the heap.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace tcq {

using QueryId = uint32_t;

class QuerySet {
 public:
  QuerySet() = default;
  explicit QuerySet(size_t num_queries) { Resize(num_queries); }

  /// A set of the given size with every query present.
  static QuerySet All(size_t num_queries) {
    QuerySet s(num_queries);
    for (size_t i = 0; i < num_queries; ++i) s.Add(static_cast<QueryId>(i));
    return s;
  }

  size_t size() const { return size_; }

  void Resize(size_t num_queries) {
    GrowWords((num_queries + 63) / 64);
    size_ = std::max(size_, num_queries);
  }

  void Add(QueryId q) {
    EnsureCapacity(q);
    words()[q >> 6] |= (uint64_t{1} << (q & 63));
  }

  void Remove(QueryId q) {
    if ((q >> 6) < words_) words()[q >> 6] &= ~(uint64_t{1} << (q & 63));
  }

  bool Contains(QueryId q) const {
    return (q >> 6) < words_ && (words()[q >> 6] >> (q & 63)) & 1;
  }

  bool Empty() const {
    const uint64_t* w = words();
    for (size_t i = 0; i < words_; ++i) {
      if (w[i]) return false;
    }
    return true;
  }

  size_t Count() const {
    const uint64_t* w = words();
    size_t n = 0;
    for (size_t i = 0; i < words_; ++i) {
      n += static_cast<size_t>(__builtin_popcountll(w[i]));
    }
    return n;
  }

  /// In-place intersection; the result has the max of the two word widths.
  void IntersectWith(const QuerySet& other) {
    uint64_t* w = words();
    const uint64_t* ow = other.words();
    size_t n = std::min(words_, other.words_);
    for (size_t i = 0; i < n; ++i) w[i] &= ow[i];
    for (size_t i = n; i < words_; ++i) w[i] = 0;
  }

  void UnionWith(const QuerySet& other) {
    GrowWords(other.words_);
    if (other.size_ > size_) size_ = other.size_;
    uint64_t* w = words();
    const uint64_t* ow = other.words();
    for (size_t i = 0; i < other.words_; ++i) w[i] |= ow[i];
  }

  void SubtractWith(const QuerySet& other) {
    uint64_t* w = words();
    const uint64_t* ow = other.words();
    size_t n = std::min(words_, other.words_);
    for (size_t i = 0; i < n; ++i) w[i] &= ~ow[i];
  }

  bool Intersects(const QuerySet& other) const {
    const uint64_t* w = words();
    const uint64_t* ow = other.words();
    size_t n = std::min(words_, other.words_);
    for (size_t i = 0; i < n; ++i) {
      if (w[i] & ow[i]) return true;
    }
    return false;
  }

  /// Calls fn(QueryId) for every member, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const uint64_t* w = words();
    for (size_t i = 0; i < words_; ++i) {
      uint64_t word = w[i];
      while (word) {
        int b = __builtin_ctzll(word);
        fn(static_cast<QueryId>(i * 64 + static_cast<size_t>(b)));
        word &= word - 1;
      }
    }
  }

  std::vector<QueryId> ToVector() const {
    std::vector<QueryId> out;
    out.reserve(Count());
    ForEach([&](QueryId q) { out.push_back(q); });
    return out;
  }

  bool operator==(const QuerySet& other) const {
    const uint64_t* w = words();
    const uint64_t* ow = other.words();
    size_t n = std::max(words_, other.words_);
    for (size_t i = 0; i < n; ++i) {
      uint64_t a = i < words_ ? w[i] : 0;
      uint64_t b = i < other.words_ ? ow[i] : 0;
      if (a != b) return false;
    }
    return true;
  }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    ForEach([&](QueryId q) {
      if (!first) out += ",";
      out += std::to_string(q);
      first = false;
    });
    out += "}";
    return out;
  }

 private:
  static constexpr size_t kInlineWords = 2;  // 128 queries without allocating

  // Storage invariant: the live words are inline_ iff words_ <= kInlineWords,
  // heap_ otherwise. Growth only (no caller shrinks a set).
  const uint64_t* words() const {
    return words_ <= kInlineWords ? inline_ : heap_.data();
  }
  uint64_t* words() { return words_ <= kInlineWords ? inline_ : heap_.data(); }

  void GrowWords(size_t need) {
    if (need <= words_) return;
    if (need > kInlineWords) {
      if (words_ <= kInlineWords) heap_.assign(inline_, inline_ + words_);
      heap_.resize(need, 0);
    }
    words_ = need;
  }

  void EnsureCapacity(QueryId q) {
    GrowWords((static_cast<size_t>(q) >> 6) + 1);
    if (size_ <= q) size_ = static_cast<size_t>(q) + 1;
  }

  uint64_t inline_[kInlineWords] = {};
  std::vector<uint64_t> heap_;
  size_t words_ = 0;
  size_t size_ = 0;
};

}  // namespace tcq
