#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace tcq {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

uint64_t Rng::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0) {
    return static_cast<uint64_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = Zeta(n, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    double zeta2 = Zeta(2, theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
  }
  double u = UniformDouble(0.0, 1.0);
  double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n) * std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
  if (v >= n) v = n - 1;
  return v;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0;
  assert(total > 0.0);
  double pick = UniformDouble(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] > 0 ? weights[i] : 0;
    if (pick < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace tcq
