// Seeded random number generation used across workload generators, routing
// policies (lottery scheduling), and property-test sweeps. Everything is
// deterministic given a seed so experiments are reproducible.

#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace tcq {

/// A seeded PRNG with the distributions the workloads need.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Exponentially distributed inter-arrival gap with the given rate
  /// (events per unit time).
  double Exponential(double rate);

  /// Normally distributed value.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed value in [0, n); theta=0 is uniform, theta~1 is the
  /// classic skew. Uses the Gray et al. rejection-free method with cached
  /// normalization for fixed (n, theta).
  uint64_t Zipf(uint64_t n, double theta);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Weighted index selection: returns i with probability
  /// weights[i] / sum(weights). Requires a positive total weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  // Cached zipf normalization for the last (n, theta) pair.
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace tcq
