// Status / Result error-handling substrate, in the style of RocksDB/Arrow.
//
// TelegraphCQ avoids exceptions in the dataflow hot path: every fallible
// public operation returns a Status (or Result<T>), and callers propagate
// with TCQ_RETURN_IF_ERROR / TCQ_ASSIGN_OR_RETURN.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace tcq {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kTimedOut,
  kCancelled,
  kIOError,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Ok statuses carry no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error, in the spirit of arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                            // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  /// Requires ok(). Returns the contained value.
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

#define TCQ_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::tcq::Status _tcq_status = (expr);           \
    if (!_tcq_status.ok()) return _tcq_status;    \
  } while (0)

#define TCQ_CONCAT_IMPL(a, b) a##b
#define TCQ_CONCAT(a, b) TCQ_CONCAT_IMPL(a, b)

#define TCQ_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto TCQ_CONCAT(_tcq_result_, __LINE__) = (expr);            \
  if (!TCQ_CONCAT(_tcq_result_, __LINE__).ok())                \
    return TCQ_CONCAT(_tcq_result_, __LINE__).status();        \
  lhs = std::move(TCQ_CONCAT(_tcq_result_, __LINE__)).value()

}  // namespace tcq
