#include "eddy/eddy.h"

#include <cassert>
#include <cmath>

#include "obs/trace.h"
#include "operators/filter_kernels.h"
#include "operators/selection.h"
#include "tuple/column_store.h"

namespace tcq {

namespace {

// Literal classification shared with the grouped-filter compiler
// (grouped_filter.cpp): only numeric non-NaN literals enter kernels.
// -1: not kernelizable; 0: integral (int64/timestamp); 1: double.
int LiteralKind(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return 0;
    case ValueType::kDouble:
      return std::isnan(v.AsDouble()) ? -1 : 1;
    default:
      return -1;
  }
}

int64_t IntegralOf(const Value& v) {
  return v.type() == ValueType::kTimestamp
             ? static_cast<int64_t>(v.AsTimestamp())
             : v.AsInt64();
}

kernels::Cmp CmpOf(CmpOp op) {
  switch (op) {
    case CmpOp::kGe:
      return kernels::Cmp::kGe;
    case CmpOp::kGt:
      return kernels::Cmp::kGt;
    case CmpOp::kLe:
      return kernels::Cmp::kLe;
    case CmpOp::kLt:
      return kernels::Cmp::kLt;
    default:
      return kernels::Cmp::kNe;  // kEq is dispatched to MaskEq, never here.
  }
}

/// Resolves `attr` to a kernel-eligible lane: null-free int64/double with no
/// NaN data (Value::Compare treats NaN as equal to everything; IEEE
/// comparisons in the kernels do not).
const Column* KernelLane(const ColumnStore& cols, const AttrRef& attr,
                         size_t n) {
  auto idx = cols.schema()->IndexOf(attr.name, attr.source);
  if (!idx.has_value()) return nullptr;
  const Column& col = cols.column(*idx);
  if (col.has_nulls()) return nullptr;
  if (col.rep == ColumnRep::kInt64) return &col;
  if (col.rep == ColumnRep::kDouble && !kernels::AnyNaN(col.f64, n)) {
    return &col;
  }
  return nullptr;
}

bool TryMaskCompare(const CompareConst& cc, const ColumnStore& cols, size_t n,
                    uint8_t* mask) {
  const Column* col = KernelLane(cols, cc.attr(), n);
  if (col == nullptr) return false;
  const int kind = LiteralKind(cc.literal());
  if (kind < 0) return false;
  if (col->rep == ColumnRep::kInt64 && kind == 0) {
    // Both sides integral: Value::Compare stays in int64, so must we.
    const int64_t lit = IntegralOf(cc.literal());
    if (cc.op() == CmpOp::kEq) {
      kernels::MaskEq<int64_t, int64_t>(mask, col->i64, n, lit);
    } else {
      kernels::MaskCmpDyn<int64_t, int64_t>(mask, col->i64, n, lit,
                                            CmpOf(cc.op()));
    }
    return true;
  }
  // Either side double: Value::Compare promotes both through ToDouble.
  const double lit = kind == 0 ? static_cast<double>(IntegralOf(cc.literal()))
                               : cc.literal().AsDouble();
  if (col->rep == ColumnRep::kInt64) {
    if (cc.op() == CmpOp::kEq) {
      kernels::MaskEq<int64_t, double>(mask, col->i64, n, lit);
    } else {
      kernels::MaskCmpDyn<int64_t, double>(mask, col->i64, n, lit,
                                           CmpOf(cc.op()));
    }
  } else {
    if (cc.op() == CmpOp::kEq) {
      kernels::MaskEq<double, double>(mask, col->f64, n, lit);
    } else {
      kernels::MaskCmpDyn<double, double>(mask, col->f64, n, lit,
                                          CmpOf(cc.op()));
    }
  }
  return true;
}

bool TryMaskRange(const RangePredicate& rp, const ColumnStore& cols, size_t n,
                  uint8_t* mask) {
  const Column* col = KernelLane(cols, rp.attr(), n);
  if (col == nullptr) return false;
  const int lo_kind = LiteralKind(rp.lo());
  const int hi_kind = LiteralKind(rp.hi());
  if (lo_kind < 0 || hi_kind < 0) return false;
  if (col->rep == ColumnRep::kInt64) {
    if (lo_kind == 0 && hi_kind == 0) {
      kernels::MaskRangeDyn<int64_t, int64_t>(
          mask, col->i64, n, IntegralOf(rp.lo()), IntegralOf(rp.hi()),
          rp.lo_inclusive(), rp.hi_inclusive());
    } else {
      // Mixed literal families: evaluate each side in the comparison type
      // Value::Compare would pick for it (two mask sweeps AND together).
      if (lo_kind == 0) {
        kernels::MaskCmpDyn<int64_t, int64_t>(
            mask, col->i64, n, IntegralOf(rp.lo()),
            rp.lo_inclusive() ? kernels::Cmp::kGe : kernels::Cmp::kGt);
      } else {
        kernels::MaskCmpDyn<int64_t, double>(
            mask, col->i64, n, rp.lo().AsDouble(),
            rp.lo_inclusive() ? kernels::Cmp::kGe : kernels::Cmp::kGt);
      }
      if (hi_kind == 0) {
        kernels::MaskCmpDyn<int64_t, int64_t>(
            mask, col->i64, n, IntegralOf(rp.hi()),
            rp.hi_inclusive() ? kernels::Cmp::kLe : kernels::Cmp::kLt);
      } else {
        kernels::MaskCmpDyn<int64_t, double>(
            mask, col->i64, n, rp.hi().AsDouble(),
            rp.hi_inclusive() ? kernels::Cmp::kLe : kernels::Cmp::kLt);
      }
    }
    return true;
  }
  const double lo = lo_kind == 0 ? static_cast<double>(IntegralOf(rp.lo()))
                                 : rp.lo().AsDouble();
  const double hi = hi_kind == 0 ? static_cast<double>(IntegralOf(rp.hi()))
                                 : rp.hi().AsDouble();
  kernels::MaskRangeDyn<double, double>(mask, col->f64, n, lo, hi,
                                        rp.lo_inclusive(), rp.hi_inclusive());
  return true;
}

/// Narrows mask[0..n) to the predicate's matches and returns true, or
/// returns false when the predicate falls outside the kernel exactness
/// contract (the mask may then be partially narrowed — callers discard it).
bool TryMaskPredicate(const Predicate& pred, const ColumnStore& cols,
                      size_t n, uint8_t* mask) {
  if (auto* cc = dynamic_cast<const CompareConst*>(&pred)) {
    return TryMaskCompare(*cc, cols, n, mask);
  }
  if (auto* rp = dynamic_cast<const RangePredicate*>(&pred)) {
    return TryMaskRange(*rp, cols, n, mask);
  }
  if (auto* ap = dynamic_cast<const AndPredicate*>(&pred)) {
    // Children are pure, so full evaluation equals short-circuit AND.
    for (const auto& child : ap->children()) {
      if (!TryMaskPredicate(*child, cols, n, mask)) return false;
    }
    return true;
  }
  return false;
}

}  // namespace

Eddy::Eddy(std::unique_ptr<RoutingPolicy> policy, Options opts,
           MetricsRegistryRef metrics, std::string label)
    : policy_(std::move(policy)),
      opts_(opts),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      label_(std::move(label)) {
  assert(opts_.batch_size >= 1);
  assert(opts_.fix_len >= 1);
  routing_decisions_ = metrics_->GetCounter(
      MetricName("tcq_eddy_routing_decisions_total", "eddy", label_));
  module_invocations_ = metrics_->GetCounter(
      MetricName("tcq_eddy_module_invocations_total", "eddy", label_));
  tuples_ingested_ = metrics_->GetCounter(
      MetricName("tcq_eddy_tuples_ingested_total", "eddy", label_));
  tuples_output_ = metrics_->GetCounter(
      MetricName("tcq_eddy_tuples_output_total", "eddy", label_));
}

size_t Eddy::AddModule(std::unique_ptr<EddyModule> module) {
  assert(modules_.size() < 32 && "at most 32 modules per eddy");
  sources_seen_ |= module->contributes();
  modules_.push_back(std::move(module));
  module_stats_.push_back(modules_.back().get());
  std::string slot_label = label_.empty()
                               ? modules_.back()->name()
                               : label_ + "/" + modules_.back()->name();
  slot_selectivity_permille_.push_back(metrics_->GetGauge(
      MetricName("tcq_eddy_module_selectivity_permille", "module",
                 slot_label)));
  slot_consumed_.push_back(metrics_->GetGauge(
      MetricName("tcq_eddy_module_consumed", "module", slot_label)));
  policy_->OnModuleCountChanged(modules_.size());
  // Any cached routing decision may be stale once the module set changes.
  decision_cache_.clear();
  return modules_.size() - 1;
}

void Eddy::AttachSteM(std::shared_ptr<SteM> stem) {
  sources_seen_ |= SourceBit(stem->source());
  stems_.push_back(std::move(stem));
  // The SteM widens the sources the eddy spans; cached routing decisions
  // predate it and carry stale completion assumptions.
  decision_cache_.clear();
}

SourceSet Eddy::RequiredSources() const {
  return required_override_ != 0 ? required_override_ : sources_seen_;
}

void Eddy::Ingest(SourceId source, const Tuple& tuple) {
  tuples_ingested_->Inc();
  Timestamp seq = next_seq_++;
  for (auto& stem : stems_) {
    if (stem->source() == source) stem->Build(tuple, seq);
  }
  queue_.push_back(Envelope{tuple, 0, seq});
  if (!draining_) Drain();
}

void Eddy::IngestBatch(const TupleBatch& batch) {
  if (batch.empty()) return;
  const size_t n = batch.size();
  tuples_ingested_->Inc(n);
  // Resolve the batch's SteM build targets once instead of scanning the
  // attached-SteM list per tuple.
  build_stems_scratch_.clear();
  for (auto& stem : stems_) {
    if (stem->source() == batch.source()) {
      build_stems_scratch_.push_back(stem.get());
    }
  }
  // Pre-assign sequence numbers and build ALL rows into SteMs up front:
  // rows the prefilter below drops must still exist for later probes,
  // exactly as if they had been routed and then dropped by the selection.
  const Timestamp seq0 = next_seq_;
  next_seq_ += n;
  if (!build_stems_scratch_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      const Tuple t = batch.RowAt(i);
      for (SteM* stem : build_stems_scratch_) stem->Build(t, seq0 + i);
    }
  }

  // Columnar selection prefilter (DESIGN.md §11): zero-cost Selection
  // modules over kernel-eligible lanes are evaluated for the whole batch
  // with mask sweeps over the contiguous columns. Rows that fail are
  // dropped here and never materialized into the routing queue; survivors
  // enter Drain() with those modules' done bits already set. Selections
  // commute (paper §2.2), so absorbing them ahead of the per-tuple router
  // is result-neutral; per-row stats keep the routing policy adaptive.
  obs::TraceContext& tc = obs::CurrentTrace();
  uint32_t prefilter_done = 0;
  bool prefiltered = false;
  const ColumnStore::Ref& cols =
      n >= kPrefilterMinRows ? batch.columns() : ColumnStore::Ref();
  if (cols != nullptr) {
    const SourceSet span = cols->schema()->sources();
    for (size_t slot = 0; slot < modules_.size(); ++slot) {
      auto* sel = dynamic_cast<Selection*>(modules_[slot].get());
      if (sel == nullptr || sel->cost_loops() != 0) continue;
      if (!sel->AppliesTo(span)) continue;
      prefilter_mask_.assign(n, 1);
      if (!TryMaskPredicate(*sel->predicate(), *cols, n,
                            prefilter_mask_.data())) {
        continue;
      }
      if (!prefiltered) {
        prefilter_alive_.assign(n, 1);
        prefilter_hops_.assign(n, 0);
      }
      const int64_t hop_t0 = tc.tracer != nullptr ? NowMicros() : 0;
      uint64_t invocations = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!prefilter_alive_[i]) continue;
        ++invocations;
        ++prefilter_hops_[i];
        const ModuleAction action = prefilter_mask_[i] != 0
                                        ? ModuleAction::kPass
                                        : ModuleAction::kDrop;
        sel->RecordResult(action, 0);
        policy_->OnResult(slot, action, 0);
        if (action == ModuleAction::kDrop) {
          prefilter_alive_[i] = 0;
          if (tc.tracer != nullptr) {
            tc.tracer->RecordHopCount(prefilter_hops_[i]);
          }
        }
      }
      module_invocations_->Inc(invocations);
      prefilter_done |= (uint32_t{1} << slot);
      prefiltered = true;
      const RoutableStats* stats = module_stats_[slot];
      slot_selectivity_permille_[slot]->Set(
          static_cast<int64_t>(stats->ObservedSelectivity() * 1000.0));
      slot_consumed_[slot]->Set(static_cast<int64_t>(stats->consumed()));
      if (tc.tracer != nullptr) {
        // One batched span covers the whole column sweep.
        tc.tracer->RecordHop(slot, sel->name(), hop_t0,
                             NowMicros() - hop_t0);
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (prefiltered && prefilter_alive_[i] == 0) continue;
    queue_.push_back(
        Envelope{batch.RowAt(i), prefilter_done,
                 seq0 + static_cast<Timestamp>(i),
                 prefiltered ? prefilter_hops_[i] : 0});
  }
  if (!draining_) Drain();
}

void Eddy::AdvanceTime(Timestamp now) {
  for (auto& stem : stems_) stem->AdvanceTime(now);
}

bool Eddy::ComputeReady(const Envelope& env,
                        std::vector<size_t>* ready) const {
  ready->clear();
  SourceSet span = env.tuple.sources();
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (env.done & (uint32_t{1} << i)) continue;
    if (modules_[i]->AppliesTo(span)) ready->push_back(i);
  }
  return !ready->empty();
}

void Eddy::EmitIfComplete(Envelope&& env) {
  // No module applies anymore; the tuple completes iff it spans the query
  // footprint (a partial join result that can no longer grow is a dead end).
  SourceSet required = RequiredSources();
  if ((required & ~env.tuple.sources()) == 0) {
    tuples_output_->Inc();
    if (output_) output_(env.tuple);
  }
}

void Eddy::Drain() {
  draining_ = true;
  // Bound once per drain: non-null only inside a sampled trace batch.
  obs::TraceContext& tc = obs::CurrentTrace();
  while (!queue_.empty()) {
    Envelope env = std::move(queue_.front());
    queue_.pop_front();

    while (true) {
      if (!ComputeReady(env, &ready_scratch_)) {
        if (tc.tracer != nullptr) tc.tracer->RecordHopCount(env.hops);
        EmitIfComplete(std::move(env));
        break;
      }

      // One routing decision fixes an ordered pipeline; with batching the
      // decision is reused for consecutive tuples with the same signature.
      // The ready set is a function of (done, sources), so equal signatures
      // imply equal ready sets and the cached order stays valid.
      uint64_t signature =
          (uint64_t{env.done} << 32) | uint64_t{env.tuple.sources()};
      const std::vector<size_t>* order = nullptr;
      CachedDecision* cached =
          opts_.batch_size > 1 ? &decision_cache_[signature] : nullptr;
      if (cached != nullptr && cached->remaining > 0) {
        --cached->remaining;
        order = &cached->order;
      } else {
        order_scratch_.clear();
        policy_->Rank(ready_scratch_, module_stats_, &order_scratch_);
        routing_decisions_->Inc();
        assert(!order_scratch_.empty());
        if (cached != nullptr) {
          cached->order = order_scratch_;
          cached->remaining = opts_.batch_size - 1;
          order = &cached->order;
        } else {
          order = &order_scratch_;
        }
      }

      bool terminal = false;
      uint32_t applied = 0;
      for (size_t slot : *order) {
        if (applied >= opts_.fix_len) break;
        ++applied;
        module_invocations_->Inc();
        out_scratch_.clear();
        int64_t hop_t0 = tc.tracer != nullptr ? NowMicros() : 0;
        ModuleAction action = modules_[slot]->Process(env, &out_scratch_);
        ++env.hops;
        if (tc.tracer != nullptr) {
          tc.tracer->RecordHop(slot, modules_[slot]->name(), hop_t0,
                               NowMicros() - hop_t0);
        }
        modules_[slot]->RecordResult(action, out_scratch_.size());
        policy_->OnResult(slot, action, out_scratch_.size());
        const RoutableStats* stats = module_stats_[slot];
        slot_selectivity_permille_[slot]->Set(
            static_cast<int64_t>(stats->ObservedSelectivity() * 1000.0));
        slot_consumed_[slot]->Set(static_cast<int64_t>(stats->consumed()));
        switch (action) {
          case ModuleAction::kPass:
            env.done |= (uint32_t{1} << slot);
            continue;
          case ModuleAction::kDrop:
            if (tc.tracer != nullptr) tc.tracer->RecordHopCount(env.hops);
            terminal = true;
            break;
          case ModuleAction::kExpand:
            for (Envelope& child : out_scratch_) {
              child.done |= env.done | (uint32_t{1} << slot);
              child.hops = env.hops;
              queue_.push_back(std::move(child));
            }
            terminal = true;
            break;
        }
        if (terminal) break;
      }
      if (terminal) break;
      // All pipelined modules passed; re-evaluate readiness and continue.
    }
  }
  draining_ = false;
}

}  // namespace tcq
