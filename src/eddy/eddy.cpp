#include "eddy/eddy.h"

#include <cassert>

#include "obs/trace.h"

namespace tcq {

Eddy::Eddy(std::unique_ptr<RoutingPolicy> policy, Options opts,
           MetricsRegistryRef metrics, std::string label)
    : policy_(std::move(policy)),
      opts_(opts),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      label_(std::move(label)) {
  assert(opts_.batch_size >= 1);
  assert(opts_.fix_len >= 1);
  routing_decisions_ = metrics_->GetCounter(
      MetricName("tcq_eddy_routing_decisions_total", "eddy", label_));
  module_invocations_ = metrics_->GetCounter(
      MetricName("tcq_eddy_module_invocations_total", "eddy", label_));
  tuples_ingested_ = metrics_->GetCounter(
      MetricName("tcq_eddy_tuples_ingested_total", "eddy", label_));
  tuples_output_ = metrics_->GetCounter(
      MetricName("tcq_eddy_tuples_output_total", "eddy", label_));
}

size_t Eddy::AddModule(std::unique_ptr<EddyModule> module) {
  assert(modules_.size() < 32 && "at most 32 modules per eddy");
  sources_seen_ |= module->contributes();
  modules_.push_back(std::move(module));
  module_stats_.push_back(modules_.back().get());
  std::string slot_label = label_.empty()
                               ? modules_.back()->name()
                               : label_ + "/" + modules_.back()->name();
  slot_selectivity_permille_.push_back(metrics_->GetGauge(
      MetricName("tcq_eddy_module_selectivity_permille", "module",
                 slot_label)));
  slot_consumed_.push_back(metrics_->GetGauge(
      MetricName("tcq_eddy_module_consumed", "module", slot_label)));
  policy_->OnModuleCountChanged(modules_.size());
  // Any cached routing decision may be stale once the module set changes.
  decision_cache_.clear();
  return modules_.size() - 1;
}

void Eddy::AttachSteM(std::shared_ptr<SteM> stem) {
  sources_seen_ |= SourceBit(stem->source());
  stems_.push_back(std::move(stem));
  // The SteM widens the sources the eddy spans; cached routing decisions
  // predate it and carry stale completion assumptions.
  decision_cache_.clear();
}

SourceSet Eddy::RequiredSources() const {
  return required_override_ != 0 ? required_override_ : sources_seen_;
}

void Eddy::Ingest(SourceId source, const Tuple& tuple) {
  tuples_ingested_->Inc();
  Timestamp seq = next_seq_++;
  for (auto& stem : stems_) {
    if (stem->source() == source) stem->Build(tuple, seq);
  }
  queue_.push_back(Envelope{tuple, 0, seq});
  if (!draining_) Drain();
}

void Eddy::IngestBatch(const TupleBatch& batch) {
  if (batch.empty()) return;
  tuples_ingested_->Inc(batch.size());
  // Resolve the batch's SteM build targets once instead of scanning the
  // attached-SteM list per tuple.
  build_stems_scratch_.clear();
  for (auto& stem : stems_) {
    if (stem->source() == batch.source()) {
      build_stems_scratch_.push_back(stem.get());
    }
  }
  for (const Tuple& t : batch) {
    Timestamp seq = next_seq_++;
    for (SteM* stem : build_stems_scratch_) stem->Build(t, seq);
    queue_.push_back(Envelope{t, 0, seq});
  }
  if (!draining_) Drain();
}

void Eddy::AdvanceTime(Timestamp now) {
  for (auto& stem : stems_) stem->AdvanceTime(now);
}

bool Eddy::ComputeReady(const Envelope& env,
                        std::vector<size_t>* ready) const {
  ready->clear();
  SourceSet span = env.tuple.sources();
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (env.done & (uint32_t{1} << i)) continue;
    if (modules_[i]->AppliesTo(span)) ready->push_back(i);
  }
  return !ready->empty();
}

void Eddy::EmitIfComplete(Envelope&& env) {
  // No module applies anymore; the tuple completes iff it spans the query
  // footprint (a partial join result that can no longer grow is a dead end).
  SourceSet required = RequiredSources();
  if ((required & ~env.tuple.sources()) == 0) {
    tuples_output_->Inc();
    if (output_) output_(env.tuple);
  }
}

void Eddy::Drain() {
  draining_ = true;
  // Bound once per drain: non-null only inside a sampled trace batch.
  obs::TraceContext& tc = obs::CurrentTrace();
  while (!queue_.empty()) {
    Envelope env = std::move(queue_.front());
    queue_.pop_front();

    while (true) {
      if (!ComputeReady(env, &ready_scratch_)) {
        if (tc.tracer != nullptr) tc.tracer->RecordHopCount(env.hops);
        EmitIfComplete(std::move(env));
        break;
      }

      // One routing decision fixes an ordered pipeline; with batching the
      // decision is reused for consecutive tuples with the same signature.
      // The ready set is a function of (done, sources), so equal signatures
      // imply equal ready sets and the cached order stays valid.
      uint64_t signature =
          (uint64_t{env.done} << 32) | uint64_t{env.tuple.sources()};
      const std::vector<size_t>* order = nullptr;
      CachedDecision* cached =
          opts_.batch_size > 1 ? &decision_cache_[signature] : nullptr;
      if (cached != nullptr && cached->remaining > 0) {
        --cached->remaining;
        order = &cached->order;
      } else {
        order_scratch_.clear();
        policy_->Rank(ready_scratch_, module_stats_, &order_scratch_);
        routing_decisions_->Inc();
        assert(!order_scratch_.empty());
        if (cached != nullptr) {
          cached->order = order_scratch_;
          cached->remaining = opts_.batch_size - 1;
          order = &cached->order;
        } else {
          order = &order_scratch_;
        }
      }

      bool terminal = false;
      uint32_t applied = 0;
      for (size_t slot : *order) {
        if (applied >= opts_.fix_len) break;
        ++applied;
        module_invocations_->Inc();
        out_scratch_.clear();
        int64_t hop_t0 = tc.tracer != nullptr ? NowMicros() : 0;
        ModuleAction action = modules_[slot]->Process(env, &out_scratch_);
        ++env.hops;
        if (tc.tracer != nullptr) {
          tc.tracer->RecordHop(slot, modules_[slot]->name(), hop_t0,
                               NowMicros() - hop_t0);
        }
        modules_[slot]->RecordResult(action, out_scratch_.size());
        policy_->OnResult(slot, action, out_scratch_.size());
        const RoutableStats* stats = module_stats_[slot];
        slot_selectivity_permille_[slot]->Set(
            static_cast<int64_t>(stats->ObservedSelectivity() * 1000.0));
        slot_consumed_[slot]->Set(static_cast<int64_t>(stats->consumed()));
        switch (action) {
          case ModuleAction::kPass:
            env.done |= (uint32_t{1} << slot);
            continue;
          case ModuleAction::kDrop:
            if (tc.tracer != nullptr) tc.tracer->RecordHopCount(env.hops);
            terminal = true;
            break;
          case ModuleAction::kExpand:
            for (Envelope& child : out_scratch_) {
              child.done |= env.done | (uint32_t{1} << slot);
              child.hops = env.hops;
              queue_.push_back(std::move(child));
            }
            terminal = true;
            break;
        }
        if (terminal) break;
      }
      if (terminal) break;
      // All pipelined modules passed; re-evaluate readiness and continue.
    }
  }
  draining_ = false;
}

}  // namespace tcq
