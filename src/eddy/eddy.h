// Eddy: the adaptive tuple router (paper §2.2). Intercepts tuples flowing
// between modules, chooses their order per tuple via a routing policy, and
// emits a tuple once every applicable module has handled it. SteMs attached
// to the eddy receive build tuples on ingest ("an S tuple is first sent as a
// build tuple to SteM_S and then sent as a probe tuple to SteM_T", Fig. 2).
//
// The "adapting adaptivity" knobs of §4.3 are implemented here:
//   * batch_size  — one routing decision is reused for up to batch_size
//                   tuples with the same routing signature.
//   * fix_len     — each decision fixes an ordered pipeline of up to fix_len
//                   modules instead of a single hop.

#pragma once

#include <deque>
#include <unordered_map>
#include <functional>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "eddy/module.h"
#include "eddy/routing_policy.h"
#include "stem/stem.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace tcq {

class Eddy {
 public:
  struct Options {
    /// Routing decisions reused across consecutive same-signature tuples.
    uint32_t batch_size = 1;
    /// Modules fixed per routing decision.
    uint32_t fix_len = 1;
  };

  /// Batches below this size skip the columnar selection prefilter: the
  /// per-batch setup (column materialization, mask sweeps) only pays for
  /// itself with a few rows to amortize over.
  static constexpr size_t kPrefilterMinRows = 4;

  explicit Eddy(std::unique_ptr<RoutingPolicy> policy)
      : Eddy(std::move(policy), Options()) {}
  /// When `metrics` is null the eddy observes itself in a private registry;
  /// `label` distinguishes instances sharing one registry.
  Eddy(std::unique_ptr<RoutingPolicy> policy, Options opts,
       MetricsRegistryRef metrics = nullptr, std::string label = "");

  /// Adds a module; returns its slot. At most 32 modules per eddy (done
  /// bits are a 32-bit mask; "each individual Eddy provides a scope for
  /// adaptivity").
  size_t AddModule(std::unique_ptr<EddyModule> module);

  /// Attaches a SteM: ingested base tuples of the SteM's source are built
  /// into it before being routed.
  void AttachSteM(std::shared_ptr<SteM> stem);

  /// Sources a tuple must span before it can be output. Defaults to the
  /// union of sources contributed by modules and attached SteMs.
  void SetRequiredSources(SourceSet required) {
    required_override_ = required;
    // Cached routing decisions were taken under the old completion
    // assumptions; force fresh decisions.
    decision_cache_.clear();
  }

  /// Receives completed tuples.
  void SetOutput(std::function<void(const Tuple&)> sink) {
    output_ = std::move(sink);
  }

  /// Ingests one base tuple and runs the dataflow to quiescence.
  /// Equivalent to a batch of one.
  void Ingest(SourceId source, const Tuple& tuple);

  /// Ingests a whole same-source batch: the SteM build targets are resolved
  /// once, all tuples are built and enqueued, and the dataflow drains to
  /// quiescence once. Combined with the batch_size knob, one routing
  /// decision covers same-signature tuples across the entire batch. SteM
  /// builds ahead of probing are safe: probes bound matches by sequence
  /// number, so results are identical to per-tuple ingest.
  void IngestBatch(const TupleBatch& batch);

  /// Advances stream time on all attached SteMs (window eviction).
  void AdvanceTime(Timestamp now);

  RoutingPolicy* policy() { return policy_.get(); }
  EddyModule* module(size_t slot) { return modules_[slot].get(); }
  size_t num_modules() const { return modules_.size(); }

  // --- Statistics (thin reads over the metrics registry) --------------------
  uint64_t routing_decisions() const { return routing_decisions_->Value(); }
  uint64_t module_invocations() const { return module_invocations_->Value(); }
  uint64_t tuples_ingested() const { return tuples_ingested_->Value(); }
  uint64_t tuples_output() const { return tuples_output_->Value(); }
  const MetricsRegistryRef& metrics() const { return metrics_; }

 private:
  SourceSet RequiredSources() const;
  void Drain();
  /// Ready slots for an envelope; returns true if any.
  bool ComputeReady(const Envelope& env, std::vector<size_t>* ready) const;
  void EmitIfComplete(Envelope&& env);

  std::unique_ptr<RoutingPolicy> policy_;
  Options opts_;
  std::vector<std::unique_ptr<EddyModule>> modules_;
  std::vector<const RoutableStats*> module_stats_;
  std::vector<std::shared_ptr<SteM>> stems_;
  std::function<void(const Tuple&)> output_;
  SourceSet sources_seen_ = 0;
  SourceSet required_override_ = 0;
  Timestamp next_seq_ = 1;

  std::deque<Envelope> queue_;
  bool draining_ = false;

  // Cached routing decisions for the batching knob, keyed by routing
  // signature (done bits + source span). Each decision is reused for up to
  // batch_size - 1 further tuples with the same signature.
  struct CachedDecision {
    std::vector<size_t> order;
    uint32_t remaining = 0;
  };
  std::unordered_map<uint64_t, CachedDecision> decision_cache_;

  // Scratch buffers.
  std::vector<SteM*> build_stems_scratch_;
  std::vector<size_t> ready_scratch_;
  std::vector<size_t> order_scratch_;
  std::vector<Envelope> out_scratch_;
  // Columnar-prefilter scratch (IngestBatch): per-row survival mask across
  // all prefiltered selections, the current module's fresh mask, and per-row
  // hop counts carried into surviving envelopes.
  std::vector<uint8_t> prefilter_alive_;
  std::vector<uint8_t> prefilter_mask_;
  std::vector<uint32_t> prefilter_hops_;

  MetricsRegistryRef metrics_;
  std::string label_;
  Counter* routing_decisions_;
  Counter* module_invocations_;
  Counter* tuples_ingested_;
  Counter* tuples_output_;
  // Parallel to modules_: per-slot observed selectivity/cost gauges.
  std::vector<Gauge*> slot_selectivity_permille_;
  std::vector<Gauge*> slot_consumed_;
};

}  // namespace tcq
