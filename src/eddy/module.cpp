#include "eddy/module.h"

namespace tcq {

double RoutableStats::ObservedSelectivity() const {
  if (consumed_ == 0) return 1.0;
  return static_cast<double>(passed_ + expanded_out_) /
         static_cast<double>(consumed_);
}

void RoutableStats::RecordResult(ModuleAction action, size_t num_out) {
  ++consumed_;
  switch (action) {
    case ModuleAction::kPass:
      ++passed_;
      break;
    case ModuleAction::kDrop:
      ++dropped_;
      break;
    case ModuleAction::kExpand:
      expanded_out_ += num_out;
      break;
  }
}

}  // namespace tcq
