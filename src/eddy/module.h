// EddyModule: the unit of adaptive routing. An eddy continuously routes
// tuples among a set of commutative modules (paper §2.2); each module
// consumes a tuple and either passes it, drops it, or expands it into
// replacement tuples (e.g. join concatenations from a SteM probe).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "tuple/tuple.h"

namespace tcq {

/// What a module did with the tuple it was handed.
enum class ModuleAction {
  kPass,    ///< Tuple satisfied the module and continues routing.
  kDrop,    ///< Tuple eliminated (failed filter / probe consumed it with
            ///< zero matches).
  kExpand,  ///< Tuple consumed; replacement tuples appended to the output.
};

/// A tuple plus the per-tuple routing state the paper requires ("the state
/// must indicate the set of connected modules successfully visited").
struct Envelope {
  Tuple tuple;
  /// Bitmask over eddy module slots this tuple has satisfied.
  uint32_t done = 0;
  /// Max global arrival sequence number among the base tuples this
  /// (possibly intermediate) tuple spans. Used for the exactly-once match
  /// rule in SteM probes: a probe retrieves only builds with a smaller seq.
  Timestamp seq_max = 0;
  /// Module invocations this tuple has absorbed, inherited (+1) by expand
  /// children — the eddy hop count (routing-quality signal, DESIGN.md §9).
  uint32_t hops = 0;
};

/// Per-module observations that drive routing policies. Both the
/// single-query EddyModule and the CACQ SharedModule expose this view, so
/// one set of policies (lottery, greedy, ...) serves both eddies.
class RoutableStats {
 public:
  virtual ~RoutableStats() = default;

  uint64_t consumed() const { return consumed_; }
  uint64_t passed() const { return passed_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t expanded_out() const { return expanded_out_; }

  /// Fraction of consumed tuples that survived (passed or produced output);
  /// 1.0 until observations exist.
  double ObservedSelectivity() const;

  void RecordResult(ModuleAction action, size_t num_out);

 private:
  uint64_t consumed_ = 0;
  uint64_t passed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t expanded_out_ = 0;
};

class EddyModule : public RoutableStats {
 public:
  using Action = ModuleAction;

  explicit EddyModule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Must a tuple spanning `sources` be processed by this module (ignoring
  /// whether it already has)? The eddy combines this with done-bits to form
  /// the ready set.
  virtual bool AppliesTo(SourceSet sources) const = 0;

  /// Processes one tuple. For kExpand the module appends replacement
  /// envelopes (tuple + seq_max) to `out`; the eddy patches their done bits.
  virtual Action Process(const Envelope& env, std::vector<Envelope>* out) = 0;

  /// Base sources this module implicates in the query footprint (used to
  /// derive the output-completeness condition).
  virtual SourceSet contributes() const { return 0; }

 private:
  std::string name_;
};

}  // namespace tcq
