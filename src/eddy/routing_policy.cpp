#include "eddy/routing_policy.h"

#include <algorithm>

namespace tcq {

void FixedOrderPolicy::Rank(const std::vector<size_t>& ready,
                            const std::vector<const RoutableStats*>&,
                            std::vector<size_t>* out) {
  for (size_t p : priority_) {
    if (std::find(ready.begin(), ready.end(), p) != ready.end()) {
      out->push_back(p);
    }
  }
  for (size_t r : ready) {
    if (std::find(out->begin(), out->end(), r) == out->end()) {
      out->push_back(r);
    }
  }
}

void RoundRobinPolicy::Rank(const std::vector<size_t>& ready,
                            const std::vector<const RoutableStats*>&,
                            std::vector<size_t>* out) {
  size_t start = next_++ % ready.size();
  for (size_t i = 0; i < ready.size(); ++i) {
    out->push_back(ready[(start + i) % ready.size()]);
  }
}

void LotteryPolicy::Rank(const std::vector<size_t>& ready,
                         const std::vector<const RoutableStats*>& modules,
                         std::vector<size_t>* out) {
  if (tickets_.size() < modules.size()) tickets_.resize(modules.size(), 0.0);
  if (++decisions_ % opts_.decay_interval == 0) {
    for (double& t : tickets_) t *= opts_.decay;
  }
  // Sample ready slots without replacement, weighted by banked tickets.
  std::vector<size_t> pool = ready;
  weights_scratch_.clear();
  for (size_t slot : pool) {
    weights_scratch_.push_back(std::max(tickets_[slot], 0.0) + opts_.floor);
  }
  while (!pool.empty()) {
    size_t pick = rng_.WeightedIndex(weights_scratch_);
    out->push_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<long>(pick));
    weights_scratch_.erase(weights_scratch_.begin() + static_cast<long>(pick));
  }
}

void LotteryPolicy::OnResult(size_t slot, ModuleAction action,
                             size_t num_out) {
  if (tickets_.size() <= slot) tickets_.resize(slot + 1, 0.0);
  // Credit for consuming; debit for producing (AH00 ticket scheme).
  tickets_[slot] += 1.0;
  switch (action) {
    case ModuleAction::kPass:
      tickets_[slot] -= 1.0;
      break;
    case ModuleAction::kDrop:
      break;
    case ModuleAction::kExpand:
      tickets_[slot] -= static_cast<double>(num_out);
      break;
  }
}

void LotteryPolicy::OnModuleCountChanged(size_t num_modules) {
  if (tickets_.size() < num_modules) tickets_.resize(num_modules, 0.0);
}

void GreedyPolicy::Rank(const std::vector<size_t>& ready,
                        const std::vector<const RoutableStats*>& modules,
                        std::vector<size_t>* out) {
  *out = ready;
  if (rng_.Bernoulli(epsilon_)) {
    rng_.Shuffle(out);
    return;
  }
  std::stable_sort(out->begin(), out->end(), [&](size_t a, size_t b) {
    return modules[a]->ObservedSelectivity() <
           modules[b]->ObservedSelectivity();
  });
}

std::unique_ptr<RoutingPolicy> MakeLotteryPolicy(uint64_t seed) {
  LotteryPolicy::Options opts;
  opts.seed = seed;
  return std::make_unique<LotteryPolicy>(opts);
}

std::unique_ptr<RoutingPolicy> MakeRoundRobinPolicy() {
  return std::make_unique<RoundRobinPolicy>();
}

std::unique_ptr<RoutingPolicy> MakeFixedOrderPolicy(
    std::vector<size_t> priority) {
  return std::make_unique<FixedOrderPolicy>(std::move(priority));
}

std::unique_ptr<RoutingPolicy> MakeGreedyPolicy(double epsilon,
                                                uint64_t seed) {
  return std::make_unique<GreedyPolicy>(epsilon, seed);
}

}  // namespace tcq
