// Routing policies: how an eddy decides, tuple by tuple, which module a
// tuple visits next (paper §2.2, §4.3). The Lottery policy is the
// ticket-based scheme of Avnur & Hellerstein [AH00]; FixedOrder is the
// static-plan baseline the adaptivity experiments compare against. Policies
// see modules only through RoutableStats, so the same policies drive both
// single-query eddies and the CACQ shared eddy.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "eddy/module.h"

namespace tcq {

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual const char* name() const = 0;

  /// Orders the ready module slots by routing preference into `out`
  /// (best first). `out` is pre-cleared by the eddy. The eddy applies the
  /// first `fix_len` modules of the order per decision ("fixing operators").
  virtual void Rank(const std::vector<size_t>& ready,
                    const std::vector<const RoutableStats*>& modules,
                    std::vector<size_t>* out) = 0;

  /// Feedback after a module processed a tuple this policy routed.
  virtual void OnResult(size_t slot, ModuleAction action, size_t num_out) {
    (void)slot;
    (void)action;
    (void)num_out;
  }

  /// Called when the eddy grows its module set (CACQ adds modules on the
  /// fly as queries arrive).
  virtual void OnModuleCountChanged(size_t num_modules) { (void)num_modules; }
};

/// Routes by a fixed priority order — equivalent to a static plan. Modules
/// not in the priority list fall to the back in slot order.
class FixedOrderPolicy : public RoutingPolicy {
 public:
  explicit FixedOrderPolicy(std::vector<size_t> priority)
      : priority_(std::move(priority)) {}

  const char* name() const override { return "fixed"; }
  void Rank(const std::vector<size_t>& ready,
            const std::vector<const RoutableStats*>& modules,
            std::vector<size_t>* out) override;

 private:
  std::vector<size_t> priority_;
};

/// Cycles through ready modules — a naive adaptive baseline.
class RoundRobinPolicy : public RoutingPolicy {
 public:
  const char* name() const override { return "round-robin"; }
  void Rank(const std::vector<size_t>& ready,
            const std::vector<const RoutableStats*>& modules,
            std::vector<size_t>* out) override;

 private:
  size_t next_ = 0;
};

/// Ticket-based lottery scheduling [AH00]: a module is credited a ticket
/// when it consumes a tuple and debited when it produces one, so selective,
/// fast modules accumulate tickets and win more lotteries. Tickets decay so
/// the policy re-explores when the environment drifts.
class LotteryPolicy : public RoutingPolicy {
 public:
  struct Options {
    uint64_t seed = 42;
    /// Multiplicative decay applied every `decay_interval` decisions.
    double decay = 0.95;
    uint64_t decay_interval = 200;
    /// Additive smoothing so losing modules keep being explored.
    double floor = 1.0;
  };

  LotteryPolicy() : LotteryPolicy(Options()) {}
  explicit LotteryPolicy(Options opts) : opts_(opts), rng_(opts.seed) {}

  const char* name() const override { return "lottery"; }
  void Rank(const std::vector<size_t>& ready,
            const std::vector<const RoutableStats*>& modules,
            std::vector<size_t>* out) override;
  void OnResult(size_t slot, ModuleAction action, size_t num_out) override;
  void OnModuleCountChanged(size_t num_modules) override;

  double tickets(size_t slot) const { return tickets_[slot]; }

 private:
  Options opts_;
  Rng rng_;
  std::vector<double> tickets_;
  uint64_t decisions_ = 0;
  std::vector<double> weights_scratch_;
};

/// Greedy on observed drop rate with epsilon exploration: routes to the
/// module most likely to eliminate the tuple cheaply.
class GreedyPolicy : public RoutingPolicy {
 public:
  explicit GreedyPolicy(double epsilon = 0.05, uint64_t seed = 42)
      : epsilon_(epsilon), rng_(seed) {}

  const char* name() const override { return "greedy"; }
  void Rank(const std::vector<size_t>& ready,
            const std::vector<const RoutableStats*>& modules,
            std::vector<size_t>* out) override;

 private:
  double epsilon_;
  Rng rng_;
};

std::unique_ptr<RoutingPolicy> MakeLotteryPolicy(uint64_t seed = 42);
std::unique_ptr<RoutingPolicy> MakeRoundRobinPolicy();
std::unique_ptr<RoutingPolicy> MakeFixedOrderPolicy(
    std::vector<size_t> priority);
std::unique_ptr<RoutingPolicy> MakeGreedyPolicy(double epsilon = 0.05,
                                                uint64_t seed = 42);

}  // namespace tcq
