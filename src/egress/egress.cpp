#include "egress/egress.h"

#include <chrono>

#include "obs/trace.h"

namespace tcq {

const char* ShedPolicyName(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kDropNewest:
      return "drop-newest";
    case ShedPolicy::kDropOldest:
      return "drop-oldest";
    case ShedPolicy::kBlock:
      return "block";
  }
  return "?";
}

PushEgress::PushEgress(Options opts, MetricsRegistryRef metrics,
                       std::string label)
    : opts_(opts), metrics_(OrPrivateRegistry(std::move(metrics))) {
  delivered_ = metrics_->GetCounter(
      MetricName("tcq_egress_delivered_total", "client", label));
  // Shed counts carry the policy so a dashboard can tell intentional
  // drop-oldest QoS from back-pressure starvation at a glance.
  std::string shed_name =
      label.empty()
          ? MetricName("tcq_egress_shed_total", "policy",
                       ShedPolicyName(opts_.shed))
          : "tcq_egress_shed_total{client=\"" + EscapeLabelValue(label) +
                "\",policy=\"" + ShedPolicyName(opts_.shed) + "\"}";
  shed_ = metrics_->GetCounter(shed_name);
  buffered_gauge_ = metrics_->GetGauge(
      MetricName("tcq_egress_buffered", "client", label));
  punctuations_ = metrics_->GetCounter(
      MetricName("tcq_egress_punctuations_total", "client", label));
  retractions_ = metrics_->GetCounter(
      MetricName("tcq_egress_retractions_total", "client", label));
}

bool PushEgress::Offer(const Delivery& delivery) {
  // Sampled-batch context: the shared eddy delivers to egress synchronously
  // on the ingesting thread, so the context armed at the batch boundary is
  // still live here; emit + end-to-end spans close the trace.
  obs::TraceContext& tc = obs::CurrentTrace();
  int64_t t0 = tc.tracer != nullptr ? NowMicros() : 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return false;
  if (queue_.size() >= opts_.capacity) {
    switch (opts_.shed) {
      case ShedPolicy::kDropNewest:
        shed_->Inc();
        return false;
      case ShedPolicy::kDropOldest:
        queue_.pop_front();
        shed_->Inc();
        break;
      case ShedPolicy::kBlock:
        cv_.wait(lock,
                 [&] { return closed_ || queue_.size() < opts_.capacity; });
        if (closed_) return false;
        break;
    }
  }
  if (delivery.tuple.valid()) {
    if (delivery.tuple.IsPunctuation()) punctuations_->Inc();
    if (delivery.tuple.IsRetraction()) retractions_->Inc();
  }
  queue_.push_back(delivery);
  delivered_->Inc();
  buffered_gauge_->Set(static_cast<int64_t>(queue_.size()));
  cv_.notify_all();
  if (tc.tracer != nullptr) {
    int64_t now = NowMicros();
    tc.tracer->Record(obs::SpanKind::kEgressEmit, 0, delivery.query_id, t0,
                      now - t0);
    if (tc.ingest_us > 0) {
      tc.tracer->RecordEndToEnd(delivery.query_id, tc.ingest_us,
                                now - tc.ingest_us);
    }
  }
  return true;
}

bool PushEgress::Poll(Delivery* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  buffered_gauge_->Set(static_cast<int64_t>(queue_.size()));
  cv_.notify_all();
  return true;
}

bool PushEgress::Receive(Delivery* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  buffered_gauge_->Set(static_cast<int64_t>(queue_.size()));
  cv_.notify_all();
  return true;
}

void PushEgress::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

uint64_t PushEgress::delivered() const { return delivered_->Value(); }

uint64_t PushEgress::shed() const { return shed_->Value(); }

uint64_t PushEgress::punctuations_delivered() const {
  return punctuations_->Value();
}

uint64_t PushEgress::retractions_delivered() const {
  return retractions_->Value();
}

size_t PushEgress::buffered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void PullEgress::Log(const Delivery& delivery) {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<Tuple>& q = log_[delivery.query_id];
  q.push_back(delivery.tuple);
  if (opts_.max_per_query > 0 && q.size() > opts_.max_per_query) {
    q.pop_front();
  }
}

Timestamp PullEgress::FetchSince(uint64_t query_id, Timestamp since,
                                 std::vector<Tuple>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  Timestamp cursor = since;
  auto it = log_.find(query_id);
  if (it == log_.end()) return cursor;
  for (const Tuple& t : it->second) {
    if (t.timestamp() > since) {
      out->push_back(t);
      cursor = std::max(cursor, t.timestamp());
    }
  }
  return cursor;
}

size_t PullEgress::LoggedCount(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = log_.find(query_id);
  return it == log_.end() ? 0 : it->second.size();
}

}  // namespace tcq
