// Egress modules (paper §4.3): "push-based egress operators support
// interaction where clients are continually streamed query results, while
// pull-based egress operators may log data and support intermittent
// retrieval of results... and may encapsulate load shedding when the system
// is in danger of falling behind."

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "tuple/tuple.h"

namespace tcq {

/// One delivered result.
struct Delivery {
  uint64_t query_id = 0;
  Tuple tuple;
};

/// What to do when a push client's queue is full (QoS knob).
enum class ShedPolicy {
  kDropNewest,  ///< shed the arriving result
  kDropOldest,  ///< shed the stalest buffered result
  kBlock,       ///< apply back-pressure to the executor
};

const char* ShedPolicyName(ShedPolicy p);

/// Push egress: a bounded, thread-safe buffer the engine pushes into and a
/// streaming client drains.
class PushEgress {
 public:
  struct Options {
    size_t capacity = 1024;
    ShedPolicy shed = ShedPolicy::kDropOldest;
  };

  /// When `metrics` is null the egress observes itself in a private
  /// registry; `label` distinguishes clients sharing one registry. Shed
  /// counts are labeled by policy (tcq_egress_shed_total{policy="..."}).
  PushEgress() : PushEgress(Options()) {}
  explicit PushEgress(Options opts, MetricsRegistryRef metrics = nullptr,
                      std::string label = "");

  /// Engine side. Returns false if the delivery was shed.
  bool Offer(const Delivery& delivery);

  /// Client side: non-blocking poll.
  bool Poll(Delivery* out);

  /// Client side: blocking receive; false once closed and drained.
  bool Receive(Delivery* out);

  void Close();

  uint64_t delivered() const;
  uint64_t shed() const;
  size_t buffered() const;
  /// Control and revision tuples that passed through this client, counted
  /// by kind: a disconnect-and-diff client uses these to know whether its
  /// buffered answer set is still speculative.
  uint64_t punctuations_delivered() const;
  uint64_t retractions_delivered() const;
  const MetricsRegistryRef& metrics() const { return metrics_; }

 private:
  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Delivery> queue_;
  bool closed_ = false;
  MetricsRegistryRef metrics_;
  Counter* delivered_;
  Counter* shed_;
  Counter* punctuations_;
  Counter* retractions_;
  Gauge* buffered_gauge_;
};

/// Pull egress: logs results per query so intermittently connected clients
/// can fetch "what happened since I left" (PSoup-style delivery decoupling
/// at the egress boundary).
class PullEgress {
 public:
  struct Options {
    /// Retain at most this many results per query (0 = unbounded).
    size_t max_per_query = 0;
  };

  PullEgress() : PullEgress(Options()) {}
  explicit PullEgress(Options opts) : opts_(opts) {}

  /// Engine side.
  void Log(const Delivery& delivery);

  /// Client side: results of `query_id` with production ts > since.
  /// Returns the new cursor (max ts seen) to pass next time.
  Timestamp FetchSince(uint64_t query_id, Timestamp since,
                       std::vector<Tuple>* out) const;

  size_t LoggedCount(uint64_t query_id) const;

 private:
  Options opts_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::deque<Tuple>> log_;
};

}  // namespace tcq
