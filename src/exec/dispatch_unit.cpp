#include "exec/dispatch_unit.h"

namespace tcq {

namespace {

/// Pulls up to `quantum` tuples round-robin from push-mode inputs, draining
/// each visited input in whole batches (one queue lock per batch instead of
/// one per tuple) and invoking `deliver(source, batch, first_enq_us)`, where
/// first_enq_us is the enqueue time of the batch's oldest tuple (0 when the
/// queue keeps no timestamps). Returns (consumed, all_exhausted).
template <typename InputVec, typename Fn>
std::pair<size_t, bool> PumpInputs(InputVec& inputs, size_t* next_input,
                                   size_t quantum, Fn&& deliver) {
  if (inputs.empty()) return {0, false};
  size_t consumed = 0;
  size_t attempts = 0;
  TupleBatch batch;
  while (consumed < quantum && attempts < inputs.size()) {
    auto& input = inputs[*next_input % inputs.size()];
    ++*next_input;
    if (input.exhausted) {
      ++attempts;
      continue;
    }
    batch.clear();
    batch.set_source(input.source);
    QueueOp op;
    int64_t enq_us = 0;
    size_t got =
        input.consumer.ConsumeBatch(&batch, quantum - consumed, &op, &enq_us);
    if (op == QueueOp::kClosed) input.exhausted = true;
    if (got > 0) {
      deliver(input.source, batch, enq_us);
      consumed += got;
      attempts = 0;
    } else {
      ++attempts;
    }
  }
  // Recompute exhaustion after the pump: inputs may have closed mid-loop.
  bool all_exhausted = true;
  for (const auto& input : inputs) {
    if (!input.exhausted) {
      all_exhausted = false;
      break;
    }
  }
  return {consumed, all_exhausted};
}

}  // namespace

// --- SharedCQDispatchUnit ----------------------------------------------------

SharedCQDispatchUnit::SharedCQDispatchUnit(std::string name,
                                           std::unique_ptr<SharedEddy> eddy,
                                           Options opts)
    : DispatchUnit(std::move(name)), opts_(opts), eddy_(std::move(eddy)) {
  eddy_->SetOutput([this](QueryId q, const Tuple& t) {
    auto it = sinks_.find(q);
    if (it != sinks_.end()) it->second.second(it->second.first, t);
  });
}

void SharedCQDispatchUnit::set_control_sink(
    std::function<void(const Punctuation&)> sink) {
  eddy_->SetControlOutput(std::move(sink));
}

void SharedCQDispatchUnit::BindSink(QueryId local, uint64_t global_id,
                                    GlobalSink sink) {
  sinks_[local] = {global_id, std::move(sink)};
}

void SharedCQDispatchUnit::UnbindSink(QueryId local) { sinks_.erase(local); }

void SharedCQDispatchUnit::AddInput(SourceId source, FjordConsumer consumer) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  pending_inputs_.push_back(Input{source, std::move(consumer), false});
}

void SharedCQDispatchUnit::SubmitTask(std::function<void(SharedEddy*)> task) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  pending_tasks_.push_back(std::move(task));
}

void SharedCQDispatchUnit::Quiesce() { DrainPlanQueue(); }

std::vector<std::pair<SourceId, FjordConsumer>>
SharedCQDispatchUnit::DetachInputs() {
  DrainPlanQueue();  // fold pending inputs in before moving them out
  std::vector<std::pair<SourceId, FjordConsumer>> out;
  out.reserve(inputs_.size());
  for (Input& input : inputs_) {
    if (input.exhausted) continue;
    out.emplace_back(input.source, std::move(input.consumer));
  }
  inputs_.clear();
  next_input_ = 0;
  return out;
}

std::map<QueryId, std::pair<uint64_t, SharedCQDispatchUnit::GlobalSink>>
SharedCQDispatchUnit::TakeSinks() {
  std::map<QueryId, std::pair<uint64_t, GlobalSink>> out;
  out.swap(sinks_);
  return out;
}

void SharedCQDispatchUnit::DrainPlanQueue() {
  std::deque<std::function<void(SharedEddy*)>> tasks;
  std::vector<Input> inputs;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    tasks.swap(pending_tasks_);
    inputs.swap(pending_inputs_);
  }
  for (auto& task : tasks) task(eddy_.get());
  for (Input& input : inputs) inputs_.push_back(std::move(input));
}

DispatchUnit::StepResult SharedCQDispatchUnit::Step() {
  DrainPlanQueue();
  auto [consumed, exhausted] = PumpInputs(
      inputs_, &next_input_, opts_.quantum,
      [&](SourceId source, const TupleBatch& b, int64_t enq_us) {
        // The sampled-batch boundary: arms the thread-local context for the
        // whole synchronous dataflow below (eddy hops, SteM ops, egress).
        obs::TraceBatchScope scope(tracer_.get(), enq_us);
        if (scope.sampled()) obs::CurrentTrace().shard = shard_;
        if (scope.sampled() && enq_us > 0) {
          tracer_->Record(obs::SpanKind::kQueueWait, source, 0, enq_us,
                          NowMicros() - enq_us);
        }
        eddy_->IngestBatch(b);
      });
  StepResult r = consumed > 0 ? StepResult::kProgress
                 : exhausted  ? StepResult::kDone
                              : StepResult::kIdle;
  CountStep(r);
  return r;
}

// --- EddyDispatchUnit --------------------------------------------------------

EddyDispatchUnit::EddyDispatchUnit(std::string name,
                                   std::unique_ptr<Eddy> eddy, size_t quantum)
    : DispatchUnit(std::move(name)),
      eddy_(std::move(eddy)),
      quantum_(quantum) {}

void EddyDispatchUnit::AddInput(SourceId source, FjordConsumer consumer) {
  inputs_.push_back(Input{source, std::move(consumer), false});
}

DispatchUnit::StepResult EddyDispatchUnit::Step() {
  auto [consumed, exhausted] = PumpInputs(
      inputs_, &next_input_, quantum_,
      [&](SourceId source, const TupleBatch& b, int64_t enq_us) {
        obs::TraceBatchScope scope(tracer_.get(), enq_us);
        if (scope.sampled() && enq_us > 0) {
          tracer_->Record(obs::SpanKind::kQueueWait, source, 0, enq_us,
                          NowMicros() - enq_us);
        }
        eddy_->IngestBatch(b);
      });
  StepResult r = consumed > 0 ? StepResult::kProgress
                 : exhausted  ? StepResult::kDone
                              : StepResult::kIdle;
  CountStep(r);
  return r;
}

// --- WindowedQueryDispatchUnit -----------------------------------------------

WindowedQueryDispatchUnit::WindowedQueryDispatchUnit(
    std::string name, WindowedQuery query, WindowSink sink, size_t quantum,
    OnlineWindowRunner::Options runner_opts)
    : DispatchUnit(std::move(name)),
      runner_(std::move(query), runner_opts),
      sink_(std::move(sink)),
      quantum_(quantum) {}

void WindowedQueryDispatchUnit::AddInput(SourceId source,
                                         FjordConsumer consumer) {
  inputs_.push_back(Input{source, std::move(consumer), false});
}

DispatchUnit::StepResult WindowedQueryDispatchUnit::Step() {
  auto [consumed, exhausted] = PumpInputs(
      inputs_, &next_input_, quantum_,
      [&](SourceId s, const TupleBatch& b, int64_t) {
        for (const Tuple& t : b) runner_.Ingest(s, t);
        // Control lane applies after the rows (the lane's contract).
        for (const Punctuation& p : b.punctuations()) runner_.OnPunctuation(p);
      });
  if (exhausted) {
    // End of streams: everything that will ever arrive has arrived.
    for (auto& input : inputs_) {
      runner_.AdvanceWatermark(input.source, kMaxTimestamp);
    }
  }
  runner_.Poll([&](const WindowResult& r) { sink_(r); });
  StepResult r = consumed > 0 ? StepResult::kProgress
                 : (exhausted || runner_.Done()) ? StepResult::kDone
                                                 : StepResult::kIdle;
  CountStep(r);
  return r;
}

}  // namespace tcq
