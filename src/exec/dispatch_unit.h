// Dispatch Units (paper §4.2.2): "non-preemptive Dispatch Units that can be
// executed based on some scheduling policy... DUs are merely abstractions
// that represent entities that perform work in the system. DUs are
// responsible for maintaining their own state." A DU runs as a state
// machine: each Step() performs a bounded quantum of work and reports
// whether it progressed, idled, or finished.

#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cacq/shared_eddy.h"
#include "eddy/eddy.h"
#include "fjords/fjord.h"
#include "obs/trace.h"
#include "window/window_exec.h"

namespace tcq {

class DispatchUnit {
 public:
  enum class StepResult {
    kProgress,  ///< did work; schedule again soon
    kIdle,      ///< nothing to do right now (inputs empty)
    kDone,      ///< inputs exhausted and all work finished
  };

  explicit DispatchUnit(std::string name) : name_(std::move(name)) {}
  virtual ~DispatchUnit() = default;

  const std::string& name() const { return name_; }

  /// Performs one bounded, non-preemptive quantum of work.
  virtual StepResult Step() = 0;

  /// Step counters are atomics: the owning EO updates them from its thread
  /// while the executor's rebalance pass reads them to estimate per-DU load.
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  uint64_t progress_steps() const {
    return progress_steps_.load(std::memory_order_relaxed);
  }

 protected:
  void CountStep(StepResult r) {
    steps_.fetch_add(1, std::memory_order_relaxed);
    if (r == StepResult::kProgress) {
      progress_steps_.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  std::string name_;
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> progress_steps_{0};
};

/// The shared "continuous query" mode DU (paper §4.2.2 mode 3): one CACQ
/// shared eddy serving every query of one query class, fed by the class's
/// stream inputs. New queries arrive through a thread-safe plan queue (the
/// QPQueue analog) and are folded in between quanta.
class SharedCQDispatchUnit : public DispatchUnit {
 public:
  struct Options {
    /// Max tuples ingested per Step.
    size_t quantum = 64;
  };

  SharedCQDispatchUnit(std::string name, std::unique_ptr<SharedEddy> eddy,
                       Options opts);

  /// Thread-safe: attaches a stream input (consumed round-robin from the
  /// next quantum on).
  void AddInput(SourceId source, FjordConsumer consumer);

  /// Thread-safe: enqueues an admission task executed against the eddy at
  /// the next quantum boundary (the QPQueue analog). Used for query
  /// add/remove and for registering streams a new query introduces.
  void SubmitTask(std::function<void(SharedEddy*)> task);

  /// Routes a local query id's deliveries to a client sink under a global
  /// id. Must be called from a submitted task (DU thread).
  using GlobalSink = std::function<void(uint64_t, const Tuple&)>;
  void BindSink(QueryId local, uint64_t global_id, GlobalSink sink);
  void UnbindSink(QueryId local);

  StepResult Step() override;

  SharedEddy* eddy() { return eddy_.get(); }

  /// Attaches the dataflow tracer: each ingest quantum becomes a potential
  /// trace batch (sampling decided per batch). Call before the DU runs.
  void set_tracer(obs::TracerRef tracer) { tracer_ = std::move(tracer); }

  /// Routes punctuations the eddy applies to a per-shard observer (the
  /// sharded class's min-combine). Call before the DU runs; invoked from
  /// the DU thread during IngestBatch.
  void set_control_sink(std::function<void(const Punctuation&)> sink);

  /// Shard replica id this DU pumps (stamped on every sampled span). Call
  /// before the DU runs; defaults to 0 for unsharded classes.
  void set_shard(uint32_t shard) { shard_ = shard; }
  uint32_t shard() const { return shard_; }

  // --- Quiesce protocol (class merge / GC / migration) ------------------------
  // The methods below are safe ONLY while the DU is detached from every EO
  // (ExecutionObject::RemoveDispatchUnit blocks until the current quantum
  // finishes, so after it returns the caller owns the DU exclusively).

  /// Runs every pending plan-queue task and folds pending inputs in — the
  /// work a Step() would do at its next quantum boundary, without ingesting.
  void Quiesce();

  /// Moves every stream input (active and pending) out of the DU, preserving
  /// per-stream order: the FjordConsumer endpoints carry their queued tuples
  /// with them, so re-attaching them to another DU loses nothing. Inputs
  /// whose fjords already closed and drained are dropped (nothing left to
  /// consume).
  std::vector<std::pair<SourceId, FjordConsumer>> DetachInputs();

  /// Moves the delivery table (local id -> (global id, sink)) out of the DU,
  /// for rebinding under remapped local ids in a merge target.
  std::map<QueryId, std::pair<uint64_t, GlobalSink>> TakeSinks();

 private:
  void DrainPlanQueue();

  Options opts_;
  std::unique_ptr<SharedEddy> eddy_;
  obs::TracerRef tracer_;
  uint32_t shard_ = 0;
  struct Input {
    SourceId source;
    FjordConsumer consumer;
    bool exhausted = false;
  };
  std::vector<Input> inputs_;
  size_t next_input_ = 0;

  std::mutex plan_mu_;
  std::deque<std::function<void(SharedEddy*)>> pending_tasks_;
  std::vector<Input> pending_inputs_;
  // DU-thread-only delivery table: local query id -> (global id, sink).
  std::map<QueryId, std::pair<uint64_t, GlobalSink>> sinks_;
};

/// A single-eddy DU (mode 2): one adaptive query plan with Fjord-style
/// inputs, no cross-query sharing.
class EddyDispatchUnit : public DispatchUnit {
 public:
  EddyDispatchUnit(std::string name, std::unique_ptr<Eddy> eddy,
                   size_t quantum = 64);

  void AddInput(SourceId source, FjordConsumer consumer);

  StepResult Step() override;

  Eddy* eddy() { return eddy_.get(); }

  void set_tracer(obs::TracerRef tracer) { tracer_ = std::move(tracer); }

 private:
  std::unique_ptr<Eddy> eddy_;
  obs::TracerRef tracer_;
  size_t quantum_;
  struct Input {
    SourceId source;
    FjordConsumer consumer;
    bool exhausted = false;
  };
  std::vector<Input> inputs_;
  size_t next_input_ = 0;
};

/// A windowed-query DU: drives an OnlineWindowRunner from stream inputs and
/// delivers fired windows to a sink.
class WindowedQueryDispatchUnit : public DispatchUnit {
 public:
  using WindowSink = std::function<void(const WindowResult&)>;

  WindowedQueryDispatchUnit(
      std::string name, WindowedQuery query, WindowSink sink,
      size_t quantum = 64,
      OnlineWindowRunner::Options runner_opts = OnlineWindowRunner::Options());

  void AddInput(SourceId source, FjordConsumer consumer);

  StepResult Step() override;

  const OnlineWindowRunner& runner() const { return runner_; }

  /// Durable state (DESIGN.md §13): checkpoint export/restore needs the
  /// runner itself. Only safe while the DU's EO is stopped (quiescent).
  OnlineWindowRunner* mutable_runner() { return &runner_; }

 private:
  OnlineWindowRunner runner_;
  WindowSink sink_;
  size_t quantum_;
  struct Input {
    SourceId source;
    FjordConsumer consumer;
    bool exhausted = false;
  };
  std::vector<Input> inputs_;
  size_t next_input_ = 0;
};

}  // namespace tcq
