#include "exec/execution_object.h"

#include <chrono>

namespace tcq {

ExecutionObject::ExecutionObject(std::string name,
                                 std::unique_ptr<Scheduler> scheduler,
                                 MetricsRegistryRef metrics)
    : name_(std::move(name)),
      scheduler_(std::move(scheduler)),
      metrics_(OrPrivateRegistry(std::move(metrics))) {
  quanta_ = metrics_->GetCounter(MetricName("tcq_eo_quanta_total", "eo",
                                            name_));
  idle_backoffs_ = metrics_->GetCounter(
      MetricName("tcq_eo_idle_backoffs_total", "eo", name_));
  num_dus_gauge_ = metrics_->GetGauge(MetricName("tcq_eo_dus", "eo", name_));
}

ExecutionObject::~ExecutionObject() { Stop(); }

void ExecutionObject::AddDispatchUnit(std::shared_ptr<DispatchUnit> du) {
  std::lock_guard<std::mutex> lock(mu_);
  du_quanta_.push_back(metrics_->GetCounter(
      MetricName("tcq_du_quanta_total", "du", du->name())));
  du_progress_.push_back(metrics_->GetCounter(
      MetricName("tcq_du_progress_total", "du", du->name())));
  dus_.push_back(std::move(du));
  infos_.push_back(DuSchedInfo{});
  num_dus_gauge_->Set(static_cast<int64_t>(dus_.size()));
}

size_t ExecutionObject::num_dus() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dus_.size();
}

void ExecutionObject::Start() {
  if (running_.exchange(true)) return;
  stop_.store(false);
  thread_ = std::thread([this] { Run(); });
}

void ExecutionObject::Run() {
  int idle_streak = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    std::shared_ptr<DispatchUnit> du;
    size_t pick = SIZE_MAX;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pick = scheduler_->PickNext(infos_);
      if (pick != SIZE_MAX) du = dus_[pick];
    }
    if (pick == SIZE_MAX) {
      if (num_dus() == 0) {
        // No work assigned yet; wait for a DU.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      break;  // every DU is done
    }
    DispatchUnit::StepResult result = du->Step();
    quanta_->Inc();
    {
      std::lock_guard<std::mutex> lock(mu_);
      DuSchedInfo& info = infos_[pick];
      double progressed =
          result == DispatchUnit::StepResult::kProgress ? 1.0 : 0.0;
      info.recent_progress = 0.8 * info.recent_progress + 0.2 * progressed;
      if (result == DispatchUnit::StepResult::kDone) info.done = true;
      du_quanta_[pick]->Inc();
      if (result == DispatchUnit::StepResult::kProgress) {
        du_progress_[pick]->Inc();
      }
    }
    if (result == DispatchUnit::StepResult::kProgress) {
      idle_streak = 0;
    } else if (++idle_streak > static_cast<int>(num_dus())) {
      // Everything idled this round: yield rather than burn the core
      // (non-blocking dequeues let us do this — the Fjords design point).
      idle_backoffs_->Inc();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      idle_streak = 0;
    }
  }
  running_.store(false);
}

void ExecutionObject::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void ExecutionObject::Join() {
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

}  // namespace tcq
