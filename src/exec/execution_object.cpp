#include "exec/execution_object.h"

#include <chrono>

namespace tcq {

ExecutionObject::ExecutionObject(std::string name,
                                 std::unique_ptr<Scheduler> scheduler,
                                 MetricsRegistryRef metrics)
    : name_(std::move(name)),
      scheduler_(std::move(scheduler)),
      metrics_(OrPrivateRegistry(std::move(metrics))) {
  quanta_ = metrics_->GetCounter(MetricName("tcq_eo_quanta_total", "eo",
                                            name_));
  idle_backoffs_ = metrics_->GetCounter(
      MetricName("tcq_eo_idle_backoffs_total", "eo", name_));
  num_dus_gauge_ = metrics_->GetGauge(MetricName("tcq_eo_dus", "eo", name_));
}

ExecutionObject::~ExecutionObject() { Stop(); }

void ExecutionObject::AddDispatchUnit(std::shared_ptr<DispatchUnit> du) {
  std::lock_guard<std::mutex> lock(mu_);
  du_quanta_.push_back(metrics_->GetCounter(
      MetricName("tcq_du_quanta_total", "du", du->name())));
  du_progress_.push_back(metrics_->GetCounter(
      MetricName("tcq_du_progress_total", "du", du->name())));
  dus_.push_back(std::move(du));
  infos_.push_back(DuSchedInfo{});
  num_dus_gauge_->Set(static_cast<int64_t>(dus_.size()));
}

bool ExecutionObject::RemoveDispatchUnit(const std::shared_ptr<DispatchUnit>& du) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = std::find(dus_.begin(), dus_.end(), du);
  if (it == dus_.end()) return false;
  // Wait out the in-flight quantum (if any): DUs are non-preemptive, so the
  // only safe detach point is a quantum boundary.
  step_done_.wait(lock, [&] { return stepping_ != du.get(); });
  // Re-find: the vector may have shifted while we waited.
  it = std::find(dus_.begin(), dus_.end(), du);
  if (it == dus_.end()) return false;
  size_t idx = static_cast<size_t>(it - dus_.begin());
  dus_.erase(dus_.begin() + idx);
  infos_.erase(infos_.begin() + idx);
  du_quanta_.erase(du_quanta_.begin() + idx);
  du_progress_.erase(du_progress_.begin() + idx);
  num_dus_gauge_->Set(static_cast<int64_t>(dus_.size()));
  return true;
}

size_t ExecutionObject::num_dus() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dus_.size();
}

void ExecutionObject::Start() {
  if (running_.exchange(true)) return;
  stop_.store(false);
  thread_ = std::thread([this] { Run(); });
}

void ExecutionObject::Run() {
  int idle_streak = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    std::shared_ptr<DispatchUnit> du;
    {
      std::lock_guard<std::mutex> lock(mu_);
      size_t pick = scheduler_->PickNext(infos_);
      if (pick != SIZE_MAX) {
        du = dus_[pick];
        stepping_ = du.get();
      }
    }
    if (du == nullptr) {
      if (persistent_ || num_dus() == 0) {
        // No runnable DU right now: a persistent EO (or one with no DUs
        // yet) waits for work to be added or migrated in.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      break;  // every DU is done
    }
    DispatchUnit::StepResult result = du->Step();
    quanta_->Inc();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stepping_ = nullptr;
      // Re-find by pointer: RemoveDispatchUnit may have erased OTHER DUs
      // while this quantum ran, shifting indices.
      auto it = std::find(dus_.begin(), dus_.end(), du);
      if (it != dus_.end()) {
        size_t idx = static_cast<size_t>(it - dus_.begin());
        DuSchedInfo& info = infos_[idx];
        double progressed =
            result == DispatchUnit::StepResult::kProgress ? 1.0 : 0.0;
        info.recent_progress = 0.8 * info.recent_progress + 0.2 * progressed;
        if (result == DispatchUnit::StepResult::kDone) info.done = true;
        du_quanta_[idx]->Inc();
        if (result == DispatchUnit::StepResult::kProgress) {
          du_progress_[idx]->Inc();
        }
      }
    }
    step_done_.notify_all();
    if (result == DispatchUnit::StepResult::kProgress) {
      idle_streak = 0;
    } else if (++idle_streak > static_cast<int>(num_dus())) {
      // Everything idled this round: yield rather than burn the core
      // (non-blocking dequeues let us do this — the Fjords design point).
      idle_backoffs_->Inc();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      idle_streak = 0;
    }
  }
  running_.store(false);
}

void ExecutionObject::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void ExecutionObject::Join() {
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

}  // namespace tcq
