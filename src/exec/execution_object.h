// Execution Object (paper §4.2.2): "we use the term Execution Object to
// describe the threads of control in the TelegraphCQ executor. Each EO is
// mapped to a single system thread." An EO repeatedly asks its scheduler
// for the next Dispatch Unit and runs one non-preemptive quantum; when all
// DUs idle it backs off briefly instead of spinning.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "exec/dispatch_unit.h"
#include "exec/scheduler.h"

namespace tcq {

class ExecutionObject {
 public:
  /// When `metrics` is null the EO observes itself in a private registry;
  /// instruments are labeled with the EO's name (and per-DU counters with
  /// each DU's name).
  ExecutionObject(std::string name, std::unique_ptr<Scheduler> scheduler,
                  MetricsRegistryRef metrics = nullptr);
  ~ExecutionObject();

  const std::string& name() const { return name_; }

  /// Thread-safe: adds a DU (picked up on the next scheduling round).
  void AddDispatchUnit(std::shared_ptr<DispatchUnit> du);

  void Start();
  void Stop();

  /// Blocks until every DU reported kDone (or Stop() was called).
  void Join();

  bool running() const { return running_.load(); }
  uint64_t quanta_run() const { return quanta_->Value(); }
  size_t num_dus() const;

 private:
  void Run();

  std::string name_;
  std::unique_ptr<Scheduler> scheduler_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<DispatchUnit>> dus_;
  std::vector<DuSchedInfo> infos_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};

  MetricsRegistryRef metrics_;
  Counter* quanta_;
  Counter* idle_backoffs_;
  Gauge* num_dus_gauge_;
  // Parallel to dus_: per-DU quanta/progress counters (scheduler picks).
  std::vector<Counter*> du_quanta_;
  std::vector<Counter*> du_progress_;
};

}  // namespace tcq
