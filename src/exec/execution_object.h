// Execution Object (paper §4.2.2): "we use the term Execution Object to
// describe the threads of control in the TelegraphCQ executor. Each EO is
// mapped to a single system thread." An EO repeatedly asks its scheduler
// for the next Dispatch Unit and runs one non-preemptive quantum; when all
// DUs idle it backs off briefly instead of spinning.

#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "exec/dispatch_unit.h"
#include "exec/scheduler.h"

namespace tcq {

class ExecutionObject {
 public:
  /// When `metrics` is null the EO observes itself in a private registry;
  /// instruments are labeled with the EO's name (and per-DU counters with
  /// each DU's name).
  ExecutionObject(std::string name, std::unique_ptr<Scheduler> scheduler,
                  MetricsRegistryRef metrics = nullptr);
  ~ExecutionObject();

  const std::string& name() const { return name_; }

  /// Thread-safe: adds a DU (picked up on the next scheduling round).
  void AddDispatchUnit(std::shared_ptr<DispatchUnit> du);

  /// Persistent EOs idle when every DU is done instead of exiting the run
  /// loop, so they can receive DUs added or migrated in later (the
  /// executor's EOs are persistent; Join() then only returns via Stop()).
  /// Call before Start().
  void set_persistent(bool persistent) { persistent_ = persistent; }

  /// Thread-safe quiesce point: removes a DU, BLOCKING until any in-flight
  /// quantum of it finishes (DU quanta are non-preemptive; this waits out
  /// the current one rather than interrupting it). After a true return the
  /// caller owns the DU exclusively — no EO thread will step it again — so
  /// it can be mutated, migrated to another EO, or dropped. Returns false if
  /// the DU is not hosted here.
  bool RemoveDispatchUnit(const std::shared_ptr<DispatchUnit>& du);

  void Start();
  void Stop();

  /// Blocks until every DU reported kDone (or Stop() was called).
  void Join();

  bool running() const { return running_.load(); }
  uint64_t quanta_run() const { return quanta_->Value(); }
  size_t num_dus() const;

 private:
  void Run();

  std::string name_;
  std::unique_ptr<Scheduler> scheduler_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<DispatchUnit>> dus_;
  std::vector<DuSchedInfo> infos_;
  /// The DU whose quantum is running right now (set under mu_ before the
  /// step, cleared after). RemoveDispatchUnit waits on step_done_ until its
  /// target is not this.
  DispatchUnit* stepping_ = nullptr;
  std::condition_variable step_done_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  bool persistent_ = false;

  MetricsRegistryRef metrics_;
  Counter* quanta_;
  Counter* idle_backoffs_;
  Gauge* num_dus_gauge_;
  // Parallel to dus_: per-DU quanta/progress counters (scheduler picks).
  std::vector<Counter*> du_quanta_;
  std::vector<Counter*> du_progress_;
};

}  // namespace tcq
