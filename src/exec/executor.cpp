#include "exec/executor.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "eddy/routing_policy.h"

namespace tcq {

namespace {

/// Per-class routing of local eddy ids to (global id, client sink). Only
/// touched on the class's DU thread.
struct ClassDeliveries {
  std::map<QueryId, std::pair<GlobalQueryId, Executor::Sink>> sinks;
};

/// One-shot synchronization for blocking admission.
struct AdmissionGate {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<QueryId>> result;

  void Set(Result<QueryId> r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
    }
    cv.notify_all();
  }
  Result<QueryId> Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return result.has_value(); });
    return *result;
  }
};

}  // namespace

Executor::Executor(Options opts, MetricsRegistryRef metrics)
    : opts_(opts), metrics_(OrPrivateRegistry(std::move(metrics))) {
  dropped_unrouted_ =
      metrics_->GetCounter("tcq_executor_tuples_dropped_unrouted_total");
  for (size_t i = 0; i < opts_.num_eos; ++i) {
    auto sched = opts_.ticket_scheduler
                     ? MakeTicketScheduler(opts_.seed + i)
                     : MakeRoundRobinScheduler();
    eos_.push_back(std::make_unique<ExecutionObject>(
        "eo" + std::to_string(i), std::move(sched), metrics_));
  }
}

Executor::~Executor() { Stop(); }

Status Executor::RegisterStream(SourceId source, SchemaRef schema,
                                StemOptions stem_opts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (streams_.contains(source)) {
    return Status::AlreadyExists("stream s" + std::to_string(source) +
                                 " already registered");
  }
  StreamInfo info;
  info.schema = std::move(schema);
  info.stem_opts = std::move(stem_opts);
  info.dropped = metrics_->GetCounter(MetricName(
      "tcq_executor_stream_dropped_total", "stream",
      "s" + std::to_string(source)));
  streams_.emplace(source, std::move(info));
  return Status::OK();
}

Result<size_t> Executor::ClassFor(SourceSet footprint) {
  // Which existing classes does the footprint touch?
  std::vector<size_t> touching;
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].streams & footprint) touching.push_back(c);
  }
  if (touching.size() > 1) {
    return Status::Unimplemented(
        "query footprint bridges two query classes; class re-adjustment is "
        "not supported (paper §4.2.2 open issue)");
  }

  size_t class_idx;
  if (touching.empty()) {
    // New class with its own shared eddy and DU.
    auto eddy = std::make_unique<SharedEddy>(
        MakeLotteryPolicy(opts_.seed + classes_.size()), metrics_,
        "class" + std::to_string(classes_.size()));
    auto du = std::make_shared<SharedCQDispatchUnit>(
        "class" + std::to_string(classes_.size()), std::move(eddy),
        SharedCQDispatchUnit::Options{opts_.quantum});
    QueryClass qc;
    qc.du = du;
    qc.eo = classes_.size() % eos_.size();
    classes_.push_back(std::move(qc));
    class_idx = classes_.size() - 1;
    eos_[classes_[class_idx].eo]->AddDispatchUnit(du);
  } else {
    class_idx = touching.front();
  }

  // Claim any footprint streams the class does not yet consume.
  QueryClass& qc = classes_[class_idx];
  SourceSet missing = footprint & ~qc.streams;
  for (SourceId s = 0; s < 32; ++s) {
    if (!(missing & SourceBit(s))) continue;
    auto it = streams_.find(s);
    assert(it != streams_.end());
    StreamInfo& info = it->second;
    if (info.owner_class != SIZE_MAX && info.owner_class != class_idx) {
      return Status::Unimplemented(
          "stream s" + std::to_string(s) +
          " is already owned by another query class");
    }
    auto endpoints = Fjord::Make(FjordMode::kPush, opts_.queue_capacity,
                                 "exec:s" + std::to_string(s), metrics_.get());
    info.producer = std::make_unique<FjordProducer>(endpoints.producer);
    info.owner_class = class_idx;
    SchemaRef schema = info.schema;
    StemOptions stem_opts = info.stem_opts;
    qc.du->SubmitTask([s, schema, stem_opts](SharedEddy* eddy) {
      eddy->RegisterStream(s, schema, stem_opts);
    });
    qc.du->AddInput(s, endpoints.consumer);
    qc.streams |= SourceBit(s);
  }
  return class_idx;
}

Result<GlobalQueryId> Executor::SubmitQuery(const CQSpec& spec, Sink sink) {
  SourceSet footprint = spec.Footprint();
  if (footprint == 0) {
    return Status::InvalidArgument("query has an empty footprint");
  }
  std::shared_ptr<SharedCQDispatchUnit> du;
  GlobalQueryId gid;
  size_t class_idx;
  auto gate = std::make_shared<AdmissionGate>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (SourceId s = 0; s < 32; ++s) {
      if ((footprint & SourceBit(s)) && !streams_.contains(s)) {
        return Status::NotFound("stream s" + std::to_string(s) +
                                " is not registered");
      }
    }
    TCQ_ASSIGN_OR_RETURN(class_idx, ClassFor(footprint));
    du = classes_[class_idx].du;
    gid = next_query_id_++;

    du->SubmitTask([du_raw = du.get(), gid, sink = std::move(sink), spec,
                    gate](SharedEddy* eddy) mutable {
      Result<QueryId> r = eddy->AddQuery(std::move(spec));
      if (r.ok()) du_raw->BindSink(*r, gid, std::move(sink));
      gate->Set(std::move(r));
    });
  }
  // Pre-start admission: the EO is not pumping yet, so run one quantum
  // inline (single-threaded at this point).
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) du->Step();
  }
  Result<QueryId> local = gate->Wait();
  if (!local.ok()) return local.status();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queries_[gid] = QueryInfo{class_idx, *local};
  }
  return gid;
}

Status Executor::RemoveQuery(GlobalQueryId id) {
  std::shared_ptr<SharedCQDispatchUnit> du;
  QueryId local;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      return Status::NotFound("no query " + std::to_string(id));
    }
    du = classes_[it->second.query_class].du;
    local = it->second.local_id;
    queries_.erase(it);
  }
  du->SubmitTask([local, du_raw = du.get()](SharedEddy* eddy) {
    (void)eddy->RemoveQuery(local);
    du_raw->UnbindSink(local);
  });
  return Status::OK();
}

Status Executor::IngestTuple(SourceId source, const Tuple& tuple) {
  TupleBatch batch(source);
  batch.push_back(tuple);
  return IngestBatch(std::move(batch));
}

Status Executor::IngestBatch(TupleBatch batch) {
  if (batch.empty()) return Status::OK();
  SourceId source = batch.source();
  FjordProducer* producer = nullptr;
  Counter* dropped = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(source);
    if (it == streams_.end()) {
      return Status::NotFound("stream s" + std::to_string(source) +
                              " is not registered");
    }
    producer = it->second.producer.get();
    dropped = it->second.dropped;
  }
  if (producer == nullptr) {
    // No query class consumes this stream: drop loudly, not silently.
    dropped_unrouted_->Inc(batch.size());
    dropped->Inc(batch.size());
    return Status::FailedPrecondition(
        "stream s" + std::to_string(source) +
        " is not consumed by any active query class; " +
        std::to_string(batch.size()) + " tuple(s) dropped");
  }
  for (int attempt = 0; attempt < 200; ++attempt) {
    QueueOp op = producer->ProduceBatch(&batch);
    if (batch.empty()) return Status::OK();
    if (op == QueueOp::kClosed) {
      dropped->Inc(batch.size());
      return Status::FailedPrecondition("stream s" + std::to_string(source) +
                                        " is closed");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  dropped_unrouted_->Inc(batch.size());
  dropped->Inc(batch.size());
  return Status::ResourceExhausted("stream s" + std::to_string(source) +
                                   " back-pressured; " +
                                   std::to_string(batch.size()) +
                                   " tuple(s) dropped");
}

uint64_t Executor::stream_tuples_dropped(SourceId source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(source);
  if (it == streams_.end()) return 0;
  return it->second.dropped->Value();
}

Status Executor::CloseStream(SourceId source) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(source);
  if (it == streams_.end()) {
    return Status::NotFound("stream s" + std::to_string(source) +
                            " is not registered");
  }
  if (it->second.producer != nullptr) it->second.producer->Close();
  return Status::OK();
}

void Executor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  started_ = true;
  for (auto& eo : eos_) eo->Start();
}

void Executor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  for (auto& eo : eos_) eo->Stop();
}

size_t Executor::num_classes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_.size();
}

}  // namespace tcq
