#include "exec/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>

#include "cacq/spec_codec.h"

namespace tcq {

Executor::Executor(Options opts, MetricsRegistryRef metrics,
                   obs::TracerRef tracer)
    : opts_(opts),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      tracer_(std::move(tracer)) {
  if (opts_.shards == 0) opts_.shards = 1;
  dropped_unrouted_ =
      metrics_->GetCounter("tcq_executor_tuples_dropped_unrouted_total");
  dropped_backpressure_ =
      metrics_->GetCounter("tcq_executor_tuples_dropped_backpressure_total");
  merges_ = metrics_->GetCounter("tcq_executor_class_merges_total");
  migrations_ = metrics_->GetCounter("tcq_executor_class_migrations_total");
  gcs_ = metrics_->GetCounter("tcq_executor_class_gcs_total");
  classes_gauge_ = metrics_->GetGauge("tcq_executor_classes");
  for (size_t i = 0; i < opts_.num_eos; ++i) {
    auto sched = opts_.ticket_scheduler
                     ? MakeTicketScheduler(opts_.seed + i)
                     : MakeRoundRobinScheduler();
    eos_.push_back(std::make_unique<ExecutionObject>(
        "eo" + std::to_string(i), std::move(sched), metrics_));
    // Executor EOs never self-exit: a drained EO must stay schedulable for
    // classes created later or migrated in by the rebalance pass.
    eos_.back()->set_persistent(true);
  }
}

Executor::~Executor() { Stop(); }

Status Executor::RegisterStream(SourceId source, SchemaRef schema,
                                StemOptions stem_opts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (streams_.contains(source)) {
    return Status::AlreadyExists("stream s" + std::to_string(source) +
                                 " already registered");
  }
  StreamInfo info;
  info.schema = std::move(schema);
  info.stem_opts = std::move(stem_opts);
  info.dropped = metrics_->GetCounter(MetricName(
      "tcq_executor_stream_dropped_total", "stream",
      "s" + std::to_string(source)));
  streams_.emplace(source, std::move(info));
  return Status::OK();
}

size_t Executor::CountLiveClasses() const {
  size_t n = 0;
  for (const QueryClass& qc : classes_) {
    if (qc.live) ++n;
  }
  return n;
}

void Executor::ApplyRemap(size_t cls, const ShardedClass::RemapMap& remap) {
  for (auto& [gid, qi] : queries_) {
    if (qi.query_class != cls) continue;
    auto it = remap.find(qi.local_id);
    assert(it != remap.end() && "live query missing from repartition remap");
    if (it != remap.end()) qi.local_id = it->second;
  }
}

void Executor::MergeClassInto(size_t dst, size_t src) {
  assert(classes_[dst].live && classes_[src].live && dst != src);
  // The disjoint-stream ImportState path works on single eddies, so both
  // classes first collapse to one shard (a no-op at the default shard
  // count; a real collapse re-partitions online and remaps local ids).
  classes_[dst].sc->RepartitionTo(
      1, [&](const ShardedClass::RemapMap& m) { ApplyRemap(dst, m); });
  classes_[src].sc->RepartitionTo(
      1, [&](const ShardedClass::RemapMap& m) { ApplyRemap(src, m); });

  QueryClass& d = classes_[dst];
  QueryClass& s = classes_[src];
  // Absorb: quiesces both, transfers streams + SteM contents + queries
  // (lineage bits remapped into the survivor's QuerySet), moves fjord
  // consumers with their queued tuples, and leaves src retired so an
  // in-flight RouteBatch re-resolves to the survivor.
  ShardedClass::RemapMap remap = d.sc->AbsorbSingleShard(s.sc.get());
  for (auto& [gid, qi] : queries_) {
    if (qi.query_class != src) continue;
    auto it = remap.find(qi.local_id);
    assert(it != remap.end() && "live query missing from export remap");
    qi.query_class = dst;
    qi.local_id = it->second;
  }
  ForEachSource(s.streams, [&](SourceId stream) {
    auto it = streams_.find(stream);
    assert(it != streams_.end());
    it->second.owner_class = dst;
    it->second.owner = d.sc;
  });
  d.streams |= s.streams;
  s.sc.reset();
  s.live = false;
  s.streams = 0;

  merges_->Inc();
  classes_gauge_->Set(static_cast<int64_t>(CountLiveClasses()));
}

void Executor::GcClass(size_t cls) {
  QueryClass& qc = classes_[cls];
  assert(qc.live);
  // Shutdown detaches every shard DU, closes all stream producers (a
  // concurrent IngestBatch holding the shared class ref sees kClosed and
  // counts the drop), and drops the replicas.
  qc.sc->Shutdown();
  ForEachSource(qc.streams, [&](SourceId stream) {
    auto it = streams_.find(stream);
    if (it == streams_.end()) return;
    it->second.owner.reset();
    it->second.owner_class = SIZE_MAX;
  });
  qc.sc.reset();
  qc.live = false;
  qc.streams = 0;
  gcs_->Inc();
  classes_gauge_->Set(static_cast<int64_t>(CountLiveClasses()));
}

Result<size_t> Executor::ClassFor(SourceSet footprint) {
  // Which live classes does the footprint touch?
  std::vector<size_t> touching;
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].live && (classes_[c].streams & footprint)) {
      touching.push_back(c);
    }
  }

  size_t class_idx;
  if (touching.empty()) {
    // New class, placed on the EO hosting the fewest shard DUs (the
    // rebalance pass revisits this later).
    std::vector<size_t> hosted(eos_.size(), 0);
    for (const QueryClass& qc : classes_) {
      if (!qc.live) continue;
      for (size_t k = 0; k < qc.sc->num_shards(); ++k) {
        ++hosted[qc.sc->shard_eo(k)];
      }
    }
    size_t label = next_class_label_++;
    ShardedClass::Options sc_opts;
    sc_opts.shards = opts_.shards;
    sc_opts.quantum = opts_.quantum;
    sc_opts.queue_capacity = opts_.queue_capacity;
    sc_opts.buckets = opts_.shard_buckets;
    sc_opts.skew_threshold = opts_.shard_skew_threshold;
    sc_opts.min_skew_volume = opts_.shard_min_skew_volume;
    sc_opts.seed = opts_.seed + label;
    std::vector<ExecutionObject*> eo_ptrs;
    eo_ptrs.reserve(eos_.size());
    for (auto& eo : eos_) eo_ptrs.push_back(eo.get());
    QueryClass qc;
    qc.sc = std::make_shared<ShardedClass>(
        "class" + std::to_string(label), sc_opts, std::move(eo_ptrs),
        metrics_, tracer_);
    qc.live = true;
    size_t eo = static_cast<size_t>(
        std::min_element(hosted.begin(), hosted.end()) - hosted.begin());
    qc.sc->set_shard_eo(0, eo);
    classes_.push_back(std::move(qc));
    class_idx = classes_.size() - 1;
    eos_[eo]->AddDispatchUnit(classes_[class_idx].sc->shard_du(0));
    classes_gauge_->Set(static_cast<int64_t>(CountLiveClasses()));
  } else {
    // The paper's §4.2.2 open issue, closed: a bridging footprint MERGES
    // every touched class into the first one.
    class_idx = touching.front();
    for (size_t i = 1; i < touching.size(); ++i) {
      MergeClassInto(class_idx, touching[i]);
    }
  }

  // Claim any footprint streams the class does not yet consume.
  QueryClass& qc = classes_[class_idx];
  SourceSet missing = footprint & ~qc.streams;
  ForEachSource(missing, [&](SourceId s) {
    auto it = streams_.find(s);
    assert(it != streams_.end());
    StreamInfo& info = it->second;
    // Any class owning a footprint stream was in `touching` and has been
    // merged in, so unclaimed is the only possibility left.
    assert(info.owner_class == SIZE_MAX && "stream owned by a merged class");
    qc.sc->ClaimStream(s, info.schema, info.stem_opts);
    info.owner = qc.sc;
    info.owner_class = class_idx;
    qc.streams |= SourceBit(s);
  });
  return class_idx;
}

Result<GlobalQueryId> Executor::SubmitQuery(const CQSpec& spec, Sink sink) {
  SourceSet footprint = spec.Footprint();
  if (footprint == 0) {
    return Status::InvalidArgument("query has an empty footprint");
  }
  // mu_ is held across admission: the wait inside AdmitQuery is serviced by
  // EO threads (or the inline Step pre-start), and EO threads never take
  // mu_ — so a concurrent merge/GC cannot remap the class between the eddy
  // admitting the query and queries_ recording its (class, local id).
  std::lock_guard<std::mutex> lock(mu_);
  Status unknown = Status::OK();
  ForEachSource(footprint, [&](SourceId s) {
    if (unknown.ok() && !streams_.contains(s)) {
      unknown = Status::NotFound("stream s" + std::to_string(s) +
                                 " is not registered");
    }
  });
  if (!unknown.ok()) return unknown;
  size_t class_idx;
  TCQ_ASSIGN_OR_RETURN(class_idx, ClassFor(footprint));
  GlobalQueryId gid = next_query_id_++;

  Result<QueryId> local = classes_[class_idx].sc->AdmitQuery(
      spec, gid, std::move(sink), started_,
      [&](const ShardedClass::RemapMap& m) { ApplyRemap(class_idx, m); });
  if (!local.ok()) {
    // If admission left the class without any query (e.g. a class freshly
    // created for this footprint), reclaim it right away.
    bool any = false;
    for (const auto& [g, qi] : queries_) {
      if (qi.query_class == class_idx) {
        any = true;
        break;
      }
    }
    if (!any && classes_[class_idx].live) GcClass(class_idx);
    return local.status();
  }
  queries_[gid] = QueryInfo{class_idx, *local};
  return gid;
}

Status Executor::RemoveQuery(GlobalQueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query " + std::to_string(id));
  }
  size_t cls = it->second.query_class;
  QueryId local = it->second.local_id;
  queries_.erase(it);
  bool last = true;
  for (const auto& [gid, qi] : queries_) {
    if (qi.query_class == cls) {
      last = false;
      break;
    }
  }
  if (!last) {
    classes_[cls].sc->RemoveQuery(local);
    return Status::OK();
  }
  // Last query of the class: GC it — DUs, eddies, SteMs, and fjords all go;
  // the streams are freed for a later query to re-claim.
  GcClass(cls);
  return Status::OK();
}

Status Executor::IngestTuple(SourceId source, const Tuple& tuple) {
  TupleBatch batch(source);
  batch.push_back(tuple);
  return IngestBatch(std::move(batch));
}

Status Executor::IngestBatch(TupleBatch batch) {
  if (batch.empty() && batch.punctuations().empty()) return Status::OK();
  SourceId source = batch.source();
  // Hold the class by shared_ptr: a concurrent GC may release the stream
  // (closing its fjords) while this batch is in flight.
  std::shared_ptr<ShardedClass> sc;
  Counter* dropped = nullptr;
  auto lookup = [&]() -> Status {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(source);
    if (it == streams_.end()) {
      return Status::NotFound("stream s" + std::to_string(source) +
                              " is not registered");
    }
    sc = it->second.owner;
    dropped = it->second.dropped;
    return Status::OK();
  };
  Status st = lookup();
  if (!st.ok()) return st;
  auto unrouted = [&]() {
    // No query class consumes this stream: drop loudly, not silently.
    dropped_unrouted_->Inc(batch.size());
    dropped->Inc(batch.size());
    return Status::FailedPrecondition(
        "stream s" + std::to_string(source) +
        " is not consumed by any active query class; " +
        std::to_string(batch.size()) + " tuple(s) dropped");
  };
  if (sc == nullptr) return unrouted();
  // Producer-side enqueue span: timed across back-pressure retries, so its
  // duration shows blocked producers (the consumer-side wait is kQueueWait).
  bool sampled = tracer_ != nullptr && tracer_->ShouldSample();
  int64_t t0 = sampled ? NowMicros() : 0;
  for (int attempt = 0; attempt < 200; ++attempt) {
    ShardedClass::RouteResult r = sc->RouteBatch(&batch);
    if (batch.empty() && batch.punctuations().empty()) {
      if (sampled) {
        tracer_->Record(obs::SpanKind::kQueueEnqueue, source, 0, t0,
                        NowMicros() - t0);
      }
      return Status::OK();
    }
    if (r == ShardedClass::RouteResult::kClosed) {
      dropped->Inc(batch.size());
      return Status::FailedPrecondition("stream s" + std::to_string(source) +
                                        " is closed");
    }
    if (r == ShardedClass::RouteResult::kRetired) {
      // The class was merged away mid-flight: re-resolve the stream's
      // current owner (the merge survivor) and route there.
      st = lookup();
      if (!st.ok()) return st;
      if (sc == nullptr) return unrouted();
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // Routed but back-pressured past the retry budget: counted separately
  // from unrouted drops (a consumer exists; it just can't keep up).
  dropped_backpressure_->Inc(batch.size());
  dropped->Inc(batch.size());
  return Status::ResourceExhausted("stream s" + std::to_string(source) +
                                   " back-pressured; " +
                                   std::to_string(batch.size()) +
                                   " tuple(s) dropped");
}

uint64_t Executor::stream_tuples_dropped(SourceId source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(source);
  if (it == streams_.end()) return 0;
  return it->second.dropped->Value();
}

Timestamp Executor::stream_watermark(SourceId source) const {
  std::shared_ptr<ShardedClass> sc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(source);
    if (it == streams_.end() || it->second.owner == nullptr) {
      return kMinTimestamp;
    }
    sc = it->second.owner;
  }
  return sc->merged_watermark(source);
}

Status Executor::CloseStream(SourceId source) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(source);
  if (it == streams_.end()) {
    return Status::NotFound("stream s" + std::to_string(source) +
                            " is not registered");
  }
  if (it->second.owner != nullptr) it->second.owner->CloseStream(source);
  return Status::OK();
}

bool Executor::RebalanceLocked() {
  if (eos_.size() < 2) return false;
  // Per-EO load = recent progress (quanta that did work) of its live shard
  // DUs since the previous pass; per-shard deltas double as the "busiest
  // DU" ranking.
  std::vector<uint64_t> load(eos_.size(), 0);
  std::vector<size_t> hosted(eos_.size(), 0);
  struct Candidate {
    size_t cls;
    size_t shard;
    uint64_t delta;
  };
  std::vector<Candidate> cands;
  for (size_t c = 0; c < classes_.size(); ++c) {
    QueryClass& qc = classes_[c];
    if (!qc.live) continue;
    for (size_t k = 0; k < qc.sc->num_shards(); ++k) {
      uint64_t delta = qc.sc->TakeProgressDelta(k);
      size_t eo = qc.sc->shard_eo(k);
      load[eo] += delta;
      ++hosted[eo];
      cands.push_back({c, k, delta});
    }
  }
  size_t max_eo = 0;
  size_t min_eo = 0;
  for (size_t e = 1; e < eos_.size(); ++e) {
    if (load[e] > load[max_eo]) max_eo = e;
    if (load[e] < load[min_eo] ||
        (load[e] == load[min_eo] && hosted[e] < hosted[min_eo])) {
      min_eo = e;
    }
  }
  if (max_eo == min_eo || hosted[max_eo] < 2) return false;
  double floor = static_cast<double>(std::max<uint64_t>(load[min_eo], 1));
  if (static_cast<double>(load[max_eo]) <=
      opts_.rebalance_imbalance_threshold * floor) {
    return false;
  }
  if (started_ && !eos_[min_eo]->running()) return false;  // EO retired
  // Migrate the busiest shard DU off the most-loaded EO.
  const Candidate* busiest = nullptr;
  for (const Candidate& cand : cands) {
    if (classes_[cand.cls].sc->shard_eo(cand.shard) != max_eo) continue;
    if (busiest == nullptr || cand.delta > busiest->delta) busiest = &cand;
  }
  if (busiest == nullptr || busiest->delta == 0) return false;
  // Anti-thrash gate: move only if it strictly lowers the peak load.
  // Moving a DU that carries most of its EO's load onto the least-loaded
  // EO would just relocate the hot spot (and ping-pong on the next pass).
  uint64_t src_after = load[max_eo] - busiest->delta;
  uint64_t dst_after = load[min_eo] + busiest->delta;
  if (std::max(src_after, dst_after) >= load[max_eo]) return false;
  ShardedClass* sc = classes_[busiest->cls].sc.get();
  // Quiesce at a quantum boundary, then re-home. The DU's fjords and eddy
  // state move untouched — only the thread stepping it changes.
  auto du = sc->shard_du(busiest->shard);
  eos_[max_eo]->RemoveDispatchUnit(du);
  sc->set_shard_eo(busiest->shard, min_eo);
  eos_[min_eo]->AddDispatchUnit(du);
  migrations_->Inc();
  return true;
}

bool Executor::SkewLocked() {
  bool any = false;
  for (size_t c = 0; c < classes_.size(); ++c) {
    QueryClass& qc = classes_[c];
    if (!qc.live) continue;
    if (qc.sc->MaybeRepartitionForSkew(
            [&](const ShardedClass::RemapMap& m) { ApplyRemap(c, m); })) {
      any = true;
    }
  }
  return any;
}

bool Executor::RebalanceOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  return RebalanceLocked();
}

bool Executor::RepartitionSkewedOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  return SkewLocked();
}

uint64_t Executor::class_repartitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const QueryClass& qc : classes_) {
    if (qc.live) n += qc.sc->repartitions();
  }
  return n;
}

Status Executor::CheckpointTo(CheckpointWriter* w) {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginSection("executor", 1);
  w->PutU32(static_cast<uint32_t>(CountLiveClasses()));
  w->EndSection();
  for (QueryClass& qc : classes_) {
    if (!qc.live) continue;
    TCQ_RETURN_IF_ERROR(qc.sc->CheckpointTo(w));
  }
  return Status::OK();
}

Status Executor::RestoreClass(CheckpointReader* r, const SinkFactory& sinks,
                              uint64_t* replayed) {
  TCQ_ASSIGN_OR_RETURN(CheckpointReader::Section sec, r->BeginSection());
  if (sec.tag != "class") {
    return Status::IOError("expected a 'class' checkpoint section, found '" +
                           sec.tag + "'");
  }
  if (sec.version > 1) {
    return Status::IOError("class section version " +
                           std::to_string(sec.version) + " is newer than "
                           "this binary supports");
  }

  // Re-drive every recorded admission, in admission order, under its
  // ORIGINAL global id. Footprint grouping is deterministic, so the same
  // query sequence reproduces the same class shapes — except when a query
  // that once bridged two footprints was removed before the checkpoint, in
  // which case one recorded class legitimately restores as several. All
  // later steps therefore resolve classes through the stream catalog
  // instead of assuming one section == one class.
  std::set<size_t> restored;  // class indices this section's queries landed in
  uint32_t nqueries = 0;
  TCQ_ASSIGN_OR_RETURN(nqueries, r->GetU32());
  for (uint32_t i = 0; i < nqueries; ++i) {
    uint64_t gid = 0;
    TCQ_ASSIGN_OR_RETURN(gid, r->GetU64());
    TCQ_ASSIGN_OR_RETURN(CQSpec spec, GetCQSpec(r));
    SourceSet footprint = spec.Footprint();
    if (footprint == 0) {
      return Status::IOError("checkpointed query " + std::to_string(gid) +
                             " has an empty footprint");
    }
    Status missing = Status::OK();
    ForEachSource(footprint, [&](SourceId s) {
      if (missing.ok() && !streams_.contains(s)) {
        missing = Status::FailedPrecondition(
            "checkpointed query " + std::to_string(gid) + " needs stream s" +
            std::to_string(s) + ", which was not re-registered");
      }
    });
    if (!missing.ok()) return missing;
    if (queries_.contains(gid)) {
      return Status::IOError("duplicate query id " + std::to_string(gid) +
                             " in checkpoint");
    }
    size_t cls;
    TCQ_ASSIGN_OR_RETURN(cls, ClassFor(footprint));
    next_query_id_ = std::max(next_query_id_, gid + 1);
    Sink sink = sinks ? sinks(gid) : Sink{};
    if (!sink) sink = [](GlobalQueryId, const Tuple&) {};
    Result<QueryId> local = classes_[cls].sc->AdmitQuery(
        spec, gid, std::move(sink), started_,
        [&](const ShardedClass::RemapMap& m) { ApplyRemap(cls, m); });
    if (!local.ok()) return local.status();
    queries_[gid] = QueryInfo{cls, *local};
    restored.insert(cls);
  }

  // The recorded Flux bucket map. Owners apply modulo each class's current
  // shard count, so a checkpoint taken at a different effective count still
  // routes consistently.
  uint32_t nbuckets = 0;
  TCQ_ASSIGN_OR_RETURN(nbuckets, r->GetU32());
  std::vector<uint32_t> owners(nbuckets);
  for (uint32_t b = 0; b < nbuckets; ++b) {
    TCQ_ASSIGN_OR_RETURN(owners[b], r->GetU32());
  }
  for (size_t cls : restored) classes_[cls].sc->ApplyBucketOwners(owners);

  // SteM replay, routed through the stream catalog: each entry goes to the
  // class that now owns its stream (partition-map routed inside). Entries
  // for streams no class re-claimed — their last interested query was
  // removed before the checkpoint — are dropped, and counted against the
  // replay total by not counting them.
  uint32_t nroutes = 0;
  TCQ_ASSIGN_OR_RETURN(nroutes, r->GetU32());
  for (uint32_t i = 0; i < nroutes; ++i) {
    uint32_t source = 0;
    TCQ_ASSIGN_OR_RETURN(source, r->GetU32());
    uint64_t entries = 0;
    TCQ_ASSIGN_OR_RETURN(entries, r->GetU64());
    std::shared_ptr<ShardedClass> owner;
    if (auto it = streams_.find(static_cast<SourceId>(source));
        it != streams_.end()) {
      owner = it->second.owner;
    }
    for (uint64_t e = 0; e < entries; ++e) {
      TCQ_ASSIGN_OR_RETURN(Tuple t, r->GetTuple());
      Timestamp seq = 0;
      TCQ_ASSIGN_OR_RETURN(seq, r->GetI64());
      if (owner != nullptr &&
          owner->ReplayStemEntry(static_cast<SourceId>(source), t, seq)) {
        ++*replayed;
      }
    }
  }

  Timestamp horizon = 0;
  TCQ_ASSIGN_OR_RETURN(horizon, r->GetTimestamp());
  for (size_t cls : restored) classes_[cls].sc->AdvanceSeqHorizons(horizon);
  return r->EndSection();
}

Result<uint64_t> Executor::RestoreFrom(CheckpointReader* r,
                                       const SinkFactory& sinks) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!queries_.empty()) {
    return Status::FailedPrecondition(
        "restore requires a freshly constructed executor");
  }
  TCQ_ASSIGN_OR_RETURN(CheckpointReader::Section sec, r->BeginSection());
  if (sec.tag != "executor") {
    return Status::IOError("expected an 'executor' checkpoint section, "
                           "found '" + sec.tag + "'");
  }
  uint32_t nclasses = 0;
  TCQ_ASSIGN_OR_RETURN(nclasses, r->GetU32());
  TCQ_RETURN_IF_ERROR(r->EndSection());
  uint64_t replayed = 0;
  for (uint32_t c = 0; c < nclasses; ++c) {
    TCQ_RETURN_IF_ERROR(RestoreClass(r, sinks, &replayed));
  }
  return replayed;
}

void Executor::RebalanceLoop() {
  const auto interval = std::chrono::milliseconds(opts_.rebalance_interval_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!rebalance_stop_.load(std::memory_order_relaxed)) {
    // Short chunks keep Stop() responsive and honor small intervals.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (std::chrono::steady_clock::now() < next) continue;
    next = std::chrono::steady_clock::now() + interval;
    std::lock_guard<std::mutex> lock(mu_);
    (void)RebalanceLocked();
    (void)SkewLocked();
  }
}

void Executor::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
  }
  for (auto& eo : eos_) eo->Start();
  if (opts_.rebalance && eos_.size() > 1) {
    rebalance_stop_.store(false);
    rebalance_thread_ = std::thread([this] { RebalanceLoop(); });
  }
}

void Executor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  rebalance_stop_.store(true);
  if (rebalance_thread_.joinable()) rebalance_thread_.join();
  for (auto& eo : eos_) eo->Stop();
}

size_t Executor::num_classes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CountLiveClasses();
}

std::vector<Executor::ClassInfo> Executor::Topology() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClassInfo> out;
  for (size_t c = 0; c < classes_.size(); ++c) {
    const QueryClass& qc = classes_[c];
    if (!qc.live) continue;
    ClassInfo info;
    info.id = c;
    info.name = qc.sc->label();
    info.eo = qc.sc->shard_eo(0);
    info.streams = qc.streams;
    info.shards = qc.sc->num_shards();
    for (const auto& [gid, qi] : queries_) {
      if (qi.query_class == c) ++info.num_queries;
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace tcq
