#include "exec/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>

#include "eddy/routing_policy.h"

namespace tcq {

namespace {

/// One-shot synchronization for blocking admission.
struct AdmissionGate {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<QueryId>> result;

  void Set(Result<QueryId> r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
    }
    cv.notify_all();
  }
  Result<QueryId> Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return result.has_value(); });
    return *result;
  }
};

}  // namespace

Executor::Executor(Options opts, MetricsRegistryRef metrics,
                   obs::TracerRef tracer)
    : opts_(opts),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      tracer_(std::move(tracer)) {
  dropped_unrouted_ =
      metrics_->GetCounter("tcq_executor_tuples_dropped_unrouted_total");
  dropped_backpressure_ =
      metrics_->GetCounter("tcq_executor_tuples_dropped_backpressure_total");
  merges_ = metrics_->GetCounter("tcq_executor_class_merges_total");
  migrations_ = metrics_->GetCounter("tcq_executor_class_migrations_total");
  gcs_ = metrics_->GetCounter("tcq_executor_class_gcs_total");
  classes_gauge_ = metrics_->GetGauge("tcq_executor_classes");
  for (size_t i = 0; i < opts_.num_eos; ++i) {
    auto sched = opts_.ticket_scheduler
                     ? MakeTicketScheduler(opts_.seed + i)
                     : MakeRoundRobinScheduler();
    eos_.push_back(std::make_unique<ExecutionObject>(
        "eo" + std::to_string(i), std::move(sched), metrics_));
    // Executor EOs never self-exit: a drained EO must stay schedulable for
    // classes created later or migrated in by the rebalance pass.
    eos_.back()->set_persistent(true);
  }
}

Executor::~Executor() { Stop(); }

Status Executor::RegisterStream(SourceId source, SchemaRef schema,
                                StemOptions stem_opts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (streams_.contains(source)) {
    return Status::AlreadyExists("stream s" + std::to_string(source) +
                                 " already registered");
  }
  StreamInfo info;
  info.schema = std::move(schema);
  info.stem_opts = std::move(stem_opts);
  info.dropped = metrics_->GetCounter(MetricName(
      "tcq_executor_stream_dropped_total", "stream",
      "s" + std::to_string(source)));
  streams_.emplace(source, std::move(info));
  return Status::OK();
}

size_t Executor::CountLiveClasses() const {
  size_t n = 0;
  for (const QueryClass& qc : classes_) {
    if (qc.live) ++n;
  }
  return n;
}

void Executor::MergeClassInto(size_t dst, size_t src) {
  QueryClass& d = classes_[dst];
  QueryClass& s = classes_[src];
  assert(d.live && s.live && dst != src);
  // Quiesce both DUs at a quantum boundary: after RemoveDispatchUnit returns
  // nothing steps them, so their eddies can be mutated from this thread.
  eos_[d.eo]->RemoveDispatchUnit(d.du);
  eos_[s.eo]->RemoveDispatchUnit(s.du);
  d.du->Quiesce();
  s.du->Quiesce();

  // Transfer the source class's state: streams + SteM contents + queries,
  // with lineage bits remapped into the survivor's QuerySet.
  SharedEddy::ExportedState st = s.du->eddy()->ExportState();
  auto sinks = s.du->TakeSinks();
  std::map<QueryId, QueryId> remap;
  d.du->eddy()->ImportState(
      std::move(st),
      [&](QueryId old_id, QueryId new_id) { remap[old_id] = new_id; });
  for (auto& [old_local, binding] : sinks) {
    auto it = remap.find(old_local);
    if (it == remap.end()) continue;  // query was already removed
    d.du->BindSink(it->second, binding.first, std::move(binding.second));
  }
  for (auto& [gid, qi] : queries_) {
    if (qi.query_class != src) continue;
    auto it = remap.find(qi.local_id);
    assert(it != remap.end() && "live query missing from export remap");
    qi.query_class = dst;
    qi.local_id = it->second;
  }

  // The Flux-style marker point: stream producers are NEVER repointed — the
  // consumer endpoints (with everything still queued in them) move to the
  // survivor, so per-stream order is preserved and nothing in flight is
  // lost. Tuples the source class already absorbed live on in the
  // transferred SteMs.
  for (auto& [source, consumer] : s.du->DetachInputs()) {
    d.du->AddInput(source, std::move(consumer));
  }
  ForEachSource(s.streams, [&](SourceId stream) {
    auto it = streams_.find(stream);
    assert(it != streams_.end());
    it->second.owner_class = dst;
  });
  d.streams |= s.streams;
  s.du.reset();
  s.live = false;
  s.streams = 0;

  eos_[d.eo]->AddDispatchUnit(d.du);
  merges_->Inc();
  classes_gauge_->Set(static_cast<int64_t>(CountLiveClasses()));
}

void Executor::GcClass(size_t cls) {
  QueryClass& qc = classes_[cls];
  assert(qc.live);
  eos_[qc.eo]->RemoveDispatchUnit(qc.du);
  qc.du->Quiesce();
  // Release stream ownership: close the producing endpoints (a concurrent
  // IngestBatch holding the shared endpoint sees kClosed and counts the
  // drop) and unclaim, so a later query re-claims with fresh fjords.
  ForEachSource(qc.streams, [&](SourceId stream) {
    auto it = streams_.find(stream);
    if (it == streams_.end()) return;
    if (it->second.producer != nullptr) it->second.producer->Close();
    it->second.producer.reset();
    it->second.owner_class = SIZE_MAX;
  });
  // Dropping the DU drops its eddy, SteMs, and the fjord consumer
  // endpoints; anything still queued had no query left to care about it.
  qc.du.reset();
  qc.live = false;
  qc.streams = 0;
  gcs_->Inc();
  classes_gauge_->Set(static_cast<int64_t>(CountLiveClasses()));
}

Result<size_t> Executor::ClassFor(SourceSet footprint) {
  // Which live classes does the footprint touch?
  std::vector<size_t> touching;
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].live && (classes_[c].streams & footprint)) {
      touching.push_back(c);
    }
  }

  size_t class_idx;
  if (touching.empty()) {
    // New class with its own shared eddy and DU, placed on the EO hosting
    // the fewest live classes (the rebalance pass revisits this later).
    std::vector<size_t> hosted(eos_.size(), 0);
    for (const QueryClass& qc : classes_) {
      if (qc.live) ++hosted[qc.eo];
    }
    size_t label = next_class_label_++;
    auto eddy = std::make_unique<SharedEddy>(
        MakeLotteryPolicy(opts_.seed + label), metrics_,
        "class" + std::to_string(label));
    auto du = std::make_shared<SharedCQDispatchUnit>(
        "class" + std::to_string(label), std::move(eddy),
        SharedCQDispatchUnit::Options{opts_.quantum});
    du->set_tracer(tracer_);
    QueryClass qc;
    qc.du = du;
    qc.live = true;
    qc.eo = static_cast<size_t>(
        std::min_element(hosted.begin(), hosted.end()) - hosted.begin());
    classes_.push_back(std::move(qc));
    class_idx = classes_.size() - 1;
    eos_[classes_[class_idx].eo]->AddDispatchUnit(du);
    classes_gauge_->Set(static_cast<int64_t>(CountLiveClasses()));
  } else {
    // The paper's §4.2.2 open issue, closed: a bridging footprint MERGES
    // every touched class into the first one.
    class_idx = touching.front();
    for (size_t i = 1; i < touching.size(); ++i) {
      MergeClassInto(class_idx, touching[i]);
    }
  }

  // Claim any footprint streams the class does not yet consume.
  QueryClass& qc = classes_[class_idx];
  SourceSet missing = footprint & ~qc.streams;
  ForEachSource(missing, [&](SourceId s) {
    auto it = streams_.find(s);
    assert(it != streams_.end());
    StreamInfo& info = it->second;
    // Any class owning a footprint stream was in `touching` and has been
    // merged in, so unclaimed is the only possibility left.
    assert(info.owner_class == SIZE_MAX && "stream owned by a merged class");
    auto endpoints = Fjord::Make(FjordMode::kPush, opts_.queue_capacity,
                                 "exec:s" + std::to_string(s), metrics_.get());
    info.producer = std::make_shared<FjordProducer>(endpoints.producer);
    info.owner_class = class_idx;
    SchemaRef schema = info.schema;
    StemOptions stem_opts = info.stem_opts;
    qc.du->SubmitTask([s, schema, stem_opts](SharedEddy* eddy) {
      eddy->RegisterStream(s, schema, stem_opts);
    });
    qc.du->AddInput(s, endpoints.consumer);
    qc.streams |= SourceBit(s);
  });
  return class_idx;
}

Result<GlobalQueryId> Executor::SubmitQuery(const CQSpec& spec, Sink sink) {
  SourceSet footprint = spec.Footprint();
  if (footprint == 0) {
    return Status::InvalidArgument("query has an empty footprint");
  }
  // mu_ is held across admission: the wait below is serviced by an EO
  // thread (or the inline Step pre-start), and EO threads never take mu_ —
  // so a concurrent merge/GC cannot remap the class between the eddy
  // admitting the query and queries_ recording its (class, local id).
  std::lock_guard<std::mutex> lock(mu_);
  Status unknown = Status::OK();
  ForEachSource(footprint, [&](SourceId s) {
    if (unknown.ok() && !streams_.contains(s)) {
      unknown = Status::NotFound("stream s" + std::to_string(s) +
                                 " is not registered");
    }
  });
  if (!unknown.ok()) return unknown;
  size_t class_idx;
  TCQ_ASSIGN_OR_RETURN(class_idx, ClassFor(footprint));
  auto du = classes_[class_idx].du;
  GlobalQueryId gid = next_query_id_++;

  auto gate = std::make_shared<AdmissionGate>();
  du->SubmitTask([du_raw = du.get(), gid, sink = std::move(sink), spec,
                  gate](SharedEddy* eddy) mutable {
    Result<QueryId> r = eddy->AddQuery(std::move(spec));
    if (r.ok()) du_raw->BindSink(*r, gid, std::move(sink));
    gate->Set(std::move(r));
  });
  // Pre-start admission: the EO is not pumping yet, so run one quantum
  // inline (single-threaded at this point).
  if (!started_) du->Step();
  Result<QueryId> local = gate->Wait();
  if (!local.ok()) {
    // If admission left the class without any query (e.g. a class freshly
    // created for this footprint), reclaim it right away.
    bool any = false;
    for (const auto& [g, qi] : queries_) {
      if (qi.query_class == class_idx) {
        any = true;
        break;
      }
    }
    if (!any && classes_[class_idx].live) GcClass(class_idx);
    return local.status();
  }
  queries_[gid] = QueryInfo{class_idx, *local};
  return gid;
}

Status Executor::RemoveQuery(GlobalQueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query " + std::to_string(id));
  }
  size_t cls = it->second.query_class;
  QueryId local = it->second.local_id;
  queries_.erase(it);
  bool last = true;
  for (const auto& [gid, qi] : queries_) {
    if (qi.query_class == cls) {
      last = false;
      break;
    }
  }
  if (!last) {
    auto du = classes_[cls].du;
    du->SubmitTask([local, du_raw = du.get()](SharedEddy* eddy) {
      (void)eddy->RemoveQuery(local);
      du_raw->UnbindSink(local);
    });
    return Status::OK();
  }
  // Last query of the class: GC it — DU, eddy, SteMs, and fjords all go;
  // the streams are freed for a later query to re-claim.
  GcClass(cls);
  return Status::OK();
}

Status Executor::IngestTuple(SourceId source, const Tuple& tuple) {
  TupleBatch batch(source);
  batch.push_back(tuple);
  return IngestBatch(std::move(batch));
}

Status Executor::IngestBatch(TupleBatch batch) {
  if (batch.empty()) return Status::OK();
  SourceId source = batch.source();
  // Hold the endpoint by shared_ptr: a concurrent GC may release the stream
  // (closing the fjord) while this batch is in flight.
  std::shared_ptr<FjordProducer> producer;
  Counter* dropped = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(source);
    if (it == streams_.end()) {
      return Status::NotFound("stream s" + std::to_string(source) +
                              " is not registered");
    }
    producer = it->second.producer;
    dropped = it->second.dropped;
  }
  if (producer == nullptr) {
    // No query class consumes this stream: drop loudly, not silently.
    dropped_unrouted_->Inc(batch.size());
    dropped->Inc(batch.size());
    return Status::FailedPrecondition(
        "stream s" + std::to_string(source) +
        " is not consumed by any active query class; " +
        std::to_string(batch.size()) + " tuple(s) dropped");
  }
  // Producer-side enqueue span: timed across back-pressure retries, so its
  // duration shows blocked producers (the consumer-side wait is kQueueWait).
  bool sampled = tracer_ != nullptr && tracer_->ShouldSample();
  int64_t t0 = sampled ? NowMicros() : 0;
  for (int attempt = 0; attempt < 200; ++attempt) {
    QueueOp op = producer->ProduceBatch(&batch);
    if (batch.empty()) {
      if (sampled) {
        tracer_->Record(obs::SpanKind::kQueueEnqueue, source, 0, t0,
                        NowMicros() - t0);
      }
      return Status::OK();
    }
    if (op == QueueOp::kClosed) {
      dropped->Inc(batch.size());
      return Status::FailedPrecondition("stream s" + std::to_string(source) +
                                        " is closed");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // Routed but back-pressured past the retry budget: counted separately
  // from unrouted drops (a consumer exists; it just can't keep up).
  dropped_backpressure_->Inc(batch.size());
  dropped->Inc(batch.size());
  return Status::ResourceExhausted("stream s" + std::to_string(source) +
                                   " back-pressured; " +
                                   std::to_string(batch.size()) +
                                   " tuple(s) dropped");
}

uint64_t Executor::stream_tuples_dropped(SourceId source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(source);
  if (it == streams_.end()) return 0;
  return it->second.dropped->Value();
}

Status Executor::CloseStream(SourceId source) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(source);
  if (it == streams_.end()) {
    return Status::NotFound("stream s" + std::to_string(source) +
                            " is not registered");
  }
  if (it->second.producer != nullptr) it->second.producer->Close();
  return Status::OK();
}

bool Executor::RebalanceLocked() {
  if (eos_.size() < 2) return false;
  // Per-EO load = recent progress (quanta that did work) of its live class
  // DUs since the previous pass; per-class deltas double as the "busiest
  // DU" ranking.
  std::vector<uint64_t> load(eos_.size(), 0);
  std::vector<size_t> hosted(eos_.size(), 0);
  std::vector<std::pair<size_t, uint64_t>> deltas;  // (class, delta)
  for (size_t c = 0; c < classes_.size(); ++c) {
    QueryClass& qc = classes_[c];
    if (!qc.live) continue;
    uint64_t now = qc.du->progress_steps();
    uint64_t delta = now - qc.last_progress;
    qc.last_progress = now;
    load[qc.eo] += delta;
    ++hosted[qc.eo];
    deltas.emplace_back(c, delta);
  }
  size_t max_eo = 0;
  size_t min_eo = 0;
  for (size_t e = 1; e < eos_.size(); ++e) {
    if (load[e] > load[max_eo]) max_eo = e;
    if (load[e] < load[min_eo] ||
        (load[e] == load[min_eo] && hosted[e] < hosted[min_eo])) {
      min_eo = e;
    }
  }
  if (max_eo == min_eo || hosted[max_eo] < 2) return false;
  double floor = static_cast<double>(std::max<uint64_t>(load[min_eo], 1));
  if (static_cast<double>(load[max_eo]) <=
      opts_.rebalance_imbalance_threshold * floor) {
    return false;
  }
  if (started_ && !eos_[min_eo]->running()) return false;  // EO retired
  // Migrate the busiest DU off the most-loaded EO.
  size_t busiest = SIZE_MAX;
  uint64_t busiest_delta = 0;
  for (const auto& [c, delta] : deltas) {
    if (classes_[c].eo != max_eo) continue;
    if (busiest == SIZE_MAX || delta > busiest_delta) {
      busiest = c;
      busiest_delta = delta;
    }
  }
  if (busiest == SIZE_MAX || busiest_delta == 0) return false;
  // Anti-thrash gate: move only if it strictly lowers the peak load.
  // Moving a DU that carries most of its EO's load onto the least-loaded
  // EO would just relocate the hot spot (and ping-pong on the next pass).
  uint64_t src_after = load[max_eo] - busiest_delta;
  uint64_t dst_after = load[min_eo] + busiest_delta;
  if (std::max(src_after, dst_after) >= load[max_eo]) return false;
  QueryClass& qc = classes_[busiest];
  // Quiesce at a quantum boundary, then re-home. The DU's fjords and eddy
  // state move untouched — only the thread stepping it changes.
  eos_[max_eo]->RemoveDispatchUnit(qc.du);
  qc.eo = min_eo;
  eos_[min_eo]->AddDispatchUnit(qc.du);
  migrations_->Inc();
  return true;
}

bool Executor::RebalanceOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  return RebalanceLocked();
}

void Executor::RebalanceLoop() {
  const auto interval = std::chrono::milliseconds(opts_.rebalance_interval_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!rebalance_stop_.load(std::memory_order_relaxed)) {
    // Short chunks keep Stop() responsive and honor small intervals.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (std::chrono::steady_clock::now() < next) continue;
    next = std::chrono::steady_clock::now() + interval;
    std::lock_guard<std::mutex> lock(mu_);
    (void)RebalanceLocked();
  }
}

void Executor::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
  }
  for (auto& eo : eos_) eo->Start();
  if (opts_.rebalance && eos_.size() > 1) {
    rebalance_stop_.store(false);
    rebalance_thread_ = std::thread([this] { RebalanceLoop(); });
  }
}

void Executor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  rebalance_stop_.store(true);
  if (rebalance_thread_.joinable()) rebalance_thread_.join();
  for (auto& eo : eos_) eo->Stop();
}

size_t Executor::num_classes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CountLiveClasses();
}

std::vector<Executor::ClassInfo> Executor::Topology() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClassInfo> out;
  for (size_t c = 0; c < classes_.size(); ++c) {
    const QueryClass& qc = classes_[c];
    if (!qc.live) continue;
    ClassInfo info;
    info.id = c;
    info.name = qc.du->name();
    info.eo = qc.eo;
    info.streams = qc.streams;
    for (const auto& [gid, qi] : queries_) {
      if (qi.query_class == c) ++info.num_queries;
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace tcq
