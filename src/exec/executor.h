// The TelegraphCQ executor (paper §4.2.2): maps continuous queries onto
// pre-emptively scheduled Execution Objects hosting non-preemptive Dispatch
// Units. "The goal is to separate queries into classes that have
// significant potential for sharing work... based on the set of streams and
// tables over which the queries are defined, which we call the query
// footprint." Each class owns a CACQ shared eddy behind one DU.
//
// Unlike the paper's snapshot — which creates classes only for DISJOINT
// footprints and leaves "class re-adjustment" as §4.2.2's open issue — this
// executor gives classes a full dynamic lifecycle:
//   * MERGE: a query whose footprint bridges existing classes is admitted by
//     merging the touched classes into one. The merge quiesces each DU at a
//     quantum boundary (Flux-style pause/drain), transfers SteM state and
//     live queries (lineage bits remapped into the survivor's QuerySet), and
//     moves the stream fjords' consumer endpoints — producers never repoint,
//     so no in-flight batch is lost or reordered.
//   * GC: removing a class's last query retires the class — its DU detaches,
//     fjords close, and stream ownership is released for later queries.
//   * MIGRATE: a background rebalance pass watches per-DU progress counters
//     and moves the busiest shard DU off the most-loaded EO when the
//     imbalance exceeds a threshold (enable via Options::rebalance).
//   * SHARD: with Options::shards > 1 each class runs as a ShardedClass —
//     N shared-eddy replicas partitioned Flux-style on the class's derived
//     join keys, pumped in parallel by per-shard DUs, with online skew
//     re-partitioning (see exec/sharded_class.h).

#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/metrics.h"
#include "exec/dispatch_unit.h"
#include "exec/execution_object.h"
#include "exec/sharded_class.h"
#include "stem/stem.h"

namespace tcq {

/// Executor-global query handle (distinct from per-eddy QueryIds).
using GlobalQueryId = uint64_t;

class Executor {
 public:
  struct Options {
    size_t num_eos = 2;
    size_t quantum = 64;
    size_t queue_capacity = 4096;
    bool ticket_scheduler = false;
    uint64_t seed = 42;
    /// Run the background rebalance pass (class migration across EOs).
    bool rebalance = false;
    uint64_t rebalance_interval_ms = 100;
    /// Migrate when the most-loaded EO's recent progress exceeds this
    /// multiple of the least-loaded EO's (and it hosts >= 2 DUs).
    double rebalance_imbalance_threshold = 2.0;
    /// Shard replicas per query class (1 = classic single-eddy classes).
    /// A class only actually fans out when its queries' join edges can be
    /// consistently co-partitioned; see exec/sharded_class.h.
    size_t shards = 1;
    /// Flux bucket count per sharded class (unit of load balancing).
    size_t shard_buckets = 64;
    /// Skew re-partition trigger: busiest shard's recent ingest exceeds
    /// this multiple of the least-busy shard's (rebalance pass must run).
    double shard_skew_threshold = 4.0;
    /// Minimum tuples ingested class-wide between skew checks.
    uint64_t shard_min_skew_volume = 256;
  };

  /// Receives (global id, result tuple) deliveries; called from EO threads.
  using Sink = std::function<void(GlobalQueryId, const Tuple&)>;

  /// One live query class, as reported by Topology().
  struct ClassInfo {
    size_t id = 0;          ///< stable class index (survives merges of others)
    std::string name;       ///< the class label (shard 0 DU's name)
    size_t eo = 0;          ///< EO hosting shard 0 (migrates)
    SourceSet streams = 0;  ///< streams the class owns
    size_t num_queries = 0; ///< live queries routed to the class
    size_t shards = 1;      ///< current shard replica count
  };

  /// When `metrics` is null the executor observes itself (and everything it
  /// creates: EOs, query classes' shared eddies and SteMs, stream fjords) in
  /// a private registry. A non-null `tracer` is handed to every class DU so
  /// ingest batches can be trace-sampled end to end.
  Executor() : Executor(Options()) {}
  explicit Executor(Options opts, MetricsRegistryRef metrics = nullptr,
                    obs::TracerRef tracer = nullptr);
  ~Executor();

  /// Declares a stream the executor may route. `stem_opts` configures the
  /// shared SteM a class creates for it (e.g. join window).
  Status RegisterStream(SourceId source, SchemaRef schema,
                        StemOptions stem_opts = StemOptions{});

  /// Thread-safe ingestion of one tuple: a batch of one (see IngestBatch).
  Status IngestTuple(SourceId source, const Tuple& tuple);

  /// Thread-safe batch ingestion: routes the whole batch to the query class
  /// consuming its stream in ONE catalog lookup; the class partitions it
  /// across its shard replicas and moves each slice in whole-batch pushes.
  /// Returns:
  ///   * kNotFound            — the stream was never registered;
  ///   * kFailedPrecondition  — no active query class consumes the stream
  ///                            (the batch is dropped and counted, per-stream
  ///                            and globally), or the stream is closed;
  ///   * kResourceExhausted   — back-pressure outlasted the retry budget; the
  ///                            undelivered suffix is dropped and counted
  ///                            (per-stream and under the dedicated
  ///                            back-pressure counter — these tuples WERE
  ///                            routed, unlike the unrouted drops above).
  Status IngestBatch(TupleBatch batch);

  /// Closes a stream: its class eventually drains and completes.
  Status CloseStream(SourceId source);

  /// Submits a continuous query; blocks until the owning class's DUs admit
  /// it (milliseconds). A footprint bridging several classes first merges
  /// them (also blocking, at quantum boundaries). Deliveries go to `sink`;
  /// with shards > 1 they arrive from several EO threads, serialized
  /// per query but not across queries.
  Result<GlobalQueryId> SubmitQuery(const CQSpec& spec, Sink sink);

  /// Removes a query at the next quantum boundary. Removing a class's LAST
  /// query garbage-collects the class synchronously: the DUs detach from
  /// their EOs, the class fjords close, and stream ownership is released (a
  /// later query re-claims the streams with fresh fjords).
  Status RemoveQuery(GlobalQueryId id);

  /// Runs one rebalance pass immediately (also what the background thread
  /// does every rebalance_interval_ms). Returns true if a DU migrated.
  bool RebalanceOnce();

  /// Runs one skew check over every sharded class, re-partitioning online
  /// where per-shard ingest deltas exceed the threshold (also part of the
  /// background rebalance pass). Returns true if any class re-partitioned.
  bool RepartitionSkewedOnce();

  // --- Durable state (DESIGN.md §13) -----------------------------------------

  /// Snapshots every live query class into the writer: one "executor"
  /// section (the class count) followed by one "class" section per class
  /// (queries + partition map + SteM state, via ShardedClass::CheckpointTo).
  /// The caller must have blocked ingestion for the duration; EO threads
  /// keep running (they drain the class fjords and service the quiesce).
  Status CheckpointTo(CheckpointWriter* w);

  /// Builds the delivery sink for one restored query, from its recorded
  /// global id.
  using SinkFactory = std::function<Sink(GlobalQueryId)>;

  /// Rebuilds the query classes from a checkpoint: re-drives each recorded
  /// admission under its ORIGINAL global id (deterministic footprint
  /// grouping reproduces the class shapes), re-applies the recorded Flux
  /// bucket maps, then replays SteM entries with their original seqs and
  /// jumps the seq horizons. Streams must already be re-registered. The
  /// executor must be freshly constructed (no queries admitted). Returns
  /// the number of SteM entries replayed.
  Result<uint64_t> RestoreFrom(CheckpointReader* r, const SinkFactory& sinks);

  void Start();
  void Stop();

  /// Live query classes only (merged-away and GC'd classes are excluded).
  size_t num_classes() const;
  size_t num_eos() const { return eos_.size(); }
  /// Snapshot of the live class -> EO topology.
  std::vector<ClassInfo> Topology() const;

  uint64_t tuples_dropped_unrouted() const {
    return dropped_unrouted_->Value();
  }
  uint64_t tuples_dropped_backpressure() const {
    return dropped_backpressure_->Value();
  }
  /// Tuples dropped on one stream (unrouted, closed, or back-pressured
  /// past the retry budget). 0 for unknown streams.
  uint64_t stream_tuples_dropped(SourceId source) const;
  /// The owning class's merged (min across shard replicas) event-time
  /// watermark of `source`; kMinTimestamp for unknown/unpunctuated streams.
  Timestamp stream_watermark(SourceId source) const;
  uint64_t class_merges() const { return merges_->Value(); }
  uint64_t class_migrations() const { return migrations_->Value(); }
  uint64_t class_gcs() const { return gcs_->Value(); }
  /// Online shard re-partitions across all live classes.
  uint64_t class_repartitions() const;
  const MetricsRegistryRef& metrics() const { return metrics_; }

 private:
  struct StreamInfo {
    SchemaRef schema;
    StemOptions stem_opts;
    /// Owning class (null until claimed). Shared so a concurrent
    /// IngestBatch keeps the class alive while a GC pass releases the
    /// stream or a merge retires the class.
    std::shared_ptr<ShardedClass> owner;
    size_t owner_class = SIZE_MAX;
    /// Drops on this stream: tcq_executor_stream_dropped_total{stream=...}.
    Counter* dropped = nullptr;
  };

  struct QueryClass {
    std::shared_ptr<ShardedClass> sc;
    SourceSet streams = 0;
    bool live = false;  ///< false once merged away or GC'd
  };

  struct QueryInfo {
    size_t query_class = SIZE_MAX;
    QueryId local_id = 0;
  };

  /// Finds or creates the class covering `footprint`, merging every touched
  /// class into one when the footprint bridges them (caller holds mu_).
  Result<size_t> ClassFor(SourceSet footprint);
  /// Merges class `src` into class `dst`: collapses both to one shard,
  /// quiesces, transfers eddy/SteM state, remaps query lineage, moves fjord
  /// consumers (caller holds mu_; both classes must be live).
  void MergeClassInto(size_t dst, size_t src);
  /// Retires a live class with no queries left (caller holds mu_).
  void GcClass(size_t cls);
  /// Rewrites queries_ local ids for `cls` after a shard re-partition
  /// re-admitted them (caller holds mu_; applied in one pass, whole-map).
  void ApplyRemap(size_t cls, const ShardedClass::RemapMap& remap);
  /// Restores one "class" checkpoint section: re-admission + bucket map +
  /// SteM replay (caller holds mu_). Adds replayed-entry count to *replayed.
  Status RestoreClass(CheckpointReader* r, const SinkFactory& sinks,
                      uint64_t* replayed);
  size_t CountLiveClasses() const;  // caller holds mu_
  bool RebalanceLocked();           // caller holds mu_
  bool SkewLocked();                // caller holds mu_
  void RebalanceLoop();

  Options opts_;
  mutable std::mutex mu_;
  std::map<SourceId, StreamInfo> streams_;
  std::vector<QueryClass> classes_;
  std::map<GlobalQueryId, QueryInfo> queries_;
  GlobalQueryId next_query_id_ = 1;
  size_t next_class_label_ = 0;  // DU/eddy labels stay unique across GC
  std::vector<std::unique_ptr<ExecutionObject>> eos_;
  MetricsRegistryRef metrics_;
  obs::TracerRef tracer_;
  Counter* dropped_unrouted_;
  Counter* dropped_backpressure_;
  Counter* merges_;
  Counter* migrations_;
  Counter* gcs_;
  Gauge* classes_gauge_;
  bool started_ = false;
  std::thread rebalance_thread_;
  std::atomic<bool> rebalance_stop_{false};
};

}  // namespace tcq
