// The TelegraphCQ executor (paper §4.2.2): maps continuous queries onto
// pre-emptively scheduled Execution Objects hosting non-preemptive Dispatch
// Units. "The goal is to separate queries into classes that have
// significant potential for sharing work... based on the set of streams and
// tables over which the queries are defined, which we call the query
// footprint. In the current implementation, we create query classes for
// disjoint sets of footprints" — so does this one: each class owns a CACQ
// shared eddy; a query whose footprint would bridge two existing classes is
// rejected (class re-adjustment is the paper's stated open issue).

#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

#include "common/metrics.h"
#include "exec/dispatch_unit.h"
#include "exec/execution_object.h"
#include "fjords/fjord.h"
#include "stem/stem.h"

namespace tcq {

/// Executor-global query handle (distinct from per-eddy QueryIds).
using GlobalQueryId = uint64_t;

class Executor {
 public:
  struct Options {
    size_t num_eos = 2;
    size_t quantum = 64;
    size_t queue_capacity = 4096;
    bool ticket_scheduler = false;
    uint64_t seed = 42;
  };

  /// Receives (global id, result tuple) deliveries; called from EO threads.
  using Sink = std::function<void(GlobalQueryId, const Tuple&)>;

  /// When `metrics` is null the executor observes itself (and everything it
  /// creates: EOs, query classes' shared eddies and SteMs, stream fjords) in
  /// a private registry.
  Executor() : Executor(Options()) {}
  explicit Executor(Options opts, MetricsRegistryRef metrics = nullptr);
  ~Executor();

  /// Declares a stream the executor may route. `stem_opts` configures the
  /// shared SteM a class creates for it (e.g. join window).
  Status RegisterStream(SourceId source, SchemaRef schema,
                        StemOptions stem_opts = StemOptions{});

  /// Thread-safe ingestion of one tuple: a batch of one (see IngestBatch).
  Status IngestTuple(SourceId source, const Tuple& tuple);

  /// Thread-safe batch ingestion: routes the whole batch to the query class
  /// consuming its stream in ONE catalog lookup, moving it into the class's
  /// fjord in whole-batch pushes. Returns:
  ///   * kNotFound            — the stream was never registered;
  ///   * kFailedPrecondition  — no active query class consumes the stream
  ///                            (the batch is dropped and counted, per-stream
  ///                            and globally), or the stream is closed;
  ///   * kResourceExhausted   — back-pressure outlasted the retry budget; the
  ///                            undelivered suffix is dropped and counted.
  Status IngestBatch(TupleBatch batch);

  /// Closes a stream: its class eventually drains and completes.
  Status CloseStream(SourceId source);

  /// Submits a continuous query; blocks until the owning class's DU admits
  /// it (milliseconds). Deliveries go to `sink`.
  Result<GlobalQueryId> SubmitQuery(const CQSpec& spec, Sink sink);

  /// Removes a query at the next quantum boundary.
  Status RemoveQuery(GlobalQueryId id);

  void Start();
  void Stop();

  size_t num_classes() const;
  size_t num_eos() const { return eos_.size(); }
  uint64_t tuples_dropped_unrouted() const {
    return dropped_unrouted_->Value();
  }
  /// Tuples dropped on one stream (unrouted, closed, or back-pressured
  /// past the retry budget). 0 for unknown streams.
  uint64_t stream_tuples_dropped(SourceId source) const;
  const MetricsRegistryRef& metrics() const { return metrics_; }

 private:
  struct StreamInfo {
    SchemaRef schema;
    StemOptions stem_opts;
    /// Producing endpoint into the owning class (null until claimed).
    std::unique_ptr<FjordProducer> producer;
    size_t owner_class = SIZE_MAX;
    /// Drops on this stream: tcq_executor_stream_dropped_total{stream=...}.
    Counter* dropped = nullptr;
  };

  struct QueryClass {
    std::shared_ptr<SharedCQDispatchUnit> du;
    SourceSet streams = 0;
    size_t eo = 0;
  };

  struct QueryInfo {
    size_t query_class = SIZE_MAX;
    QueryId local_id = 0;
  };

  /// Finds or creates the class covering `footprint` (caller holds mu_).
  Result<size_t> ClassFor(SourceSet footprint);

  Options opts_;
  mutable std::mutex mu_;
  std::map<SourceId, StreamInfo> streams_;
  std::vector<QueryClass> classes_;
  std::map<GlobalQueryId, QueryInfo> queries_;
  GlobalQueryId next_query_id_ = 1;
  std::vector<std::unique_ptr<ExecutionObject>> eos_;
  MetricsRegistryRef metrics_;
  Counter* dropped_unrouted_;
  bool started_ = false;
};

}  // namespace tcq
