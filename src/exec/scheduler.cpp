#include "exec/scheduler.h"

namespace tcq {

size_t RoundRobinScheduler::PickNext(const std::vector<DuSchedInfo>& dus) {
  for (size_t i = 0; i < dus.size(); ++i) {
    size_t cand = (next_ + i) % dus.size();
    if (!dus[cand].done) {
      // Store the cursor already wrapped so it stays a valid index even if
      // the DU set grows between calls.
      next_ = (cand + 1) % dus.size();
      return cand;
    }
  }
  return SIZE_MAX;
}

size_t TicketScheduler::PickNext(const std::vector<DuSchedInfo>& dus) {
  weights_.clear();
  bool any = false;
  for (const DuSchedInfo& du : dus) {
    double w = du.done ? 0.0 : 0.05 + du.recent_progress;
    weights_.push_back(w);
    any = any || !du.done;
  }
  if (!any) return SIZE_MAX;
  return rng_.WeightedIndex(weights_);
}

std::unique_ptr<Scheduler> MakeRoundRobinScheduler() {
  return std::make_unique<RoundRobinScheduler>();
}

std::unique_ptr<Scheduler> MakeTicketScheduler(uint64_t seed) {
  return std::make_unique<TicketScheduler>(seed);
}

}  // namespace tcq
