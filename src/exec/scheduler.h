// Scheduling policies for Dispatch Units inside one Execution Object
// (paper §4.2.2: "an EO consists of a scheduler, one or more event queues,
// and a set of non-preemptive Dispatch Units that can be executed based on
// some scheduling policy").

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace tcq {

/// Per-DU view the scheduler decides on.
struct DuSchedInfo {
  bool done = false;
  /// Progress quanta out of the last few steps (EWMA in [0,1]).
  double recent_progress = 1.0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const char* name() const = 0;
  /// Index of the next DU to run; only !done entries may be returned.
  /// Returns SIZE_MAX when every DU is done.
  virtual size_t PickNext(const std::vector<DuSchedInfo>& dus) = 0;
};

/// Fair cycling over live DUs.
class RoundRobinScheduler : public Scheduler {
 public:
  const char* name() const override { return "round-robin"; }
  size_t PickNext(const std::vector<DuSchedInfo>& dus) override;

 private:
  size_t next_ = 0;
};

/// Lottery over live DUs weighted by recent progress, so busy query classes
/// get more quanta while idle ones still poll occasionally.
class TicketScheduler : public Scheduler {
 public:
  explicit TicketScheduler(uint64_t seed = 42) : rng_(seed) {}
  const char* name() const override { return "ticket"; }
  size_t PickNext(const std::vector<DuSchedInfo>& dus) override;

 private:
  Rng rng_;
  std::vector<double> weights_;
};

std::unique_ptr<Scheduler> MakeRoundRobinScheduler();
std::unique_ptr<Scheduler> MakeTicketScheduler(uint64_t seed = 42);

}  // namespace tcq
