#include "exec/sharded_class.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "cacq/spec_codec.h"
#include "eddy/routing_policy.h"

namespace tcq {

namespace {

/// One-shot synchronization for blocking admission (per shard replica).
struct AdmissionGate {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<QueryId>> result;

  void Set(Result<QueryId> r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
    }
    cv.notify_all();
  }
  Result<QueryId> Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return result.has_value(); });
    return *result;
  }
};

/// Partition key of a tuple: int64 values hash directly (equal keys across
/// streams must bucket identically for co-partitioning), everything else
/// through the Value hash.
int64_t KeyOf(const Tuple& t, size_t field) {
  const Value& v = t.at(field);
  return v.type() == ValueType::kInt64 ? v.AsInt64()
                                       : static_cast<int64_t>(v.Hash());
}

}  // namespace

ShardedClass::ShardedClass(std::string label, Options opts,
                           std::vector<ExecutionObject*> eos,
                           MetricsRegistryRef metrics, obs::TracerRef tracer)
    : label_(std::move(label)),
      opts_(opts),
      eos_(std::move(eos)),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      tracer_(std::move(tracer)),
      parts_(opts.buckets == 0 ? 1 : opts.buckets, 1) {
  if (opts_.shards == 0) opts_.shards = 1;
  if (opts_.buckets == 0) opts_.buckets = 1;
  bucket_counts_ =
      std::make_unique<std::atomic<uint64_t>[]>(opts_.buckets);
  for (size_t b = 0; b < opts_.buckets; ++b) {
    bucket_counts_[b].store(0, std::memory_order_relaxed);
  }
  repartitions_ = metrics_->GetCounter(
      MetricName("tcq_shard_repartitions_total", "class", label_));
  pause_us_ = metrics_->GetHistogram(
      MetricName("tcq_shard_repartition_pause_us", "class", label_));
  shard_count_gauge_ =
      metrics_->GetGauge(MetricName("tcq_shard_count", "class", label_));
  // Classes always START at one shard; AdmitQuery expands to opts_.shards
  // once the first query's join edges prove the class co-partitionable.
  merged_wm_.Reset(1);
  shards_.push_back(MakeShard(0, 0));
  shard_count_gauge_->Set(1);
}

ShardedClass::Shard ShardedClass::MakeShard(size_t k, size_t eo) {
  // Shard 0 keeps the bare class label so the default single-shard path is
  // instrument- and name-identical to an unsharded class.
  std::string name = k == 0 ? label_ : label_ + "/s" + std::to_string(k);
  auto eddy = std::make_unique<SharedEddy>(MakeLotteryPolicy(opts_.seed + k),
                                           metrics_, name);
  auto du = std::make_shared<SharedCQDispatchUnit>(
      name, std::move(eddy), SharedCQDispatchUnit::Options{opts_.quantum});
  du->set_tracer(tracer_);
  du->set_shard(static_cast<uint32_t>(k));
  du->set_control_sink(
      [this, k](const Punctuation& p) { OnShardPunctuation(k, p); });
  Shard sh;
  sh.du = std::move(du);
  sh.eo = eos_.empty() ? 0 : eo % eos_.size();
  sh.ingest = metrics_->GetCounter(
      MetricName("tcq_shard_ingest_total", "shard", name));
  sh.occupancy =
      metrics_->GetGauge(MetricName("tcq_shard_occupancy", "shard", name));
  // Registry instruments persist across repartitions (same name -> same
  // counter), so the skew snapshot must start from the current value.
  sh.last_ingest = sh.ingest->Value();
  return sh;
}

std::string ShardedClass::FjordName(SourceId source, size_t shard,
                                    size_t total) const {
  // Single-shard classes keep the historical name so queue instruments and
  // tests see an unchanged default path.
  if (total == 1) return "exec:s" + std::to_string(source);
  return "exec:" + label_ + "/s" + std::to_string(source) + "/r" +
         std::to_string(shard);
}

void ShardedClass::ClaimStream(SourceId source, SchemaRef schema,
                               StemOptions stem_opts) {
  std::unique_lock<std::shared_mutex> lock(route_mu_);
  Route r;
  r.schema = schema;
  r.stem_opts = stem_opts;
  for (size_t k = 0; k < shards_.size(); ++k) {
    auto ep = Fjord::Make(FjordMode::kPush, opts_.queue_capacity,
                          FjordName(source, k, shards_.size()),
                          metrics_.get());
    r.producers.push_back(std::make_shared<FjordProducer>(ep.producer));
    r.fjords.push_back(ep.fjord);
    shards_[k].du->SubmitTask([source, schema, stem_opts](SharedEddy* eddy) {
      eddy->RegisterStream(source, schema, stem_opts);
    });
    shards_[k].du->AddInput(source, ep.consumer);
  }
  routes_.emplace(source, std::move(r));
}

bool ShardedClass::CloseStream(SourceId source) {
  std::unique_lock<std::shared_mutex> lock(route_mu_);
  auto it = routes_.find(source);
  if (it == routes_.end()) return false;
  it->second.closed = true;
  for (auto& p : it->second.producers) p->Close();
  return true;
}

std::optional<std::map<SourceId, std::string>> ShardedClass::DeriveKeys(
    const CQSpec* extra) const {
  std::map<SourceId, std::string> keys;
  auto fold = [&keys](const CQSpec& spec) {
    for (const JoinEdge& e : spec.joins) {
      for (const AttrRef* a : {&e.left, &e.right}) {
        auto [it, inserted] = keys.emplace(a->source, a->name);
        // One stream needing two different partition keys (chained joins on
        // distinct attrs, self-joins on distinct attrs) is unshardable.
        if (!inserted && it->second != a->name) return false;
      }
    }
    return true;
  };
  for (const auto& [id, spec] : specs_) {
    if (!fold(spec)) return std::nullopt;
  }
  if (extra != nullptr && !fold(*extra)) return std::nullopt;
  return keys;
}

Result<QueryId> ShardedClass::AdmitQuery(const CQSpec& spec, uint64_t gid,
                                         Sink sink, bool started,
                                         const RemapFn& remap) {
  // Desired layout including the new query's join edges. A key conflict
  // collapses the class to one shard — correctness beats parallelism.
  auto keys = DeriveKeys(&spec);
  size_t desired = keys.has_value() ? opts_.shards : 1;
  bool reshape = desired != shards_.size();
  if (!reshape && desired > 1) {
    std::shared_lock<std::shared_mutex> lock(route_mu_);
    for (const auto& [source, r] : routes_) {
      std::string want;
      if (auto it = keys->find(source); it != keys->end()) want = it->second;
      if (r.key_attr != want) {
        reshape = true;
        break;
      }
    }
  }
  bool deferred = false;
  if (reshape) {
    // Leave the rebuilt DUs detached: the admission tasks below must enter
    // the plan queues BEFORE any EO pumps the carried-over tuples (Step
    // drains the plan queue first), so the new query sees all of them.
    Repartition(desired, keys.value_or(std::map<SourceId, std::string>{}),
                {}, remap, /*attach_after=*/false);
    deferred = true;
  }

  // Per-query merge stage: shards deliver concurrently from their own EO
  // threads; the mutex serializes any ONE query's deliveries, preserving
  // the executor's sink contract.
  auto merge_mu = std::make_shared<std::mutex>();
  auto wrapped = [merge_mu, sink = std::move(sink)](uint64_t g,
                                                    const Tuple& t) {
    std::lock_guard<std::mutex> lock(*merge_mu);
    sink(g, t);
  };

  // Broadcast admission. Tasks are enqueued in the same order on every
  // shard's FIFO plan queue and every replica has seen the identical task
  // sequence since birth, so the local ids they assign are identical.
  std::vector<std::shared_ptr<AdmissionGate>> gates;
  gates.reserve(shards_.size());
  for (Shard& sh : shards_) {
    auto gate = std::make_shared<AdmissionGate>();
    gates.push_back(gate);
    sh.du->SubmitTask([du = sh.du.get(), gid, wrapped, spec,
                       gate](SharedEddy* eddy) mutable {
      Result<QueryId> r = eddy->AddQuery(std::move(spec));
      if (r.ok()) du->BindSink(*r, gid, std::move(wrapped));
      gate->Set(std::move(r));
    });
  }
  if (deferred) AttachShards();
  // Pre-start admission: no EO pumps yet, so run one quantum inline.
  if (!started) {
    for (Shard& sh : shards_) (void)sh.du->Step();
  }
  Result<QueryId> first = gates[0]->Wait();
  for (size_t k = 1; k < gates.size(); ++k) {
    Result<QueryId> r = gates[k]->Wait();
    assert(r.ok() == first.ok() && (!r.ok() || *r == *first) &&
           "shard replicas diverged on admission");
    (void)r;
  }
  if (first.ok()) {
    specs_[*first] = spec;
    std::lock_guard<std::mutex> lock(punct_mu_);
    punct_sinks_[*first] = {gid, wrapped};
  }
  return first;
}

void ShardedClass::RemoveQuery(QueryId local) {
  specs_.erase(local);
  {
    std::lock_guard<std::mutex> lock(punct_mu_);
    punct_sinks_.erase(local);
  }
  for (Shard& sh : shards_) {
    sh.du->SubmitTask([local, du = sh.du.get()](SharedEddy* eddy) {
      (void)eddy->RemoveQuery(local);
      du->UnbindSink(local);
    });
  }
}

void ShardedClass::RepartitionTo(size_t shards, const RemapFn& remap) {
  if (shards == 0) shards = 1;
  if (shards == shards_.size()) return;
  auto keys = DeriveKeys(nullptr);
  if (!keys.has_value()) shards = 1;
  if (shards == shards_.size()) return;
  Repartition(shards, keys.value_or(std::map<SourceId, std::string>{}), {},
              remap, /*attach_after=*/true);
}

bool ShardedClass::MaybeRepartitionForSkew(const RemapFn& remap) {
  if (shards_.size() < 2) return false;
  bool keyed = false;
  {
    std::shared_lock<std::shared_mutex> lock(route_mu_);
    for (const auto& [source, r] : routes_) {
      if (!r.key_attr.empty() && !r.closed) keyed = true;
    }
  }
  if (!keyed) return false;  // round-robin routes are balanced by design
  uint64_t mx = 0;
  uint64_t mn = UINT64_MAX;
  uint64_t total = 0;
  for (Shard& sh : shards_) {
    uint64_t now = sh.ingest->Value();
    uint64_t d = now - sh.last_ingest;
    mx = std::max(mx, d);
    mn = std::min(mn, d);
    total += d;
  }
  if (total < opts_.min_skew_volume) return false;
  if (static_cast<double>(mx) <=
      opts_.skew_threshold * static_cast<double>(std::max<uint64_t>(mn, 1))) {
    return false;
  }
  // LPT greedy: heaviest buckets first, each to the currently least-loaded
  // shard. Deterministic (stable sort, lowest-index tie-break).
  std::vector<std::pair<uint64_t, size_t>> weights;
  weights.reserve(opts_.buckets);
  for (size_t b = 0; b < opts_.buckets; ++b) {
    weights.emplace_back(bucket_counts_[b].load(std::memory_order_relaxed),
                         b);
  }
  std::stable_sort(weights.begin(), weights.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<uint64_t> load(shards_.size(), 0);
  std::vector<size_t> owner(opts_.buckets, 0);
  for (const auto& [w, b] : weights) {
    size_t k = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    owner[b] = k;
    load[k] += w;
  }
  auto keys = DeriveKeys(nullptr);
  if (!keys.has_value()) return false;  // raced into unshardable: bail out
  Repartition(shards_.size(), *keys, std::move(owner), remap,
              /*attach_after=*/true);
  return true;
}

void ShardedClass::AttachShards() {
  for (Shard& sh : shards_) {
    eos_[sh.eo % eos_.size()]->AddDispatchUnit(sh.du);
  }
}

void ShardedClass::Repartition(size_t new_count,
                               std::map<SourceId, std::string> new_keys,
                               std::vector<size_t> owner, const RemapFn& remap,
                               bool attach_after) {
  int64_t t0 = NowMicros();
  std::unique_lock<std::shared_mutex> lock(route_mu_);

  // 1. Pause: quiesce every shard at a quantum boundary. After this no EO
  //    thread steps them and the replicas are drained to quiescence.
  for (Shard& sh : shards_) {
    eos_[sh.eo % eos_.size()]->RemoveDispatchUnit(sh.du);
    sh.du->Quiesce();
  }

  // 2. Drain queued-but-unprocessed tuples into a per-source carryover
  //    (old-shard-major; per-shard per-source order preserved). They are
  //    NOT processed here — a query admitted right after the re-partition
  //    must still see them (the merge-survival guarantee).
  std::map<SourceId, TupleBatch> carry;
  for (Shard& sh : shards_) {
    for (auto& [source, consumer] : sh.du->DetachInputs()) {
      TupleBatch& b = carry[source];
      b.set_source(source);
      QueueOp op;
      while (consumer.ConsumeBatch(&b, SIZE_MAX / 2, &op) > 0) {
      }
    }
  }

  // 3. Export every replica's state. Shard 0's sink table is the class's
  //    (all replicas bind the same wrapped sinks).
  std::vector<SharedEddy::ExportedState> exports;
  exports.reserve(shards_.size());
  for (Shard& sh : shards_) {
    exports.push_back(sh.du->eddy()->ExportState());
  }
  auto sinks = shards_[0].du->TakeSinks();
  Timestamp horizon = 1;
  for (const auto& st : exports) horizon = std::max(horizon, st.next_seq);

  // 4. Fresh bucket map. Bucket counts restart so the next skew decision
  //    reflects the new layout.
  parts_ = Partitioner(opts_.buckets, new_count);
  for (size_t b = 0; b < owner.size() && b < opts_.buckets; ++b) {
    parts_.Reassign(b, owner[b] % new_count);
  }
  for (size_t b = 0; b < opts_.buckets; ++b) {
    bucket_counts_[b].store(0, std::memory_order_relaxed);
  }

  // 5. Fresh replicas (EO placement inherited where possible). Event-time
  //    merge state restarts at kMinTimestamp: sources re-earn their merged
  //    watermarks from the next punctuation broadcast, which can only DELAY
  //    downstream window firing (never un-fire one) — conservative and safe.
  std::vector<Shard> old_shards = std::move(shards_);
  shards_.clear();
  {
    std::lock_guard<std::mutex> plock(punct_mu_);
    merged_wm_.Reset(new_count);
  }
  for (size_t k = 0; k < new_count; ++k) {
    size_t eo = k < old_shards.size() ? old_shards[k].eo : k;
    shards_.push_back(MakeShard(k, eo));
  }

  // 6. Rebuild routes: fresh fjords sized to always fit the carryover (the
  //    re-injection below must not block — no consumer pumps yet), streams
  //    registered and inputs attached on every replica directly (we own
  //    them exclusively until re-attachment).
  for (auto& [source, r] : routes_) {
    r.key_attr.clear();
    r.key_field = 0;
    if (new_count > 1) {
      if (auto it = new_keys.find(source); it != new_keys.end()) {
        if (auto idx = r.schema->IndexOf(it->second, source); idx) {
          r.key_attr = it->second;
          r.key_field = *idx;
        }
      }
    }
    size_t extra = 0;
    if (auto it = carry.find(source); it != carry.end()) {
      // Rows plus carried control-lane entries (punctuations re-inject as
      // individual control tuples behind the rows).
      extra = it->second.size() + it->second.punctuations().size();
    }
    r.producers.clear();
    r.fjords.clear();
    for (size_t k = 0; k < new_count; ++k) {
      auto ep = Fjord::Make(FjordMode::kPush, opts_.queue_capacity + extra,
                            FjordName(source, k, new_count), metrics_.get());
      r.producers.push_back(std::make_shared<FjordProducer>(ep.producer));
      r.fjords.push_back(ep.fjord);
      shards_[k].du->eddy()->RegisterStream(source, r.schema, r.stem_opts);
      shards_[k].du->AddInput(source, ep.consumer);
    }
  }

  // 7. Re-admit queries in shard-0 export order. Fresh registries assign
  //    ids in admission order, so all replicas agree; old ids are always
  //    >= new ids, so the remap map is aliasing-free when applied in order.
  RemapMap remap_map;
  specs_.clear();
  std::map<QueryId, std::pair<uint64_t, Sink>> new_punct_sinks;
  for (const auto& q : exports[0].queries) {
    QueryId nid = 0;
    bool ok = true;
    for (size_t k = 0; k < shards_.size(); ++k) {
      Result<QueryId> r = shards_[k].du->eddy()->AddQuery(q.spec);
      if (!r.ok()) {
        assert(false && "re-admission of a previously valid query failed");
        ok = false;
        break;
      }
      if (k == 0) {
        nid = *r;
      } else {
        assert(*r == nid && "shard replicas diverged on re-admission");
      }
    }
    if (!ok) continue;
    remap_map[q.local_id] = nid;
    specs_[nid] = q.spec;
    if (auto sit = sinks.find(q.local_id); sit != sinks.end()) {
      for (Shard& sh : shards_) {
        sh.du->BindSink(nid, sit->second.first, sit->second.second);
      }
      new_punct_sinks[nid] = sit->second;
    }
  }
  {
    std::lock_guard<std::mutex> plock(punct_mu_);
    punct_sinks_ = std::move(new_punct_sinks);
  }

  // 8. Redistribute stored SteM state by the NEW bucket map, preserving
  //    original seqs, then jump every replica's horizon past all the
  //    exporters'. Future tuples (seq > horizon) probe replayed entries
  //    exactly like locally built state; replayed entries never probe each
  //    other, mirroring single-eddy semantics (probing happens at ingest).
  for (const auto& st : exports) {
    for (const auto& es : st.streams) {
      if (es.stem == nullptr) continue;
      auto rit = routes_.find(es.source);
      if (rit == routes_.end()) continue;
      const Route& r = rit->second;
      es.stem->ForEachEntry([&](const Tuple& t, Timestamp seq) {
        size_t k = 0;
        if (!r.key_attr.empty() && shards_.size() > 1) {
          k = parts_.OwnerOf(parts_.BucketOf(KeyOf(t, r.key_field)));
        }
        shards_[k].du->eddy()->BuildHistorical(es.source, t, seq);
      });
    }
  }
  for (Shard& sh : shards_) sh.du->eddy()->AdvanceSeqHorizon(horizon);

  // 9. Re-inject the carryover unprocessed through the new routes, then
  //    re-close the producers of closed streams (their queued tuples stay
  //    consumable, matching BoundedQueue close semantics).
  for (auto& [source, batch] : carry) {
    if (batch.empty() && batch.punctuations().empty()) continue;
    auto rit = routes_.find(source);
    if (rit == routes_.end()) continue;
    (void)RouteBatchLocked(&rit->second, &batch);
    assert(batch.empty() && "carryover overflowed the resized fjords");
  }
  for (auto& [source, r] : routes_) {
    if (!r.closed) continue;
    for (auto& p : r.producers) p->Close();
  }

  shard_count_gauge_->Set(static_cast<int64_t>(shards_.size()));
  repartitions_->Inc();
  int64_t paused = NowMicros() - t0;
  pause_us_->Observe(paused > 0 ? static_cast<uint64_t>(paused) : 0);
  lock.unlock();

  if (remap) remap(remap_map);
  if (attach_after) AttachShards();
}

ShardedClass::RemapMap ShardedClass::AbsorbSingleShard(ShardedClass* src) {
  assert(shards_.size() == 1 && src->shards_.size() == 1 &&
         "absorb requires both classes collapsed to one shard");
  Shard& d0 = shards_[0];
  Shard& s0 = src->shards_[0];
  // Quiesce both single-shard DUs at a quantum boundary.
  eos_[d0.eo % eos_.size()]->RemoveDispatchUnit(d0.du);
  src->eos_[s0.eo % src->eos_.size()]->RemoveDispatchUnit(s0.du);
  d0.du->Quiesce();
  s0.du->Quiesce();

  // Streams are disjoint across classes, so the ImportState path applies
  // unchanged: SteM entries transfer by reference, queries re-admit with
  // lineage bits remapped into the survivor's QuerySet.
  SharedEddy::ExportedState st = s0.du->eddy()->ExportState();
  auto sinks = s0.du->TakeSinks();
  RemapMap remap;
  d0.du->eddy()->ImportState(
      std::move(st),
      [&remap](QueryId old_id, QueryId new_id) { remap[old_id] = new_id; });
  for (auto& [old_local, binding] : sinks) {
    auto it = remap.find(old_local);
    if (it == remap.end()) continue;  // query was already removed
    {
      std::lock_guard<std::mutex> plock(punct_mu_);
      punct_sinks_[it->second] = binding;
    }
    d0.du->BindSink(it->second, binding.first, std::move(binding.second));
  }
  // The Flux marker point: producers are NEVER repointed. Consumers move
  // with their queued tuples, and src's routes (producer endpoints and all)
  // are adopted as-is, so an in-flight RouteBatch on src lands in the very
  // fjords whose consumers this class now pumps.
  for (auto& [source, consumer] : s0.du->DetachInputs()) {
    d0.du->AddInput(source, std::move(consumer));
  }
  {
    std::scoped_lock both(route_mu_, src->route_mu_);
    for (auto& [source, r] : src->routes_) {
      routes_.emplace(source, std::move(r));
    }
    src->routes_.clear();
    src->retired_ = true;  // late RouteBatch callers re-resolve the owner
  }
  for (auto& [old_local, spec] : src->specs_) {
    auto it = remap.find(old_local);
    if (it != remap.end()) specs_[it->second] = std::move(spec);
  }
  src->specs_.clear();
  src->shards_.clear();  // drops src's DU, eddy, and consumed endpoints

  eos_[d0.eo % eos_.size()]->AddDispatchUnit(d0.du);
  return remap;
}

void ShardedClass::Shutdown() {
  for (Shard& sh : shards_) {
    eos_[sh.eo % eos_.size()]->RemoveDispatchUnit(sh.du);
    sh.du->Quiesce();
  }
  std::unique_lock<std::shared_mutex> lock(route_mu_);
  for (auto& [source, r] : routes_) {
    r.closed = true;
    for (auto& p : r.producers) p->Close();
  }
  // Dropping the replicas drops their eddies, SteMs, and fjord consumers;
  // anything still queued had no query left to care about it.
  shards_.clear();
}

ShardedClass::RouteResult ShardedClass::RouteBatch(TupleBatch* batch) {
  if (batch->empty() && batch->punctuations().empty()) {
    return RouteResult::kOk;
  }
  std::shared_lock<std::shared_mutex> lock(route_mu_);
  if (retired_) return RouteResult::kRetired;
  auto it = routes_.find(batch->source());
  if (it == routes_.end()) return RouteResult::kRetired;
  if (it->second.closed) return RouteResult::kClosed;
  return RouteBatchLocked(&it->second, batch);
}

ShardedClass::RouteResult ShardedClass::RouteBatchLocked(Route* r,
                                                         TupleBatch* batch) {
  size_t n = shards_.size();
  if (n == 1) {
    size_t before = batch->size();
    QueueOp op = r->producers[0]->ProduceBatch(batch);
    size_t pushed = before - batch->size();
    if (pushed > 0) shards_[0].ingest->Inc(pushed);
    UpdateOccupancy();
    if (op == QueueOp::kClosed) return RouteResult::kClosed;
    return batch->empty() && batch->punctuations().empty()
               ? RouteResult::kOk
               : RouteResult::kWouldBlock;
  }

  // Split per tuple. Keyed routes hash the partition key through the Flux
  // bucket map (counting per-bucket traffic for later LPT re-partitions);
  // keyless routes round-robin (stateless single-source queries only).
  static thread_local std::vector<TupleBatch> scratch;
  if (scratch.size() < n) scratch.resize(n);
  for (size_t k = 0; k < n; ++k) {
    scratch[k].clear();
    scratch[k].set_source(batch->source());
  }
  const bool keyed = !r->key_attr.empty();
  Tuple* data = batch->data();
  for (size_t i = 0; i < batch->size(); ++i) {
    size_t k;
    if (keyed) {
      size_t b = parts_.BucketOf(KeyOf(data[i], r->key_field));
      bucket_counts_[b].fetch_add(1, std::memory_order_relaxed);
      k = parts_.OwnerOf(b);
    } else {
      k = rr_next_.fetch_add(1, std::memory_order_relaxed) % n;
    }
    scratch[k].push_back(std::move(data[i]));
  }
  // Control broadcast: data rows PARTITION, punctuations go to EVERY shard
  // (each replica needs the watermark; the merge below min-combines their
  // reports, so a shard missing the broadcast would pin the class watermark
  // at kMinTimestamp forever). Duplicate deliveries are idempotent —
  // watermarks are monotone maxes.
  for (const Punctuation& p : batch->punctuations()) {
    for (size_t k = 0; k < n; ++k) scratch[k].AddPunctuation(p);
  }
  batch->clear();

  bool closed = false;
  std::map<SourceId, Timestamp> left_puncts;
  for (size_t k = 0; k < n; ++k) {
    if (scratch[k].empty() && scratch[k].punctuations().empty()) continue;
    size_t before = scratch[k].size();
    QueueOp op = r->producers[k]->ProduceBatch(&scratch[k]);
    size_t pushed = before - scratch[k].size();
    if (pushed > 0) shards_[k].ingest->Inc(pushed);
    if (op == QueueOp::kClosed) closed = true;
    // Leftovers recombine in shard order: per-shard relative order is
    // preserved, which is the guarantee shards rely on (cross-shard
    // interleaving carries no meaning — shards are independent pipelines).
    for (Tuple& t : scratch[k]) batch->push_back(std::move(t));
    // Undelivered lane entries fold back per source (max per source: the
    // retry re-broadcasts to every shard, where stale ones are idempotent).
    for (const Punctuation& p : scratch[k].punctuations()) {
      auto [it, inserted] = left_puncts.try_emplace(p.source, p.low_watermark);
      if (!inserted) it->second = std::max(it->second, p.low_watermark);
    }
    scratch[k].clear();
  }
  for (const auto& [source, wm] : left_puncts) {
    batch->AddPunctuation(Punctuation{source, wm});
  }
  UpdateOccupancy();
  if (batch->empty() && batch->punctuations().empty()) {
    return RouteResult::kOk;
  }
  return closed ? RouteResult::kClosed : RouteResult::kWouldBlock;
}

void ShardedClass::OnShardPunctuation(size_t shard, const Punctuation& p) {
  // EO-thread context (during a shard eddy's IngestBatch). Deliveries stay
  // under punct_mu_ so every sink observes a monotone punctuation sequence;
  // the per-query merge mutex nests inside (punct_mu_ -> merge_mu, the same
  // order everywhere).
  std::lock_guard<std::mutex> lock(punct_mu_);
  std::optional<Timestamp> merged = merged_wm_.Observe(shard, p);
  if (!merged.has_value()) return;
  Tuple punct = Tuple::MakePunctuation(p.source, *merged);
  for (auto& [local, binding] : punct_sinks_) {
    binding.second(binding.first, punct);
  }
}

Timestamp ShardedClass::merged_watermark(SourceId source) {
  std::lock_guard<std::mutex> lock(punct_mu_);
  return merged_wm_.MergedOf(source);
}

void ShardedClass::UpdateOccupancy() {
  for (size_t k = 0; k < shards_.size(); ++k) {
    int64_t depth = 0;
    for (const auto& [source, r] : routes_) {
      if (k < r.fjords.size()) {
        depth += static_cast<int64_t>(r.fjords[k]->queue().size());
      }
    }
    shards_[k].occupancy->Set(depth);
  }
}

uint64_t ShardedClass::TakeProgressDelta(size_t shard) {
  Shard& sh = shards_[shard];
  uint64_t now = sh.du->progress_steps();
  uint64_t delta = now - sh.last_progress;
  sh.last_progress = now;
  return delta;
}

Status ShardedClass::CheckpointTo(CheckpointWriter* w) {
  // Drain first: tuples sitting in shard fjords are BELOW the spool's
  // recorded replay position, so a snapshot taken while they are queued
  // would lose them (replay starts after them). Ingest is blocked by the
  // caller, EO threads keep pumping, so the queues empty — unless a
  // member query's egress is back-pressured with a kBlock policy, which
  // the bounded wait surfaces as a typed error instead of a hang.
  constexpr int64_t kDrainTimeoutUs = 10'000'000;
  int64_t deadline = NowMicros() + kDrainTimeoutUs;
  for (;;) {
    size_t queued = 0;
    {
      std::shared_lock<std::shared_mutex> lock(route_mu_);
      for (const auto& [source, r] : routes_) {
        for (const auto& f : r.fjords) queued += f->queue().size();
      }
    }
    if (queued == 0) break;
    if (NowMicros() > deadline) {
      return Status::TimedOut("checkpoint drain stalled on class " + label_ +
                              " (" + std::to_string(queued) +
                              " tuples queued; egress back-pressure?)");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  std::unique_lock<std::shared_mutex> lock(route_mu_);
  // Pause: quiesce every shard at a quantum boundary. With ingest blocked
  // and the fjords empty, the replicas are fully quiescent afterwards.
  for (Shard& sh : shards_) {
    eos_[sh.eo % eos_.size()]->RemoveDispatchUnit(sh.du);
    sh.du->Quiesce();
  }

  w->BeginSection("class", 1);
  // Member queries in admission order (local ids are dense-FIFO, so key
  // order IS admission order) with their executor-global ids. The restorer
  // re-drives these through normal admission, which reproduces the class
  // deterministically.
  w->PutU32(static_cast<uint32_t>(specs_.size()));
  for (const auto& [local, spec] : specs_) {
    uint64_t gid = 0;
    {
      std::lock_guard<std::mutex> plock(punct_mu_);
      if (auto it = punct_sinks_.find(local); it != punct_sinks_.end()) {
        gid = it->second.first;
      }
    }
    w->PutU64(gid);
    PutCQSpec(w, spec);
  }
  // The Flux partition map (bucket -> shard).
  w->PutU32(static_cast<uint32_t>(parts_.num_buckets()));
  for (size_t b = 0; b < parts_.num_buckets(); ++b) {
    w->PutU32(static_cast<uint32_t>(parts_.OwnerOf(b)));
  }
  // Every route's SteM entries, flat across shards with ORIGINAL seqs.
  // Mixing the per-shard seq spaces is the same move Repartition makes:
  // replayed entries never probe each other, and the horizon jump keeps
  // them visible to all future tuples.
  Timestamp horizon = 1;
  for (Shard& sh : shards_) {
    horizon = std::max(horizon, sh.du->eddy()->seq_horizon());
  }
  w->PutU32(static_cast<uint32_t>(routes_.size()));
  for (const auto& [source, r] : routes_) {
    w->PutU32(source);
    uint64_t entries = 0;
    for (Shard& sh : shards_) {
      if (SteM* stem = sh.du->eddy()->GetSteM(source)) entries += stem->size();
    }
    w->PutU64(entries);
    for (Shard& sh : shards_) {
      SteM* stem = sh.du->eddy()->GetSteM(source);
      if (stem == nullptr) continue;
      stem->ForEachEntry([&](const Tuple& t, Timestamp seq) {
        w->PutTuple(t);
        w->PutI64(seq);
      });
    }
  }
  w->PutTimestamp(horizon);
  w->EndSection();

  lock.unlock();
  // Resume: re-attach the shard DUs to their EOs.
  AttachShards();
  return Status::OK();
}

void ShardedClass::ApplyBucketOwners(const std::vector<uint32_t>& owner) {
  std::unique_lock<std::shared_mutex> lock(route_mu_);
  size_t shards = shards_.size();
  for (size_t b = 0; b < owner.size() && b < parts_.num_buckets(); ++b) {
    parts_.Reassign(b, owner[b] % shards);
  }
}

bool ShardedClass::ReplayStemEntry(SourceId source, const Tuple& tuple,
                                   Timestamp seq) {
  std::unique_lock<std::shared_mutex> lock(route_mu_);
  auto rit = routes_.find(source);
  if (rit == routes_.end()) return false;
  const Route& r = rit->second;
  size_t k = 0;
  if (!r.key_attr.empty() && shards_.size() > 1) {
    k = parts_.OwnerOf(parts_.BucketOf(KeyOf(tuple, r.key_field)));
  }
  shards_[k].du->eddy()->BuildHistorical(source, tuple, seq);
  return true;
}

void ShardedClass::AdvanceSeqHorizons(Timestamp horizon) {
  std::unique_lock<std::shared_mutex> lock(route_mu_);
  for (Shard& sh : shards_) sh.du->eddy()->AdvanceSeqHorizon(horizon);
}

}  // namespace tcq
