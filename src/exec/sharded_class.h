// Flux-sharded query class: one CACQ query class partitioned across N shard
// replicas (paper §2.4 applied INTRA-process). Each shard is a full
// SharedEddy — own SteMs, routing state, decision cache — behind its own
// SharedCQDispatchUnit, so shards pump in parallel on separate Execution
// Objects with zero shared mutable dataflow state. Ingested batches are
// split per tuple by Partitioner::BucketOf over the class's derived join
// keys (round-robin for keyless streams); results from all shards fan back
// through a per-query merge mutex into the existing egress sinks.
//
// Correctness argument: partition keys are derived from the UNION of every
// member query's equality-join edges, with a conflict (one stream needing
// two different keys) collapsing the class to one shard. Hence whenever the
// class runs >1 shard, every join edge of every query is co-partitioned —
// matching tuples always meet in the same shard — and single-source queries
// are per-tuple, so the union of shard outputs equals the single-eddy
// output as a multiset.
//
// Online re-partition (Flux §4: pause/drain/move/resume) reuses the
// executor's quiesce + ExportState machinery: quiesce every shard at a
// quantum boundary, drain queued-but-UNPROCESSED tuples into a carryover
// (they re-inject untouched, so a query admitted right after still sees
// them), rebuild fresh replicas, re-admit queries in export order (FIFO
// determinism keeps local ids identical across shards), redistribute SteM
// entries by the new bucket map PRESERVING original seqs, and jump every
// replica's seq horizon past all exporters' — the same argument that makes
// ImportState exactly-once makes replayed entries probe-correct.

#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "exec/dispatch_unit.h"
#include "exec/execution_object.h"
#include "fjords/fjord.h"
#include "flux/partitioner.h"
#include "storage/checkpoint.h"

namespace tcq {

class ShardedClass {
 public:
  struct Options {
    /// Desired replica count; the EFFECTIVE count drops to 1 when the
    /// member queries' join edges cannot be consistently co-partitioned.
    size_t shards = 1;
    size_t quantum = 64;
    size_t queue_capacity = 4096;
    /// Flux bucket count: the unit of load balancing (keys hash to buckets,
    /// buckets map to shards, re-partition moves buckets).
    size_t buckets = 64;
    /// Re-partition when the busiest shard's recent ingest exceeds this
    /// multiple of the least-busy shard's.
    double skew_threshold = 4.0;
    /// Minimum tuples ingested (across shards) since the last check before
    /// a skew re-partition may trigger.
    uint64_t min_skew_volume = 256;
    /// Routing-policy seed (shard k uses seed + k).
    uint64_t seed = 42;
  };

  /// RouteBatch outcome. kRetired means this class was merged away — the
  /// caller must re-resolve the stream's owner and retry there.
  enum class RouteResult { kOk, kWouldBlock, kClosed, kRetired };

  using Sink = std::function<void(uint64_t, const Tuple&)>;
  /// Old-local-id -> new-local-id, reported whole so the executor can remap
  /// its query table in one aliasing-free pass.
  using RemapMap = std::map<QueryId, QueryId>;
  using RemapFn = std::function<void(const RemapMap&)>;

  /// `eos` are the executor's Execution Objects (stable for the executor's
  /// lifetime); shards attach to them by index.
  ShardedClass(std::string label, Options opts,
               std::vector<ExecutionObject*> eos, MetricsRegistryRef metrics,
               obs::TracerRef tracer);

  const std::string& label() const { return label_; }
  size_t num_shards() const { return shards_.size(); }
  uint64_t repartitions() const { return repartitions_->Value(); }

  // --- Structural operations (serialized by the executor's mutex) ------------

  /// Adds a stream route: one fresh fjord per shard, stream registered on
  /// every replica. New claims start keyless (round-robin); the next
  /// AdmitQuery derives partition keys and re-partitions if needed.
  void ClaimStream(SourceId source, SchemaRef schema, StemOptions stem_opts);

  /// Closes every shard's producer for the stream. False if not routed here.
  bool CloseStream(SourceId source);

  /// Admits a query on EVERY shard replica (identical local ids, enforced).
  /// First re-derives partition keys including the new spec's join edges and
  /// re-partitions when the layout must change — with the admission tasks
  /// queued ahead of re-attachment, so the new query sees every carried-over
  /// tuple. `sink` is wrapped with a per-query mutex: shards deliver
  /// concurrently, but any one query's deliveries stay serialized.
  Result<QueryId> AdmitQuery(const CQSpec& spec, uint64_t gid, Sink sink,
                             bool started, const RemapFn& remap);

  /// Broadcasts removal to every shard at its next quantum boundary.
  void RemoveQuery(QueryId local);

  /// Forces the class to exactly `shards` replicas (no-op when already
  /// there). The executor collapses classes to 1 shard before a merge so
  /// the disjoint-stream ImportState path applies unchanged.
  void RepartitionTo(size_t shards, const RemapFn& remap);

  /// Checks per-shard ingest deltas; on skew past the threshold, rebuilds
  /// the bucket->shard map by LPT over observed bucket counts and
  /// re-partitions online. Returns true if a re-partition ran.
  bool MaybeRepartitionForSkew(const RemapFn& remap);

  /// Merges `src` (another class, both collapsed to 1 shard) into this one:
  /// the single-shard eddies go through ExportState/ImportState, fjord
  /// consumers move with their queued tuples, and src's routes are adopted
  /// producers-and-all (producers are never repointed — the Flux marker
  /// point). src is left retired: in-flight RouteBatch callers get kRetired
  /// and re-resolve to this class. Returns src's lineage remap.
  RemapMap AbsorbSingleShard(ShardedClass* src);

  /// GC: detaches every shard from its EO, closes all stream producers
  /// (concurrent ingesters see kClosed), and drops the replicas.
  void Shutdown();

  // --- Durable state (DESIGN.md §13; serialized by the executor's mutex) -----

  /// Snapshots the class as one "class" checkpoint section: member queries
  /// (gid + spec, admission order), the Flux bucket->shard map, every
  /// shard's SteM entries with original seqs, and the max seq horizon.
  /// Rides the quiesce protocol: waits (bounded) for the shard fjords to
  /// drain — the caller must have blocked ingest; EO threads do the
  /// draining — then detaches + quiesces each shard DU, serializes, and
  /// re-attaches. Event-time merge state is NOT exported: like a
  /// re-partition, a restored class re-earns watermarks from the next
  /// punctuation broadcast (conservative, can only delay firing).
  Status CheckpointTo(CheckpointWriter* w);

  /// Restore path, on a FRESH class (queries re-admitted, no data ingested
  /// yet): adopts a recorded bucket->shard map. Owners are taken modulo the
  /// current shard count, so a checkpoint from a different effective count
  /// still routes consistently.
  void ApplyBucketOwners(const std::vector<uint32_t>& owner);

  /// Replays one checkpointed SteM entry, routed by the current partition
  /// map exactly like Repartition's redistribution step. Returns false
  /// (entry dropped) when the stream is not routed here — e.g. a stream
  /// whose last interested query was removed before the checkpoint.
  bool ReplayStemEntry(SourceId source, const Tuple& tuple, Timestamp seq);

  /// Jumps every replica's sequence horizon past the exporters' so replayed
  /// entries stay probe-visible to all future tuples.
  void AdvanceSeqHorizons(Timestamp horizon);

  // --- Data path (thread-safe, called WITHOUT the executor mutex) ------------

  /// Partitions the batch's tuples across shards and pushes each slice into
  /// that shard's fjord. Tuples that did not fit are left in `*batch`
  /// (per-shard order preserved) for the caller to retry or count.
  RouteResult RouteBatch(TupleBatch* batch);

  // --- Per-shard scheduling surface (executor rebalance pass) ----------------

  std::shared_ptr<SharedCQDispatchUnit> shard_du(size_t shard) const {
    return shards_[shard].du;
  }
  size_t shard_eo(size_t shard) const { return shards_[shard].eo; }
  void set_shard_eo(size_t shard, size_t eo) { shards_[shard].eo = eo; }
  /// Progress (quanta that did work) since the last call, for EO load
  /// estimation; snapshot kept per shard.
  uint64_t TakeProgressDelta(size_t shard);

  /// Merged (min-combined across shard replicas) event-time watermark of a
  /// source, kMinTimestamp until every shard has applied a broadcast
  /// punctuation for it. Test/introspection surface.
  Timestamp merged_watermark(SourceId source);

 private:
  struct Shard {
    std::shared_ptr<SharedCQDispatchUnit> du;
    size_t eo = 0;
    uint64_t last_progress = 0;  ///< rebalance snapshot
    uint64_t last_ingest = 0;    ///< skew-detection snapshot
    Counter* ingest = nullptr;   ///< tcq_shard_ingest_total{shard=...}
    Gauge* occupancy = nullptr;  ///< tcq_shard_occupancy{shard=...}
  };

  struct Route {
    SchemaRef schema;
    StemOptions stem_opts;
    bool closed = false;
    /// Partition key attribute ("" = keyless, round-robin) and its field
    /// position in the schema.
    std::string key_attr;
    size_t key_field = 0;
    /// One producing endpoint + fjord per shard (index = shard).
    std::vector<std::shared_ptr<FjordProducer>> producers;
    std::vector<std::shared_ptr<Fjord>> fjords;
  };

  Shard MakeShard(size_t k, size_t eo);
  std::string FjordName(SourceId source, size_t shard, size_t total) const;
  /// Partition keys implied by all member specs (+ `extra` if non-null):
  /// source -> join attr. nullopt = conflicting requirements (unshardable).
  std::optional<std::map<SourceId, std::string>> DeriveKeys(
      const CQSpec* extra) const;
  /// The full pause/drain/move/resume protocol; see the header comment.
  /// `owner` is the bucket->shard map (empty = round-robin buckets). When
  /// `attach_after` is false the rebuilt shard DUs are left detached for the
  /// caller to queue admission tasks ahead of re-attachment.
  void Repartition(size_t new_count, std::map<SourceId, std::string> new_keys,
                   std::vector<size_t> owner, const RemapFn& remap,
                   bool attach_after);
  void AttachShards();
  RouteResult RouteBatchLocked(Route* r, TupleBatch* batch);
  void UpdateOccupancy();
  /// Shard `shard`'s eddy applied punctuation `p` (EO thread). Min-combines
  /// across replicas; when the MERGED watermark advances, a fresh
  /// punctuation tuple fans out to every member query's sink — the class's
  /// outward event-time promise.
  void OnShardPunctuation(size_t shard, const Punctuation& p);

  std::string label_;
  Options opts_;
  std::vector<ExecutionObject*> eos_;
  MetricsRegistryRef metrics_;
  obs::TracerRef tracer_;

  /// Guards routes_/shards_/parts_ against concurrent RouteBatch: the data
  /// path holds it shared; every structural mutation holds it exclusive.
  mutable std::shared_mutex route_mu_;
  std::map<SourceId, Route> routes_;
  std::vector<Shard> shards_;
  bool retired_ = false;  ///< merged away; routes moved to the survivor

  Partitioner parts_;
  std::unique_ptr<std::atomic<uint64_t>[]> bucket_counts_;
  std::atomic<uint64_t> rr_next_{0};

  /// Member specs under their CURRENT local ids (mirrors the replicas'
  /// registries) — the input to key derivation and re-admission.
  std::map<QueryId, CQSpec> specs_;

  /// Event-time merge state. Punctuations are broadcast to every shard
  /// (duplicates are idempotent: watermarks are monotone maxes), each
  /// shard's eddy reports what it applied through OnShardPunctuation, and
  /// the min across replicas is the class watermark. punct_mu_ also
  /// serializes the fan-out so sinks see monotone punctuation sequences.
  std::mutex punct_mu_;
  ShardMergedWatermark merged_wm_;
  /// Member queries' wrapped sinks under their local ids (the same wrapped
  /// sinks BindSink installs), for control fan-out.
  std::map<QueryId, std::pair<uint64_t, Sink>> punct_sinks_;

  Counter* repartitions_;
  Histogram* pause_us_;
  Gauge* shard_count_gauge_;
};

}  // namespace tcq
