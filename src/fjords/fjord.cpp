#include "fjords/fjord.h"

namespace tcq {

const char* FjordModeName(FjordMode mode) {
  switch (mode) {
    case FjordMode::kPull:
      return "pull";
    case FjordMode::kPush:
      return "push";
    case FjordMode::kExchange:
      return "exchange";
  }
  return "unknown";
}

Fjord::Endpoints Fjord::Make(FjordMode mode, size_t capacity,
                             std::string name, MetricsRegistry* metrics) {
  auto fjord = std::make_shared<Fjord>(mode, capacity, std::move(name));
  if (metrics != nullptr) {
    fjord->queue().SetMetrics(QueueMetrics::For(metrics, fjord->name()));
  }
  return Endpoints{FjordProducer(fjord), FjordConsumer(fjord), fjord};
}

QueueOp FjordProducer::Produce(Tuple t) {
  switch (fjord_->mode()) {
    case FjordMode::kPull:
      return fjord_->queue().EnqueueBlocking(std::move(t)) ? QueueOp::kOk
                                                           : QueueOp::kClosed;
    case FjordMode::kPush:
    case FjordMode::kExchange:
      return fjord_->queue().TryEnqueue(std::move(t));
  }
  return QueueOp::kClosed;
}

QueueOp FjordProducer::ProduceBatch(TupleBatch* batch) {
  if (batch->empty() && batch->punctuations().empty()) return QueueOp::kOk;
  QueueOp op = QueueOp::kOk;
  switch (fjord_->mode()) {
    case FjordMode::kPull: {
      size_t pushed = fjord_->queue().PushBatchBlocking(batch->data(),
                                                        batch->size());
      // Uniform batch contract across modes: the unconsumed suffix stays in
      // the batch for the caller to account. (Clearing it here made
      // "before - batch.size()" callers count close-dropped tuples as
      // forwarded.)
      batch->DropFront(pushed);
      op = batch->empty() ? QueueOp::kOk : QueueOp::kClosed;
      break;
    }
    case FjordMode::kPush:
    case FjordMode::kExchange: {
      size_t pushed =
          fjord_->queue().TryPushBatch(batch->data(), batch->size(), &op);
      batch->DropFront(pushed);
      break;
    }
  }
  // The control lane travels in-band BEHIND the rows (the lane's contract is
  // "applies after this batch's rows"): only once every row is enqueued do
  // the punctuations go through, as ordinary control tuples the consumer's
  // pop-into-batch diverts back onto its lane. On backpressure the remainder
  // stays on the lane for the caller's retry.
  if (!batch->empty()) return op;
  size_t sent = 0;
  for (const Punctuation& p : batch->punctuations()) {
    QueueOp pop = Produce(Tuple::MakePunctuation(p.source, p.low_watermark));
    if (pop != QueueOp::kOk) {
      batch->DropFrontPunctuations(sent);
      return pop;
    }
    ++sent;
  }
  batch->ClearPunctuations();
  return QueueOp::kOk;
}

void FjordProducer::Close() { fjord_->queue().Close(); }

QueueOp FjordConsumer::Consume(Tuple* out) {
  switch (fjord_->mode()) {
    case FjordMode::kPull:
    case FjordMode::kExchange:
      return fjord_->queue().DequeueBlocking(out) ? QueueOp::kOk
                                                  : QueueOp::kClosed;
    case FjordMode::kPush:
      return fjord_->queue().TryDequeue(out);
  }
  return QueueOp::kClosed;
}

size_t FjordConsumer::ConsumeBatch(TupleBatch* out, size_t max, QueueOp* op,
                                   int64_t* first_enq_us) {
  switch (fjord_->mode()) {
    case FjordMode::kPull:
    case FjordMode::kExchange: {
      size_t got = fjord_->queue().PopBatchBlocking(out, max, first_enq_us);
      *op = got > 0 ? QueueOp::kOk : QueueOp::kClosed;
      return got;
    }
    case FjordMode::kPush:
      return fjord_->queue().TryPopBatch(out, max, op, first_enq_us);
  }
  *op = QueueOp::kClosed;
  return 0;
}

bool FjordConsumer::Exhausted() const { return fjord_->queue().exhausted(); }

size_t FjordConsumer::Pending() const { return fjord_->queue().size(); }

}  // namespace tcq
