// Fjord: a typed connection between a producer and a consumer module, with a
// declared modality (paper §2.3). Modules written against Producer/Consumer
// endpoints are agnostic to whether the far side pushes or pulls.

#pragma once

#include <memory>
#include <string>

#include "fjords/queue.h"

namespace tcq {

/// Connection modality between two modules.
enum class FjordMode {
  /// Blocking enqueue + blocking dequeue (classic iterator/pull pipeline).
  kPull,
  /// Non-blocking enqueue + non-blocking dequeue: neither side ever blocks;
  /// the consumer regains control when no data is available.
  kPush,
  /// Graefe Exchange semantics: non-blocking enqueue, blocking dequeue.
  kExchange,
};

const char* FjordModeName(FjordMode mode);

class Fjord;

/// Producer-side endpoint.
class FjordProducer {
 public:
  explicit FjordProducer(std::shared_ptr<Fjord> fjord)
      : fjord_(std::move(fjord)) {}

  /// Offers a tuple per the fjord's modality. Returns kOk, kWouldBlock
  /// (push mode, queue full) or kClosed.
  QueueOp Produce(Tuple t);

  /// Offers a whole batch, moving every tuple that fits under ONE queue
  /// lock acquisition. Consumed tuples are removed from `*batch`; the
  /// unconsumed suffix stays in the batch in every mode — on kWouldBlock
  /// (push mode, queue filled up) for the caller to retry, on kClosed for
  /// the caller to count or drop (the queue never destroys batch items, so
  /// its dropped_on_close counter uniformly means "items the queue itself
  /// destroyed", i.e. single-tuple Produce on a closed queue).
  QueueOp ProduceBatch(TupleBatch* batch);

  /// Signals end of stream.
  void Close();

 private:
  std::shared_ptr<Fjord> fjord_;
};

/// Consumer-side endpoint.
class FjordConsumer {
 public:
  explicit FjordConsumer(std::shared_ptr<Fjord> fjord)
      : fjord_(std::move(fjord)) {}

  /// Fetches a tuple per the fjord's modality. kWouldBlock means "no data
  /// right now" (push mode only); kClosed means the stream ended.
  QueueOp Consume(Tuple* out);

  /// Fetches up to `max` queued tuples in ONE lock acquisition, appending
  /// to `*out`. Returns the count fetched; `*op` mirrors Consume's codes
  /// (kOk when anything arrived). When `first_enq_us` is non-null it
  /// receives the enqueue time of the oldest fetched tuple (0 when the
  /// queue has no metrics attached), for queue-wait tracing.
  size_t ConsumeBatch(TupleBatch* out, size_t max, QueueOp* op,
                      int64_t* first_enq_us = nullptr);

  /// True once the stream has ended and all queued tuples were consumed.
  bool Exhausted() const;

  size_t Pending() const;

 private:
  std::shared_ptr<Fjord> fjord_;
};

/// The shared connection state. Create via Fjord::Make, then hand the two
/// endpoints to the producing and consuming modules.
class Fjord : public std::enable_shared_from_this<Fjord> {
 public:
  struct Endpoints {
    FjordProducer producer;
    FjordConsumer consumer;
    std::shared_ptr<Fjord> fjord;
  };

  /// When `metrics` is non-null the fjord's queue exports depth, blocked-op
  /// counters, dropped-on-close, and enqueue->dequeue latency instruments
  /// named tcq_queue_*{queue="<name>"}.
  static Endpoints Make(FjordMode mode, size_t capacity,
                        std::string name = "fjord",
                        MetricsRegistry* metrics = nullptr);

  FjordMode mode() const { return mode_; }
  const std::string& name() const { return name_; }
  TupleQueue& queue() { return queue_; }
  const TupleQueue& queue() const { return queue_; }

  Fjord(FjordMode mode, size_t capacity, std::string name)
      : mode_(mode), name_(std::move(name)), queue_(capacity) {}

 private:
  FjordMode mode_;
  std::string name_;
  TupleQueue queue_;
};

}  // namespace tcq
