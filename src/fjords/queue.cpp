#include "fjords/queue.h"

namespace tcq {

// Header-only template; explicit instantiation for the common case keeps
// compile times down for the rest of the tree.
template class BoundedQueue<Tuple>;

}  // namespace tcq
