// Bounded queues with both blocking ("pull") and non-blocking ("push")
// endpoint semantics — the substrate of the Fjords inter-module API
// (paper §2.3). A pull-queue blocks the consumer when empty; a push-queue
// returns control so the consumer can do other work or yield; Exchange
// semantics combine a blocking dequeue with a non-blocking enqueue.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "common/metrics.h"
#include "tuple/tuple.h"

namespace tcq {

/// Result of a non-blocking queue operation.
enum class QueueOp {
  kOk,        ///< Element transferred.
  kWouldBlock,  ///< Queue full (enqueue) or empty (dequeue); try later.
  kClosed,    ///< Producer closed the queue and it has drained.
};

/// Registry instruments a BoundedQueue exports into (all optional). The
/// queue's own counters stay authoritative for per-instance accessors; these
/// mirror them into a shared registry for Introspect()/FormatText().
struct QueueMetrics {
  Gauge* depth = nullptr;
  Counter* enqueued = nullptr;
  Counter* enqueue_blocked = nullptr;
  Counter* dequeue_blocked = nullptr;
  Counter* dropped_on_close = nullptr;
  /// Enqueue->dequeue residence time, microseconds.
  Histogram* wait_us = nullptr;

  /// Instruments named tcq_queue_*{queue="<name>"}.
  static QueueMetrics For(MetricsRegistry* registry, const std::string& name) {
    QueueMetrics m;
    if (registry == nullptr) return m;
    m.depth = registry->GetGauge(MetricName("tcq_queue_depth", "queue", name));
    m.enqueued = registry->GetCounter(
        MetricName("tcq_queue_enqueued_total", "queue", name));
    m.enqueue_blocked = registry->GetCounter(
        MetricName("tcq_queue_enqueue_blocked_total", "queue", name));
    m.dequeue_blocked = registry->GetCounter(
        MetricName("tcq_queue_dequeue_blocked_total", "queue", name));
    m.dropped_on_close = registry->GetCounter(
        MetricName("tcq_queue_dropped_on_close_total", "queue", name));
    m.wait_us = registry->GetHistogram(
        MetricName("tcq_queue_wait_us", "queue", name));
    return m;
  }
};

/// A bounded MPMC queue. All operations are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Attaches registry instruments. Call before concurrent use.
  void SetMetrics(const QueueMetrics& metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
  }

  /// Non-blocking enqueue: fails with kWouldBlock when full, kClosed after
  /// Close(). On kClosed the item is destroyed; the loss is counted in
  /// dropped_on_close_count().
  QueueOp TryEnqueue(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      CountDroppedOnClose();
      return QueueOp::kClosed;
    }
    if (items_.size() >= capacity_) {
      ++enqueue_blocked_;
      if (metrics_.enqueue_blocked != nullptr) metrics_.enqueue_blocked->Inc();
      return QueueOp::kWouldBlock;
    }
    PushLocked(std::move(item));
    not_empty_.notify_one();
    return QueueOp::kOk;
  }

  /// Blocking enqueue; returns false if the queue was closed. A false
  /// return means the in-flight item was destroyed — the loss is counted in
  /// dropped_on_close_count() so callers (and the metrics layer) can see it.
  bool EnqueueBlocking(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      CountDroppedOnClose();
      return false;
    }
    PushLocked(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking dequeue.
  QueueOp TryDequeue(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      if (closed_) return QueueOp::kClosed;
      ++dequeue_blocked_;
      if (metrics_.dequeue_blocked != nullptr) metrics_.dequeue_blocked->Inc();
      return QueueOp::kWouldBlock;
    }
    PopLocked(out);
    not_full_.notify_one();
    return QueueOp::kOk;
  }

  /// Blocking dequeue; returns false once the queue is closed and drained.
  bool DequeueBlocking(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    PopLocked(out);
    not_full_.notify_one();
    return true;
  }

  /// Marks end-of-stream. Pending items remain dequeuable; blocked callers
  /// wake up.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Closed and fully drained: no element will ever be produced again.
  bool exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

  /// Counters of failed non-blocking attempts, for the Fjords bench (E9).
  uint64_t enqueue_blocked_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return enqueue_blocked_;
  }
  uint64_t dequeue_blocked_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dequeue_blocked_;
  }
  /// Items destroyed because they were offered to a closed queue.
  uint64_t dropped_on_close_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_on_close_;
  }

 private:
  struct Slot {
    T item;
    int64_t enq_us;
  };

  void PushLocked(T item) {
    int64_t now = metrics_.wait_us != nullptr ? NowMicros() : 0;
    items_.push_back(Slot{std::move(item), now});
    if (metrics_.depth != nullptr) metrics_.depth->Add(1);
    if (metrics_.enqueued != nullptr) metrics_.enqueued->Inc();
  }

  void PopLocked(T* out) {
    Slot& front = items_.front();
    *out = std::move(front.item);
    if (metrics_.wait_us != nullptr) {
      int64_t waited = NowMicros() - front.enq_us;
      metrics_.wait_us->Observe(waited > 0 ? static_cast<uint64_t>(waited)
                                           : 0);
    }
    items_.pop_front();
    if (metrics_.depth != nullptr) metrics_.depth->Add(-1);
  }

  void CountDroppedOnClose() {
    ++dropped_on_close_;
    if (metrics_.dropped_on_close != nullptr) metrics_.dropped_on_close->Inc();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Slot> items_;
  bool closed_ = false;
  uint64_t enqueue_blocked_ = 0;
  uint64_t dequeue_blocked_ = 0;
  uint64_t dropped_on_close_ = 0;
  QueueMetrics metrics_;
};

using TupleQueue = BoundedQueue<Tuple>;

}  // namespace tcq
