// Bounded queues with both blocking ("pull") and non-blocking ("push")
// endpoint semantics — the substrate of the Fjords inter-module API
// (paper §2.3). A pull-queue blocks the consumer when empty; a push-queue
// returns control so the consumer can do other work or yield; Exchange
// semantics combine a blocking dequeue with a non-blocking enqueue.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "tuple/tuple.h"

namespace tcq {

/// Result of a non-blocking queue operation.
enum class QueueOp {
  kOk,        ///< Element transferred.
  kWouldBlock,  ///< Queue full (enqueue) or empty (dequeue); try later.
  kClosed,    ///< Producer closed the queue and it has drained.
};

/// A bounded MPMC queue. All operations are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue: fails with kWouldBlock when full, kClosed after
  /// Close().
  QueueOp TryEnqueue(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return QueueOp::kClosed;
    if (items_.size() >= capacity_) {
      ++enqueue_blocked_;
      return QueueOp::kWouldBlock;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return QueueOp::kOk;
  }

  /// Blocking enqueue; returns false if the queue was closed.
  bool EnqueueBlocking(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking dequeue.
  QueueOp TryDequeue(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      if (closed_) return QueueOp::kClosed;
      ++dequeue_blocked_;
      return QueueOp::kWouldBlock;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return QueueOp::kOk;
  }

  /// Blocking dequeue; returns false once the queue is closed and drained.
  bool DequeueBlocking(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Marks end-of-stream. Pending items remain dequeuable; blocked callers
  /// wake up.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Closed and fully drained: no element will ever be produced again.
  bool exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

  /// Counters of failed non-blocking attempts, for the Fjords bench (E9).
  uint64_t enqueue_blocked_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return enqueue_blocked_;
  }
  uint64_t dequeue_blocked_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dequeue_blocked_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  uint64_t enqueue_blocked_ = 0;
  uint64_t dequeue_blocked_ = 0;
};

using TupleQueue = BoundedQueue<Tuple>;

}  // namespace tcq
