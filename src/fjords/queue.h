// Bounded queues with both blocking ("pull") and non-blocking ("push")
// endpoint semantics — the substrate of the Fjords inter-module API
// (paper §2.3). A pull-queue blocks the consumer when empty; a push-queue
// returns control so the consumer can do other work or yield; Exchange
// semantics combine a blocking dequeue with a non-blocking enqueue.

#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "common/metrics.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace tcq {

/// Result of a non-blocking queue operation.
enum class QueueOp {
  kOk,        ///< Element transferred.
  kWouldBlock,  ///< Queue full (enqueue) or empty (dequeue); try later.
  kClosed,    ///< Producer closed the queue and it has drained.
};

/// Registry instruments a BoundedQueue exports into (all optional). The
/// queue's own counters stay authoritative for per-instance accessors; these
/// mirror them into a shared registry for Introspect()/FormatText().
struct QueueMetrics {
  Gauge* depth = nullptr;
  Counter* enqueued = nullptr;
  Counter* enqueue_blocked = nullptr;
  Counter* dequeue_blocked = nullptr;
  Counter* dropped_on_close = nullptr;
  /// Enqueue->dequeue residence time, microseconds.
  Histogram* wait_us = nullptr;

  /// Instruments named tcq_queue_*{queue="<name>"}.
  static QueueMetrics For(MetricsRegistry* registry, const std::string& name) {
    QueueMetrics m;
    if (registry == nullptr) return m;
    m.depth = registry->GetGauge(MetricName("tcq_queue_depth", "queue", name));
    m.enqueued = registry->GetCounter(
        MetricName("tcq_queue_enqueued_total", "queue", name));
    m.enqueue_blocked = registry->GetCounter(
        MetricName("tcq_queue_enqueue_blocked_total", "queue", name));
    m.dequeue_blocked = registry->GetCounter(
        MetricName("tcq_queue_dequeue_blocked_total", "queue", name));
    m.dropped_on_close = registry->GetCounter(
        MetricName("tcq_queue_dropped_on_close_total", "queue", name));
    m.wait_us = registry->GetHistogram(
        MetricName("tcq_queue_wait_us", "queue", name));
    return m;
  }
};

/// A bounded MPMC queue. All operations are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Attaches registry instruments. Call before concurrent use.
  void SetMetrics(const QueueMetrics& metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
  }

  /// Non-blocking enqueue: fails with kWouldBlock when full, kClosed after
  /// Close(). On kClosed the item is destroyed; the loss is counted in
  /// dropped_on_close_count().
  QueueOp TryEnqueue(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      CountDroppedOnClose();
      return QueueOp::kClosed;
    }
    if (items_.size() >= capacity_) {
      ++enqueue_blocked_;
      if (metrics_.enqueue_blocked != nullptr) metrics_.enqueue_blocked->Inc();
      return QueueOp::kWouldBlock;
    }
    PushLocked(std::move(item));
    not_empty_.notify_one();
    return QueueOp::kOk;
  }

  /// Blocking enqueue; returns false if the queue was closed. A false
  /// return means the in-flight item was destroyed — the loss is counted in
  /// dropped_on_close_count() so callers (and the metrics layer) can see it.
  bool EnqueueBlocking(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      CountDroppedOnClose();
      return false;
    }
    PushLocked(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking dequeue.
  QueueOp TryDequeue(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      if (closed_) return QueueOp::kClosed;
      ++dequeue_blocked_;
      if (metrics_.dequeue_blocked != nullptr) metrics_.dequeue_blocked->Inc();
      return QueueOp::kWouldBlock;
    }
    PopLocked(out);
    not_full_.notify_one();
    return QueueOp::kOk;
  }

  /// Blocking dequeue; returns false once the queue is closed and drained.
  bool DequeueBlocking(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    PopLocked(out);
    not_full_.notify_one();
    return true;
  }

  // --- Batch operations (one lock acquisition per whole batch) --------------

  /// Non-blocking batch enqueue: moves as many of items[0..n) as fit under
  /// ONE lock acquisition. Returns the count moved; `*op` is kOk when
  /// everything fit, kWouldBlock on a partial/empty transfer (queue filled
  /// up), kClosed after Close() (remaining items are left with the caller,
  /// NOT destroyed — only the caller knows whether to drop or retry them).
  size_t TryPushBatch(T* items, size_t n, QueueOp* op) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      *op = QueueOp::kClosed;
      return 0;
    }
    size_t room = capacity_ > items_.size() ? capacity_ - items_.size() : 0;
    size_t take = std::min(room, n);
    for (size_t i = 0; i < take; ++i) PushLocked(std::move(items[i]));
    if (take > 0) {
      if (take == 1) {
        not_empty_.notify_one();
      } else {
        not_empty_.notify_all();
      }
    }
    if (take < n) {
      ++enqueue_blocked_;
      if (metrics_.enqueue_blocked != nullptr) metrics_.enqueue_blocked->Inc();
      *op = QueueOp::kWouldBlock;
    } else {
      *op = QueueOp::kOk;
    }
    return take;
  }

  /// Blocking batch enqueue: waits for space and moves chunks until all n
  /// items are enqueued or the queue closes. Returns the count enqueued
  /// (< n only on close). The un-pushed suffix items[pushed..n) is left
  /// with the caller, NOT destroyed and NOT counted in
  /// dropped_on_close_count() — matching TryPushBatch. Only the caller
  /// knows whether those items are lost or re-routable, so only the caller
  /// can account for them; counting them here too double-counted every
  /// batch drop a caller also tracked.
  size_t PushBatchBlocking(T* items, size_t n) {
    size_t pushed = 0;
    while (pushed < n) {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return pushed;
      while (pushed < n && items_.size() < capacity_) {
        PushLocked(std::move(items[pushed++]));
      }
      not_empty_.notify_all();
    }
    return pushed;
  }

  /// Non-blocking batch dequeue: appends up to `max` items to `*out` (any
  /// container with push_back) under ONE lock acquisition. Returns the count
  /// popped; `*op` is kOk when anything was popped, kClosed when the queue
  /// is closed and drained, kWouldBlock when it is just empty. When
  /// `first_enq_us` is non-null it receives the enqueue timestamp of the
  /// oldest popped item (0 when timestamps are off, i.e. no wait_us metric
  /// attached) — the tracing layer's queue-wait anchor.
  template <typename OutContainer>
  size_t TryPopBatch(OutContainer* out, size_t max, QueueOp* op,
                     int64_t* first_enq_us = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      if (closed_) {
        *op = QueueOp::kClosed;
      } else {
        ++dequeue_blocked_;
        if (metrics_.dequeue_blocked != nullptr) {
          metrics_.dequeue_blocked->Inc();
        }
        *op = QueueOp::kWouldBlock;
      }
      return 0;
    }
    if (first_enq_us != nullptr) *first_enq_us = items_.front().enq_us;
    size_t take = std::min(items_.size(), max);
    T item;
    for (size_t i = 0; i < take; ++i) {
      PopLocked(&item);
      out->push_back(std::move(item));
    }
    if (take == 1) {
      not_full_.notify_one();
    } else {
      not_full_.notify_all();
    }
    *op = QueueOp::kOk;
    return take;
  }

  /// Blocking batch dequeue: waits for at least one item (or close), then
  /// appends up to `max` to `*out` under the same lock. Returns the count
  /// (0 iff closed and drained). `first_enq_us` as in TryPopBatch.
  template <typename OutContainer>
  size_t PopBatchBlocking(OutContainer* out, size_t max,
                          int64_t* first_enq_us = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (first_enq_us != nullptr && !items_.empty()) {
      *first_enq_us = items_.front().enq_us;
    }
    size_t take = std::min(items_.size(), max);
    T item;
    for (size_t i = 0; i < take; ++i) {
      PopLocked(&item);
      out->push_back(std::move(item));
    }
    if (take > 0) not_full_.notify_all();
    return take;
  }

  /// Marks end-of-stream. Pending items remain dequeuable; blocked callers
  /// wake up.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Closed and fully drained: no element will ever be produced again.
  bool exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

  /// Counters of failed non-blocking attempts, for the Fjords bench (E9).
  uint64_t enqueue_blocked_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return enqueue_blocked_;
  }
  uint64_t dequeue_blocked_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dequeue_blocked_;
  }
  /// Items destroyed because they were offered to a closed queue.
  uint64_t dropped_on_close_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_on_close_;
  }

 private:
  struct Slot {
    T item;
    int64_t enq_us;
  };

  void PushLocked(T item) {
    int64_t now = metrics_.wait_us != nullptr ? NowMicros() : 0;
    items_.push_back(Slot{std::move(item), now});
    if (metrics_.depth != nullptr) metrics_.depth->Add(1);
    if (metrics_.enqueued != nullptr) metrics_.enqueued->Inc();
  }

  void PopLocked(T* out) {
    Slot& front = items_.front();
    *out = std::move(front.item);
    if (metrics_.wait_us != nullptr) {
      int64_t waited = NowMicros() - front.enq_us;
      metrics_.wait_us->Observe(waited > 0 ? static_cast<uint64_t>(waited)
                                           : 0);
    }
    items_.pop_front();
    if (metrics_.depth != nullptr) metrics_.depth->Add(-1);
  }

  void CountDroppedOnClose() {
    ++dropped_on_close_;
    if (metrics_.dropped_on_close != nullptr) metrics_.dropped_on_close->Inc();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Slot> items_;
  bool closed_ = false;
  uint64_t enqueue_blocked_ = 0;
  uint64_t dequeue_blocked_ = 0;
  uint64_t dropped_on_close_ = 0;
  QueueMetrics metrics_;
};

using TupleQueue = BoundedQueue<Tuple>;

}  // namespace tcq
