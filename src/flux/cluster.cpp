#include "flux/cluster.h"

namespace tcq {

void SimulatedWorker::Enqueue(const WorkItem& item) {
  if (failed_) return;
  queue_.push_back(item);
}

size_t SimulatedWorker::Tick() {
  if (failed_) return 0;
  size_t n = std::min(capacity_, queue_.size());
  for (size_t i = 0; i < n; ++i) {
    const WorkItem& item = queue_.front();
    ++state_[item.bucket][item.key];
    ++processed_;
    queue_.pop_front();
  }
  return n;
}

void SimulatedWorker::Fail() {
  failed_ = true;
  queue_.clear();
  state_.clear();
}

void SimulatedWorker::Recover() { failed_ = false; }

BucketState SimulatedWorker::ExtractBucket(size_t bucket) {
  auto it = state_.find(bucket);
  if (it == state_.end()) return {};
  BucketState out = std::move(it->second);
  state_.erase(it);
  return out;
}

void SimulatedWorker::InstallBucket(size_t bucket, const BucketState& state) {
  BucketState& mine = state_[bucket];
  for (const auto& [key, count] : state) mine[key] += count;
}

std::vector<WorkItem> SimulatedWorker::ExtractQueued(size_t bucket) {
  std::vector<WorkItem> out;
  std::deque<WorkItem> keep;
  for (const WorkItem& item : queue_) {
    if (item.bucket == bucket) {
      out.push_back(item);
    } else {
      keep.push_back(item);
    }
  }
  queue_ = std::move(keep);
  return out;
}

void SimulatedWorker::CountQueuedPerBucket(
    std::unordered_map<size_t, size_t>* out) const {
  for (const WorkItem& item : queue_) ++(*out)[item.bucket];
}

uint64_t SimulatedWorker::CountFor(size_t bucket, int64_t key) const {
  auto it = state_.find(bucket);
  if (it == state_.end()) return 0;
  auto kit = it->second.find(key);
  return kit == it->second.end() ? 0 : kit->second;
}

}  // namespace tcq
