// Simulated shared-nothing cluster for Flux (paper §2.4). Each worker is a
// "machine" with a bounded per-tick processing capacity, an input queue of
// in-flight items, and per-bucket operator state (a keyed count — the
// canonical partitioned group-by). The simulation is synchronous and
// deterministic: Tick() advances every live worker by one scheduling
// quantum. Machine failures drop a worker's queue and state, which is
// exactly what Flux's replication protects against.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace tcq {

/// One queued work item: a keyed tuple (payload elided; the state update is
/// a per-key count, standing in for any partitioned aggregate).
struct WorkItem {
  int64_t key = 0;
  size_t bucket = 0;
};

/// Per-bucket operator state: key -> count.
using BucketState = std::unordered_map<int64_t, uint64_t>;

class SimulatedWorker {
 public:
  SimulatedWorker(size_t id, size_t capacity_per_tick)
      : id_(id), capacity_(capacity_per_tick) {}

  size_t id() const { return id_; }
  bool failed() const { return failed_; }

  /// Enqueues an in-flight item (no-op on a failed machine: the network
  /// cannot deliver to it).
  void Enqueue(const WorkItem& item);

  /// Processes up to `capacity` queued items; returns how many.
  size_t Tick();

  /// Crash: loses queue and state.
  void Fail();

  /// Rejoins empty (recovery repopulates state via Flux's movement
  /// protocol).
  void Recover();

  // --- State movement (the Flux protocol's primitive) ----------------------

  /// Removes and returns the state of `bucket`.
  BucketState ExtractBucket(size_t bucket);

  /// Installs (merges) state for a bucket.
  void InstallBucket(size_t bucket, const BucketState& state);

  /// Removes and returns queued in-flight items of `bucket`.
  std::vector<WorkItem> ExtractQueued(size_t bucket);

  /// One-pass census of queued items per bucket (for rebalancing).
  void CountQueuedPerBucket(std::unordered_map<size_t, size_t>* out) const;

  uint64_t CountFor(size_t bucket, int64_t key) const;
  uint64_t ProcessedTotal() const { return processed_; }
  size_t QueueLength() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t id_;
  size_t capacity_;
  bool failed_ = false;
  std::deque<WorkItem> queue_;
  std::unordered_map<size_t, BucketState> state_;  // bucket -> state
  uint64_t processed_ = 0;
};

}  // namespace tcq
