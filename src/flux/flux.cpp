#include "flux/flux.h"

#include <algorithm>
#include <cassert>

namespace tcq {

Flux::Flux(Options opts) : opts_(opts), parts_(opts.num_buckets,
                                              opts.num_workers) {
  assert(opts_.num_workers >= 2 || !opts_.replication);
  workers_.reserve(opts_.num_workers);
  for (size_t i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back(i, opts_.worker_capacity);
  }
  if (opts_.replication) {
    replica_.resize(opts_.num_buckets);
    for (size_t b = 0; b < opts_.num_buckets; ++b) {
      replica_[b] = PickReplica(b, parts_.OwnerOf(b));
    }
  }
}

size_t Flux::PickReplica(size_t bucket, size_t owner) const {
  // Next live worker after the owner.
  for (size_t step = 1; step < workers_.size(); ++step) {
    size_t cand = (owner + bucket + step) % workers_.size();
    if (cand != owner && !workers_[cand].failed()) return cand;
  }
  return owner;  // degenerate: no other live worker
}

void Flux::Ingest(int64_t key) {
  ++ingested_;
  size_t bucket = parts_.BucketOf(key);
  WorkItem item{key, bucket};
  workers_[parts_.OwnerOf(bucket)].Enqueue(item);
  if (opts_.replication) {
    size_t rep = replica_[bucket];
    if (rep != parts_.OwnerOf(bucket)) workers_[rep].Enqueue(item);
  }
}

void Flux::Tick() {
  ++ticks_;
  for (SimulatedWorker& w : workers_) w.Tick();
  if (opts_.rebalance && ticks_ % opts_.rebalance_interval == 0) Rebalance();
}

uint64_t Flux::RunUntilDrained(uint64_t max_ticks) {
  uint64_t used = 0;
  while (TotalQueueLength() > 0 && used < max_ticks) {
    Tick();
    ++used;
  }
  return used;
}

void Flux::Rebalance() {
  // Greedy: while the most loaded live worker exceeds the threshold, move
  // one of its buckets to the least loaded.
  for (int iter = 0; iter < 8; ++iter) {
    size_t max_w = SIZE_MAX, min_w = SIZE_MAX;
    size_t max_q = 0, min_q = SIZE_MAX;
    size_t live = 0;
    size_t total = 0;
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].failed()) continue;
      ++live;
      size_t q = workers_[i].QueueLength();
      total += q;
      if (max_w == SIZE_MAX || q > max_q) {
        max_q = q;
        max_w = i;
      }
      if (min_w == SIZE_MAX || q < min_q) {
        min_q = q;
        min_w = i;
      }
    }
    if (live < 2 || max_w == min_w) return;
    double mean = static_cast<double>(total) / static_cast<double>(live);
    if (mean <= 0 ||
        static_cast<double>(max_q) <= opts_.imbalance_threshold * mean) {
      return;
    }
    // Pick the movable bucket with the SECOND-largest queued backlog on the
    // hot worker: the hottest bucket often is the irreducible hot spot (a
    // single hot key cannot be split below bucket granularity), and moving
    // it just relocates the problem; shedding the next-warmest buckets is
    // what actually relieves the machine.
    std::unordered_map<size_t, size_t> backlog;
    workers_[max_w].CountQueuedPerBucket(&backlog);
    size_t hottest = SIZE_MAX, hottest_items = 0;
    for (const auto& [b, items] : backlog) {
      if (items > hottest_items) {
        hottest_items = items;
        hottest = b;
      }
    }
    size_t best = SIZE_MAX, best_backlog = 0;
    for (const auto& [b, items] : backlog) {
      if (b == hottest && backlog.size() > 1) continue;
      if (opts_.replication && replica_[b] == min_w) continue;
      if (items > best_backlog) {
        best_backlog = items;
        best = b;
      }
    }
    if (best == SIZE_MAX || best_backlog == 0) return;
    MoveBucket(best, max_w, min_w);
  }
}

void Flux::MoveBucket(size_t bucket, size_t from, size_t to) {
  // The Flux state-movement protocol, condensed: pause the bucket, move its
  // operator state and buffered in-flight items, then resume at the new
  // owner. (The real protocol overlaps movement with execution via
  // buffering and reordering; the simulation moves atomically between
  // ticks, which preserves exactly-once semantics.)
  BucketState state = workers_[from].ExtractBucket(bucket);
  workers_[to].InstallBucket(bucket, state);
  for (const WorkItem& item : workers_[from].ExtractQueued(bucket)) {
    workers_[to].Enqueue(item);
  }
  parts_.Reassign(bucket, to);
  ++buckets_moved_;
}

Status Flux::FailWorker(size_t worker) {
  if (worker >= workers_.size()) {
    return Status::InvalidArgument("no such worker");
  }
  if (workers_[worker].failed()) {
    return Status::FailedPrecondition("worker already failed");
  }
  if (num_live_workers() <= 1) {
    return Status::FailedPrecondition("cannot fail the last live worker");
  }
  workers_[worker].Fail();

  for (size_t b = 0; b < parts_.num_buckets(); ++b) {
    if (parts_.OwnerOf(b) == worker) {
      if (opts_.replication && !workers_[replica_[b]].failed()) {
        // Failover: the replica already holds the bucket's state and the
        // dual-routed in-flight items; it simply becomes the owner.
        size_t new_owner = replica_[b];
        parts_.Reassign(b, new_owner);
        // Re-establish a replica elsewhere by copying the promoted state.
        size_t new_rep = PickReplica(b, new_owner);
        replica_[b] = new_rep;
        if (new_rep != new_owner) {
          // Copy state so the new replica starts in sync (catch-up copy).
          BucketState snapshot = workers_[new_owner].ExtractBucket(b);
          workers_[new_owner].InstallBucket(b, snapshot);
          workers_[new_rep].InstallBucket(b, snapshot);
        }
      } else {
        // No replica: the bucket restarts empty on a surviving worker;
        // accumulated state and in-flight items are lost.
        size_t fallback = PickReplica(b, worker);
        parts_.Reassign(b, fallback);
      }
    } else if (opts_.replication && replica_[b] == worker) {
      // The failed machine held this bucket's replica: re-replicate from
      // the (live) primary.
      size_t owner = parts_.OwnerOf(b);
      size_t new_rep = PickReplica(b, owner);
      replica_[b] = new_rep;
      if (new_rep != owner) {
        BucketState snapshot = workers_[owner].ExtractBucket(b);
        workers_[owner].InstallBucket(b, snapshot);
        workers_[new_rep].InstallBucket(b, snapshot);
      }
    }
  }
  return Status::OK();
}

uint64_t Flux::CountForKey(int64_t key) const {
  size_t bucket = parts_.BucketOf(key);
  return workers_[parts_.OwnerOf(bucket)].CountFor(bucket, key);
}

uint64_t Flux::TotalProcessed() const {
  uint64_t total = 0;
  for (const SimulatedWorker& w : workers_) total += w.ProcessedTotal();
  return total;
}

size_t Flux::MaxQueueLength() const {
  size_t out = 0;
  for (const SimulatedWorker& w : workers_) {
    out = std::max(out, w.QueueLength());
  }
  return out;
}

size_t Flux::TotalQueueLength() const {
  size_t out = 0;
  for (const SimulatedWorker& w : workers_) out += w.QueueLength();
  return out;
}

double Flux::QueueImbalance() const {
  size_t live = num_live_workers();
  if (live == 0) return 0.0;
  double mean =
      static_cast<double>(TotalQueueLength()) / static_cast<double>(live);
  if (mean == 0) return 1.0;
  return static_cast<double>(MaxQueueLength()) / mean;
}

size_t Flux::num_live_workers() const {
  size_t n = 0;
  for (const SimulatedWorker& w : workers_) {
    if (!w.failed()) ++n;
  }
  return n;
}

}  // namespace tcq
