// Flux: the Fault-tolerant, Load-balancing eXchange (paper §2.4). Routes a
// partitioned dataflow's input across a simulated shared-nothing cluster,
// and adds to the classic Exchange:
//  * online repartitioning — when load skews, buckets (operator state +
//    in-flight items) move from overloaded to underloaded workers while the
//    dataflow keeps executing;
//  * fault tolerance — with replication on, each bucket's input is
//    dual-routed to a replica worker holding shadow state, so a machine
//    failure promotes replicas without losing accumulated state or
//    in-flight data. Replication consumes capacity: the paper's
//    "reliability-based quality-of-service knob".

#pragma once

#include <optional>

#include "common/status.h"
#include "flux/cluster.h"
#include "flux/partitioner.h"

namespace tcq {

class Flux {
 public:
  struct Options {
    size_t num_workers = 4;
    size_t worker_capacity = 64;  ///< items one worker processes per tick
    size_t num_buckets = 64;
    /// Maintain a replica of every bucket on a second worker.
    bool replication = false;
    /// Enable online repartitioning.
    bool rebalance = false;
    uint64_t rebalance_interval = 10;  ///< ticks between balance checks
    /// Move buckets while max queue > threshold * mean queue.
    double imbalance_threshold = 1.5;
  };

  explicit Flux(Options opts);

  /// Routes one keyed item to its bucket's owner (and replica).
  void Ingest(int64_t key);

  /// Advances the cluster by one scheduling quantum.
  void Tick();

  /// Ticks until all queues drain (or `max_ticks`); returns ticks used.
  uint64_t RunUntilDrained(uint64_t max_ticks = 1u << 20);

  /// Crashes a worker. With replication, its buckets fail over to their
  /// replicas (state and re-routed input preserved); without, they restart
  /// empty on surviving workers and their state/in-flight data are lost.
  Status FailWorker(size_t worker);

  // --- Observability ---------------------------------------------------------

  /// Aggregate count for a key, read from its bucket's current owner.
  uint64_t CountForKey(int64_t key) const;

  uint64_t TotalProcessed() const;
  size_t MaxQueueLength() const;
  size_t TotalQueueLength() const;
  /// max queue / mean queue over live workers (1.0 = perfectly balanced).
  double QueueImbalance() const;

  uint64_t ticks() const { return ticks_; }
  uint64_t buckets_moved() const { return buckets_moved_; }
  uint64_t ingested() const { return ingested_; }
  size_t num_live_workers() const;
  const SimulatedWorker& worker(size_t i) const { return workers_[i]; }
  const Partitioner& partitioner() const { return parts_; }

 private:
  void Rebalance();
  void MoveBucket(size_t bucket, size_t from, size_t to);
  size_t PickReplica(size_t bucket, size_t owner) const;

  Options opts_;
  Partitioner parts_;
  std::vector<SimulatedWorker> workers_;
  std::vector<size_t> replica_;  // bucket -> replica worker (if replication)
  uint64_t ticks_ = 0;
  uint64_t buckets_moved_ = 0;
  uint64_t ingested_ = 0;
};

}  // namespace tcq
