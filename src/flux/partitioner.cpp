#include "flux/partitioner.h"

namespace tcq {

Partitioner::Partitioner(size_t num_buckets, size_t num_workers)
    : owner_(num_buckets) {
  for (size_t b = 0; b < num_buckets; ++b) owner_[b] = b % num_workers;
}

size_t Partitioner::BucketOf(int64_t key) const {
  // Full splitmix64 finalizer (same as the obs trace sampler): the earlier
  // truncated variant (one multiply + one xorshift) left low-order structure
  // from sequential/strided keys intact, skewing clustered key sets badly
  // across buckets.
  uint64_t z = static_cast<uint64_t>(key) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<size_t>(z % owner_.size());
}

std::vector<size_t> Partitioner::BucketsOf(size_t worker) const {
  std::vector<size_t> out;
  for (size_t b = 0; b < owner_.size(); ++b) {
    if (owner_[b] == worker) out.push_back(b);
  }
  return out;
}

}  // namespace tcq
