#include "flux/partitioner.h"

namespace tcq {

Partitioner::Partitioner(size_t num_buckets, size_t num_workers)
    : owner_(num_buckets) {
  for (size_t b = 0; b < num_buckets; ++b) owner_[b] = b % num_workers;
}

size_t Partitioner::BucketOf(int64_t key) const {
  uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  return static_cast<size_t>(h % owner_.size());
}

std::vector<size_t> Partitioner::BucketsOf(size_t worker) const {
  std::vector<size_t> out;
  for (size_t b = 0; b < owner_.size(); ++b) {
    if (owner_[b] == worker) out.push_back(b);
  }
  return out;
}

}  // namespace tcq
