// Content-based partitioning for Flux (paper §2.4): keys hash to a fixed
// number of buckets; buckets map to workers. Online repartitioning moves
// buckets (with their operator state) between workers, so the bucket map is
// the unit of load balancing.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcq {

class Partitioner {
 public:
  Partitioner(size_t num_buckets, size_t num_workers);

  size_t num_buckets() const { return owner_.size(); }

  /// Bucket of a key (stable hash).
  size_t BucketOf(int64_t key) const;

  /// Worker currently owning a bucket.
  size_t OwnerOf(size_t bucket) const { return owner_[bucket]; }
  size_t WorkerOf(int64_t key) const { return OwnerOf(BucketOf(key)); }

  /// Reassigns a bucket (state movement is the caller's job).
  void Reassign(size_t bucket, size_t worker) { owner_[bucket] = worker; }

  /// Buckets currently owned by a worker.
  std::vector<size_t> BucketsOf(size_t worker) const;

 private:
  std::vector<size_t> owner_;  // bucket -> worker
};

}  // namespace tcq
