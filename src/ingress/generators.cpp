#include "ingress/generators.h"

namespace tcq {

SchemaRef StockTickGenerator::MakeSchema(SourceId source_id) {
  return Schema::Make({
      {"timestamp", ValueType::kTimestamp, source_id},
      {"stockSymbol", ValueType::kString, source_id},
      {"closingPrice", ValueType::kDouble, source_id},
  });
}

StockTickGenerator::StockTickGenerator(std::string name, SourceId source_id,
                                       Options opts)
    : StreamSourceBase(std::move(name), source_id, MakeSchema(source_id)),
      opts_(std::move(opts)),
      rng_(opts_.seed),
      prices_(opts_.symbols.size(), opts_.initial_price) {}

bool StockTickGenerator::Next(Tuple* out) {
  if (opts_.days != 0 && day_ > opts_.days) return false;
  size_t i = next_symbol_;
  prices_[i] = std::max(1.0, prices_[i] + rng_.Gaussian(0, opts_.volatility));
  *out = Tuple::Make(schema(),
                     {Value::TimestampVal(day_),
                      Value::String(opts_.symbols[i]),
                      Value::Double(prices_[i])},
                     day_);
  CountProduced();
  if (++next_symbol_ == opts_.symbols.size()) {
    next_symbol_ = 0;
    ++day_;
  }
  return true;
}

SchemaRef PacketGenerator::MakeSchema(SourceId source_id) {
  return Schema::Make({
      {"timestamp", ValueType::kTimestamp, source_id},
      {"srcHost", ValueType::kInt64, source_id},
      {"dstHost", ValueType::kInt64, source_id},
      {"dstPort", ValueType::kInt64, source_id},
      {"bytes", ValueType::kInt64, source_id},
  });
}

PacketGenerator::PacketGenerator(std::string name, SourceId source_id,
                                 Options opts)
    : StreamSourceBase(std::move(name), source_id, MakeSchema(source_id)),
      opts_(std::move(opts)),
      rng_(opts_.seed) {}

bool PacketGenerator::Next(Tuple* out) {
  if (opts_.count != 0 && produced() >= opts_.count) return false;
  int64_t src = static_cast<int64_t>(
      rng_.Zipf(static_cast<uint64_t>(opts_.num_hosts), opts_.host_skew));
  int64_t dst = static_cast<int64_t>(
      rng_.Zipf(static_cast<uint64_t>(opts_.num_hosts), opts_.host_skew));
  int64_t port = static_cast<int64_t>(
      rng_.Zipf(static_cast<uint64_t>(opts_.num_ports), opts_.port_skew));
  int64_t bytes = rng_.UniformInt(64, opts_.max_bytes);
  *out = Tuple::Make(schema(),
                     {Value::TimestampVal(tick_), Value::Int64(src),
                      Value::Int64(dst), Value::Int64(port),
                      Value::Int64(bytes)},
                     tick_);
  ++tick_;
  CountProduced();
  return true;
}

SchemaRef SensorGenerator::MakeSchema(SourceId source_id) {
  return Schema::Make({
      {"timestamp", ValueType::kTimestamp, source_id},
      {"sensorId", ValueType::kInt64, source_id},
      {"temperature", ValueType::kDouble, source_id},
  });
}

SensorGenerator::SensorGenerator(std::string name, SourceId source_id,
                                 Options opts)
    : StreamSourceBase(std::move(name), source_id, MakeSchema(source_id)),
      opts_(std::move(opts)),
      rng_(opts_.seed),
      temps_(static_cast<size_t>(opts_.num_sensors), opts_.base_temp) {}

bool SensorGenerator::Next(Tuple* out) {
  while (true) {
    if (opts_.count != 0 && attempts_ >= opts_.count) return false;
    ++attempts_;
    int64_t sensor = rng_.UniformInt(0, opts_.num_sensors - 1);
    auto si = static_cast<size_t>(sensor);
    temps_[si] += rng_.Gaussian(0, opts_.drift);
    Timestamp ts = tick_++;
    if (opts_.max_jitter > 0) {
      ts = std::max<Timestamp>(1, ts - rng_.UniformInt(0, opts_.max_jitter));
    }
    if (rng_.Bernoulli(opts_.loss_rate)) {
      ++dropped_;
      continue;  // reading lost in the (simulated) network
    }
    *out = Tuple::Make(schema(),
                       {Value::TimestampVal(ts), Value::Int64(sensor),
                        Value::Double(temps_[si])},
                       ts);
    CountProduced();
    return true;
  }
}

ShuffleSource::ShuffleSource(std::unique_ptr<StreamSource> inner,
                             size_t window, uint64_t seed)
    : StreamSourceBase(inner->name() + ":shuffled", inner->source_id(),
                       inner->schema()),
      inner_(std::move(inner)),
      window_(std::max<size_t>(window, 1)),
      rng_(seed) {}

bool ShuffleSource::Next(Tuple* out) {
  if (pos_ >= block_.size()) {
    block_.clear();
    pos_ = 0;
    Tuple t;
    while (block_.size() < window_ && inner_->Next(&t)) {
      block_.push_back(std::move(t));
    }
    if (block_.empty()) return false;
    rng_.Shuffle(&block_);
  }
  *out = std::move(block_[pos_++]);
  CountProduced();
  return true;
}

}  // namespace tcq
