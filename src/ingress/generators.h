// Synthetic stream generators: the workloads the paper's applications imply
// (stock tickers for §4.1's examples, network monitors and sensors from the
// introduction). All are seeded and deterministic.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ingress/source.h"

namespace tcq {

/// Daily closing prices, matching the paper's ClosingStockPrices schema:
/// (timestamp, stockSymbol, closingPrice). One tuple per (day, symbol);
/// prices follow independent random walks.
class StockTickGenerator : public StreamSourceBase {
 public:
  struct Options {
    std::vector<std::string> symbols = {"MSFT", "AAPL", "IBM", "ORCL"};
    double initial_price = 50.0;
    double volatility = 1.0;  // stddev of the daily step
    uint64_t seed = 42;
    /// Number of days to generate; 0 = infinite.
    Timestamp days = 0;
  };

  static SchemaRef MakeSchema(SourceId source_id);

  StockTickGenerator(std::string name, SourceId source_id, Options opts);

  bool Next(Tuple* out) override;

 private:
  Options opts_;
  Rng rng_;
  std::vector<double> prices_;
  Timestamp day_ = 1;
  size_t next_symbol_ = 0;
};

/// Network packet headers: (timestamp, srcHost, dstHost, dstPort, bytes).
/// Hosts are zipf-distributed (a few hot talkers), ports zipf over a small
/// set of services — the shape intrusion-detection queries filter on.
class PacketGenerator : public StreamSourceBase {
 public:
  struct Options {
    int64_t num_hosts = 1000;
    double host_skew = 0.9;   // zipf theta over hosts
    int64_t num_ports = 1024;
    double port_skew = 0.99;  // zipf theta over ports
    int64_t max_bytes = 1500;
    uint64_t seed = 42;
    uint64_t count = 0;  // 0 = infinite
  };

  static SchemaRef MakeSchema(SourceId source_id);

  PacketGenerator(std::string name, SourceId source_id, Options opts);

  bool Next(Tuple* out) override;

 private:
  Options opts_;
  Rng rng_;
  Timestamp tick_ = 1;
};

/// Sensor readings: (timestamp, sensorId, temperature). Models the paper's
/// lossy sensor networks: readings can be dropped, and timestamps can
/// arrive slightly out of order (bounded jitter).
class SensorGenerator : public StreamSourceBase {
 public:
  struct Options {
    int64_t num_sensors = 16;
    double base_temp = 20.0;
    double drift = 0.05;      // per-step random-walk stddev
    double loss_rate = 0.0;   // probability a reading is silently dropped
    Timestamp max_jitter = 0;  // timestamps may lag by up to this much
    uint64_t seed = 42;
    uint64_t count = 0;  // readings to attempt; 0 = infinite
  };

  static SchemaRef MakeSchema(SourceId source_id);

  SensorGenerator(std::string name, SourceId source_id, Options opts);

  bool Next(Tuple* out) override;

  /// Readings lost to simulated dropout so far.
  uint64_t dropped() const { return dropped_; }

 private:
  Options opts_;
  Rng rng_;
  std::vector<double> temps_;
  Timestamp tick_ = 1;
  uint64_t attempts_ = 0;
  uint64_t dropped_ = 0;
};

/// Bounded-disorder decorator: pulls the inner source in blocks of `window`
/// tuples and re-emits each block Fisher-Yates-shuffled. Blocks stay in
/// order, so a tuple moves at most `window - 1` positions — the emitted
/// stream's timestamp disorder is HARD-bounded by one block's timestamp
/// span. This is the adversarial arrival order the event-time window path
/// must tolerate: with a disorder bound covering a block span, nothing is
/// ever provably late. Deterministic per seed.
class ShuffleSource : public StreamSourceBase {
 public:
  ShuffleSource(std::unique_ptr<StreamSource> inner, size_t window,
                uint64_t seed = 42);

  bool Next(Tuple* out) override;

 private:
  std::unique_ptr<StreamSource> inner_;
  size_t window_;
  Rng rng_;
  std::vector<Tuple> block_;
  size_t pos_ = 0;
};

}  // namespace tcq
