#include "ingress/rate.h"

namespace tcq {

std::unique_ptr<ArrivalProcess> MakeSteadyArrivals(double per_second) {
  return std::make_unique<SteadyArrivals>(per_second);
}

std::unique_ptr<ArrivalProcess> MakePoissonArrivals(double per_second,
                                                    uint64_t seed) {
  return std::make_unique<PoissonArrivals>(per_second, seed);
}

std::unique_ptr<ArrivalProcess> MakeBurstyArrivals(
    BurstyArrivals::Options opts) {
  return std::make_unique<BurstyArrivals>(opts);
}

}  // namespace tcq
