// Arrival-rate models. "The arrival rate of the data streams may be
// extremely high or bursty" (paper §1.1); experiments sweep steady, Poisson
// and on/off-bursty arrivals. Delays are expressed in simulated
// microseconds so benches can drive a VirtualClock deterministically.

#pragma once

#include <memory>

#include "common/clock.h"
#include "common/rng.h"

namespace tcq {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Microseconds between this arrival and the next.
  virtual Timestamp NextGap() = 0;
};

/// Constant-rate arrivals.
class SteadyArrivals : public ArrivalProcess {
 public:
  explicit SteadyArrivals(double per_second)
      : gap_(static_cast<Timestamp>(1e6 / per_second)) {}
  Timestamp NextGap() override { return gap_; }

 private:
  Timestamp gap_;
};

/// Poisson arrivals with the given mean rate.
class PoissonArrivals : public ArrivalProcess {
 public:
  PoissonArrivals(double per_second, uint64_t seed)
      : rate_per_us_(per_second / 1e6), rng_(seed) {}
  Timestamp NextGap() override {
    return std::max<Timestamp>(
        1, static_cast<Timestamp>(rng_.Exponential(rate_per_us_)));
  }

 private:
  double rate_per_us_;
  Rng rng_;
};

/// On/off bursts: alternates a high-rate burst phase and a silent phase.
class BurstyArrivals : public ArrivalProcess {
 public:
  struct Options {
    double burst_per_second = 100000;
    Timestamp burst_us = 10000;    ///< burst phase length
    Timestamp silence_us = 90000;  ///< silent phase length
    uint64_t seed = 42;
  };

  explicit BurstyArrivals(Options opts)
      : opts_(opts),
        gap_(static_cast<Timestamp>(1e6 / opts.burst_per_second)) {}

  Timestamp NextGap() override {
    in_burst_for_ += gap_;
    if (in_burst_for_ >= opts_.burst_us) {
      in_burst_for_ = 0;
      return gap_ + opts_.silence_us;  // the gap spanning the silence
    }
    return gap_;
  }

 private:
  Options opts_;
  Timestamp gap_;
  Timestamp in_burst_for_ = 0;
};

std::unique_ptr<ArrivalProcess> MakeSteadyArrivals(double per_second);
std::unique_ptr<ArrivalProcess> MakePoissonArrivals(double per_second,
                                                    uint64_t seed);
std::unique_ptr<ArrivalProcess> MakeBurstyArrivals(
    BurstyArrivals::Options opts);

}  // namespace tcq
