#include "ingress/remote_index.h"

#include <cassert>

namespace tcq {

SimulatedRemoteIndex::SimulatedRemoteIndex(SourceId source, SchemaRef schema,
                                           const std::string& key_attr,
                                           Options opts)
    : source_(source), schema_(std::move(schema)), key_field_(0), opts_(opts) {
  auto idx = schema_->IndexOf(key_attr, source_);
  if (!idx) idx = schema_->IndexOf(key_attr);
  assert(idx.has_value() && "remote index key attribute not in schema");
  key_field_ = *idx;
}

void SimulatedRemoteIndex::Insert(const Tuple& tuple) {
  data_[tuple.at(key_field_)].push_back(tuple);
  ++rows_;
}

void SimulatedRemoteIndex::Lookup(const Value& key, std::vector<Tuple>* out) {
  ++lookups_;
  cost_us_ += opts_.lookup_cost_us;
  auto it = data_.find(key);
  if (it == data_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

RemoteIndexProbe::RemoteIndexProbe(std::string name,
                                   SimulatedRemoteIndex* index,
                                   AttrRef probe_key, SteM* cache)
    : EddyModule(std::move(name)),
      index_(index),
      probe_key_(std::move(probe_key)),
      cache_(cache) {}

bool RemoteIndexProbe::AppliesTo(SourceSet sources) const {
  if (sources & SourceBit(index_->source())) return false;
  return (sources & SourceBit(probe_key_.source)) != 0;
}

SchemaRef RemoteIndexProbe::ConcatSchemaFor(const SchemaRef& input) {
  const Schema* key = input.get();
  for (const auto& [cached_key, cached] : schema_cache_) {
    if (cached_key == key) return cached;
  }
  SchemaRef out = Schema::Concat(input, index_->schema());
  schema_cache_.emplace_back(key, out);
  return out;
}

EddyModule::Action RemoteIndexProbe::Process(const Envelope& env,
                                             std::vector<Envelope>* out) {
  const Value* key = ResolveAttr(env.tuple, probe_key_);
  assert(key != nullptr && "remote index probe key missing");

  std::vector<Tuple> matches;
  bool known = fetched_keys_.contains(*key);
  if (cache_ != nullptr && known) {
    // Served from the lookup cache: no remote cost.
    ++cache_hits_;
    std::vector<const StemEntry*> cached;
    // Cache builds use seq 0 (the remote table is static and "always
    // earlier" than any stream tuple), so every probe sees them.
    cache_->ProbeEq(*key, /*seq_bound=*/env.seq_max, &cached);
    matches.reserve(cached.size());
    for (const StemEntry* e : cached) matches.push_back(e->tuple);
  } else {
    index_->Lookup(*key, &matches);
    fetched_keys_[*key] = true;
    if (cache_ != nullptr) {
      for (const Tuple& t : matches) cache_->Build(t, /*seq=*/0);
    }
  }

  if (matches.empty()) return Action::kDrop;
  SchemaRef out_schema = ConcatSchemaFor(env.tuple.schema());
  for (const Tuple& m : matches) {
    out->push_back(Envelope{Tuple::Concat(env.tuple, m, out_schema), 0,
                            env.seq_max});
  }
  return Action::kExpand;
}

}  // namespace tcq
