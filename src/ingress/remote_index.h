// Simulated remote index: stands in for the paper's asynchronous web-lookup
// sources (a TeSS-wrapped web form, §2.2's "join in which table S is joined
// with a remote index on table T"). Each lookup has a simulated cost in
// virtual microseconds, so the E2 hybrid-join experiment can trade per-probe
// latency against symmetric-hash state without wall-clock sleeps.
//
// RemoteIndexProbe is an eddy module implementing the asynchronous index
// join of [GW00]: tuples probe the remote index; a SteM on the probing
// stream acts as the rendezvous buffer and a SteM on the indexed table acts
// as a cache of previous expensive lookups [HN96].

#pragma once

#include <unordered_map>

#include "eddy/module.h"
#include "operators/predicate.h"
#include "stem/stem.h"
#include "tuple/value.h"

namespace tcq {

class SimulatedRemoteIndex {
 public:
  struct Options {
    /// Simulated microseconds charged per lookup (network RTT + server).
    Timestamp lookup_cost_us = 1000;
  };

  SimulatedRemoteIndex(SourceId source, SchemaRef schema,
                       const std::string& key_attr, Options opts);

  SourceId source() const { return source_; }
  const SchemaRef& schema() const { return schema_; }

  /// Loads the remote table.
  void Insert(const Tuple& tuple);

  /// Performs a lookup, charging the simulated cost.
  void Lookup(const Value& key, std::vector<Tuple>* out);

  uint64_t lookups() const { return lookups_; }
  /// Total simulated time spent in lookups.
  Timestamp simulated_cost_us() const { return cost_us_; }
  size_t size() const { return rows_; }

 private:
  SourceId source_;
  SchemaRef schema_;
  size_t key_field_;
  Options opts_;
  std::unordered_map<Value, std::vector<Tuple>, ValueHash> data_;
  size_t rows_ = 0;
  uint64_t lookups_ = 0;
  Timestamp cost_us_ = 0;
};

/// Eddy module: probe the remote index with an optional SteM cache. When the
/// cache SteM is given, keys already fetched are answered locally (charging
/// nothing), and fetched tuples are built into the cache — this is the
/// "SteM on T as a cache of previous expensive T lookups" hybrid of §2.2.
class RemoteIndexProbe : public EddyModule {
 public:
  RemoteIndexProbe(std::string name, SimulatedRemoteIndex* index,
                   AttrRef probe_key, SteM* cache = nullptr);

  bool AppliesTo(SourceSet sources) const override;
  Action Process(const Envelope& env, std::vector<Envelope>* out) override;
  SourceSet contributes() const override {
    return SourceBit(index_->source()) | SourceBit(probe_key_.source);
  }

  uint64_t cache_hits() const { return cache_hits_; }

 private:
  SchemaRef ConcatSchemaFor(const SchemaRef& input);

  SimulatedRemoteIndex* index_;
  AttrRef probe_key_;
  SteM* cache_;
  std::unordered_map<Value, bool, ValueHash> fetched_keys_;
  std::vector<std::pair<const Schema*, SchemaRef>> schema_cache_;
  uint64_t cache_hits_ = 0;
  Timestamp next_seq_hint_ = 1;
};

}  // namespace tcq
