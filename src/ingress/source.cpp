#include "ingress/source.h"

#include <fstream>
#include <sstream>

namespace tcq {

Result<std::unique_ptr<CsvSource>> CsvSource::Open(
    const std::string& path, std::string name, SourceId source_id,
    SchemaRef schema, const std::string& timestamp_field) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::IOError("cannot open CSV file " + path);
  }
  auto ts_idx = schema->IndexOf(timestamp_field);
  if (!ts_idx.has_value()) {
    return Status::InvalidArgument("timestamp field '" + timestamp_field +
                                   "' not in schema");
  }
  std::vector<Tuple> rows;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<Value> values;
    std::stringstream ss(line);
    std::string cell;
    size_t field = 0;
    while (std::getline(ss, cell, ',')) {
      if (field >= schema->num_fields()) break;
      const Field& f = schema->field(field);
      try {
        switch (f.type) {
          case ValueType::kInt64:
            values.push_back(Value::Int64(std::stoll(cell)));
            break;
          case ValueType::kTimestamp:
            values.push_back(Value::TimestampVal(std::stoll(cell)));
            break;
          case ValueType::kDouble:
            values.push_back(Value::Double(std::stod(cell)));
            break;
          case ValueType::kBool:
            values.push_back(Value::Bool(cell == "true" || cell == "1"));
            break;
          case ValueType::kString:
            values.push_back(Value::String(cell));
            break;
          case ValueType::kNull:
            values.push_back(Value::Null());
            break;
        }
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad cell '" + cell + "' at " + path +
                                       ":" + std::to_string(line_no));
      }
      ++field;
    }
    TCQ_RETURN_IF_ERROR(schema->Validate(values));
    Timestamp ts = values[*ts_idx].AsTimestamp();
    rows.push_back(Tuple::Make(schema, std::move(values), ts));
  }
  return std::unique_ptr<CsvSource>(new CsvSource(
      std::move(name), source_id, std::move(schema), std::move(rows)));
}

bool CsvSource::Next(Tuple* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  CountProduced();
  return true;
}

}  // namespace tcq
