// Ingress sources (paper §2.1, §4.2.3). A StreamSource is the pull-side
// interface a Wrapper drives; synthetic generators stand in for the paper's
// live sources (sensors, network monitors, web scrapers) with controllable
// rates, skew, loss, and disorder — the knobs the experiments sweep.

#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "tuple/tuple.h"

namespace tcq {

class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual const std::string& name() const = 0;
  virtual const SchemaRef& schema() const = 0;
  virtual SourceId source_id() const = 0;

  /// Produces the next tuple. Returns false at end of stream (infinite
  /// generators never return false).
  virtual bool Next(Tuple* out) = 0;

  /// Tuples produced so far.
  virtual uint64_t produced() const = 0;
};

/// Convenience base class handling the bookkeeping.
class StreamSourceBase : public StreamSource {
 public:
  StreamSourceBase(std::string name, SourceId source_id, SchemaRef schema)
      : name_(std::move(name)),
        source_id_(source_id),
        schema_(std::move(schema)) {}

  const std::string& name() const override { return name_; }
  const SchemaRef& schema() const override { return schema_; }
  SourceId source_id() const override { return source_id_; }
  uint64_t produced() const override { return produced_; }

 protected:
  void CountProduced() { ++produced_; }

 private:
  std::string name_;
  SourceId source_id_;
  SchemaRef schema_;
  uint64_t produced_ = 0;
};

/// Reads tuples from an in-memory vector (tests, replay).
class VectorSource : public StreamSourceBase {
 public:
  VectorSource(std::string name, SourceId source_id, SchemaRef schema,
               std::vector<Tuple> tuples)
      : StreamSourceBase(std::move(name), source_id, std::move(schema)),
        tuples_(std::move(tuples)) {}

  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    CountProduced();
    return true;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// Parses a simple CSV file (no quoting/escapes; one tuple per line, fields
/// matching the schema's types; `timestamp_field` names the column providing
/// the tuple timestamp). This is the "local file reader" ingress module.
class CsvSource : public StreamSourceBase {
 public:
  static Result<std::unique_ptr<CsvSource>> Open(
      const std::string& path, std::string name, SourceId source_id,
      SchemaRef schema, const std::string& timestamp_field);

  bool Next(Tuple* out) override;

 private:
  CsvSource(std::string name, SourceId source_id, SchemaRef schema,
            std::vector<Tuple> rows)
      : StreamSourceBase(std::move(name), source_id, std::move(schema)),
        rows_(std::move(rows)) {}

  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

}  // namespace tcq
