#include "ingress/wrapper.h"

#include <algorithm>
#include <chrono>

namespace tcq {

Wrapper::Wrapper(Options opts, MetricsRegistryRef metrics,
                 obs::TracerRef tracer)
    : opts_(opts),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      tracer_(std::move(tracer)) {
  opts_.batch_max_size = std::max<size_t>(opts_.batch_max_size, 1);
  forwarded_ = metrics_->GetCounter("tcq_wrapper_tuples_forwarded_total");
  dropped_ = metrics_->GetCounter("tcq_wrapper_tuples_dropped_total");
  lost_on_close_ =
      metrics_->GetCounter("tcq_wrapper_tuples_lost_on_close_total");
  batch_size_ = metrics_->GetHistogram("tcq_wrapper_batch_size");
  flush_size_ = metrics_->GetCounter(
      MetricName("tcq_wrapper_batch_flush_total", "reason", "size"));
  flush_delay_ = metrics_->GetCounter(
      MetricName("tcq_wrapper_batch_flush_total", "reason", "delay"));
  flush_close_ = metrics_->GetCounter(
      MetricName("tcq_wrapper_batch_flush_total", "reason", "close"));
  punctuations_ = metrics_->GetCounter("tcq_wrapper_punctuations_total");
}

Wrapper::~Wrapper() { Stop(); }

FjordConsumer Wrapper::HostPullSource(
    std::unique_ptr<StreamSource> source,
    std::unique_ptr<ArrivalProcess> arrivals,
    std::optional<PunctuationPolicy> punctuation) {
  auto endpoints = Fjord::Make(FjordMode::kPush, opts_.queue_capacity,
                               "streamer:" + source->name(), metrics_.get());
  auto task = std::make_unique<PullTask>();
  task->punct = punctuation.value_or(opts_.punctuation);
  task->late = metrics_->GetCounter(
      MetricName("tcq_wrapper_late_tuples_total", "stream", source->name()));
  task->source = std::move(source);
  task->arrivals = std::move(arrivals);
  task->producer = std::make_unique<FjordProducer>(endpoints.producer);
  tasks_.push_back(std::move(task));
  return endpoints.consumer;
}

std::pair<FjordProducer, FjordConsumer> Wrapper::HostPushSource(
    const std::string& name) {
  auto endpoints = Fjord::Make(FjordMode::kPush, opts_.queue_capacity,
                               "streamer:" + name, metrics_.get());
  return {endpoints.producer, endpoints.consumer};
}

void Wrapper::Start() {
  if (started_.exchange(true)) return;
  stop_.store(false);
  for (auto& task : tasks_) {
    threads_.emplace_back([this, t = task.get()] { RunPullTask(t); });
  }
}

void Wrapper::RunPullTask(PullTask* task) {
  TupleBatch batch;
  int64_t oldest_us = 0;  // arrival of the oldest accumulated tuple
  const SourceId source_id = task->source->source_id();
  Timestamp max_ts = kMinTimestamp;   // newest event time forwarded
  Timestamp last_wm = kMinTimestamp;  // last punctuation emitted

  // Pushes the whole accumulated batch downstream (one queue lock per
  // attempt), honoring drop_on_full. Returns false when the streamer was
  // closed under us (the task is over).
  auto flush = [&](Counter* reason) -> bool {
    if (task->punct.enabled && max_ts != kMinTimestamp) {
      // Heartbeat rides the batch's control lane: promise that nothing will
      // arrive more than disorder_bound behind the newest timestamp seen.
      Timestamp wm = max_ts - task->punct.disorder_bound;
      if (wm > last_wm) {
        batch.AddPunctuation(Punctuation{source_id, wm});
        last_wm = wm;
        punctuations_->Inc();
      }
    }
    if (batch.empty() && batch.punctuations().empty()) return true;
    reason->Inc();
    batch_size_->Observe(batch.size());
    // Flush span: timed across full-queue retries, so blocked streamers
    // show up as long kWrapperFlush durations.
    bool sampled = tracer_ != nullptr && tracer_->ShouldSample();
    int64_t t0 = sampled ? NowMicros() : 0;
    while (true) {
      size_t before = batch.size();
      QueueOp op = task->producer->ProduceBatch(&batch);
      forwarded_->Inc(before - batch.size());
      if (batch.empty() && batch.punctuations().empty()) {
        if (sampled) {
          tracer_->Record(obs::SpanKind::kWrapperFlush, batch.source(), 0, t0,
                          NowMicros() - t0);
        }
        return true;
      }
      if (op == QueueOp::kClosed) {
        // The consumer closed the streamer under us: the tuples in hand are
        // lost. Count them — silent data loss is a bug magnet.
        lost_on_close_->Inc(batch.size());
        batch.clear();
        return false;
      }
      // Queue full: non-blocking semantics let us choose a policy.
      if (opts_.drop_on_full) {
        dropped_->Inc(batch.size());
        batch.clear();
        return true;
      }
      if (stop_.load(std::memory_order_relaxed)) {
        dropped_->Inc(batch.size());
        batch.clear();
        return false;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  Tuple tuple;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!task->source->Next(&tuple)) break;  // end of stream
    if (task->arrivals != nullptr) {
      Timestamp gap_us = task->arrivals->NextGap();
      if (gap_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
      }
    }
    if (batch.empty()) oldest_us = NowMicros();
    if (task->punct.enabled && tuple.IsData()) {
      // Behind the promised watermark: still forwarded (the window operator
      // owns the drop decision) but accounted per stream.
      if (tuple.timestamp() < last_wm) task->late->Inc();
      max_ts = std::max(max_ts, tuple.timestamp());
    }
    batch.push_back(std::move(tuple));
    bool size_trip = batch.size() >= opts_.batch_max_size;
    bool delay_trip =
        !size_trip && opts_.batch_max_delay_us > 0 &&
        NowMicros() - oldest_us >=
            static_cast<int64_t>(opts_.batch_max_delay_us);
    if (size_trip || delay_trip) {
      if (!flush(size_trip ? flush_size_ : flush_delay_)) return;
    }
  }
  flush(flush_close_);
  task->producer->Close();
}

void Wrapper::Stop() {
  stop_.store(true);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& task : tasks_) task->producer->Close();
  started_.store(false);
}

}  // namespace tcq
