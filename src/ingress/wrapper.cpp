#include "ingress/wrapper.h"

#include <chrono>

namespace tcq {

Wrapper::Wrapper(Options opts, MetricsRegistryRef metrics)
    : opts_(opts), metrics_(OrPrivateRegistry(std::move(metrics))) {
  forwarded_ = metrics_->GetCounter("tcq_wrapper_tuples_forwarded_total");
  dropped_ = metrics_->GetCounter("tcq_wrapper_tuples_dropped_total");
  lost_on_close_ =
      metrics_->GetCounter("tcq_wrapper_tuples_lost_on_close_total");
}

Wrapper::~Wrapper() { Stop(); }

FjordConsumer Wrapper::HostPullSource(
    std::unique_ptr<StreamSource> source,
    std::unique_ptr<ArrivalProcess> arrivals) {
  auto endpoints = Fjord::Make(FjordMode::kPush, opts_.queue_capacity,
                               "streamer:" + source->name(), metrics_.get());
  auto task = std::make_unique<PullTask>();
  task->source = std::move(source);
  task->arrivals = std::move(arrivals);
  task->producer = std::make_unique<FjordProducer>(endpoints.producer);
  tasks_.push_back(std::move(task));
  return endpoints.consumer;
}

std::pair<FjordProducer, FjordConsumer> Wrapper::HostPushSource(
    const std::string& name) {
  auto endpoints = Fjord::Make(FjordMode::kPush, opts_.queue_capacity,
                               "streamer:" + name, metrics_.get());
  return {endpoints.producer, endpoints.consumer};
}

void Wrapper::Start() {
  if (started_.exchange(true)) return;
  stop_.store(false);
  for (auto& task : tasks_) {
    threads_.emplace_back([this, t = task.get()] { RunPullTask(t); });
  }
}

void Wrapper::RunPullTask(PullTask* task) {
  Tuple tuple;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!task->source->Next(&tuple)) break;  // end of stream
    if (task->arrivals != nullptr) {
      Timestamp gap_us = task->arrivals->NextGap();
      if (gap_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
      }
    }
    while (!stop_.load(std::memory_order_relaxed)) {
      QueueOp op = task->producer->Produce(tuple);
      if (op == QueueOp::kOk) {
        forwarded_->Inc();
        break;
      }
      if (op == QueueOp::kClosed) {
        // The consumer closed the streamer under us: the tuple in hand is
        // lost. Count it — silent data loss is a bug magnet.
        lost_on_close_->Inc();
        return;
      }
      // Queue full: non-blocking semantics let us choose a policy.
      if (opts_.drop_on_full) {
        dropped_->Inc();
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  task->producer->Close();
}

void Wrapper::Stop() {
  stop_.store(true);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& task : tasks_) task->producer->Close();
  started_.store(false);
}

}  // namespace tcq
