// The Wrapper host (paper §4.2.3): "wrappers in TelegraphCQ are placed in a
// separate process, where they can be accessed in a non-blocking manner (a
// la Fjords)... the responsibility of fetching data from the network
// devolves to the Wrapper process, which uses a pool of threads to implement
// non-blocking I/O." Here the wrapper is a thread pool hosting pull sources
// (the wrapper drives them, paced by an arrival process) and push sources
// (the source's own thread pushes); both deliver to the executor through
// push-mode Fjords ("streamers").

#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "fjords/fjord.h"
#include "ingress/rate.h"
#include "ingress/source.h"
#include "obs/trace.h"

namespace tcq {

/// Source-issued event-time heartbeats (DESIGN.md §12): with `enabled`, the
/// wrapper task tracks the max event timestamp it has forwarded and appends
/// `Punctuation{source, max_ts - disorder_bound}` to each flushed batch's
/// control lane — the promise that no later tuple will be more than
/// `disorder_bound` behind the newest seen. Tuples that arrive already
/// behind the last emitted watermark are counted (per-stream
/// tcq_wrapper_late_tuples_total) but still forwarded: the window operator
/// owns the drop decision.
///
/// NOTE: wrapper heartbeats describe ONE feed. When several feeds merge
/// into the same logical stream, use the server's per-stream disorder bound
/// (StreamOptions::punctuate), which min-combines across feeds after the
/// merge.
struct PunctuationPolicy {
  bool enabled = false;
  /// Max distance a tuple may lag the newest timestamp seen on the feed.
  Timestamp disorder_bound = 0;
};

class Wrapper {
 public:
  struct Options {
    /// Capacity of each streamer queue (back-pressure bound).
    size_t queue_capacity = 4096;
    /// When a streamer queue is full: true = drop the tuple (count it),
    /// false = retry until space (throttling the source).
    bool drop_on_full = false;
    /// Flush policy: a pull task accumulates tuples into a batch and pushes
    /// the whole batch downstream under one queue lock when either bound
    /// trips. batch_max_size = 1 degenerates to per-tuple forwarding.
    size_t batch_max_size = 64;
    /// Max time the oldest accumulated tuple may wait before the batch is
    /// flushed regardless of size (0 = no delay bound; flush on size or
    /// end-of-stream only). Checked between source pulls, so a source that
    /// stalls inside Next() can exceed this bound until it yields.
    uint64_t batch_max_delay_us = 1000;
    /// Default punctuation policy for hosted pull sources (overridable per
    /// source in HostPullSource).
    PunctuationPolicy punctuation;
  };

  /// When `metrics` is null the wrapper observes itself (and its streamer
  /// queues) in a private registry. A non-null `tracer` samples pull-task
  /// batch flushes (kWrapperFlush spans).
  Wrapper() : Wrapper(Options()) {}
  explicit Wrapper(Options opts, MetricsRegistryRef metrics = nullptr,
                   obs::TracerRef tracer = nullptr);
  ~Wrapper();

  /// Hosts a pull source: a wrapper thread drives `source->Next()` paced by
  /// `arrivals` (nullptr = as fast as possible) and pushes into the
  /// returned consumer endpoint. `punctuation` overrides the wrapper-wide
  /// policy for this source (nullopt = inherit Options::punctuation).
  FjordConsumer HostPullSource(
      std::unique_ptr<StreamSource> source,
      std::unique_ptr<ArrivalProcess> arrivals,
      std::optional<PunctuationPolicy> punctuation = std::nullopt);

  /// A push source: the caller (playing the remote data source that
  /// "connects to a well-known port served by the Wrapper") pushes tuples
  /// itself through the returned producer; the executor consumes from the
  /// returned consumer.
  std::pair<FjordProducer, FjordConsumer> HostPushSource(
      const std::string& name);

  /// Starts the pull threads.
  void Start();

  /// Stops all threads and closes all streamers.
  void Stop();

  uint64_t tuples_forwarded() const { return forwarded_->Value(); }
  uint64_t tuples_dropped() const { return dropped_->Value(); }
  /// Tuples a source produced after its streamer was closed downstream
  /// (e.g. Stop() raced an in-flight Produce). Lost, but accounted for.
  uint64_t tuples_lost_on_close() const { return lost_on_close_->Value(); }
  /// Punctuations appended to flushed batches across all hosted sources.
  uint64_t punctuations_emitted() const { return punctuations_->Value(); }
  const MetricsRegistryRef& metrics() const { return metrics_; }

 private:
  struct PullTask {
    std::unique_ptr<StreamSource> source;
    std::unique_ptr<ArrivalProcess> arrivals;
    std::unique_ptr<FjordProducer> producer;
    PunctuationPolicy punct;
    Counter* late = nullptr;  ///< tcq_wrapper_late_tuples_total{stream}
  };

  void RunPullTask(PullTask* task);

  Options opts_;
  std::vector<std::unique_ptr<PullTask>> tasks_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  MetricsRegistryRef metrics_;
  obs::TracerRef tracer_;
  Counter* forwarded_;
  Counter* dropped_;
  Counter* lost_on_close_;
  /// Distribution of flushed batch sizes: tcq_wrapper_batch_size.
  Histogram* batch_size_;
  /// Flush cause: tcq_wrapper_batch_flush_total{reason=size|delay|close}.
  Counter* flush_size_;
  Counter* flush_delay_;
  Counter* flush_close_;
  /// Punctuations emitted: tcq_wrapper_punctuations_total.
  Counter* punctuations_;
};

}  // namespace tcq
