#include "obs/system_streams.h"

#include <chrono>
#include <map>
#include <utility>

namespace tcq::obs {

namespace {

/// Inverse of EscapeLabelValue, for recovering queue names from the
/// instrument names the fjord layer registered.
std::string UnescapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '\\' && i + 1 < value.size()) {
      ++i;
      switch (value[i]) {
        case 'n': out += '\n'; break;
        default: out += value[i];
      }
    } else {
      out += value[i];
    }
  }
  return out;
}

/// Splits "family{key="value"}" into (family, unescaped value); returns
/// false for unlabeled names or a key mismatch.
bool ParseLabeled(const std::string& name, const std::string& family,
                  const std::string& key, std::string* value) {
  const std::string prefix = family + "{" + key + "=\"";
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.size() < prefix.size() + 2 ||
      name.compare(name.size() - 2, 2, "\"}") != 0) {
    return false;
  }
  *value = UnescapeLabelValue(
      name.substr(prefix.size(), name.size() - prefix.size() - 2));
  return true;
}

/// Per-queue accumulator joined across the tcq_queue_* instrument families.
struct QueueRow {
  int64_t depth = 0;
  int64_t enqueued = 0;
  int64_t dropped = 0;
  int64_t wait_p95_us = 0;
};

}  // namespace

std::vector<Field> SystemStreamSource::MetricsSchema() {
  return {{"metric", ValueType::kString, 0},
          {"kind", ValueType::kString, 0},
          {"value", ValueType::kInt64, 0}};
}

std::vector<Field> SystemStreamSource::QueuesSchema() {
  return {{"queue", ValueType::kString, 0},
          {"depth", ValueType::kInt64, 0},
          {"enqueued", ValueType::kInt64, 0},
          {"dropped", ValueType::kInt64, 0},
          {"wait_p95_us", ValueType::kInt64, 0}};
}

std::vector<Field> SystemStreamSource::LatencySchema() {
  return {{"metric", ValueType::kString, 0},
          {"count", ValueType::kInt64, 0},
          {"p50_us", ValueType::kInt64, 0},
          {"p95_us", ValueType::kInt64, 0},
          {"p99_us", ValueType::kInt64, 0}};
}

SystemStreamSource::SystemStreamSource(SystemStreamOptions opts,
                                       MetricsRegistryRef metrics,
                                       TracerRef tracer, PushFn push)
    : opts_(opts),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      tracer_(std::move(tracer)),
      push_(std::move(push)) {}

SystemStreamSource::~SystemStreamSource() { Stop(); }

void SystemStreamSource::Start() {
  if (running_.exchange(true)) return;
  publisher_ = std::thread([this] { Run(); });
}

void SystemStreamSource::Stop() {
  if (!running_.exchange(false)) return;
  if (publisher_.joinable()) publisher_.join();
}

void SystemStreamSource::Run() {
  // Sleep in 1ms slices so Stop() is prompt even with long intervals.
  const auto interval = std::chrono::milliseconds(
      opts_.publish_interval_ms < 1 ? 1 : opts_.publish_interval_ms);
  auto next = std::chrono::steady_clock::now();
  while (running_.load(std::memory_order_relaxed)) {
    PublishOnce();
    next += interval;
    while (running_.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < next) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void SystemStreamSource::PublishOnce() {
  MetricsSnapshot snap = metrics_->Snapshot();
  Timestamp tick = Timestamp(ticks_.fetch_add(1, std::memory_order_relaxed)) + 1;

  // tcq$metrics: the whole registry, one row per counter/gauge series.
  std::vector<Row> metric_rows;
  metric_rows.reserve(snap.counters.size() + snap.gauges.size());
  for (const auto& [name, v] : snap.counters) {
    metric_rows.push_back(Row{{Value::String(name), Value::String("counter"),
                               Value::Int64(int64_t(v))}});
  }
  for (const auto& [name, v] : snap.gauges) {
    metric_rows.push_back(
        Row{{Value::String(name), Value::String("gauge"), Value::Int64(v)}});
  }
  push_(kMetricsStream, std::move(metric_rows), tick);

  // tcq$queues: join the tcq_queue_* families back into one row per fjord.
  std::map<std::string, QueueRow> queues;
  std::string queue;
  for (const auto& [name, v] : snap.gauges) {
    if (ParseLabeled(name, "tcq_queue_depth", "queue", &queue)) {
      queues[queue].depth = v;
    }
  }
  for (const auto& [name, v] : snap.counters) {
    if (ParseLabeled(name, "tcq_queue_enqueued_total", "queue", &queue)) {
      queues[queue].enqueued = int64_t(v);
    } else if (ParseLabeled(name, "tcq_queue_dropped_on_close_total", "queue",
                            &queue)) {
      queues[queue].dropped = int64_t(v);
    }
  }
  for (const auto& h : snap.histograms) {
    if (ParseLabeled(h.name, "tcq_queue_wait_us", "queue", &queue)) {
      queues[queue].wait_p95_us = int64_t(h.p95);
    }
  }
  std::vector<Row> queue_rows;
  queue_rows.reserve(queues.size());
  for (const auto& [name, q] : queues) {
    queue_rows.push_back(Row{{Value::String(name), Value::Int64(q.depth),
                              Value::Int64(q.enqueued), Value::Int64(q.dropped),
                              Value::Int64(q.wait_p95_us)}});
  }
  push_(kQueuesStream, std::move(queue_rows), tick);

  // tcq$latency: one row per histogram, quantiles precomputed by Snapshot().
  std::vector<Row> latency_rows;
  latency_rows.reserve(snap.histograms.size());
  for (const auto& h : snap.histograms) {
    latency_rows.push_back(Row{{Value::String(h.name),
                                Value::Int64(int64_t(h.count)),
                                Value::Int64(int64_t(h.p50)),
                                Value::Int64(int64_t(h.p95)),
                                Value::Int64(int64_t(h.p99))}});
  }
  push_(kLatencyStream, std::move(latency_rows), tick);
}

}  // namespace tcq::obs
