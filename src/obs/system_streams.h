// Introspection streams: the engine's own state published as ordinary
// stream tuples (DESIGN.md §9). A SystemStreamSource periodically snapshots
// the metrics registry and the trace aggregates and pushes rows into three
// reserved streams — tcq$metrics (every counter/gauge), tcq$queues (fjord
// depth/throughput/drops/wait), tcq$latency (trace histogram quantiles) —
// so a continuous window query can run over the engine itself, closing the
// paper's monitoring loop.
//
// The source knows nothing about the server: it renders snapshots to rows
// and hands them to an injected push callback, which the server binds to
// its normal ingest path (so introspection tuples flow through the same
// fjords, eddies, and window machinery as user data).

#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "obs/trace.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace tcq::obs {

struct SystemStreamOptions {
  /// Off by default: the reserved streams are only registered (and the
  /// publisher thread only started) when the server opts in.
  bool enabled = false;
  /// Snapshot publication period.
  int publish_interval_ms = 50;
};

class SystemStreamSource {
 public:
  /// One published row of a reserved stream.
  struct Row {
    std::vector<Value> values;
  };

  /// Receives the rows of one stream for one publication round. `tick` is
  /// the round's logical timestamp (monotone from 1), shared by all three
  /// streams so windows over them align.
  using PushFn = std::function<void(const std::string& stream,
                                    std::vector<Row> rows, Timestamp tick)>;

  static constexpr const char* kMetricsStream = "tcq$metrics";
  static constexpr const char* kQueuesStream = "tcq$queues";
  static constexpr const char* kLatencyStream = "tcq$latency";

  /// {metric, kind ("counter"|"gauge"), value}.
  static std::vector<Field> MetricsSchema();
  /// {queue, depth, enqueued, dropped, wait_p95_us} — one row per fjord.
  static std::vector<Field> QueuesSchema();
  /// {metric, count, p50_us, p95_us, p99_us} — one row per histogram.
  static std::vector<Field> LatencySchema();

  SystemStreamSource(SystemStreamOptions opts, MetricsRegistryRef metrics,
                     TracerRef tracer, PushFn push);
  ~SystemStreamSource();

  SystemStreamSource(const SystemStreamSource&) = delete;
  SystemStreamSource& operator=(const SystemStreamSource&) = delete;

  /// Starts / stops the periodic publisher thread. Idempotent.
  void Start();
  void Stop();

  /// Takes one snapshot and pushes one round of rows synchronously (the
  /// publisher thread's body; exposed for deterministic tests).
  void PublishOnce();

  /// Publication rounds completed so far (== the last tick pushed).
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// Fast-forwards the tick counter to at least `t` (monotone), so a server
  /// restored from a checkpoint keeps publishing on a continuing timeline
  /// rather than restarting its logical clock.
  void AdvanceTicksTo(uint64_t t) {
    uint64_t cur = ticks_.load(std::memory_order_relaxed);
    while (cur < t && !ticks_.compare_exchange_weak(
                          cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  void Run();

  SystemStreamOptions opts_;
  MetricsRegistryRef metrics_;
  TracerRef tracer_;
  PushFn push_;
  std::atomic<uint64_t> ticks_{0};
  std::atomic<bool> running_{false};
  std::thread publisher_;
};

}  // namespace tcq::obs
