#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace tcq::obs {

namespace {

/// splitmix64 step: the per-thread deterministic sampling sequence.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::atomic<uint64_t> g_next_tracer_id{1};

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kWrapperFlush: return "wrapper_flush";
    case SpanKind::kQueueEnqueue: return "enqueue";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kEddyHop: return "hop";
    case SpanKind::kStemBuild: return "stem_build";
    case SpanKind::kStemProbe: return "stem_probe";
    case SpanKind::kPsoupProbe: return "psoup_probe";
    case SpanKind::kEgressEmit: return "egress_emit";
    case SpanKind::kEndToEnd: return "e2e";
  }
  return "unknown";
}

TraceContext& CurrentTrace() {
  thread_local TraceContext ctx;
  return ctx;
}

void TraceBatchScope::Arm(Tracer* tracer, int64_t ingest_us) {
  if (!tracer->ShouldSample()) return;
  saved_ = CurrentTrace();
  CurrentTrace() = TraceContext{
      tracer, ingest_us != 0 ? ingest_us : NowMicros()};
  armed_ = true;
}

/// One flight-recorder slot. Seqlock protocol: seq is odd while the writer
/// is mid-update, even when stable (2 * generation + 2 once written).
/// Payload fields are relaxed atomics so concurrent reader access is
/// data-race-free; the seq acquire/release pair orders them.
struct RingSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> meta{0};  // shard << 40 | kind << 32 | module
  std::atomic<uint64_t> query{0};
  std::atomic<int64_t> start_us{0};
  std::atomic<int64_t> dur_us{0};
};

struct Tracer::ThreadState {
  explicit ThreadState(const TraceOptions& opts, uint64_t thread_ordinal)
      : ring(opts.ring_capacity == 0 ? 1 : opts.ring_capacity),
        rng(opts.seed + 0x9E3779B97F4A7C15ull * (thread_ordinal + 1)) {}

  void Append(SpanKind kind, uint32_t module, uint64_t query,
              int64_t start_us, int64_t dur_us) {
    // The pumping shard rides in meta bits 40+ (kind is 8 bits wide), read
    // from the thread's armed TraceContext so call sites stay unchanged.
    uint64_t shard = CurrentTrace().shard;
    uint64_t t = head.load(std::memory_order_relaxed);
    RingSlot& slot = ring[t % ring.size()];
    slot.seq.store(2 * t + 1, std::memory_order_release);
    slot.meta.store((shard << 40) | (uint64_t(kind) << 32) | module,
                    std::memory_order_relaxed);
    slot.query.store(query, std::memory_order_relaxed);
    slot.start_us.store(start_us, std::memory_order_relaxed);
    slot.dur_us.store(dur_us, std::memory_order_relaxed);
    slot.seq.store(2 * t + 2, std::memory_order_release);
    head.store(t + 1, std::memory_order_release);
  }

  /// Reads every stable slot; a slot being overwritten concurrently is
  /// skipped (its seq check fails), never torn.
  void Collect(std::vector<Span>* out) const {
    uint64_t h = head.load(std::memory_order_acquire);
    uint64_t n = std::min<uint64_t>(h, ring.size());
    for (uint64_t t = h - n; t < h; ++t) {
      const RingSlot& slot = ring[t % ring.size()];
      uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq != 2 * t + 2) continue;
      Span span;
      uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      span.kind = static_cast<SpanKind>((meta >> 32) & 0xFF);
      span.shard = static_cast<uint32_t>(meta >> 40);
      span.module = static_cast<uint32_t>(meta);
      span.query = slot.query.load(std::memory_order_relaxed);
      span.start_us = slot.start_us.load(std::memory_order_relaxed);
      span.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
      out->push_back(span);
    }
  }

  std::vector<RingSlot> ring;
  std::atomic<uint64_t> head{0};
  uint64_t rng;
  /// Owner-thread-only caches mapping stable identities to registry
  /// histograms, so the sampled path never takes the registry lock twice
  /// for the same instrument. Keys are the module-name string's address
  /// (stable for a module's lifetime) and the global query id.
  std::vector<std::pair<const void*, Histogram*>> module_hist;
  std::vector<std::pair<uint64_t, Histogram*>> query_hist;
};

Tracer::Tracer(TraceOptions opts, MetricsRegistryRef metrics)
    : opts_(std::move(opts)),
      metrics_(metrics != nullptr ? std::move(metrics)
                                  : std::make_shared<MetricsRegistry>()),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {
  if (opts_.sample_period == 0) opts_.sample_period = 1;
  if (opts_.ring_capacity == 0) opts_.ring_capacity = 1;
  enabled_.store(opts_.enabled, std::memory_order_relaxed);
  for (size_t i = 0; i < kNumSpanKinds; ++i) {
    stage_us_[i] = metrics_->GetHistogram(MetricName(
        "tcq_trace_span_us", "stage", SpanKindName(SpanKind(i))));
  }
  hop_count_ = metrics_->GetHistogram("tcq_trace_eddy_hops");
  sampled_batches_ = metrics_->GetCounter("tcq_trace_sampled_batches_total");
  spans_total_ = metrics_->GetCounter("tcq_trace_spans_total");
}

Tracer::~Tracer() = default;

Tracer::ThreadState* Tracer::State() {
  // Cache keyed by tracer id: ids are process-unique, so an entry left by a
  // destroyed tracer can never alias a live one.
  thread_local std::vector<std::pair<uint64_t, ThreadState*>> tl_cache;
  for (const auto& [id, state] : tl_cache) {
    if (id == id_) return state;
  }
  std::lock_guard<std::mutex> lock(threads_mu_);
  threads_.push_back(std::make_unique<ThreadState>(opts_, threads_.size()));
  ThreadState* state = threads_.back().get();
  tl_cache.emplace_back(id_, state);
  return state;
}

bool Tracer::ShouldSample() {
  if (!enabled()) return false;
  ThreadState* ts = State();
  bool hit = opts_.sample_period <= 1 ||
             NextRandom(&ts->rng) % opts_.sample_period == 0;
  if (hit) sampled_batches_->Inc();
  return hit;
}

void Tracer::Record(SpanKind kind, uint32_t module, uint64_t query,
                    int64_t start_us, int64_t dur_us) {
  State()->Append(kind, module, query, start_us, dur_us);
  stage_us_[size_t(kind)]->Observe(dur_us < 0 ? 0 : uint64_t(dur_us));
  spans_total_->Inc();
}

Histogram* Tracer::ModuleHistogram(ThreadState* ts, const std::string& name) {
  const void* key = &name;
  for (const auto& [k, hist] : ts->module_hist) {
    if (k == key) return hist;
  }
  Histogram* hist =
      metrics_->GetHistogram(MetricName("tcq_trace_module_us", "module", name));
  ts->module_hist.emplace_back(key, hist);
  return hist;
}

void Tracer::RecordHop(size_t slot, const std::string& name, int64_t start_us,
                       int64_t dur_us) {
  ThreadState* ts = State();
  ts->Append(SpanKind::kEddyHop, uint32_t(slot), 0, start_us, dur_us);
  uint64_t d = dur_us < 0 ? 0 : uint64_t(dur_us);
  stage_us_[size_t(SpanKind::kEddyHop)]->Observe(d);
  ModuleHistogram(ts, name)->Observe(d);
  spans_total_->Inc();
}

void Tracer::RecordEndToEnd(uint64_t global_query, int64_t start_us,
                            int64_t latency_us) {
  ThreadState* ts = State();
  ts->Append(SpanKind::kEndToEnd, 0, global_query, start_us, latency_us);
  uint64_t d = latency_us < 0 ? 0 : uint64_t(latency_us);
  stage_us_[size_t(SpanKind::kEndToEnd)]->Observe(d);
  Histogram* hist = nullptr;
  for (const auto& [gid, h] : ts->query_hist) {
    if (gid == global_query) {
      hist = h;
      break;
    }
  }
  if (hist == nullptr) {
    hist = metrics_->GetHistogram(MetricName(
        "tcq_trace_e2e_us", "query", "q" + std::to_string(global_query)));
    ts->query_hist.emplace_back(global_query, hist);
  }
  hist->Observe(d);
  spans_total_->Inc();
}

void Tracer::RecordHopCount(uint32_t hops) { hop_count_->Observe(hops); }

std::vector<Span> Tracer::DumpFlightRecorder() const {
  std::vector<Span> spans;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (const auto& ts : threads_) ts->Collect(&spans);
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_us < b.start_us;
                   });
  if (spans.size() > opts_.ring_capacity) {
    spans.erase(spans.begin(),
                spans.end() - ptrdiff_t(opts_.ring_capacity));
  }
  return spans;
}

}  // namespace tcq::obs
