// Sampled dataflow tracing (DESIGN.md §9). A Tracer stamps monotonic-clock
// span events at each pipeline stage — wrapper flush, fjord enqueue/dequeue,
// eddy routing hop, SteM build/probe, PSoup probe, egress emit — for a
// deterministic 1-in-N sample of batches, and aggregates them into
// per-stage, per-module, and per-query latency histograms in the shared
// metrics registry. Raw spans additionally land in a lock-free per-thread
// ring (the flight recorder) for post-mortem dumps.
//
// Zero-cost-when-disabled contract: the batch path pays ONE relaxed atomic
// load (TraceBatchScope's enabled check); every downstream stage pays one
// thread-local read plus a null check. Only sampled batches touch the clock,
// the ring, or the histograms. All recorder state is per-thread or atomic,
// so recording is lock-free and TSan-clean.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace tcq::obs {

/// The span taxonomy: one kind per instrumented pipeline stage.
enum class SpanKind : uint8_t {
  kWrapperFlush = 0,  ///< wrapper batch flush into a streamer fjord
  kQueueEnqueue,      ///< producer-side delivery into a class fjord
  kQueueWait,         ///< fjord residence: first enqueue -> batch dequeue
  kEddyHop,           ///< one module invocation (eddy or shared eddy)
  kStemBuild,         ///< SteM insert
  kStemProbe,         ///< SteM equality/scan probe
  kPsoupProbe,        ///< PSoup disconnected-client invocation
  kEgressEmit,        ///< push-egress delivery to the client buffer
  kEndToEnd,          ///< ingest enqueue -> egress emit, per query
};
inline constexpr size_t kNumSpanKinds = 9;

const char* SpanKindName(SpanKind kind);

/// One raw flight-recorder span.
struct Span {
  SpanKind kind = SpanKind::kEddyHop;
  /// Kind-dependent id: module slot for hops, source id for queue spans.
  uint32_t module = 0;
  /// Shard replica that processed the batch (0 for unsharded classes and
  /// stages upstream of shard routing).
  uint32_t shard = 0;
  /// Global query id for kEndToEnd / kPsoupProbe spans, else 0.
  uint64_t query = 0;
  int64_t start_us = 0;  ///< steady-clock microseconds (NowMicros)
  int64_t dur_us = 0;
};

struct TraceOptions {
  /// Master switch; also flippable at runtime via Tracer::set_enabled.
  bool enabled = false;
  /// Sample 1 of this many batches (1 = every batch, 0 treated as 1).
  uint32_t sample_period = 64;
  /// Seed of the per-thread deterministic sampling sequence.
  uint64_t seed = 42;
  /// Flight-recorder capacity: spans retained per recording thread, and the
  /// bound on what DumpFlightRecorder returns after the cross-thread merge.
  size_t ring_capacity = 4096;
};

/// The span recorder. Instances are independent (no global state), so tests
/// and benches construct their own; the server owns one shared by every
/// component it wires. Thread-safe: recording is per-thread + atomics.
class Tracer {
 public:
  explicit Tracer(TraceOptions opts, MetricsRegistryRef metrics = nullptr);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The single hot-path check: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  const TraceOptions& options() const { return opts_; }

  /// Per-batch sampling decision on this thread's deterministic sequence.
  /// False whenever tracing is disabled.
  bool ShouldSample();

  /// Records a raw span: flight-recorder ring + the per-stage histogram
  /// tcq_trace_span_us{stage=...}. Callers gate on an armed TraceContext
  /// (or their own ShouldSample), so this is only reached when sampled.
  void Record(SpanKind kind, uint32_t module, uint64_t query,
              int64_t start_us, int64_t dur_us);

  /// A routing hop: Record(kEddyHop) plus the per-module histogram
  /// tcq_trace_module_us{module=<name>}. `name` must outlive the tracer's
  /// use of it within the call (modules' names are stable).
  void RecordHop(size_t slot, const std::string& name, int64_t start_us,
                 int64_t dur_us);

  /// Ingest->result latency: Record(kEndToEnd) plus the per-query histogram
  /// tcq_trace_e2e_us{query="q<gid>"}.
  void RecordEndToEnd(uint64_t global_query, int64_t start_us,
                      int64_t latency_us);

  /// Per-tuple routing path length, into tcq_trace_eddy_hops (the
  /// routing-quality signal).
  void RecordHopCount(uint32_t hops);

  /// Merges every thread's ring, ordered by start time, keeping the last
  /// ring_capacity spans. Safe concurrently with recording (seqlock slots:
  /// a span being overwritten mid-read is skipped, not torn).
  std::vector<Span> DumpFlightRecorder() const;

  uint64_t batches_sampled() const { return sampled_batches_->Value(); }
  uint64_t spans_recorded() const { return spans_total_->Value(); }
  const MetricsRegistryRef& metrics() const { return metrics_; }

 private:
  struct ThreadState;

  ThreadState* State();
  Histogram* ModuleHistogram(ThreadState* ts, const std::string& name);

  TraceOptions opts_;
  MetricsRegistryRef metrics_;
  std::atomic<bool> enabled_{false};
  /// Process-unique id keying the thread-local (tracer -> state) cache, so
  /// a stale cache entry from a destroyed tracer can never be revived.
  const uint64_t id_;

  Histogram* stage_us_[kNumSpanKinds];
  Histogram* hop_count_;
  Counter* sampled_batches_;
  Counter* spans_total_;

  mutable std::mutex threads_mu_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
};

using TracerRef = std::shared_ptr<Tracer>;

/// Thread-local marker for "the batch being processed on this thread is
/// sampled". Downstream stages (eddies, SteMs, egress) read it instead of
/// being plumbed a tracer: tracer == nullptr means inactive.
struct TraceContext {
  Tracer* tracer = nullptr;
  /// Enqueue time of the batch's oldest tuple, for end-to-end latency.
  int64_t ingest_us = 0;
  /// Shard replica pumping the current batch; stamped onto every span
  /// recorded under this context. Set by the sharded DU pump after arming
  /// (TraceBatchScope restores the previous context, shard included).
  uint32_t shard = 0;
};

/// This thread's context (never null; check .tracer for activity).
TraceContext& CurrentTrace();

/// RAII batch-scope arming. Constructed at batch boundaries (DU pump,
/// PSoup ingest, benches); makes the sampling decision and, when sampled,
/// arms CurrentTrace() for everything the batch synchronously touches.
class TraceBatchScope {
 public:
  /// `ingest_us` = enqueue timestamp of the batch (0 = now).
  explicit TraceBatchScope(Tracer* tracer, int64_t ingest_us = 0) {
    if (tracer == nullptr || !tracer->enabled()) return;
    Arm(tracer, ingest_us);
  }
  ~TraceBatchScope() {
    if (armed_) CurrentTrace() = saved_;
  }

  TraceBatchScope(const TraceBatchScope&) = delete;
  TraceBatchScope& operator=(const TraceBatchScope&) = delete;

  bool sampled() const { return armed_; }

 private:
  void Arm(Tracer* tracer, int64_t ingest_us);

  TraceContext saved_;
  bool armed_ = false;
};

}  // namespace tcq::obs
