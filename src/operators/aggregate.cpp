#include "operators/aggregate.h"

#include <cassert>

namespace tcq {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "?";
}

void LandmarkAggregator::Add(const Value& v, Timestamp) {
  if (v.is_null()) return;
  ++count_;
  if (fn_ == AggFn::kSum || fn_ == AggFn::kAvg) sum_ += v.ToDouble();
  if (fn_ == AggFn::kMin) {
    if (!extreme_ || v.Compare(*extreme_) < 0) extreme_ = v;
  } else if (fn_ == AggFn::kMax) {
    if (!extreme_ || v.Compare(*extreme_) > 0) extreme_ = v;
  }
}

Value LandmarkAggregator::Result() const {
  switch (fn_) {
    case AggFn::kCount:
      return Value::Int64(static_cast<int64_t>(count_));
    case AggFn::kSum:
      return count_ ? Value::Double(sum_) : Value::Null();
    case AggFn::kAvg:
      return count_ ? Value::Double(sum_ / static_cast<double>(count_))
                    : Value::Null();
    case AggFn::kMin:
    case AggFn::kMax:
      return extreme_.value_or(Value::Null());
  }
  return Value::Null();
}

void LandmarkAggregator::Reset() {
  count_ = 0;
  sum_ = 0;
  extreme_.reset();
}

void SlidingAggregator::Add(const Value& v, Timestamp ts) {
  if (v.is_null()) return;
  double d = v.ToDouble();
  buffer_.push_back(Item{d, ts});
  sum_ += d;
  if (fn_ == AggFn::kMin || fn_ == AggFn::kMax) {
    // Maintain the monotonic deque: pop dominated entries from the back.
    while (!mono_.empty()) {
      bool dominated = fn_ == AggFn::kMax ? mono_.back().v <= d
                                          : mono_.back().v >= d;
      if (!dominated) break;
      mono_.pop_back();
    }
    mono_.push_back(Item{d, ts});
  }
}

void SlidingAggregator::AdvanceTime(Timestamp now) {
  Timestamp cutoff = now - window_;
  while (!buffer_.empty() && buffer_.front().ts <= cutoff) {
    sum_ -= buffer_.front().v;
    buffer_.pop_front();
  }
  while (!mono_.empty() && mono_.front().ts <= cutoff) {
    mono_.pop_front();
  }
}

Value SlidingAggregator::Result() const {
  switch (fn_) {
    case AggFn::kCount:
      return Value::Int64(static_cast<int64_t>(buffer_.size()));
    case AggFn::kSum:
      return buffer_.empty() ? Value::Null() : Value::Double(sum_);
    case AggFn::kAvg:
      return buffer_.empty()
                 ? Value::Null()
                 : Value::Double(sum_ / static_cast<double>(buffer_.size()));
    case AggFn::kMin:
    case AggFn::kMax:
      return mono_.empty() ? Value::Null() : Value::Double(mono_.front().v);
  }
  return Value::Null();
}

size_t SlidingAggregator::StateBytes() const {
  return sizeof(*this) + (buffer_.size() + mono_.size()) * sizeof(Item);
}

std::unique_ptr<Aggregator> MakeLandmarkAggregator(AggFn fn) {
  return std::make_unique<LandmarkAggregator>(fn);
}

std::unique_ptr<Aggregator> MakeSlidingAggregator(AggFn fn,
                                                  Timestamp window) {
  return std::make_unique<SlidingAggregator>(fn, window);
}

Aggregator* GroupedAggregate::GroupFor(const Value& key) {
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    std::unique_ptr<Aggregator> agg =
        opts_.window > 0 ? MakeSlidingAggregator(opts_.fn, opts_.window)
                         : MakeLandmarkAggregator(opts_.fn);
    it = groups_.emplace(key, std::move(agg)).first;
  }
  return it->second.get();
}

void GroupedAggregate::Consume(const Tuple& tuple) {
  const Value* v = ResolveAttr(tuple, opts_.value_attr);
  assert(v != nullptr && "aggregate value attribute missing");
  Value key = Value::Null();
  if (opts_.group_attr) {
    const Value* k = ResolveAttr(tuple, *opts_.group_attr);
    assert(k != nullptr && "group attribute missing");
    key = *k;
  }
  GroupFor(key)->Add(*v, tuple.timestamp());
}

void GroupedAggregate::AdvanceTime(Timestamp now) {
  if (opts_.window == 0) return;
  for (auto& [key, agg] : groups_) {
    static_cast<SlidingAggregator*>(agg.get())->AdvanceTime(now);
  }
}

std::vector<std::pair<Value, Value>> GroupedAggregate::Snapshot() const {
  std::vector<std::pair<Value, Value>> out;
  out.reserve(groups_.size());
  for (const auto& [key, agg] : groups_) {
    out.emplace_back(key, agg->Result());
  }
  return out;
}

Value GroupedAggregate::ResultFor(const Value& group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? Value::Null() : it->second->Result();
}

Value GroupedAggregate::GlobalResult() const {
  return ResultFor(Value::Null());
}

size_t GroupedAggregate::StateBytes() const {
  size_t total = sizeof(*this);
  for (const auto& [key, agg] : groups_) total += agg->StateBytes();
  return total;
}

}  // namespace tcq
