// Aggregation over streams. The paper (§4.1.2) observes that window class
// dictates aggregate state: a landmark MAX needs O(1) state (compare the
// running max against each arrival), while a sliding-window MAX must retain
// the window. Both aggregator kinds are provided, plus a grouped, windowed
// aggregation operator built on them.

#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "operators/predicate.h"
#include "tuple/tuple.h"

namespace tcq {

enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// Incremental aggregator interface. Add() feeds values; Result() is the
/// aggregate of everything currently in scope.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual void Add(const Value& v, Timestamp ts) = 0;
  /// Value of the aggregate; null when no input is in scope.
  virtual Value Result() const = 0;
  /// Bytes of state retained (drives the E6 state-size comparison).
  virtual size_t StateBytes() const = 0;
};

/// O(1)-state aggregator for expanding (landmark) windows: old values never
/// leave the window, so a running scalar suffices for every AggFn.
class LandmarkAggregator : public Aggregator {
 public:
  explicit LandmarkAggregator(AggFn fn) : fn_(fn) {}

  void Add(const Value& v, Timestamp ts) override;
  Value Result() const override;
  size_t StateBytes() const override { return sizeof(*this); }

  /// Resets to empty (used when a landmark window's fixed end restarts).
  void Reset();

 private:
  AggFn fn_;
  uint64_t count_ = 0;
  double sum_ = 0;
  std::optional<Value> extreme_;
};

/// Sliding-window aggregator: values expire as time advances, so the window
/// contents (or a monotonic summary of them, for MIN/MAX) must be retained.
class SlidingAggregator : public Aggregator {
 public:
  SlidingAggregator(AggFn fn, Timestamp window) : fn_(fn), window_(window) {}

  void Add(const Value& v, Timestamp ts) override;
  Value Result() const override;
  size_t StateBytes() const override;

  /// Expires values with ts <= now - window.
  void AdvanceTime(Timestamp now);

  size_t window_population() const { return buffer_.size(); }

 private:
  struct Item {
    double v;
    Timestamp ts;
  };

  AggFn fn_;
  Timestamp window_;
  std::deque<Item> buffer_;  // all in-window values (sum/count/avg)
  // Monotonic deque for MIN/MAX: front is the current extreme.
  std::deque<Item> mono_;
  double sum_ = 0;
};

std::unique_ptr<Aggregator> MakeLandmarkAggregator(AggFn fn);
std::unique_ptr<Aggregator> MakeSlidingAggregator(AggFn fn, Timestamp window);

/// Grouped windowed aggregation: maintains one aggregator per group key and
/// emits (group, aggregate) rows on demand. `group_attr` unset = one global
/// group. Window = 0 selects landmark aggregators.
class GroupedAggregate {
 public:
  struct Options {
    AggFn fn = AggFn::kCount;
    AttrRef value_attr;
    std::optional<AttrRef> group_attr;
    /// 0 = landmark (never expires); > 0 = sliding window width.
    Timestamp window = 0;
  };

  explicit GroupedAggregate(Options opts) : opts_(std::move(opts)) {}

  /// Feeds one tuple (uses the tuple's timestamp for expiry).
  void Consume(const Tuple& tuple);

  /// Expires sliding-window state.
  void AdvanceTime(Timestamp now);

  /// Current (group key, aggregate) pairs, ordered by group key.
  std::vector<std::pair<Value, Value>> Snapshot() const;

  /// Aggregate for one group (or the global group).
  Value ResultFor(const Value& group) const;
  Value GlobalResult() const;

  size_t num_groups() const { return groups_.size(); }
  size_t StateBytes() const;

 private:
  Aggregator* GroupFor(const Value& key);

  Options opts_;
  std::map<Value, std::unique_ptr<Aggregator>> groups_;
};

}  // namespace tcq
