#include "operators/dup_elim.h"

#include <cassert>

namespace tcq {

std::string DupElim::KeyOf(const Tuple& tuple) const {
  std::string key;
  if (opts_.key_attrs.empty()) {
    // Full-tuple identity includes the timestamp: the same reading at a
    // different time is a distinct stream event.
    key = std::to_string(tuple.timestamp());
    key += '\x1f';
    for (size_t i = 0; i < tuple.num_fields(); ++i) {
      key += tuple.at(i).ToString();
      key += '\x1f';
    }
    return key;
  }
  for (const AttrRef& a : opts_.key_attrs) {
    const Value* v = ResolveAttr(tuple, a);
    assert(v != nullptr && "dup-elim key attribute missing");
    key += v->ToString();
    key += '\x1f';
  }
  return key;
}

EddyModule::Action DupElim::Process(const Envelope& env,
                                    std::vector<Envelope>*) {
  std::string key = KeyOf(env.tuple);
  auto [it, inserted] = seen_.insert(std::move(key));
  if (!inserted) return Action::kDrop;
  if (opts_.window > 0) by_time_.emplace_back(env.tuple.timestamp(), *it);
  return Action::kPass;
}

void DupElim::AdvanceTime(Timestamp now) {
  if (opts_.window == 0) return;
  Timestamp cutoff = now - opts_.window;
  while (!by_time_.empty() && by_time_.front().first <= cutoff) {
    seen_.erase(by_time_.front().second);
    by_time_.pop_front();
  }
}

}  // namespace tcq
