// Duplicate elimination: a pipelined, non-blocking module (listed among the
// Telegraph query modules in Fig. 1). Keeps a set of seen keys over the
// configured attributes; over infinite streams the set can be bounded by a
// window so state does not grow without limit.

#pragma once

#include <string>
#include <unordered_set>
#include <deque>
#include <vector>

#include "eddy/module.h"
#include "operators/predicate.h"

namespace tcq {

class DupElim : public EddyModule {
 public:
  struct Options {
    /// Attributes defining tuple identity; empty = all fields.
    std::vector<AttrRef> key_attrs;
    /// Forget keys older than this many time units; 0 = remember forever.
    Timestamp window = 0;
  };

  DupElim(std::string name, Options opts)
      : EddyModule(std::move(name)), opts_(std::move(opts)) {
    for (const AttrRef& a : opts_.key_attrs) sources_ |= SourceBit(a.source);
  }

  bool AppliesTo(SourceSet sources) const override {
    return (sources_ & ~sources) == 0;
  }

  Action Process(const Envelope& env, std::vector<Envelope>* out) override;

  SourceSet contributes() const override { return sources_; }

  /// Expires remembered keys under the window policy.
  void AdvanceTime(Timestamp now);

  size_t distinct_seen() const { return seen_.size(); }

 private:
  std::string KeyOf(const Tuple& tuple) const;

  Options opts_;
  SourceSet sources_ = 0;
  std::unordered_set<std::string> seen_;
  std::deque<std::pair<Timestamp, std::string>> by_time_;
};

}  // namespace tcq
