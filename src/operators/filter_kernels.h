// Auto-vectorizable predicate kernels (DESIGN.md §11). Each kernel sweeps
// one contiguous typed lane for ONE compiled factor, accumulating per-row
// match counts (grouped filters) or narrowing a byte selection mask (eddy
// selection prefilters). The loops are written to the vectorizer's taste:
// no branches in the body, byte-sized accumulators, __restrict__ pointers,
// comparison results used as 0/1 integers. scripts/check.sh compiles
// scripts/vectorize_probe.cpp with -fopt-info-vec and fails the build if
// these loops stop vectorizing.
//
// Exactness contract: kernels are only dispatched on null-free int64/double
// lanes with numeric literals, and every comparison replicates
// Value::Compare bit-for-bit — both-integral comparisons stay in int64,
// mixed comparisons go through the same int64 -> double conversion
// Value::ToDouble performs. Anything else takes the scalar path.

#pragma once

#include <cstddef>
#include <cstdint>

namespace tcq {
namespace kernels {

enum class Cmp : uint8_t { kGe, kGt, kLe, kLt, kNe };

/// counts[i] += (C(v[i]) OP lit) for one bound factor. T is the lane type,
/// C the comparison type (int64_t for integral-vs-integral, double when
/// either side is a double — matching Value::Compare's promotion rule).
template <typename T, typename C, Cmp Op>
inline void AccumBound(uint8_t* __restrict__ counts, const T* __restrict__ v,
                       size_t n, C lit) {
  for (size_t i = 0; i < n; ++i) {
    C x = static_cast<C>(v[i]);
    if constexpr (Op == Cmp::kGe) counts[i] += static_cast<uint8_t>(x >= lit);
    if constexpr (Op == Cmp::kGt) counts[i] += static_cast<uint8_t>(x > lit);
    if constexpr (Op == Cmp::kLe) counts[i] += static_cast<uint8_t>(x <= lit);
    if constexpr (Op == Cmp::kLt) counts[i] += static_cast<uint8_t>(x < lit);
    if constexpr (Op == Cmp::kNe) counts[i] += static_cast<uint8_t>(x != lit);
  }
}

/// counts[i] += (lo-side AND hi-side) for one two-sided range factor.
template <typename T, typename C, bool LoIncl, bool HiIncl>
inline void AccumRange(uint8_t* __restrict__ counts, const T* __restrict__ v,
                       size_t n, C lo, C hi) {
  for (size_t i = 0; i < n; ++i) {
    C x = static_cast<C>(v[i]);
    uint8_t in_lo = LoIncl ? static_cast<uint8_t>(x >= lo)
                           : static_cast<uint8_t>(x > lo);
    uint8_t in_hi = HiIncl ? static_cast<uint8_t>(x <= hi)
                           : static_cast<uint8_t>(x < hi);
    counts[i] += static_cast<uint8_t>(in_lo & in_hi);
  }
}

/// mask[i] &= (C(v[i]) OP lit): narrows a selection mask by one comparison
/// (the eddy's Selection-module prefilter).
template <typename T, typename C, Cmp Op>
inline void MaskCmp(uint8_t* __restrict__ mask, const T* __restrict__ v,
                    size_t n, C lit) {
  for (size_t i = 0; i < n; ++i) {
    C x = static_cast<C>(v[i]);
    uint8_t keep = 0;
    if constexpr (Op == Cmp::kGe) keep = static_cast<uint8_t>(x >= lit);
    if constexpr (Op == Cmp::kGt) keep = static_cast<uint8_t>(x > lit);
    if constexpr (Op == Cmp::kLe) keep = static_cast<uint8_t>(x <= lit);
    if constexpr (Op == Cmp::kLt) keep = static_cast<uint8_t>(x < lit);
    if constexpr (Op == Cmp::kNe) keep = static_cast<uint8_t>(x != lit);
    mask[i] &= keep;
  }
}

/// mask[i] &= (C(v[i]) == lit) (equality selections).
template <typename T, typename C>
inline void MaskEq(uint8_t* __restrict__ mask, const T* __restrict__ v,
                   size_t n, C lit) {
  for (size_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(static_cast<C>(v[i]) == lit);
  }
}

/// mask[i] &= (lo-side AND hi-side) for a two-sided range selection.
template <typename T, typename C, bool LoIncl, bool HiIncl>
inline void MaskRange(uint8_t* __restrict__ mask, const T* __restrict__ v,
                      size_t n, C lo, C hi) {
  for (size_t i = 0; i < n; ++i) {
    C x = static_cast<C>(v[i]);
    uint8_t in_lo = LoIncl ? static_cast<uint8_t>(x >= lo)
                           : static_cast<uint8_t>(x > lo);
    uint8_t in_hi = HiIncl ? static_cast<uint8_t>(x <= hi)
                           : static_cast<uint8_t>(x < hi);
    mask[i] &= static_cast<uint8_t>(in_lo & in_hi);
  }
}

/// True when any lane value is NaN. Value::Compare's `(a>b)-(a<b)` form
/// reports NaN as EQUAL to everything, which no IEEE comparison in the
/// kernels above reproduces — callers must fall back to the scalar path for
/// lanes containing NaN. Branch-free OR-reduction so this scan vectorizes.
inline bool AnyNaN(const double* __restrict__ v, size_t n) {
  uint8_t acc = 0;
  for (size_t i = 0; i < n; ++i) acc |= static_cast<uint8_t>(v[i] != v[i]);
  return acc != 0;
}

/// Dispatch helper: runs AccumBound with the right Op template instance.
template <typename T, typename C>
inline void AccumBoundDyn(uint8_t* counts, const T* v, size_t n, C lit,
                          Cmp op) {
  switch (op) {
    case Cmp::kGe:
      AccumBound<T, C, Cmp::kGe>(counts, v, n, lit);
      break;
    case Cmp::kGt:
      AccumBound<T, C, Cmp::kGt>(counts, v, n, lit);
      break;
    case Cmp::kLe:
      AccumBound<T, C, Cmp::kLe>(counts, v, n, lit);
      break;
    case Cmp::kLt:
      AccumBound<T, C, Cmp::kLt>(counts, v, n, lit);
      break;
    case Cmp::kNe:
      AccumBound<T, C, Cmp::kNe>(counts, v, n, lit);
      break;
  }
}

/// Dispatch helper: runs AccumRange with the right inclusivity instance.
template <typename T, typename C>
inline void AccumRangeDyn(uint8_t* counts, const T* v, size_t n, C lo, C hi,
                          bool lo_incl, bool hi_incl) {
  if (lo_incl && hi_incl) {
    AccumRange<T, C, true, true>(counts, v, n, lo, hi);
  } else if (lo_incl) {
    AccumRange<T, C, true, false>(counts, v, n, lo, hi);
  } else if (hi_incl) {
    AccumRange<T, C, false, true>(counts, v, n, lo, hi);
  } else {
    AccumRange<T, C, false, false>(counts, v, n, lo, hi);
  }
}

/// Dispatch helper for MaskCmp.
template <typename T, typename C>
inline void MaskCmpDyn(uint8_t* mask, const T* v, size_t n, C lit, Cmp op) {
  switch (op) {
    case Cmp::kGe:
      MaskCmp<T, C, Cmp::kGe>(mask, v, n, lit);
      break;
    case Cmp::kGt:
      MaskCmp<T, C, Cmp::kGt>(mask, v, n, lit);
      break;
    case Cmp::kLe:
      MaskCmp<T, C, Cmp::kLe>(mask, v, n, lit);
      break;
    case Cmp::kLt:
      MaskCmp<T, C, Cmp::kLt>(mask, v, n, lit);
      break;
    case Cmp::kNe:
      MaskCmp<T, C, Cmp::kNe>(mask, v, n, lit);
      break;
  }
}

/// Dispatch helper for MaskRange.
template <typename T, typename C>
inline void MaskRangeDyn(uint8_t* mask, const T* v, size_t n, C lo, C hi,
                         bool lo_incl, bool hi_incl) {
  if (lo_incl && hi_incl) {
    MaskRange<T, C, true, true>(mask, v, n, lo, hi);
  } else if (lo_incl) {
    MaskRange<T, C, true, false>(mask, v, n, lo, hi);
  } else if (hi_incl) {
    MaskRange<T, C, false, true>(mask, v, n, lo, hi);
  } else {
    MaskRange<T, C, false, false>(mask, v, n, lo, hi);
  }
}

}  // namespace kernels
}  // namespace tcq
