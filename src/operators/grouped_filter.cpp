#include "operators/grouped_filter.h"

#include <algorithm>
#include <cassert>

namespace tcq {

void GroupedFilter::AddFactor(QueryId q, CmpOp op, Value literal) {
  // Re-registering a removed query must not resurrect its old factors.
  if (dead_.Contains(q)) Compact();
  switch (op) {
    case CmpOp::kEq:
      eq_[std::move(literal)].push_back(q);
      break;
    case CmpOp::kNe:
      ne_.emplace_back(std::move(literal), q);
      break;
    case CmpOp::kGt:
      lower_.push_back(Bound{std::move(literal), q, true});
      lower_sorted_ = false;
      break;
    case CmpOp::kGe:
      lower_.push_back(Bound{std::move(literal), q, false});
      lower_sorted_ = false;
      break;
    case CmpOp::kLt:
      upper_.push_back(Bound{std::move(literal), q, true});
      upper_sorted_ = false;
      break;
    case CmpOp::kLe:
      upper_.push_back(Bound{std::move(literal), q, false});
      upper_sorted_ = false;
      break;
  }
  ++factor_count_[q];
  ++num_factors_;
  interested_.Add(q);
  dead_.Remove(q);
}

void GroupedFilter::AddRange(QueryId q, Value lo, bool lo_incl, Value hi,
                             bool hi_incl) {
  if (dead_.Contains(q)) Compact();
  ranges_.Add(IntervalIndex::Interval{std::move(lo), lo_incl, std::move(hi),
                                      hi_incl, q});
  ++factor_count_[q];
  ++num_factors_;
  interested_.Add(q);
  dead_.Remove(q);
}

void GroupedFilter::RemoveQuery(QueryId q) {
  if (!interested_.Contains(q)) return;
  dead_.Add(q);
  interested_.Remove(q);
  ranges_.Remove(q);
}

void GroupedFilter::Compact() {
  auto is_dead = [&](QueryId q) { return dead_.Contains(q); };
  for (auto it = eq_.begin(); it != eq_.end();) {
    auto& qs = it->second;
    qs.erase(std::remove_if(qs.begin(), qs.end(), is_dead), qs.end());
    it = qs.empty() ? eq_.erase(it) : std::next(it);
  }
  std::erase_if(ne_, [&](const auto& p) { return is_dead(p.second); });
  std::erase_if(lower_, [&](const Bound& b) { return is_dead(b.query); });
  std::erase_if(upper_, [&](const Bound& b) { return is_dead(b.query); });
  ranges_.Compact();
  num_factors_ = ne_.size() + lower_.size() + upper_.size() + ranges_.size();
  for (const auto& [v, qs] : eq_) num_factors_ += qs.size();
  for (auto it = factor_count_.begin(); it != factor_count_.end();) {
    it = is_dead(it->first) ? factor_count_.erase(it) : std::next(it);
  }
  dead_ = QuerySet();
}

void GroupedFilter::BumpMatch(QueryId q, std::vector<QueryId>* touched) const {
  if (matched_.size() <= q) {
    matched_.resize(q + 1, 0);
    probe_epoch_.resize(q + 1, 0);
  }
  if (probe_epoch_[q] != epoch_) {
    probe_epoch_[q] = epoch_;
    matched_[q] = 0;
    touched->push_back(q);
  }
  ++matched_[q];
}

void GroupedFilter::Match(const Value& v, QuerySet* out) const {
  if (!lower_sorted_) {
    auto& lower = const_cast<std::vector<Bound>&>(lower_);
    std::sort(lower.begin(), lower.end(),
              [](const Bound& a, const Bound& b) {
                return a.literal.Compare(b.literal) < 0;
              });
    const_cast<bool&>(lower_sorted_) = true;
  }
  if (!upper_sorted_) {
    auto& upper = const_cast<std::vector<Bound>&>(upper_);
    std::sort(upper.begin(), upper.end(),
              [](const Bound& a, const Bound& b) {
                return a.literal.Compare(b.literal) < 0;
              });
    const_cast<bool&>(upper_sorted_) = true;
  }

  ++epoch_;
  touched_.clear();

  // Equality: one hash lookup.
  if (auto it = eq_.find(v); it != eq_.end()) {
    for (QueryId q : it->second) BumpMatch(q, &touched_);
  }
  // Inequality: satisfied unless equal.
  for (const auto& [literal, q] : ne_) {
    if (v.Compare(literal) != 0) BumpMatch(q, &touched_);
  }
  // Lower bounds: the prefix with literal < v matches; literal == v matches
  // only non-strict bounds.
  for (const Bound& b : lower_) {
    int c = b.literal.Compare(v);
    if (c > 0) break;
    if (c < 0 || !b.strict) BumpMatch(b.query, &touched_);
  }
  // Upper bounds: the suffix with literal > v matches. Walk backwards.
  for (auto it = upper_.rbegin(); it != upper_.rend(); ++it) {
    int c = it->literal.Compare(v);
    if (c < 0) break;
    if (c > 0 || !it->strict) BumpMatch(it->query, &touched_);
  }
  // Two-sided ranges: interval-tree stab, O(log n + matches).
  if (ranges_.size() > 0) {
    range_scratch_ = QuerySet();
    ranges_.Stab(v, &range_scratch_);
    range_scratch_.ForEach([&](QueryId q) { BumpMatch(q, &touched_); });
  }

  for (QueryId q : touched_) {
    if (dead_.Contains(q)) continue;
    auto it = factor_count_.find(q);
    assert(it != factor_count_.end());
    if (matched_[q] == it->second) out->Add(q);
  }
}

}  // namespace tcq
