#include "operators/grouped_filter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tcq {

namespace {

/// Chunk width of the batch count matrix: small enough that one slot row is
/// a few cache lines, large enough to amortize per-chunk dispatch.
constexpr size_t kChunk = 256;

/// Above this many live queries the dense count matrix stops paying for
/// itself against the answer-proportional scalar index.
constexpr uint32_t kMaxKernelSlots = 4096;

/// More factors on one attribute than any sane query has; guards the uint8
/// count cells.
constexpr uint32_t kMaxKernelFactors = 200;

/// 2^53: past this magnitude double rounding (and the Value-keyed eq_ map's
/// hash/equality split between integral and double keys) makes the kernel
/// arithmetic diverge from Value::Compare, so compilation refuses.
constexpr double kExactDoubleLimit = 9007199254740992.0;

/// -1: not kernelizable; 0: integral (int64/timestamp); 1: double.
int LiteralKind(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return 0;
    case ValueType::kDouble:
      return std::isnan(v.AsDouble()) ? -1 : 1;
    default:
      return -1;
  }
}

int64_t IntegralOf(const Value& v) {
  return v.type() == ValueType::kTimestamp
             ? static_cast<int64_t>(v.AsTimestamp())
             : v.AsInt64();
}

}  // namespace

void GroupedFilter::AddFactor(QueryId q, CmpOp op, Value literal) {
  // Re-registering a removed query must not resurrect its old factors.
  if (dead_.Contains(q)) Compact();
  switch (op) {
    case CmpOp::kEq:
      eq_[std::move(literal)].push_back(q);
      break;
    case CmpOp::kNe:
      ne_.emplace_back(std::move(literal), q);
      break;
    case CmpOp::kGt:
      lower_.push_back(Bound{std::move(literal), q, true});
      lower_sorted_ = false;
      break;
    case CmpOp::kGe:
      lower_.push_back(Bound{std::move(literal), q, false});
      lower_sorted_ = false;
      break;
    case CmpOp::kLt:
      upper_.push_back(Bound{std::move(literal), q, true});
      upper_sorted_ = false;
      break;
    case CmpOp::kLe:
      upper_.push_back(Bound{std::move(literal), q, false});
      upper_sorted_ = false;
      break;
  }
  ++factor_count_[q];
  ++num_factors_;
  interested_.Add(q);
  dead_.Remove(q);
  ++revision_;
}

void GroupedFilter::AddRange(QueryId q, Value lo, bool lo_incl, Value hi,
                             bool hi_incl) {
  if (dead_.Contains(q)) Compact();
  IntervalIndex::Interval iv{std::move(lo), lo_incl, std::move(hi), hi_incl,
                             q};
  range_list_.push_back(iv);
  ranges_.Add(std::move(iv));
  ++factor_count_[q];
  ++num_factors_;
  interested_.Add(q);
  dead_.Remove(q);
  ++revision_;
}

void GroupedFilter::RemoveQuery(QueryId q) {
  if (!interested_.Contains(q)) return;
  dead_.Add(q);
  interested_.Remove(q);
  ranges_.Remove(q);
  ++revision_;
}

void GroupedFilter::Compact() {
  auto is_dead = [&](QueryId q) { return dead_.Contains(q); };
  for (auto it = eq_.begin(); it != eq_.end();) {
    auto& qs = it->second;
    qs.erase(std::remove_if(qs.begin(), qs.end(), is_dead), qs.end());
    it = qs.empty() ? eq_.erase(it) : std::next(it);
  }
  std::erase_if(ne_, [&](const auto& p) { return is_dead(p.second); });
  std::erase_if(lower_, [&](const Bound& b) { return is_dead(b.query); });
  std::erase_if(upper_, [&](const Bound& b) { return is_dead(b.query); });
  std::erase_if(range_list_,
                [&](const IntervalIndex::Interval& iv) {
                  return is_dead(iv.query);
                });
  ranges_.Compact();
  num_factors_ = ne_.size() + lower_.size() + upper_.size() + ranges_.size();
  for (const auto& [v, qs] : eq_) num_factors_ += qs.size();
  for (auto it = factor_count_.begin(); it != factor_count_.end();) {
    it = is_dead(it->first) ? factor_count_.erase(it) : std::next(it);
  }
  dead_ = QuerySet();
  ++revision_;
}

void GroupedFilter::BumpMatch(QueryId q, std::vector<QueryId>* touched) const {
  if (matched_.size() <= q) {
    matched_.resize(q + 1, 0);
    probe_epoch_.resize(q + 1, 0);
  }
  if (probe_epoch_[q] != epoch_) {
    probe_epoch_[q] = epoch_;
    matched_[q] = 0;
    touched->push_back(q);
  }
  ++matched_[q];
}

void GroupedFilter::Match(const Value& v, QuerySet* out) const {
  if (!lower_sorted_) {
    auto& lower = const_cast<std::vector<Bound>&>(lower_);
    std::sort(lower.begin(), lower.end(),
              [](const Bound& a, const Bound& b) {
                return a.literal.Compare(b.literal) < 0;
              });
    const_cast<bool&>(lower_sorted_) = true;
  }
  if (!upper_sorted_) {
    auto& upper = const_cast<std::vector<Bound>&>(upper_);
    std::sort(upper.begin(), upper.end(),
              [](const Bound& a, const Bound& b) {
                return a.literal.Compare(b.literal) < 0;
              });
    const_cast<bool&>(upper_sorted_) = true;
  }

  ++epoch_;
  touched_.clear();

  // Equality: one hash lookup.
  if (auto it = eq_.find(v); it != eq_.end()) {
    for (QueryId q : it->second) BumpMatch(q, &touched_);
  }
  // Inequality: satisfied unless equal.
  for (const auto& [literal, q] : ne_) {
    if (v.Compare(literal) != 0) BumpMatch(q, &touched_);
  }
  // Lower bounds: the prefix with literal < v matches; literal == v matches
  // only non-strict bounds.
  for (const Bound& b : lower_) {
    int c = b.literal.Compare(v);
    if (c > 0) break;
    if (c < 0 || !b.strict) BumpMatch(b.query, &touched_);
  }
  // Upper bounds: the suffix with literal > v matches. Walk backwards.
  for (auto it = upper_.rbegin(); it != upper_.rend(); ++it) {
    int c = it->literal.Compare(v);
    if (c < 0) break;
    if (c > 0 || !it->strict) BumpMatch(it->query, &touched_);
  }
  // Two-sided ranges: interval-tree stab, O(log n + matches).
  if (ranges_.size() > 0) {
    range_scratch_ = QuerySet();
    ranges_.Stab(v, &range_scratch_);
    range_scratch_.ForEach([&](QueryId q) { BumpMatch(q, &touched_); });
  }

  for (QueryId q : touched_) {
    if (dead_.Contains(q)) continue;
    auto it = factor_count_.find(q);
    assert(it != factor_count_.end());
    if (matched_[q] == it->second) out->Add(q);
  }
}

void GroupedFilter::Compile() const {
  CompiledFactors& c = compiled_;
  c = CompiledFactors();
  compiled_revision_ = revision_;

  auto is_dead = [&](QueryId q) { return dead_.Contains(q); };
  bool ok = true;
  std::unordered_map<QueryId, uint32_t> slot_of;
  auto slot_for = [&](QueryId q) -> uint32_t {
    auto [it, fresh] = slot_of.try_emplace(q, c.num_slots);
    if (fresh) {
      auto fc = factor_count_.find(q);
      assert(fc != factor_count_.end());
      if (fc->second > kMaxKernelFactors) ok = false;
      ++c.num_slots;
      c.slot_query.push_back(q);
      c.slot_needed.push_back(static_cast<uint8_t>(fc->second));
    }
    return it->second;
  };

  for (const auto& [lit, qs] : eq_) {
    int kind = LiteralKind(lit);
    if (kind < 0) {
      ok = false;
      break;
    }
    // Past 2^53 the eq_ map's Value hashing goes bucket-dependent across
    // the int/double family split; only the scalar path reproduces it.
    double d = kind == 0 ? static_cast<double>(IntegralOf(lit))
                         : lit.AsDouble();
    if (std::fabs(d) >= kExactDoubleLimit) {
      ok = false;
      break;
    }
    for (QueryId q : qs) {
      if (is_dead(q)) continue;
      uint32_t slot = slot_for(q);
      if (kind == 0) {
        c.eq_i[IntegralOf(lit)].push_back(slot);
      } else {
        c.eq_d[d].push_back(slot);
      }
      c.eq_all_d[d].push_back(slot);
    }
  }

  auto add_bound = [&](const Value& lit, QueryId q, kernels::Cmp op) {
    int kind = LiteralKind(lit);
    if (kind < 0) {
      ok = false;
      return;
    }
    uint32_t slot = slot_for(q);
    if (kind == 0) {
      int64_t i = IntegralOf(lit);
      c.bounds_i.push_back({i, slot, op});
      c.bounds_all_d.push_back({static_cast<double>(i), slot, op});
    } else {
      double d = lit.AsDouble();
      c.bounds_d.push_back({d, slot, op});
      c.bounds_all_d.push_back({d, slot, op});
    }
  };
  for (const auto& [lit, q] : ne_) {
    if (!is_dead(q)) add_bound(lit, q, kernels::Cmp::kNe);
  }
  for (const Bound& b : lower_) {
    if (!is_dead(b.query)) {
      add_bound(b.literal, b.query,
                b.strict ? kernels::Cmp::kGt : kernels::Cmp::kGe);
    }
  }
  for (const Bound& b : upper_) {
    if (!is_dead(b.query)) {
      add_bound(b.literal, b.query,
                b.strict ? kernels::Cmp::kLt : kernels::Cmp::kLe);
    }
  }

  for (const IntervalIndex::Interval& iv : range_list_) {
    if (is_dead(iv.query)) continue;
    int lo_kind = LiteralKind(iv.lo), hi_kind = LiteralKind(iv.hi);
    if (lo_kind < 0 || hi_kind < 0) {
      ok = false;
      break;
    }
    uint32_t slot = slot_for(iv.query);
    if (lo_kind == 0 && hi_kind == 0) {
      int64_t lo = IntegralOf(iv.lo), hi = IntegralOf(iv.hi);
      c.ranges_i.push_back({lo, hi, iv.lo_incl, iv.hi_incl, slot});
      c.ranges_all_d.push_back({static_cast<double>(lo),
                                static_cast<double>(hi), iv.lo_incl,
                                iv.hi_incl, slot});
    } else {
      // A mixed-family range forces the int64-lane kernel through double on
      // BOTH sides, where Value::Compare would have compared the integral
      // side exactly; that only diverges once the integral literal rounds.
      if (lo_kind == 0 &&
          std::fabs(static_cast<double>(IntegralOf(iv.lo))) >=
              kExactDoubleLimit) {
        ok = false;
        break;
      }
      if (hi_kind == 0 &&
          std::fabs(static_cast<double>(IntegralOf(iv.hi))) >=
              kExactDoubleLimit) {
        ok = false;
        break;
      }
      double lo = lo_kind == 0 ? static_cast<double>(IntegralOf(iv.lo))
                               : iv.lo.AsDouble();
      double hi = hi_kind == 0 ? static_cast<double>(IntegralOf(iv.hi))
                               : iv.hi.AsDouble();
      c.ranges_d.push_back({lo, hi, iv.lo_incl, iv.hi_incl, slot});
      c.ranges_all_d.push_back({lo, hi, iv.lo_incl, iv.hi_incl, slot});
    }
  }

  if (c.num_slots > kMaxKernelSlots) ok = false;
  c.valid = ok;
  if (ok) {
    counts_.assign(static_cast<size_t>(c.num_slots) * kChunk, 0);
    slot_epoch_.assign(c.num_slots, 0);
    chunk_epoch_ = 0;
  }
}

void GroupedFilter::MatchBatchKernel(const Column& col, size_t n,
                                     QuerySet* out) const {
  const CompiledFactors& c = compiled_;
  const bool int_lane = col.rep == ColumnRep::kInt64;
  const int64_t* vi = col.i64;
  const double* vd = col.f64;

  for (size_t base = 0; base < n; base += kChunk) {
    const size_t m = std::min(kChunk, n - base);
    ++chunk_epoch_;
    dirty_slots_.clear();
    auto touch = [&](uint32_t slot) -> uint8_t* {
      uint8_t* row = counts_.data() + static_cast<size_t>(slot) * kChunk;
      if (slot_epoch_[slot] != chunk_epoch_) {
        slot_epoch_[slot] = chunk_epoch_;
        std::fill(row, row + m, uint8_t{0});
        dirty_slots_.push_back(slot);
      }
      return row;
    };

    if (int_lane) {
      const int64_t* v = vi + base;
      for (size_t i = 0; i < m; ++i) {
        if (auto it = c.eq_i.find(v[i]); it != c.eq_i.end()) {
          for (uint32_t slot : it->second) ++touch(slot)[i];
        }
      }
      if (!c.eq_d.empty()) {
        for (size_t i = 0; i < m; ++i) {
          if (auto it = c.eq_d.find(static_cast<double>(v[i]));
              it != c.eq_d.end()) {
            for (uint32_t slot : it->second) ++touch(slot)[i];
          }
        }
      }
      for (const auto& b : c.bounds_i) {
        kernels::AccumBoundDyn<int64_t, int64_t>(touch(b.slot), v, m, b.lit,
                                                 b.op);
      }
      for (const auto& b : c.bounds_d) {
        kernels::AccumBoundDyn<int64_t, double>(touch(b.slot), v, m, b.lit,
                                                b.op);
      }
      for (const auto& r : c.ranges_i) {
        kernels::AccumRangeDyn<int64_t, int64_t>(touch(r.slot), v, m, r.lo,
                                                 r.hi, r.lo_incl, r.hi_incl);
      }
      for (const auto& r : c.ranges_d) {
        kernels::AccumRangeDyn<int64_t, double>(
            touch(r.slot), v, m, r.lo, r.hi, r.lo_incl, r.hi_incl);
      }
    } else {
      const double* v = vd + base;
      for (size_t i = 0; i < m; ++i) {
        if (auto it = c.eq_all_d.find(v[i]); it != c.eq_all_d.end()) {
          for (uint32_t slot : it->second) ++touch(slot)[i];
        }
      }
      for (const auto& b : c.bounds_all_d) {
        kernels::AccumBoundDyn<double, double>(touch(b.slot), v, m, b.lit,
                                               b.op);
      }
      for (const auto& r : c.ranges_all_d) {
        kernels::AccumRangeDyn<double, double>(
            touch(r.slot), v, m, r.lo, r.hi, r.lo_incl, r.hi_incl);
      }
    }

    for (uint32_t slot : dirty_slots_) {
      const uint8_t* row = counts_.data() + static_cast<size_t>(slot) * kChunk;
      const uint8_t needed = c.slot_needed[slot];
      const QueryId q = c.slot_query[slot];
      for (size_t i = 0; i < m; ++i) {
        if (row[i] == needed) out[base + i].Add(q);
      }
    }
  }
}

void GroupedFilter::MatchBatch(const Column& col, size_t n,
                               QuerySet* out) const {
  if (compiled_revision_ != revision_) Compile();
  const bool kernel_lane =
      !col.has_nulls() && (col.rep == ColumnRep::kInt64 ||
                           (col.rep == ColumnRep::kDouble &&
                            !kernels::AnyNaN(col.f64, n)));
  if (compiled_.valid && kernel_lane) {
    MatchBatchKernel(col, n, out);
    return;
  }
  for (size_t r = 0; r < n; ++r) Match(col.ValueAt(r), &out[r]);
}

}  // namespace tcq
