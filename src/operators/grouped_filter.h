// GroupedFilter: "an index for single-variable boolean factors over the same
// attribute" (paper §3.1, from CACQ [MSHR02]). When a query enters the
// system it is decomposed into boolean factors; single-variable factors are
// inserted here, keyed by attribute. A probe with a tuple's value returns
// the set of queries whose factors on this attribute are ALL satisfied, in
// time proportional to the answer rather than to the number of queries.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/query_set.h"
#include "operators/interval_index.h"
#include "operators/predicate.h"
#include "tuple/value.h"

namespace tcq {

class GroupedFilter {
 public:
  explicit GroupedFilter(AttrRef attr) : attr_(std::move(attr)) {}

  const AttrRef& attr() const { return attr_; }

  /// Registers one boolean factor `attr op literal` for query `q`. A query
  /// may register several factors (e.g. a range is a kGe + kLe pair); it
  /// matches a value only when every registered factor holds.
  void AddFactor(QueryId q, CmpOp op, Value literal);

  /// Registers a two-sided range factor lo..hi as ONE factor, indexed in a
  /// centered interval tree so a probe costs O(log n + matches) instead of
  /// walking every satisfied bound. Prefer this over an AddFactor pair when
  /// both ends of a range are known together.
  void AddRange(QueryId q, Value lo, bool lo_incl, Value hi, bool hi_incl);

  /// Removes every factor of query `q` (lazy: excluded from matches
  /// immediately, storage reclaimed by Compact()).
  void RemoveQuery(QueryId q);

  /// Rebuilds internal structures, dropping factors of removed queries.
  void Compact();

  /// Adds to `out` every registered query all of whose factors are
  /// satisfied by `v`.
  void Match(const Value& v, QuerySet* out) const;

  /// All queries with at least one factor here (live only).
  const QuerySet& interested() const { return interested_; }

  size_t num_factors() const { return num_factors_; }

 private:
  struct Bound {
    Value literal;
    QueryId query;
    bool strict;  // kGt/kLt vs kGe/kLe
  };

  void BumpMatch(QueryId q, std::vector<QueryId>* touched) const;

  AttrRef attr_;
  // Equality factors: literal -> queries.
  std::unordered_map<Value, std::vector<QueryId>, ValueHash> eq_;
  // Inequality (!=) factors, satisfied unless the value equals the literal.
  std::vector<std::pair<Value, QueryId>> ne_;
  // Lower bounds (v > / >= literal), sorted ascending by literal: a probe
  // value satisfies the prefix of bounds below it.
  std::vector<Bound> lower_;
  bool lower_sorted_ = true;
  // Upper bounds (v < / <= literal), sorted ascending: a probe value
  // satisfies the suffix of bounds above it.
  std::vector<Bound> upper_;
  bool upper_sorted_ = true;
  // Two-sided ranges, stabbed via a centered interval tree.
  IntervalIndex ranges_;

  // Factors required per query; a probe matches a query when its per-probe
  // counter reaches this.
  std::unordered_map<QueryId, uint32_t> factor_count_;
  QuerySet interested_;
  QuerySet dead_;
  size_t num_factors_ = 0;

  // Per-probe scratch (epoch-tagged counters so Match is O(answer)).
  mutable std::vector<uint32_t> probe_epoch_;
  mutable std::vector<uint32_t> matched_;
  mutable uint32_t epoch_ = 0;
  mutable std::vector<QueryId> touched_;
  mutable QuerySet range_scratch_;
};

}  // namespace tcq
