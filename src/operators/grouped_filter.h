// GroupedFilter: "an index for single-variable boolean factors over the same
// attribute" (paper §3.1, from CACQ [MSHR02]). When a query enters the
// system it is decomposed into boolean factors; single-variable factors are
// inserted here, keyed by attribute. A probe with a tuple's value returns
// the set of queries whose factors on this attribute are ALL satisfied, in
// time proportional to the answer rather than to the number of queries.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/query_set.h"
#include "operators/filter_kernels.h"
#include "operators/interval_index.h"
#include "operators/predicate.h"
#include "tuple/column_store.h"
#include "tuple/value.h"

namespace tcq {

class GroupedFilter {
 public:
  explicit GroupedFilter(AttrRef attr) : attr_(std::move(attr)) {}

  const AttrRef& attr() const { return attr_; }

  /// Registers one boolean factor `attr op literal` for query `q`. A query
  /// may register several factors (e.g. a range is a kGe + kLe pair); it
  /// matches a value only when every registered factor holds.
  void AddFactor(QueryId q, CmpOp op, Value literal);

  /// Registers a two-sided range factor lo..hi as ONE factor, indexed in a
  /// centered interval tree so a probe costs O(log n + matches) instead of
  /// walking every satisfied bound. Prefer this over an AddFactor pair when
  /// both ends of a range are known together.
  void AddRange(QueryId q, Value lo, bool lo_incl, Value hi, bool hi_incl);

  /// Removes every factor of query `q` (lazy: excluded from matches
  /// immediately, storage reclaimed by Compact()).
  void RemoveQuery(QueryId q);

  /// Rebuilds internal structures, dropping factors of removed queries.
  void Compact();

  /// Adds to `out` every registered query all of whose factors are
  /// satisfied by `v`.
  void Match(const Value& v, QuerySet* out) const;

  /// Batch probe: for every row r of the column, adds to out[r] exactly the
  /// queries Match(col.ValueAt(r)) would add. Null-free int64/double lanes
  /// with numeric literals sweep compiled factor kernels
  /// (operators/filter_kernels.h) over the contiguous lane — the DESIGN.md
  /// §11 vectorized path; anything else degrades to per-row Match. `out`
  /// must point at `n` QuerySets and n must equal the column's row count.
  void MatchBatch(const Column& col, size_t n, QuerySet* out) const;

  /// All queries with at least one factor here (live only).
  const QuerySet& interested() const { return interested_; }

  size_t num_factors() const { return num_factors_; }

 private:
  struct Bound {
    Value literal;
    QueryId query;
    bool strict;  // kGt/kLt vs kGe/kLe
  };

  /// Factors recompiled into kernel-ready SoA form (literals unboxed, one
  /// slot per live query). Rebuilt lazily whenever revision_ moves.
  /// `valid` is false when any literal falls outside the exactness contract
  /// (non-numeric, NaN, or magnitudes where the Value-keyed eq_ hash and
  /// double rounding diverge from exact integer comparison) — MatchBatch
  /// then takes the per-row scalar path.
  struct CompiledFactors {
    bool valid = false;
    uint32_t num_slots = 0;
    std::vector<QueryId> slot_query;
    std::vector<uint8_t> slot_needed;
    struct IBound {
      int64_t lit;
      uint32_t slot;
      kernels::Cmp op;
    };
    struct DBound {
      double lit;
      uint32_t slot;
      kernels::Cmp op;
    };
    std::vector<IBound> bounds_i;     ///< integral literals (int64 lanes)
    std::vector<DBound> bounds_d;     ///< double literals (int64 lanes)
    std::vector<DBound> bounds_all_d; ///< every literal as double (f64 lanes)
    struct IRange {
      int64_t lo, hi;
      bool lo_incl, hi_incl;
      uint32_t slot;
    };
    struct DRange {
      double lo, hi;
      bool lo_incl, hi_incl;
      uint32_t slot;
    };
    std::vector<IRange> ranges_i;
    std::vector<DRange> ranges_d;
    std::vector<DRange> ranges_all_d;
    std::unordered_map<int64_t, std::vector<uint32_t>> eq_i;
    std::unordered_map<double, std::vector<uint32_t>> eq_d;
    std::unordered_map<double, std::vector<uint32_t>> eq_all_d;
  };

  void BumpMatch(QueryId q, std::vector<QueryId>* touched) const;
  void Compile() const;
  void MatchBatchKernel(const Column& col, size_t n, QuerySet* out) const;

  AttrRef attr_;
  // Equality factors: literal -> queries.
  std::unordered_map<Value, std::vector<QueryId>, ValueHash> eq_;
  // Inequality (!=) factors, satisfied unless the value equals the literal.
  std::vector<std::pair<Value, QueryId>> ne_;
  // Lower bounds (v > / >= literal), sorted ascending by literal: a probe
  // value satisfies the prefix of bounds below it.
  std::vector<Bound> lower_;
  bool lower_sorted_ = true;
  // Upper bounds (v < / <= literal), sorted ascending: a probe value
  // satisfies the suffix of bounds above it.
  std::vector<Bound> upper_;
  bool upper_sorted_ = true;
  // Two-sided ranges, stabbed via a centered interval tree. range_list_
  // mirrors the registered intervals because the tree has no enumeration
  // API and the batch compiler needs one.
  IntervalIndex ranges_;
  std::vector<IntervalIndex::Interval> range_list_;

  // Factors required per query; a probe matches a query when its per-probe
  // counter reaches this.
  std::unordered_map<QueryId, uint32_t> factor_count_;
  QuerySet interested_;
  QuerySet dead_;
  size_t num_factors_ = 0;

  // Bumped on any factor mutation; the compiled form notices and rebuilds.
  uint64_t revision_ = 1;

  // Per-probe scratch (epoch-tagged counters so Match is O(answer)).
  mutable std::vector<uint32_t> probe_epoch_;
  mutable std::vector<uint32_t> matched_;
  mutable uint32_t epoch_ = 0;
  mutable std::vector<QueryId> touched_;
  mutable QuerySet range_scratch_;

  // Batch-probe state: compiled factors plus the chunked count matrix
  // (slot-major, kChunk rows per sweep) with epoch-tagged lazy zeroing so
  // untouched slots cost nothing.
  mutable CompiledFactors compiled_;
  mutable uint64_t compiled_revision_ = 0;
  mutable std::vector<uint8_t> counts_;
  mutable std::vector<uint32_t> slot_epoch_;
  mutable uint32_t chunk_epoch_ = 0;
  mutable std::vector<uint32_t> dirty_slots_;
};

}  // namespace tcq
