#include "operators/interval_index.h"

#include <algorithm>

namespace tcq {

void IntervalIndex::Add(Interval interval) {
  dead_.Remove(interval.query);
  intervals_.push_back(std::move(interval));
  dirty_ = true;
}

void IntervalIndex::Remove(QueryId query) { dead_.Add(query); }

void IntervalIndex::Compact() {
  std::erase_if(intervals_,
                [&](const Interval& iv) { return dead_.Contains(iv.query); });
  dead_ = QuerySet();
  dirty_ = true;
}

bool IntervalIndex::Contains(const Interval& iv, const Value& v) const {
  int cl = v.Compare(iv.lo);
  if (cl < 0 || (cl == 0 && !iv.lo_incl)) return false;
  int ch = v.Compare(iv.hi);
  if (ch > 0 || (ch == 0 && !iv.hi_incl)) return false;
  return true;
}

std::unique_ptr<IntervalIndex::Node> IntervalIndex::Build(
    std::vector<size_t> ids) const {
  if (ids.empty()) return nullptr;
  // Center: median of interval low endpoints.
  std::vector<size_t> by_lo = ids;
  std::sort(by_lo.begin(), by_lo.end(), [&](size_t a, size_t b) {
    return intervals_[a].lo.Compare(intervals_[b].lo) < 0;
  });
  Value center = intervals_[by_lo[by_lo.size() / 2]].lo;

  auto node = std::make_unique<Node>();
  node->center = center;
  std::vector<size_t> lefts, rights;
  for (size_t id : ids) {
    const Interval& iv = intervals_[id];
    if (iv.hi.Compare(center) < 0) {
      lefts.push_back(id);
    } else if (iv.lo.Compare(center) > 0) {
      rights.push_back(id);
    } else {
      node->by_lo_asc.push_back(id);
    }
  }
  node->by_hi_desc = node->by_lo_asc;
  std::sort(node->by_lo_asc.begin(), node->by_lo_asc.end(),
            [&](size_t a, size_t b) {
              return intervals_[a].lo.Compare(intervals_[b].lo) < 0;
            });
  std::sort(node->by_hi_desc.begin(), node->by_hi_desc.end(),
            [&](size_t a, size_t b) {
              return intervals_[a].hi.Compare(intervals_[b].hi) > 0;
            });
  // Guard against degenerate recursion when every interval straddles the
  // center (then lefts/rights strictly shrink the problem).
  node->left = Build(std::move(lefts));
  node->right = Build(std::move(rights));
  return node;
}

void IntervalIndex::RebuildIfDirty() const {
  if (!dirty_) return;
  std::vector<size_t> ids(intervals_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  root_ = Build(std::move(ids));
  dirty_ = false;
}

void IntervalIndex::StabNode(const Node* node, const Value& v,
                             QuerySet* out) const {
  if (node == nullptr) return;
  int c = v.Compare(node->center);
  if (c <= 0) {
    // Candidates at this node are those whose lo end is at or below v.
    for (size_t id : node->by_lo_asc) {
      const Interval& iv = intervals_[id];
      if (iv.lo.Compare(v) > 0) break;
      if (!dead_.Contains(iv.query) && Contains(iv, v)) out->Add(iv.query);
    }
    StabNode(node->left.get(), v, out);
  }
  if (c >= 0) {
    for (size_t id : node->by_hi_desc) {
      const Interval& iv = intervals_[id];
      if (iv.hi.Compare(v) < 0) break;
      // At v == center both walks see straddling intervals; Add() is
      // idempotent so duplicates are harmless.
      if (!dead_.Contains(iv.query) && Contains(iv, v)) out->Add(iv.query);
    }
    StabNode(node->right.get(), v, out);
  }
}

void IntervalIndex::Stab(const Value& v, QuerySet* out) const {
  RebuildIfDirty();
  StabNode(root_.get(), v, out);
}

}  // namespace tcq
