// IntervalIndex: a centered interval tree over query range predicates.
// The grouped filter's sorted-bound lists answer a stab in time proportional
// to the number of SATISFIED bounds (about half of N for a random probe);
// pairing a query's two bounds into an interval and stabbing this tree makes
// shared range selections O(log n + answer) — the scaling CACQ's grouped
// filters aim for.

#pragma once

#include <memory>
#include <vector>

#include "common/query_set.h"
#include "tuple/value.h"

namespace tcq {

class IntervalIndex {
 public:
  struct Interval {
    Value lo;
    bool lo_incl = true;
    Value hi;
    bool hi_incl = true;
    QueryId query = 0;
  };

  /// Registers an interval (marks the tree dirty; rebuilt on next Stab).
  void Add(Interval interval);

  /// Lazily removes all intervals of a query.
  void Remove(QueryId query);

  /// Adds to `out` every live interval containing `v`.
  void Stab(const Value& v, QuerySet* out) const;

  /// Physically erases removed queries' intervals.
  void Compact();

  size_t size() const { return intervals_.size(); }
  bool Contains(const Interval& iv, const Value& v) const;

 private:
  struct Node {
    Value center;
    /// Indices into intervals_ of those spanning the center, sorted by
    /// ascending lo / descending hi respectively.
    std::vector<size_t> by_lo_asc;
    std::vector<size_t> by_hi_desc;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  std::unique_ptr<Node> Build(std::vector<size_t> ids) const;
  void StabNode(const Node* node, const Value& v, QuerySet* out) const;
  void RebuildIfDirty() const;

  std::vector<Interval> intervals_;
  QuerySet dead_;
  mutable std::unique_ptr<Node> root_;
  mutable bool dirty_ = false;
};

}  // namespace tcq
