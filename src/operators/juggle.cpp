#include "operators/juggle.h"

#include <algorithm>

namespace tcq {

void Juggle::Push(const Tuple& tuple) {
  heap_.push(Item{priority_(tuple), arrivals_++, tuple});
  if (heap_.size() > opts_.capacity) {
    // Evict the lowest-priority buffered tuples to the spool. A heap only
    // exposes its max, so rebuild once: pull everything, keep the top
    // `capacity`, spool the rest. Amortized by evicting a 25% batch.
    size_t keep = opts_.capacity - opts_.capacity / 4;
    std::vector<Item> items;
    items.reserve(heap_.size());
    while (!heap_.empty()) {
      items.push_back(heap_.top());
      heap_.pop();
    }
    // items are in descending priority order (heap pops max first).
    for (size_t i = 0; i < items.size(); ++i) {
      if (i < keep) {
        heap_.push(std::move(items[i]));
      } else {
        spool_.push_back(std::move(items[i]));
      }
    }
  }
}

Tuple Juggle::Pop() {
  if (!heap_.empty()) {
    Tuple t = heap_.top().tuple;
    heap_.pop();
    return t;
  }
  // Serve the best spooled tuple.
  auto best = std::max_element(spool_.begin(), spool_.end());
  Tuple t = best->tuple;
  spool_.erase(best);
  return t;
}

}  // namespace tcq
