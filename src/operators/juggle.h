// Juggle: online reordering that prioritizes records by content
// ([RRH99], paper §2.1). Sits between the engine and a consumer that
// processes results slower than they are produced, reordering the buffered
// backlog so the most interesting tuples are delivered first.

#pragma once

#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "tuple/tuple.h"

namespace tcq {

class Juggle {
 public:
  /// Larger priority = delivered sooner.
  using PriorityFn = std::function<double(const Tuple&)>;

  struct Options {
    /// Maximum buffered tuples; pushes beyond this evict the LOWEST
    /// priority buffered tuple to side storage (spooled vector), mirroring
    /// the juggle's disk spool.
    size_t capacity = 1024;
  };

  Juggle(PriorityFn priority, Options opts)
      : priority_(std::move(priority)), opts_(opts) {}

  /// Buffers a tuple for reordered delivery.
  void Push(const Tuple& tuple);

  /// True if a tuple is available (buffered or spooled).
  bool HasNext() const { return !heap_.empty() || !spool_.empty(); }

  /// Delivers the highest-priority available tuple. Buffered tuples are
  /// served before spooled ones (the spool models disk: touched only when
  /// the hot buffer drains).
  Tuple Pop();

  size_t buffered() const { return heap_.size(); }
  size_t spooled() const { return spool_.size(); }

 private:
  struct Item {
    double priority;
    uint64_t tie;  // arrival order, for deterministic FIFO among equals
    Tuple tuple;
    bool operator<(const Item& other) const {
      if (priority != other.priority) return priority < other.priority;
      return tie > other.tie;
    }
  };

  PriorityFn priority_;
  Options opts_;
  std::priority_queue<Item> heap_;
  std::vector<Item> spool_;
  uint64_t arrivals_ = 0;
};

}  // namespace tcq
