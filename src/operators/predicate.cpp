#include "operators/predicate.h"

#include <cassert>

namespace tcq {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(const Value& left, CmpOp op, const Value& right) {
  // SQL-style: comparisons against null are false.
  if (left.is_null() || right.is_null()) return false;
  int c = left.Compare(right);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

const Value* ResolveAttr(const Tuple& tuple, const AttrRef& attr) {
  auto idx = tuple.schema()->IndexOf(attr.name, attr.source);
  if (!idx.has_value()) return nullptr;
  return &tuple.at(*idx);
}

bool CompareConst::Eval(const Tuple& tuple) const {
  const Value* v = ResolveAttr(tuple, attr_);
  assert(v != nullptr && "attribute not present; check CanEval first");
  return EvalCmp(*v, op_, literal_);
}

std::string CompareConst::ToString() const {
  return attr_.ToString() + " " + CmpOpName(op_) + " " + literal_.ToString();
}

bool RangePredicate::Eval(const Tuple& tuple) const {
  const Value* v = ResolveAttr(tuple, attr_);
  assert(v != nullptr && "attribute not present; check CanEval first");
  if (v->is_null()) return false;
  int cl = v->Compare(lo_);
  if (cl < 0 || (cl == 0 && !lo_inclusive_)) return false;
  int ch = v->Compare(hi_);
  if (ch > 0 || (ch == 0 && !hi_inclusive_)) return false;
  return true;
}

std::string RangePredicate::ToString() const {
  return attr_.ToString() + " in " + (lo_inclusive_ ? "[" : "(") +
         lo_.ToString() + ", " + hi_.ToString() + (hi_inclusive_ ? "]" : ")");
}

bool CompareAttrs::Eval(const Tuple& tuple) const {
  const Value* l = ResolveAttr(tuple, left_);
  const Value* r = ResolveAttr(tuple, right_);
  assert(l != nullptr && r != nullptr &&
         "attribute not present; check CanEval first");
  return EvalCmp(*l, op_, *r);
}

std::string CompareAttrs::ToString() const {
  return left_.ToString() + " " + CmpOpName(op_) + " " + right_.ToString();
}

AndPredicate::AndPredicate(std::vector<PredicateRef> children)
    : children_(std::move(children)) {
  for (const auto& c : children_) sources_ |= c->sources();
}

bool AndPredicate::Eval(const Tuple& tuple) const {
  for (const auto& c : children_) {
    if (!c->Eval(tuple)) return false;
  }
  return true;
}

std::string AndPredicate::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i) out += " AND ";
    out += children_[i]->ToString();
  }
  return out + ")";
}

OrPredicate::OrPredicate(std::vector<PredicateRef> children)
    : children_(std::move(children)) {
  for (const auto& c : children_) sources_ |= c->sources();
}

bool OrPredicate::Eval(const Tuple& tuple) const {
  for (const auto& c : children_) {
    if (c->Eval(tuple)) return true;
  }
  return false;
}

std::string OrPredicate::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i) out += " OR ";
    out += children_[i]->ToString();
  }
  return out + ")";
}

PredicateRef MakeCompareConst(AttrRef attr, CmpOp op, Value literal) {
  return std::make_shared<CompareConst>(std::move(attr), op,
                                        std::move(literal));
}

PredicateRef MakeRange(AttrRef attr, Value lo, Value hi, bool lo_inclusive,
                       bool hi_inclusive) {
  return std::make_shared<RangePredicate>(std::move(attr), std::move(lo),
                                          lo_inclusive, std::move(hi),
                                          hi_inclusive);
}

PredicateRef MakeCompareAttrs(AttrRef left, CmpOp op, AttrRef right) {
  return std::make_shared<CompareAttrs>(std::move(left), op, std::move(right));
}

PredicateRef MakeAnd(std::vector<PredicateRef> children) {
  return std::make_shared<AndPredicate>(std::move(children));
}

PredicateRef MakeOr(std::vector<PredicateRef> children) {
  return std::make_shared<OrPredicate>(std::move(children));
}

PredicateRef MakeNot(PredicateRef child) {
  return std::make_shared<NotPredicate>(std::move(child));
}

PredicateRef MakeTrue() { return std::make_shared<TruePredicate>(); }

}  // namespace tcq
