// Predicates: boolean factors over tuple attributes. Queries decompose into
// single-variable factors (routed to grouped filters / selection modules) and
// multi-variable factors (join predicates evaluated inside SteM probes) —
// exactly the decomposition CACQ performs (paper §3.1).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/tuple.h"

namespace tcq {

/// Comparison operators for boolean factors.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// Evaluates `left op right` on already-extracted values.
bool EvalCmp(const Value& left, CmpOp op, const Value& right);

/// Reference to an attribute of a base stream by (source, name). Resolution
/// against a concrete tuple schema happens at eval time because eddy
/// intermediates appear in "a multitude of formats" (paper §4.2.2).
struct AttrRef {
  SourceId source = 0;
  std::string name;

  std::string ToString() const {
    return "s" + std::to_string(source) + "." + name;
  }
  bool operator==(const AttrRef&) const = default;
};

/// Abstract boolean factor.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluates on a tuple; requires CanEval(tuple).
  virtual bool Eval(const Tuple& tuple) const = 0;

  /// All base sources whose attributes the predicate references.
  virtual SourceSet sources() const = 0;

  /// True when every referenced source is present in the tuple's span.
  bool CanEval(const Tuple& tuple) const {
    return (sources() & ~tuple.sources()) == 0;
  }

  virtual std::string ToString() const = 0;
};

using PredicateRef = std::shared_ptr<const Predicate>;

/// attr CMP literal — a single-variable boolean factor.
class CompareConst : public Predicate {
 public:
  CompareConst(AttrRef attr, CmpOp op, Value literal)
      : attr_(std::move(attr)), op_(op), literal_(std::move(literal)) {}

  bool Eval(const Tuple& tuple) const override;
  SourceSet sources() const override { return SourceBit(attr_.source); }
  std::string ToString() const override;

  const AttrRef& attr() const { return attr_; }
  CmpOp op() const { return op_; }
  const Value& literal() const { return literal_; }

 private:
  AttrRef attr_;
  CmpOp op_;
  Value literal_;
};

/// lo <= attr <= hi (inclusive ends toggleable) — the factor class grouped
/// filters index.
class RangePredicate : public Predicate {
 public:
  RangePredicate(AttrRef attr, Value lo, bool lo_inclusive, Value hi,
                 bool hi_inclusive)
      : attr_(std::move(attr)),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        lo_inclusive_(lo_inclusive),
        hi_inclusive_(hi_inclusive) {}

  bool Eval(const Tuple& tuple) const override;
  SourceSet sources() const override { return SourceBit(attr_.source); }
  std::string ToString() const override;

  const AttrRef& attr() const { return attr_; }
  const Value& lo() const { return lo_; }
  const Value& hi() const { return hi_; }
  bool lo_inclusive() const { return lo_inclusive_; }
  bool hi_inclusive() const { return hi_inclusive_; }

 private:
  AttrRef attr_;
  Value lo_, hi_;
  bool lo_inclusive_, hi_inclusive_;
};

/// left_attr CMP right_attr — a multi-variable factor (join or intra-tuple).
class CompareAttrs : public Predicate {
 public:
  CompareAttrs(AttrRef left, CmpOp op, AttrRef right)
      : left_(std::move(left)), op_(op), right_(std::move(right)) {}

  bool Eval(const Tuple& tuple) const override;
  SourceSet sources() const override {
    return SourceBit(left_.source) | SourceBit(right_.source);
  }
  std::string ToString() const override;

  const AttrRef& left() const { return left_; }
  CmpOp op() const { return op_; }
  const AttrRef& right() const { return right_; }

 private:
  AttrRef left_;
  CmpOp op_;
  AttrRef right_;
};

/// Conjunction of factors.
class AndPredicate : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicateRef> children);

  bool Eval(const Tuple& tuple) const override;
  SourceSet sources() const override { return sources_; }
  std::string ToString() const override;

  const std::vector<PredicateRef>& children() const { return children_; }

 private:
  std::vector<PredicateRef> children_;
  SourceSet sources_ = 0;
};

/// Disjunction of factors.
class OrPredicate : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicateRef> children);

  bool Eval(const Tuple& tuple) const override;
  SourceSet sources() const override { return sources_; }
  std::string ToString() const override;

  const std::vector<PredicateRef>& children() const { return children_; }

 private:
  std::vector<PredicateRef> children_;
  SourceSet sources_ = 0;
};

/// Negation.
class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicateRef child) : child_(std::move(child)) {}

  bool Eval(const Tuple& tuple) const override { return !child_->Eval(tuple); }
  SourceSet sources() const override { return child_->sources(); }
  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }

  const PredicateRef& child() const { return child_; }

 private:
  PredicateRef child_;
};

/// Always-true predicate (useful as a neutral element).
class TruePredicate : public Predicate {
 public:
  bool Eval(const Tuple&) const override { return true; }
  SourceSet sources() const override { return 0; }
  std::string ToString() const override { return "TRUE"; }
};

// Convenience factories.
PredicateRef MakeCompareConst(AttrRef attr, CmpOp op, Value literal);
PredicateRef MakeRange(AttrRef attr, Value lo, Value hi,
                       bool lo_inclusive = true, bool hi_inclusive = true);
PredicateRef MakeCompareAttrs(AttrRef left, CmpOp op, AttrRef right);
PredicateRef MakeAnd(std::vector<PredicateRef> children);
PredicateRef MakeOr(std::vector<PredicateRef> children);
PredicateRef MakeNot(PredicateRef child);
PredicateRef MakeTrue();

/// Looks up attr in the tuple's schema and returns its value, or null Value
/// if absent. Resolution is by (source, name) so intermediates qualify.
const Value* ResolveAttr(const Tuple& tuple, const AttrRef& attr);

}  // namespace tcq
