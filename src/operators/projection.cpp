#include "operators/projection.h"

namespace tcq {

Result<SchemaRef> Projection::OutputSchema(const SchemaRef& input) const {
  std::vector<Field> fields;
  fields.reserve(attrs_.size());
  for (const AttrRef& a : attrs_) {
    auto idx = input->IndexOf(a.name, a.source);
    if (!idx.has_value()) {
      return Status::NotFound("projection attribute " + a.ToString() +
                              " not in schema " + input->ToString());
    }
    fields.push_back(input->field(*idx));
  }
  return Schema::Make(std::move(fields));
}

Result<Tuple> Projection::Apply(const Tuple& tuple) const {
  const Schema* key = tuple.schema().get();
  SchemaRef out_schema;
  for (const auto& [cached_key, cached] : schema_cache_) {
    if (cached_key == key) {
      out_schema = cached;
      break;
    }
  }
  if (!out_schema) {
    TCQ_ASSIGN_OR_RETURN(out_schema, OutputSchema(tuple.schema()));
    schema_cache_.emplace_back(key, out_schema);
  }
  std::vector<Value> values;
  values.reserve(attrs_.size());
  for (const AttrRef& a : attrs_) {
    const Value* v = ResolveAttr(tuple, a);
    if (v == nullptr) {
      return Status::NotFound("projection attribute " + a.ToString() +
                              " missing at runtime");
    }
    values.push_back(*v);
  }
  return Tuple::Make(std::move(out_schema), std::move(values),
                     tuple.timestamp());
}

}  // namespace tcq
