// Projection: maps tuples onto a subset (or reordering) of attributes.
// Applied at the output boundary of a query rather than routed inside the
// eddy, since projecting early would destroy attributes later modules need.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "operators/predicate.h"
#include "tuple/tuple.h"

namespace tcq {

class Projection {
 public:
  /// Projects onto the given attributes, in order.
  explicit Projection(std::vector<AttrRef> attrs) : attrs_(std::move(attrs)) {}

  /// Builds the output schema for a given input schema. Fails if an
  /// attribute is missing.
  Result<SchemaRef> OutputSchema(const SchemaRef& input) const;

  /// Projects one tuple. The output schema is resolved (and cached) per
  /// distinct input schema, since eddy intermediates vary in format.
  Result<Tuple> Apply(const Tuple& tuple) const;

  const std::vector<AttrRef>& attrs() const { return attrs_; }

 private:
  std::vector<AttrRef> attrs_;
  // Cache of input-schema pointer -> output schema (single-threaded use).
  mutable std::vector<std::pair<const Schema*, SchemaRef>> schema_cache_;
};

}  // namespace tcq
