#include "operators/selection.h"

namespace tcq {

namespace {
// Opaque unit of synthetic work; volatile sink defeats the optimizer.
void BurnCpu(uint32_t loops) {
  volatile uint64_t sink = 0;
  for (uint32_t i = 0; i < loops; ++i) sink = sink + i * 2654435761u;
  (void)sink;
}
}  // namespace

EddyModule::Action Selection::Process(const Envelope& env,
                                      std::vector<Envelope>*) {
  if (cost_loops_ > 0) BurnCpu(cost_loops_);
  return predicate_->Eval(env.tuple) ? Action::kPass : Action::kDrop;
}

}  // namespace tcq
