// Selection: a pipelined, non-blocking filter module routable by an eddy.
// Optionally burns synthetic CPU per tuple so benchmarks can model expensive
// predicates (remote lookups, UDFs) with controllable cost.

#pragma once

#include <memory>

#include "eddy/module.h"
#include "operators/predicate.h"

namespace tcq {

class Selection : public EddyModule {
 public:
  Selection(std::string name, PredicateRef predicate, uint32_t cost_loops = 0)
      : EddyModule(std::move(name)),
        predicate_(std::move(predicate)),
        cost_loops_(cost_loops) {}

  bool AppliesTo(SourceSet sources) const override {
    // Evaluable once every referenced source is present in the tuple.
    return (predicate_->sources() & ~sources) == 0;
  }

  Action Process(const Envelope& env, std::vector<Envelope>* out) override;

  SourceSet contributes() const override { return predicate_->sources(); }

  const PredicateRef& predicate() const { return predicate_; }

  /// Synthetic per-tuple cost; the eddy's columnar prefilter only absorbs
  /// zero-cost selections (a nonzero cost models work that must still burn).
  uint32_t cost_loops() const { return cost_loops_; }

  /// Replaces the predicate, modelling content drift experiments where a
  /// filter's selectivity changes mid-stream.
  void ReplacePredicate(PredicateRef predicate) {
    predicate_ = std::move(predicate);
  }

 private:
  PredicateRef predicate_;
  uint32_t cost_loops_;
};

}  // namespace tcq
