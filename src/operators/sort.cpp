#include "operators/sort.h"

#include <algorithm>
#include <cassert>

namespace tcq {

void SortTuplesBy(std::vector<Tuple>* tuples, const AttrRef& attr,
                  bool ascending) {
  std::stable_sort(tuples->begin(), tuples->end(),
                   [&](const Tuple& a, const Tuple& b) {
                     const Value* va = ResolveAttr(a, attr);
                     const Value* vb = ResolveAttr(b, attr);
                     assert(va != nullptr && vb != nullptr);
                     int c = va->Compare(*vb);
                     return ascending ? c < 0 : c > 0;
                   });
}

void TopK::Add(const Tuple& tuple) {
  const Value* v = ResolveAttr(tuple, attr_);
  assert(v != nullptr && "top-k attribute missing");
  uint64_t seq = consumed_++;
  if (heap_.size() < k_) {
    heap_.push(Item{*v, seq, tuple});
    return;
  }
  const Item& worst = heap_.top();
  int c = v->Compare(worst.key);
  bool better = largest_ ? c > 0 : c < 0;
  if (better) {
    heap_.pop();
    heap_.push(Item{*v, seq, tuple});
  }
}

std::vector<Tuple> TopK::Snapshot() const {
  // Drain a copy of the heap: pops come out worst-first.
  auto copy = heap_;
  std::vector<Tuple> out;
  out.reserve(copy.size());
  while (!copy.empty()) {
    out.push_back(copy.top().tuple);
    copy.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace tcq
