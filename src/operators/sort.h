// Sort (listed among the Telegraph query modules, Fig. 1). Over infinite
// streams a blocking full sort is impossible, so two non-blocking forms are
// provided: windowed sort (sort each window's contents on emission) and a
// streaming top-K that maintains the K best tuples seen so far — the
// CONTROL-style "interesting results first" companion to Juggle.

#pragma once

#include <queue>
#include <string>
#include <vector>

#include "operators/predicate.h"
#include "tuple/tuple.h"

namespace tcq {

/// Stable in-place sort by an attribute. Null values order first (ascending)
/// per the Value comparison rules.
void SortTuplesBy(std::vector<Tuple>* tuples, const AttrRef& attr,
                  bool ascending = true);

/// Streaming top-K by attribute: feeds arbitrarily many tuples, retains the
/// K largest (or smallest), and snapshots them in order on demand.
class TopK {
 public:
  TopK(size_t k, AttrRef attr, bool largest = true)
      : k_(k), attr_(std::move(attr)), largest_(largest) {}

  void Add(const Tuple& tuple);

  /// Current top-K, best first.
  std::vector<Tuple> Snapshot() const;

  size_t size() const { return heap_.size(); }
  uint64_t consumed() const { return consumed_; }

 private:
  struct Item {
    Value key;
    uint64_t seq;  // tie-break: earlier arrival wins
    Tuple tuple;
  };
  // Comparator orders the heap so that top() is the WORST retained item,
  // ready for eviction.
  struct WorstFirst {
    bool largest;
    bool operator()(const Item& a, const Item& b) const {
      int c = a.key.Compare(b.key);
      if (c != 0) return largest ? c > 0 : c < 0;
      return a.seq < b.seq;
    }
  };

  size_t k_;
  AttrRef attr_;
  bool largest_;
  std::priority_queue<Item, std::vector<Item>, WorstFirst> heap_{
      WorstFirst{largest_}};
  uint64_t consumed_ = 0;
};

}  // namespace tcq
