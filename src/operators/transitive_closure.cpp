#include "operators/transitive_closure.h"

#include <cassert>

namespace tcq {

bool TransitiveClosure::Insert(int64_t from, int64_t to) {
  auto [it, fresh] = forward_[from].insert(to);
  if (!fresh) return false;
  backward_[to].insert(from);
  ++pairs_;
  return true;
}

std::vector<std::pair<int64_t, int64_t>> TransitiveClosure::AddEdge(
    int64_t from, int64_t to) {
  ++edges_;
  std::vector<std::pair<int64_t, int64_t>> fresh;
  if (Reaches(from, to)) return fresh;

  // Delta: ({x reaching from} ∪ {from}) × ({y reachable from to} ∪ {to}).
  std::vector<int64_t> lefts{from};
  if (auto it = backward_.find(from); it != backward_.end()) {
    lefts.insert(lefts.end(), it->second.begin(), it->second.end());
  }
  std::vector<int64_t> rights{to};
  if (auto it = forward_.find(to); it != forward_.end()) {
    rights.insert(rights.end(), it->second.begin(), it->second.end());
  }
  for (int64_t x : lefts) {
    for (int64_t y : rights) {
      if (x == y) continue;  // closure of reachability, irreflexive
      if (Insert(x, y)) fresh.emplace_back(x, y);
    }
  }
  return fresh;
}

bool TransitiveClosure::Reaches(int64_t from, int64_t to) const {
  auto it = forward_.find(from);
  return it != forward_.end() && it->second.contains(to);
}

TransitiveClosureModule::TransitiveClosureModule(std::string name,
                                                 AttrRef from_attr,
                                                 AttrRef to_attr,
                                                 SchemaRef out_schema)
    : EddyModule(std::move(name)),
      from_attr_(std::move(from_attr)),
      to_attr_(std::move(to_attr)),
      out_schema_(std::move(out_schema)) {
  assert(out_schema_->num_fields() == 2 && "closure schema is (from, to)");
  required_ = SourceBit(from_attr_.source) | SourceBit(to_attr_.source);
}

EddyModule::Action TransitiveClosureModule::Process(
    const Envelope& env, std::vector<Envelope>* out) {
  const Value* from = ResolveAttr(env.tuple, from_attr_);
  const Value* to = ResolveAttr(env.tuple, to_attr_);
  assert(from != nullptr && to != nullptr && "edge attributes missing");
  auto fresh = closure_.AddEdge(from->AsInt64(), to->AsInt64());
  if (fresh.empty()) return Action::kDrop;
  out->reserve(fresh.size());
  for (auto [x, y] : fresh) {
    out->push_back(Envelope{
        Tuple::Make(out_schema_, {Value::Int64(x), Value::Int64(y)},
                    env.tuple.timestamp()),
        0, env.seq_max});
  }
  return Action::kExpand;
}

}  // namespace tcq
