// TransitiveClosure (listed among the Telegraph query modules, Fig. 1):
// incremental reachability over a stream of edges. Each arriving edge
// (a, b) derives the new closure pairs it enables — the semi-naive delta
// {x : x→*a} × {y : b→*y} — so downstream modules see reachability facts as
// soon as they become true, never recomputed from scratch.

#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "eddy/module.h"
#include "operators/predicate.h"
#include "tuple/tuple.h"

namespace tcq {

/// Incremental transitive-closure state over int64 node ids.
class TransitiveClosure {
 public:
  /// Inserts edge (from, to); returns the closure pairs that became newly
  /// reachable (including (from, to) itself if new). Self-loops derive
  /// nothing new beyond themselves.
  std::vector<std::pair<int64_t, int64_t>> AddEdge(int64_t from, int64_t to);

  bool Reaches(int64_t from, int64_t to) const;

  size_t closure_size() const { return pairs_; }
  uint64_t edges_added() const { return edges_; }

 private:
  // forward_[a] = nodes reachable from a; backward_[b] = nodes reaching b.
  std::unordered_map<int64_t, std::unordered_set<int64_t>> forward_;
  std::unordered_map<int64_t, std::unordered_set<int64_t>> backward_;
  size_t pairs_ = 0;
  uint64_t edges_ = 0;

  bool Insert(int64_t from, int64_t to);
};

/// Eddy module form: consumes edge tuples and expands each into the tuples
/// of the newly derived closure pairs (same schema, with the module's
/// source id). A pass-through for already-known pairs would re-derive
/// results, so known pairs are dropped.
class TransitiveClosureModule : public EddyModule {
 public:
  /// `from_attr`/`to_attr` name the edge endpoints in the input schema; the
  /// emitted tuples use `out_schema` (two int64 fields plus timestamp).
  TransitiveClosureModule(std::string name, AttrRef from_attr,
                          AttrRef to_attr, SchemaRef out_schema);

  bool AppliesTo(SourceSet sources) const override {
    return (required_ & ~sources) == 0;
  }

  Action Process(const Envelope& env, std::vector<Envelope>* out) override;

  SourceSet contributes() const override { return required_; }

  const TransitiveClosure& closure() const { return closure_; }

 private:
  AttrRef from_attr_;
  AttrRef to_attr_;
  SchemaRef out_schema_;
  SourceSet required_;
  TransitiveClosure closure_;
};

}  // namespace tcq
