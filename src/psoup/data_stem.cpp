#include "psoup/data_stem.h"

namespace tcq {

void DataSteM::Insert(const Tuple& tuple) {
  ++inserts_;
  history_.Append(tuple);
}

void DataSteM::AdvanceTime(Timestamp now) {
  if (retention_ > 0) history_.PruneBefore(now - retention_);
}

}  // namespace tcq
