#include "psoup/data_stem.h"

namespace tcq {

void DataSteM::Insert(const Tuple& tuple) {
  ++inserts_;
  history_.Append(tuple);
}

void DataSteM::AdvanceTime(Timestamp now) {
  if (retention_ > 0) history_.PruneBefore(now - retention_);
}

void DataSteM::ExportTo(CheckpointWriter* w) const {
  w->PutU32(source_);
  w->PutTimestamp(retention_);
  w->PutU64(inserts_);
  std::vector<Tuple> tuples;
  history_.Range(kMinTimestamp, kMaxTimestamp, &tuples);
  w->PutU64(tuples.size());
  for (const Tuple& t : tuples) w->PutTuple(t);
}

Status DataSteM::RestoreFrom(CheckpointReader* r) {
  TCQ_ASSIGN_OR_RETURN(uint32_t source, r->GetU32());
  if (source != source_) {
    return Status::IOError("data_stem checkpoint is for source " +
                           std::to_string(source) + ", restoring source " +
                           std::to_string(source_));
  }
  TCQ_ASSIGN_OR_RETURN(Timestamp retention, r->GetTimestamp());
  if (retention != retention_) {
    return Status::IOError(
        "data_stem checkpoint retention does not match the restored stream");
  }
  if (!history_.empty()) {
    return Status::FailedPrecondition(
        "data_stem restore requires an empty history");
  }
  TCQ_ASSIGN_OR_RETURN(inserts_, r->GetU64());
  TCQ_ASSIGN_OR_RETURN(uint64_t count, r->GetU64());
  for (uint64_t i = 0; i < count; ++i) {
    TCQ_ASSIGN_OR_RETURN(Tuple t, r->GetTuple());
    history_.Append(t);
  }
  return Status::OK();
}

}  // namespace tcq
