// Data SteM (paper §3.2, Fig. 3): the repository of previously arrived
// stream data. New queries are applied to its contents ("new queries over
// old data"); new data is inserted here before being applied to old
// queries. Backed by a timestamp-ordered history with optional retention.

#pragma once

#include <map>

#include "common/status.h"
#include "tuple/tuple.h"
#include "window/window_exec.h"

namespace tcq {

class DataSteM : public Checkpointable {
 public:
  /// `retention` bounds how far back history is kept (0 = keep everything).
  /// PSoup can only answer windows up to the retention span.
  DataSteM(SourceId source, SchemaRef schema, Timestamp retention = 0)
      : source_(source), schema_(std::move(schema)), retention_(retention) {}

  SourceId source() const { return source_; }
  const SchemaRef& schema() const { return schema_; }
  Timestamp retention() const { return retention_; }

  /// Inserts an arrived tuple (the "build" of the data side).
  void Insert(const Tuple& tuple);

  /// Applies a retention cutoff relative to `now`.
  void AdvanceTime(Timestamp now);

  /// Tuples with l <= ts <= r (the "probe" by a new query's window).
  void Scan(Timestamp l, Timestamp r, std::vector<Tuple>* out) const {
    history_.Range(l, r, out);
  }

  const StreamHistory& history() const { return history_; }
  size_t size() const { return history_.size(); }
  uint64_t inserts() const { return inserts_; }

  // --- Durable state (DESIGN.md §13) -----------------------------------------
  // Exports the source id, retention, insert count, and the whole history.
  // Restore requires an empty DataSteM constructed for the same source and
  // retention.
  std::string CheckpointTag() const override { return "data_stem"; }
  uint32_t CheckpointVersion() const override { return 1; }
  void ExportTo(CheckpointWriter* w) const override;
  Status RestoreFrom(CheckpointReader* r) override;

 private:
  SourceId source_;
  SchemaRef schema_;
  Timestamp retention_;
  StreamHistory history_;
  uint64_t inserts_ = 0;
};

}  // namespace tcq
