#include "psoup/psoup.h"

#include <cassert>

#include "cacq/spec_codec.h"

namespace tcq {

PSoup::PSoup(Options opts)
    : opts_(opts), eddy_(MakeLotteryPolicy(opts.seed)) {
  eddy_.SetOutput([this](QueryId q, const Tuple& t) {
    results_.Insert(q, t, t.timestamp());
  });
}

void PSoup::RegisterStream(SourceId source, SchemaRef schema,
                           Timestamp retention) {
  StemOptions stem_opts;
  stem_opts.window = retention;
  eddy_.RegisterStream(source, schema, std::move(stem_opts));
  data_stems_[source] =
      std::make_unique<DataSteM>(source, std::move(schema), retention);
}

const DataSteM* PSoup::data_stem(SourceId source) const {
  auto it = data_stems_.find(source);
  return it == data_stems_.end() ? nullptr : it->second.get();
}

std::vector<Tuple> PSoup::EvaluateOverHistory(const PSoupQuery& query,
                                              Timestamp lo,
                                              Timestamp hi) const {
  // One snapshot window per involved source covering [lo, hi].
  WindowedQuery wq;
  ForLoopSpec loop;
  loop.t_init = 0;
  loop.condition = {LoopCondition::Kind::kEq, 0};
  loop.t_step = -1;
  SourceSet footprint = query.where.Footprint();
  std::map<SourceId, StreamHistory> histories;
  bool missing_stem = false;
  ForEachSource(footprint, [&](SourceId s) {
    if (missing_stem) return;
    loop.windows.push_back(
        {s, WindowBound::Constant(lo), WindowBound::Constant(hi)});
    auto it = data_stems_.find(s);
    if (it == data_stems_.end()) {
      missing_stem = true;
      return;
    }
    StreamHistory h;
    std::vector<Tuple> content;
    it->second->Scan(lo, hi, &content);
    for (const Tuple& t : content) h.Append(t);
    histories.emplace(s, std::move(h));
  });
  if (missing_stem) return {};
  wq.loop = std::move(loop);
  for (const FilterFactor& f : query.where.filters) {
    wq.predicates.push_back(MakeCompareConst(f.attr, f.op, f.literal));
  }
  for (const JoinEdge& j : query.where.joins) {
    wq.predicates.push_back(MakeCompareAttrs(j.left, CmpOp::kEq, j.right));
  }
  for (const PredicateRef& r : query.where.residuals) {
    wq.predicates.push_back(r);
  }
  auto results = RunOverHistory(wq, histories);
  assert(results.size() == 1u);
  return std::move(results.front().tuples);
}

Result<QueryId> PSoup::Register(PSoupQuery query) {
  // 1. Register the continuous half with the shared eddy ("new data will be
  //    applied to this old query").
  TCQ_ASSIGN_OR_RETURN(QueryId id, eddy_.AddQuery(query.where));
  query_stem_.Insert(id, query);

  // 2. Backfill freshly created shared SteMs so old data can still join
  //    with future arrivals.
  SourceSet footprint = query.where.Footprint();
  ForEachSource(footprint, [&](SourceId s) {
    if (eddy_.GetSteM(s) != nullptr && !backfilled_.contains(s)) {
      std::vector<Tuple> history;
      data_stems_[s]->Scan(kMinTimestamp, kMaxTimestamp, &history);
      eddy_.BackfillSteM(s, history);
      backfilled_.insert(s);
    }
  });

  // 3. Apply the new query to old data (PSoup's historical half) and
  //    materialize those results. Evaluation scans full retained history;
  //    the query's window applies to result production time (max component
  //    arrival), matching the continuous path's semantics.
  for (const Tuple& t : EvaluateOverHistory(query, kMinTimestamp, now_)) {
    if (query.window != 0 && t.timestamp() <= now_ - query.window) continue;
    results_.Insert(id, t, t.timestamp());
  }
  return id;
}

Status PSoup::Unregister(QueryId id) {
  TCQ_RETURN_IF_ERROR(query_stem_.Remove(id));
  TCQ_RETURN_IF_ERROR(eddy_.RemoveQuery(id));
  results_.Drop(id);
  return Status::OK();
}

void PSoup::Ingest(SourceId source, const Tuple& tuple) {
  auto it = data_stems_.find(source);
  assert(it != data_stems_.end() && "ingest on unregistered stream");
  if (tuple.IsPunctuation()) {
    // Punctuations carry no data to store: they bypass the Data SteM and
    // only advance the eddy's per-source watermark, which in turn advances
    // PSoup's virtual clock (a watermark IS a time promise).
    eddy_.Ingest(source, tuple);
    now_ = std::max(now_, eddy_.watermarks().WatermarkOf(source));
    return;
  }
  if (tuple.IsRetraction()) {
    // Modest scope: the Results Structure is append-only, so retractions
    // reaching PSoup are counted and dropped rather than applied.
    ++retractions_dropped_;
    return;
  }
  obs::TraceBatchScope scope(opts_.tracer.get());
  now_ = std::max(now_, tuple.timestamp());
  // Insert into the Data SteM (new data becomes old data for future
  // queries), then apply to old queries via the shared eddy.
  it->second->Insert(tuple);
  eddy_.Ingest(source, tuple);
  if (++ingests_ % opts_.eviction_interval == 0) EvictionPass(now_);
}

void PSoup::IngestBatch(const TupleBatch& batch) {
  if (batch.empty() && batch.punctuations().empty()) return;
  auto it = data_stems_.find(batch.source());
  assert(it != data_stems_.end() && "ingest on unregistered stream");
  obs::TraceBatchScope scope(opts_.tracer.get());
  DataSteM* data = it->second.get();
  size_t retracts = 0;
  for (const Tuple& t : batch) {
    if (t.IsRetraction()) {
      ++retracts;
      continue;
    }
    now_ = std::max(now_, t.timestamp());
    data->Insert(t);
  }
  if (retracts == 0) {
    eddy_.IngestBatch(batch);
  } else {
    // Rare path: strip the retraction rows so the eddy (and through it the
    // Results Structure) never materializes them; the lane rides along.
    retractions_dropped_ += retracts;
    TupleBatch data_only(batch.source());
    for (const Tuple& t : batch) {
      if (!t.IsRetraction()) data_only.push_back(t);
    }
    for (const Punctuation& p : batch.punctuations()) {
      data_only.AddPunctuation(p);
    }
    eddy_.IngestBatch(data_only);
  }
  // The lane applied after the rows; fold the advanced watermarks into the
  // virtual clock so eviction keeps pace with event time.
  for (const Punctuation& p : batch.punctuations()) {
    now_ = std::max(now_, eddy_.watermarks().WatermarkOf(p.source));
  }
  // Preserve the per-tuple eviction cadence: fire once per crossed interval.
  uint64_t before = ingests_;
  ingests_ += batch.size();
  if (ingests_ / opts_.eviction_interval > before / opts_.eviction_interval) {
    EvictionPass(now_);
  }
}

void PSoup::EvictionPass(Timestamp now) {
  eddy_.AdvanceTime(now);
  for (auto& [source, stem] : data_stems_) stem->AdvanceTime(now);
  for (QueryId id = 0; id < query_stem_.size(); ++id) {
    const PSoupQuery* q = query_stem_.Get(id);
    if (!query_stem_.IsActive(id) || q->window == 0) continue;
    results_.EvictBefore(id, now - q->window);
  }
}

Result<std::vector<Tuple>> PSoup::Invoke(QueryId id, Timestamp now) const {
  if (!query_stem_.IsActive(id)) {
    return Status::NotFound("psoup query " + std::to_string(id) +
                            " is not active");
  }
  const PSoupQuery* q = query_stem_.Get(id);
  if (opts_.tracer != nullptr && opts_.tracer->enabled()) {
    int64_t t0 = NowMicros();
    Result<std::vector<Tuple>> r = results_.Fetch(id, now, q->window);
    opts_.tracer->Record(obs::SpanKind::kPsoupProbe, 0, id, t0,
                         NowMicros() - t0);
    return r;
  }
  return results_.Fetch(id, now, q->window);
}

Status PSoup::CheckpointTo(CheckpointWriter* w) const {
  w->BeginSection("psoup", 1);
  w->PutTimestamp(now_);
  w->PutU64(ingests_);
  w->PutU64(retractions_dropped_);
  w->PutU32(static_cast<uint32_t>(data_stems_.size()));
  for (const auto& [source, stem] : data_stems_) {
    w->PutU32(source);
    w->PutTimestamp(stem->retention());
    w->PutSchema(*stem->schema());
  }
  w->PutU32(static_cast<uint32_t>(query_stem_.size()));
  for (QueryId id = 0; id < query_stem_.size(); ++id) {
    const PSoupQuery* q = query_stem_.Get(id);
    w->PutBool(query_stem_.IsActive(id));
    PutCQSpec(w, q->where);
    w->PutTimestamp(q->window);
  }
  w->PutU32(static_cast<uint32_t>(backfilled_.size()));
  for (SourceId s : backfilled_) w->PutU32(s);
  uint64_t nresults = 0;
  results_.ForEach([&nresults](QueryId, Timestamp, const Tuple&) {
    ++nresults;
  });
  w->PutU64(nresults);
  results_.ForEach([w](QueryId q, Timestamp ts, const Tuple& t) {
    w->PutU32(static_cast<uint32_t>(q));
    w->PutTimestamp(ts);
    w->PutTuple(t);
  });
  w->EndSection();
  for (const auto& [source, stem] : data_stems_) {
    WriteCheckpointSection(w, *stem);
  }
  return Status::OK();
}

Status PSoup::RestoreFrom(CheckpointReader* r) {
  if (!data_stems_.empty() || query_stem_.size() != 0) {
    return Status::FailedPrecondition(
        "psoup restore requires a freshly constructed PSoup");
  }
  TCQ_ASSIGN_OR_RETURN(CheckpointReader::Section sec, r->BeginSection());
  if (sec.tag != "psoup") {
    return Status::IOError("expected a \"psoup\" checkpoint section, found \"" +
                           sec.tag + "\"");
  }
  if (sec.version > 1) {
    return Status::IOError("psoup checkpoint section version " +
                           std::to_string(sec.version) + " is not supported");
  }
  TCQ_ASSIGN_OR_RETURN(now_, r->GetTimestamp());
  TCQ_ASSIGN_OR_RETURN(ingests_, r->GetU64());
  TCQ_ASSIGN_OR_RETURN(retractions_dropped_, r->GetU64());
  TCQ_ASSIGN_OR_RETURN(uint32_t nstreams, r->GetU32());
  for (uint32_t i = 0; i < nstreams; ++i) {
    TCQ_ASSIGN_OR_RETURN(uint32_t source, r->GetU32());
    TCQ_ASSIGN_OR_RETURN(Timestamp retention, r->GetTimestamp());
    TCQ_ASSIGN_OR_RETURN(SchemaRef schema, r->GetSchema());
    RegisterStream(source, std::move(schema), retention);
  }
  // Replay the WHOLE query table (inactive slots too): the eddy assigns ids
  // densely in admission order, so replaying the full sequence is the only
  // way restored ids match recorded ones. Unregistrations re-apply at the
  // end.
  TCQ_ASSIGN_OR_RETURN(uint32_t nqueries, r->GetU32());
  std::vector<QueryId> inactive;
  for (QueryId id = 0; id < nqueries; ++id) {
    TCQ_ASSIGN_OR_RETURN(bool active, r->GetBool());
    PSoupQuery q;
    TCQ_ASSIGN_OR_RETURN(q.where, GetCQSpec(r));
    TCQ_ASSIGN_OR_RETURN(q.window, r->GetTimestamp());
    TCQ_ASSIGN_OR_RETURN(QueryId got, eddy_.AddQuery(q.where));
    if (got != id) {
      return Status::Internal("psoup restore assigned eddy id " +
                              std::to_string(got) + ", expected " +
                              std::to_string(id));
    }
    query_stem_.Insert(id, std::move(q));
    if (!active) inactive.push_back(id);
  }
  TCQ_ASSIGN_OR_RETURN(uint32_t nbackfilled, r->GetU32());
  for (uint32_t i = 0; i < nbackfilled; ++i) {
    TCQ_ASSIGN_OR_RETURN(uint32_t s, r->GetU32());
    backfilled_.insert(s);
  }
  TCQ_ASSIGN_OR_RETURN(uint64_t nresults, r->GetU64());
  for (uint64_t i = 0; i < nresults; ++i) {
    TCQ_ASSIGN_OR_RETURN(uint32_t qid, r->GetU32());
    TCQ_ASSIGN_OR_RETURN(Timestamp ts, r->GetTimestamp());
    TCQ_ASSIGN_OR_RETURN(Tuple t, r->GetTuple());
    results_.Insert(qid, t, ts);
  }
  TCQ_RETURN_IF_ERROR(r->EndSection());
  for (auto& [source, stem] : data_stems_) {
    TCQ_RETURN_IF_ERROR(ReadCheckpointSection(r, stem.get()));
  }
  // Re-backfill the shared SteMs from the restored histories. The restored
  // SteM content equals the pre-crash content: for a backfilled source,
  // every Data SteM tuple was also built into the shared SteM (backfill
  // covers the prefix, live ingest the suffix), and both sides prune by the
  // same retention.
  for (SourceId s : backfilled_) {
    if (eddy_.GetSteM(s) == nullptr) continue;
    std::vector<Tuple> history;
    data_stems_[s]->Scan(kMinTimestamp, kMaxTimestamp, &history);
    eddy_.BackfillSteM(s, history);
  }
  for (QueryId id : inactive) {
    TCQ_RETURN_IF_ERROR(query_stem_.Remove(id));
    TCQ_RETURN_IF_ERROR(eddy_.RemoveQuery(id));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> PSoup::InvokeByRecompute(QueryId id,
                                                    Timestamp now) const {
  if (!query_stem_.IsActive(id)) {
    return Status::NotFound("psoup query " + std::to_string(id) +
                            " is not active");
  }
  // Recompute from scratch over retained history, then impose the window on
  // production time — the same semantics the materialized path provides.
  const PSoupQuery* q = query_stem_.Get(id);
  std::vector<Tuple> all = EvaluateOverHistory(*q, kMinTimestamp, now);
  std::vector<Tuple> out;
  for (Tuple& t : all) {
    if (t.timestamp() > now) continue;
    if (q->window != 0 && t.timestamp() <= now - q->window) continue;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace tcq
