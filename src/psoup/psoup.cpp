#include "psoup/psoup.h"

#include <cassert>

namespace tcq {

PSoup::PSoup(Options opts)
    : opts_(opts), eddy_(MakeLotteryPolicy(opts.seed)) {
  eddy_.SetOutput([this](QueryId q, const Tuple& t) {
    results_.Insert(q, t, t.timestamp());
  });
}

void PSoup::RegisterStream(SourceId source, SchemaRef schema,
                           Timestamp retention) {
  StemOptions stem_opts;
  stem_opts.window = retention;
  eddy_.RegisterStream(source, schema, std::move(stem_opts));
  data_stems_[source] =
      std::make_unique<DataSteM>(source, std::move(schema), retention);
}

const DataSteM* PSoup::data_stem(SourceId source) const {
  auto it = data_stems_.find(source);
  return it == data_stems_.end() ? nullptr : it->second.get();
}

std::vector<Tuple> PSoup::EvaluateOverHistory(const PSoupQuery& query,
                                              Timestamp lo,
                                              Timestamp hi) const {
  // One snapshot window per involved source covering [lo, hi].
  WindowedQuery wq;
  ForLoopSpec loop;
  loop.t_init = 0;
  loop.condition = {LoopCondition::Kind::kEq, 0};
  loop.t_step = -1;
  SourceSet footprint = query.where.Footprint();
  std::map<SourceId, StreamHistory> histories;
  bool missing_stem = false;
  ForEachSource(footprint, [&](SourceId s) {
    if (missing_stem) return;
    loop.windows.push_back(
        {s, WindowBound::Constant(lo), WindowBound::Constant(hi)});
    auto it = data_stems_.find(s);
    if (it == data_stems_.end()) {
      missing_stem = true;
      return;
    }
    StreamHistory h;
    std::vector<Tuple> content;
    it->second->Scan(lo, hi, &content);
    for (const Tuple& t : content) h.Append(t);
    histories.emplace(s, std::move(h));
  });
  if (missing_stem) return {};
  wq.loop = std::move(loop);
  for (const FilterFactor& f : query.where.filters) {
    wq.predicates.push_back(MakeCompareConst(f.attr, f.op, f.literal));
  }
  for (const JoinEdge& j : query.where.joins) {
    wq.predicates.push_back(MakeCompareAttrs(j.left, CmpOp::kEq, j.right));
  }
  for (const PredicateRef& r : query.where.residuals) {
    wq.predicates.push_back(r);
  }
  auto results = RunOverHistory(wq, histories);
  assert(results.size() == 1u);
  return std::move(results.front().tuples);
}

Result<QueryId> PSoup::Register(PSoupQuery query) {
  // 1. Register the continuous half with the shared eddy ("new data will be
  //    applied to this old query").
  TCQ_ASSIGN_OR_RETURN(QueryId id, eddy_.AddQuery(query.where));
  query_stem_.Insert(id, query);

  // 2. Backfill freshly created shared SteMs so old data can still join
  //    with future arrivals.
  SourceSet footprint = query.where.Footprint();
  ForEachSource(footprint, [&](SourceId s) {
    if (eddy_.GetSteM(s) != nullptr && !backfilled_.contains(s)) {
      std::vector<Tuple> history;
      data_stems_[s]->Scan(kMinTimestamp, kMaxTimestamp, &history);
      eddy_.BackfillSteM(s, history);
      backfilled_.insert(s);
    }
  });

  // 3. Apply the new query to old data (PSoup's historical half) and
  //    materialize those results. Evaluation scans full retained history;
  //    the query's window applies to result production time (max component
  //    arrival), matching the continuous path's semantics.
  for (const Tuple& t : EvaluateOverHistory(query, kMinTimestamp, now_)) {
    if (query.window != 0 && t.timestamp() <= now_ - query.window) continue;
    results_.Insert(id, t, t.timestamp());
  }
  return id;
}

Status PSoup::Unregister(QueryId id) {
  TCQ_RETURN_IF_ERROR(query_stem_.Remove(id));
  TCQ_RETURN_IF_ERROR(eddy_.RemoveQuery(id));
  results_.Drop(id);
  return Status::OK();
}

void PSoup::Ingest(SourceId source, const Tuple& tuple) {
  auto it = data_stems_.find(source);
  assert(it != data_stems_.end() && "ingest on unregistered stream");
  if (tuple.IsPunctuation()) {
    // Punctuations carry no data to store: they bypass the Data SteM and
    // only advance the eddy's per-source watermark, which in turn advances
    // PSoup's virtual clock (a watermark IS a time promise).
    eddy_.Ingest(source, tuple);
    now_ = std::max(now_, eddy_.watermarks().WatermarkOf(source));
    return;
  }
  if (tuple.IsRetraction()) {
    // Modest scope: the Results Structure is append-only, so retractions
    // reaching PSoup are counted and dropped rather than applied.
    ++retractions_dropped_;
    return;
  }
  obs::TraceBatchScope scope(opts_.tracer.get());
  now_ = std::max(now_, tuple.timestamp());
  // Insert into the Data SteM (new data becomes old data for future
  // queries), then apply to old queries via the shared eddy.
  it->second->Insert(tuple);
  eddy_.Ingest(source, tuple);
  if (++ingests_ % opts_.eviction_interval == 0) EvictionPass(now_);
}

void PSoup::IngestBatch(const TupleBatch& batch) {
  if (batch.empty() && batch.punctuations().empty()) return;
  auto it = data_stems_.find(batch.source());
  assert(it != data_stems_.end() && "ingest on unregistered stream");
  obs::TraceBatchScope scope(opts_.tracer.get());
  DataSteM* data = it->second.get();
  size_t retracts = 0;
  for (const Tuple& t : batch) {
    if (t.IsRetraction()) {
      ++retracts;
      continue;
    }
    now_ = std::max(now_, t.timestamp());
    data->Insert(t);
  }
  if (retracts == 0) {
    eddy_.IngestBatch(batch);
  } else {
    // Rare path: strip the retraction rows so the eddy (and through it the
    // Results Structure) never materializes them; the lane rides along.
    retractions_dropped_ += retracts;
    TupleBatch data_only(batch.source());
    for (const Tuple& t : batch) {
      if (!t.IsRetraction()) data_only.push_back(t);
    }
    for (const Punctuation& p : batch.punctuations()) {
      data_only.AddPunctuation(p);
    }
    eddy_.IngestBatch(data_only);
  }
  // The lane applied after the rows; fold the advanced watermarks into the
  // virtual clock so eviction keeps pace with event time.
  for (const Punctuation& p : batch.punctuations()) {
    now_ = std::max(now_, eddy_.watermarks().WatermarkOf(p.source));
  }
  // Preserve the per-tuple eviction cadence: fire once per crossed interval.
  uint64_t before = ingests_;
  ingests_ += batch.size();
  if (ingests_ / opts_.eviction_interval > before / opts_.eviction_interval) {
    EvictionPass(now_);
  }
}

void PSoup::EvictionPass(Timestamp now) {
  eddy_.AdvanceTime(now);
  for (auto& [source, stem] : data_stems_) stem->AdvanceTime(now);
  for (QueryId id = 0; id < query_stem_.size(); ++id) {
    const PSoupQuery* q = query_stem_.Get(id);
    if (!query_stem_.IsActive(id) || q->window == 0) continue;
    results_.EvictBefore(id, now - q->window);
  }
}

Result<std::vector<Tuple>> PSoup::Invoke(QueryId id, Timestamp now) const {
  if (!query_stem_.IsActive(id)) {
    return Status::NotFound("psoup query " + std::to_string(id) +
                            " is not active");
  }
  const PSoupQuery* q = query_stem_.Get(id);
  if (opts_.tracer != nullptr && opts_.tracer->enabled()) {
    int64_t t0 = NowMicros();
    Result<std::vector<Tuple>> r = results_.Fetch(id, now, q->window);
    opts_.tracer->Record(obs::SpanKind::kPsoupProbe, 0, id, t0,
                         NowMicros() - t0);
    return r;
  }
  return results_.Fetch(id, now, q->window);
}

Result<std::vector<Tuple>> PSoup::InvokeByRecompute(QueryId id,
                                                    Timestamp now) const {
  if (!query_stem_.IsActive(id)) {
    return Status::NotFound("psoup query " + std::to_string(id) +
                            " is not active");
  }
  // Recompute from scratch over retained history, then impose the window on
  // production time — the same semantics the materialized path provides.
  const PSoupQuery* q = query_stem_.Get(id);
  std::vector<Tuple> all = EvaluateOverHistory(*q, kMinTimestamp, now);
  std::vector<Tuple> out;
  for (Tuple& t : all) {
    if (t.timestamp() > now) continue;
    if (q->window != 0 && t.timestamp() <= now - q->window) continue;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace tcq
