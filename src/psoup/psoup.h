// PSoup (paper §3.2): treats data and queries symmetrically. "When a client
// first registers a query, the SELECT-FROM-WHERE clause is extracted and
// inserted into a Query SteM, and is then applied to previously arrived data
// stored in Data SteMs... when a new data element arrives, it is inserted
// into the appropriate Data SteM, and is then applied to previously
// specified queries stored in the Query SteM." Results are continuously
// materialized (Results Structure) so intermittently connected clients can
// return and fetch the current window instantly.
//
// Internally the "new data -> old queries" half runs on the CACQ shared
// eddy; the "new query -> old data" half replays Data SteM history through
// an offline evaluation; and cross-boundary joins (old data with future
// partners) are covered by backfilling the shared SteMs.

#pragma once

#include <map>
#include <memory>
#include <set>

#include "cacq/shared_eddy.h"
#include "obs/trace.h"
#include "psoup/data_stem.h"
#include "psoup/query_stem.h"
#include "psoup/results.h"

namespace tcq {

class PSoup {
 public:
  struct Options {
    /// Routing policy seed for the internal shared eddy.
    uint64_t seed = 42;
    /// Evict materialized results / data history every this many ingests.
    uint64_t eviction_interval = 256;
    /// Optional dataflow tracer: samples ingest batches (arming the internal
    /// eddy's hop spans) and times Invoke as kPsoupProbe.
    obs::TracerRef tracer = nullptr;
  };

  PSoup() : PSoup(Options()) {}
  explicit PSoup(Options opts);

  /// Declares a stream. `retention` bounds how much history the Data SteM
  /// keeps (0 = unbounded); queries can reach at most that far back.
  void RegisterStream(SourceId source, SchemaRef schema,
                      Timestamp retention = 0);

  /// Registers a standing query: applies it to old data immediately, then
  /// keeps its results continuously materialized. Returns the query id the
  /// client later invokes with.
  Result<QueryId> Register(PSoupQuery query);

  /// Unregisters a query and drops its materialized results.
  Status Unregister(QueryId id);

  /// Feeds one new data element (timestamps must be non-decreasing per
  /// stream). Equivalent to a batch of one.
  void Ingest(SourceId source, const Tuple& tuple);

  /// Feeds a whole same-source batch: one Data SteM lookup, a hoisted
  /// insert loop (a genuine row boundary — the SteM stores rows), then a
  /// single shared-eddy batch ingest, where columnar batches get the
  /// vectorized selection prefilter (DESIGN.md §11). Results are identical
  /// to per-tuple Ingest (see SharedEddy::IngestBatch).
  void IngestBatch(const TupleBatch& batch);

  /// Disconnected-client invocation: imposes the query's window on the
  /// Results Structure as of `now` and returns the current answer set.
  Result<std::vector<Tuple>> Invoke(QueryId id, Timestamp now) const;

  /// Number of currently materialized results for a query.
  size_t MaterializedCount(QueryId id) const {
    return results_.ResultCount(id);
  }
  size_t TotalMaterialized() const { return results_.TotalMaterialized(); }
  const QuerySteM& query_stem() const { return query_stem_; }
  const DataSteM* data_stem(SourceId source) const;

  /// Event-time watermark of a stream as promised by ingested punctuations
  /// (kMinTimestamp until the first one arrives).
  Timestamp watermark(SourceId source) const {
    return eddy_.watermarks().WatermarkOf(source);
  }
  /// Retraction tuples seen and dropped: the Results Structure is
  /// append-only, so PSoup counts revisions instead of applying them.
  uint64_t retractions_dropped() const { return retractions_dropped_; }

  // --- Durable state (DESIGN.md §13) -----------------------------------------

  /// Snapshots PSoup as one "psoup" section (virtual clock, the full query
  /// table including inactive slots — the eddy assigns ids densely, so the
  /// whole table must replay to reproduce them — the backfill set, and the
  /// materialized results) followed by one "data_stem" section per
  /// registered stream, in source order.
  Status CheckpointTo(CheckpointWriter* w) const;

  /// Rebuilds from a checkpoint on a FRESHLY constructed PSoup: re-registers
  /// the recorded streams, replays every recorded query registration under
  /// its original id, restores Data SteMs and materialized results, re-
  /// backfills the shared SteMs from the restored histories, then removes
  /// the queries that had been unregistered. Eddy watermarks restart
  /// conservatively from the next punctuation.
  Status RestoreFrom(CheckpointReader* r);

  /// Reference path for the E5 benchmark: recomputes the query's current
  /// answer from Data SteM history instead of reading materialized results
  /// (what a system without the Results Structure must do per invocation).
  Result<std::vector<Tuple>> InvokeByRecompute(QueryId id,
                                               Timestamp now) const;

 private:
  void EvictionPass(Timestamp now);
  std::vector<Tuple> EvaluateOverHistory(const PSoupQuery& query,
                                         Timestamp lo, Timestamp hi) const;

  Options opts_;
  SharedEddy eddy_;
  QuerySteM query_stem_;
  std::map<SourceId, std::unique_ptr<DataSteM>> data_stems_;
  ResultsStructure results_;
  std::set<SourceId> backfilled_;
  Timestamp now_ = 0;
  uint64_t ingests_ = 0;
  uint64_t retractions_dropped_ = 0;
};

}  // namespace tcq
