#include "psoup/query_stem.h"

namespace tcq {

void QuerySteM::Insert(QueryId id, PSoupQuery query) {
  if (queries_.size() <= id) queries_.resize(id + 1);
  queries_[id] = {std::move(query), true};
  ++active_count_;
}

Status QuerySteM::Remove(QueryId id) {
  if (id >= queries_.size() || !queries_[id].second) {
    return Status::NotFound("psoup query " + std::to_string(id) +
                            " is not active");
  }
  queries_[id].second = false;
  --active_count_;
  return Status::OK();
}

const PSoupQuery* QuerySteM::Get(QueryId id) const {
  if (id >= queries_.size()) return nullptr;
  return &queries_[id].first;
}

bool QuerySteM::IsActive(QueryId id) const {
  return id < queries_.size() && queries_[id].second;
}

Timestamp QuerySteM::MaxWindow() const {
  Timestamp max = 0;
  for (const auto& [q, active] : queries_) {
    if (!active) continue;
    if (q.window == 0) return 0;  // unbounded retention required
    max = std::max(max, q.window);
  }
  return max;
}

}  // namespace tcq
