// Query SteM (paper §3.2): the repository of registered queries — "a
// generalization of the notion of a grouped filter". PSoup treats query
// processing as a symmetric join between data and queries: new data probes
// this SteM (via the shared eddy's grouped filters) and new queries are
// built into it, then applied to the Data SteMs.

#pragma once

#include <map>
#include <optional>

#include "cacq/query_registry.h"
#include "common/clock.h"
#include "common/status.h"

namespace tcq {

/// A PSoup standing query: a SELECT-FROM-WHERE clause plus the time-based
/// window imposed on the Results Structure at invocation (§3.2).
struct PSoupQuery {
  CQSpec where;
  /// Window width: an invocation at time `now` returns results produced in
  /// (now - window, now]. 0 = everything materialized.
  Timestamp window = 0;
};

class QuerySteM {
 public:
  /// Builds a query into the SteM under an externally assigned id (PSoup
  /// uses the shared eddy's query id so both sides of the data/query join
  /// agree).
  void Insert(QueryId id, PSoupQuery query);

  Status Remove(QueryId id);

  const PSoupQuery* Get(QueryId id) const;
  bool IsActive(QueryId id) const;

  /// Widest window of any active query (bounds result retention).
  Timestamp MaxWindow() const;

  size_t num_active() const { return active_count_; }
  /// One past the largest id ever inserted (for iteration).
  size_t size() const { return queries_.size(); }

 private:
  std::vector<std::pair<PSoupQuery, bool>> queries_;  // (query, active)
  size_t active_count_ = 0;
};

}  // namespace tcq
