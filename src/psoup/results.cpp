#include "psoup/results.h"

#include <algorithm>

namespace tcq {

void ResultsStructure::Insert(QueryId query, const Tuple& tuple,
                              Timestamp ts) {
  auto& entries = per_query_[query];
  // Production times are monotone per query in the common case; tolerate
  // slight disorder by positioning the insert.
  if (entries.empty() || entries.back().ts <= ts) {
    entries.push_back({ts, tuple});
  } else {
    auto it = std::upper_bound(
        entries.begin(), entries.end(), ts,
        [](Timestamp v, const Entry& e) { return v < e.ts; });
    entries.insert(it, {ts, tuple});
  }
  ++total_;
}

std::vector<Tuple> ResultsStructure::Fetch(QueryId query, Timestamp now,
                                           Timestamp window) const {
  std::vector<Tuple> out;
  auto it = per_query_.find(query);
  if (it == per_query_.end()) return out;
  Timestamp lo = window == 0 ? kMinTimestamp : now - window;
  for (const Entry& e : it->second) {
    if (e.ts > now) break;
    if (window == 0 || e.ts > lo) out.push_back(e.tuple);
  }
  return out;
}

void ResultsStructure::EvictBefore(QueryId query, Timestamp cutoff) {
  auto it = per_query_.find(query);
  if (it == per_query_.end()) return;
  while (!it->second.empty() && it->second.front().ts <= cutoff) {
    it->second.pop_front();
    --total_;
  }
}

void ResultsStructure::Drop(QueryId query) {
  auto it = per_query_.find(query);
  if (it == per_query_.end()) return;
  total_ -= it->second.size();
  per_query_.erase(it);
}

size_t ResultsStructure::ResultCount(QueryId query) const {
  auto it = per_query_.find(query);
  return it == per_query_.end() ? 0 : it->second.size();
}

}  // namespace tcq
