// Results Structure (paper §3.2): PSoup "continuously computes the answers
// to all active queries, effectively materializing the results until they
// are specifically requested". The materialization is what enables
// disconnected operation and efficient set-based retrieval: an invocation
// imposes the query's window on this structure instead of recomputing.

#pragma once

#include <deque>
#include <map>
#include <vector>

#include "common/clock.h"
#include "common/query_set.h"
#include "tuple/tuple.h"

namespace tcq {

class ResultsStructure {
 public:
  /// Materializes one result for a query. `ts` is the result's production
  /// time (max component arrival time for join results).
  void Insert(QueryId query, const Tuple& tuple, Timestamp ts);

  /// Results with ts in (now - window, now]; window 0 = everything.
  std::vector<Tuple> Fetch(QueryId query, Timestamp now,
                           Timestamp window) const;

  /// Drops results of `query` with ts <= cutoff (retention enforcement).
  void EvictBefore(QueryId query, Timestamp cutoff);

  /// Drops all results of a removed query.
  void Drop(QueryId query);

  size_t ResultCount(QueryId query) const;
  size_t TotalMaterialized() const { return total_; }

  /// Visits every materialized entry in (query, insertion) order with
  /// fn(query, ts, tuple) — the checkpoint export path.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [query, entries] : per_query_) {
      for (const Entry& e : entries) fn(query, e.ts, e.tuple);
    }
  }

 private:
  struct Entry {
    Timestamp ts;
    Tuple tuple;
  };
  std::map<QueryId, std::deque<Entry>> per_query_;
  size_t total_ = 0;
};

}  // namespace tcq
