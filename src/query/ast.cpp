#include "query/ast.h"

// Header-only AST; this translation unit anchors the target.

namespace tcq::ast {}
