// Abstract syntax for the TelegraphCQ query language: a basic SQL
// SELECT-FROM-WHERE plus the §4.1 for-loop window construct
// ("for(t=..; cond(t); change(t)) { WindowIs(Stream, left(t), right(t)); }").

#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "operators/predicate.h"
#include "window/window_spec.h"

namespace tcq::ast {

/// `[alias.]column`.
struct ColumnRef {
  std::string table;  // alias or stream name; empty = unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// A comparison operand: column or literal.
using Operand = std::variant<ColumnRef, Value>;

/// One conjunct of the WHERE clause: `lhs op rhs`.
struct Comparison {
  Operand lhs;
  CmpOp op = CmpOp::kEq;
  Operand rhs;
};

/// `FROM stream [alias]`.
struct StreamRef {
  std::string stream;
  std::string alias;  // defaults to the stream name

  const std::string& EffectiveAlias() const {
    return alias.empty() ? stream : alias;
  }
};

/// A window-end expression: `coef*t + offset` with coef in {0, 1}.
struct WindowExpr {
  bool uses_t = false;
  Timestamp offset = 0;
};

/// `WindowIs(alias, left, right);`
struct WindowIsStmt {
  std::string target;  // stream alias
  WindowExpr left;
  WindowExpr right;
};

/// The for-loop clause.
struct ForLoop {
  Timestamp t_init = 0;
  LoopCondition condition;
  Timestamp t_step = 1;
  std::vector<WindowIsStmt> windows;
};

/// A full parsed statement.
struct SelectStatement {
  bool select_all = false;
  std::vector<ColumnRef> select_list;
  std::vector<StreamRef> from;
  std::vector<Comparison> where;
  std::optional<ForLoop> for_loop;
};

}  // namespace tcq::ast
