#include "query/catalog.h"

namespace tcq {

Result<SourceId> Catalog::NextSource() {
  if (next_source_ >= 32) {
    return Status::ResourceExhausted("catalog is limited to 32 source ids");
  }
  return next_source_++;
}

Result<SourceId> Catalog::DefineStream(const std::string& name,
                                       const std::vector<Field>& fields) {
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("stream '" + name + "' already defined");
  }
  TCQ_ASSIGN_OR_RETURN(SourceId source, NextSource());
  std::vector<Field> rewritten = fields;
  for (Field& f : rewritten) f.source = source;
  StreamEntry entry{name, source, Schema::Make(std::move(rewritten))};
  by_name_[name] = entry;
  by_source_[source] = entry;
  return source;
}

Result<Catalog::StreamEntry> Catalog::InstantiateAlias(
    const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no stream '" + name + "' in catalog");
  }
  TCQ_ASSIGN_OR_RETURN(SourceId source, NextSource());
  std::vector<Field> fields = it->second.schema->fields();
  for (Field& f : fields) f.source = source;
  StreamEntry entry{name, source, Schema::Make(std::move(fields))};
  by_source_[source] = entry;
  return entry;
}

Result<Catalog::StreamEntry> Catalog::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no stream '" + name + "' in catalog");
  }
  return it->second;
}

const Catalog::StreamEntry* Catalog::LookupBySource(SourceId source) const {
  auto it = by_source_.find(source);
  return it == by_source_.end() ? nullptr : &it->second;
}

}  // namespace tcq
