// The metadata catalog (paper Fig. 1 / §4.2.1): stream names, their source
// ids, and schemas. A FROM clause may reference the same physical stream
// twice under different aliases (the paper's self-join example); the planner
// materializes each alias as its own logical SourceId, and the catalog
// records which physical stream backs it.

#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "tuple/schema.h"

namespace tcq {

class Catalog {
 public:
  struct StreamEntry {
    std::string name;
    SourceId source = 0;
    SchemaRef schema;  // fields carry `source` as their SourceId
  };

  /// Defines a stream; assigns and returns its SourceId. Field templates
  /// are rewritten so every field's source matches the assigned id.
  Result<SourceId> DefineStream(const std::string& name,
                                const std::vector<Field>& fields);

  /// Allocates an additional logical source id backed by `name`'s stream
  /// (for self-join aliases). Returns the alias entry.
  Result<StreamEntry> InstantiateAlias(const std::string& name);

  Result<StreamEntry> Lookup(const std::string& name) const;
  const StreamEntry* LookupBySource(SourceId source) const;

  size_t num_streams() const { return by_name_.size(); }

  /// One past the largest assigned source id. With LookupBySource this lets
  /// a checkpoint record every entry in assignment order, so a restore can
  /// replay DefineStream / InstantiateAlias calls and reproduce the exact
  /// id layout (alias ids are allocated at plan time, so the layout depends
  /// on the original interleaving of definitions and submissions).
  SourceId next_source() const { return next_source_; }

 private:
  Result<SourceId> NextSource();

  std::map<std::string, StreamEntry> by_name_;
  std::map<SourceId, StreamEntry> by_source_;
  SourceId next_source_ = 0;
};

}  // namespace tcq
