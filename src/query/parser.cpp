#include "query/parser.h"

#include <cctype>

namespace tcq {

namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        // '$' continues an identifier so the reserved introspection streams
        // (tcq$metrics, tcq$queues, tcq$latency) parse as ordinary names.
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_' || text_[i] == '$')) {
          ++i;
        }
        out.push_back({TokKind::kIdent, text_.substr(start, i - start), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])) &&
           NumberMayFollow(out))) {
        size_t start = i;
        if (c == '-') ++i;
        bool is_float = false;
        while (i < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '.')) {
          if (text_[i] == '.') is_float = true;
          ++i;
        }
        (void)is_float;
        out.push_back(
            {TokKind::kNumber, text_.substr(start, i - start), start});
        continue;
      }
      if (c == '\'') {
        size_t start = ++i;
        while (i < text_.size() && text_[i] != '\'') ++i;
        if (i >= text_.size()) {
          return Status::InvalidArgument("unterminated string literal");
        }
        out.push_back({TokKind::kString, text_.substr(start, i - start),
                       start - 1});
        ++i;
        continue;
      }
      // Multi-char operators first.
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>", "==", "+=",
                                       "-=", "++", "--"};
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (text_.compare(i, 2, op) == 0) {
          out.push_back({TokKind::kSymbol, op, i});
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kOneChar = "=<>(),;{}*.+-";
      if (kOneChar.find(c) != std::string::npos) {
        out.push_back({TokKind::kSymbol, std::string(1, c), i});
        ++i;
        continue;
      }
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at offset " +
                                     std::to_string(i));
    }
    out.push_back({TokKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  // A leading '-' starts a number only where an operand may begin (after an
  // operator/comma/paren), not after an identifier/number (binary minus).
  static bool NumberMayFollow(const std::vector<Token>& out) {
    if (out.empty()) return true;
    const Token& prev = out.back();
    return prev.kind == TokKind::kSymbol && prev.text != ")";
  }

  const std::string& text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ast::SelectStatement> Parse() {
    ast::SelectStatement stmt;
    TCQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    TCQ_RETURN_IF_ERROR(ParseSelectList(&stmt));
    TCQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    TCQ_RETURN_IF_ERROR(ParseFromList(&stmt));
    if (IsKeyword("WHERE")) {
      Advance();
      TCQ_RETURN_IF_ERROR(ParseWhere(&stmt));
    }
    if (IsKeyword("FOR")) {
      Advance();
      ast::ForLoop loop;
      TCQ_RETURN_IF_ERROR(ParseForLoop(&loop));
      stmt.for_loop = std::move(loop);
    }
    if (IsSymbol(";")) Advance();
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing input after statement: '" +
                                     Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  static std::string Upper(std::string s) {
    for (char& c : s) c = static_cast<char>(std::toupper(c));
    return s;
  }
  bool IsKeyword(const std::string& kw) const {
    return Peek().kind == TokKind::kIdent && Upper(Peek().text) == kw;
  }
  bool IsSymbol(const std::string& s) const {
    return Peek().kind == TokKind::kSymbol && Peek().text == s;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!IsKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " near '" +
                                     Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!IsSymbol(s)) {
      return Status::InvalidArgument("expected '" + s + "' near '" +
                                     Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<ast::ColumnRef> ParseColumnRef() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected column near '" + Peek().text +
                                     "'");
    }
    ast::ColumnRef ref;
    ref.column = Peek().text;
    Advance();
    if (IsSymbol(".")) {
      Advance();
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected column after '.'");
      }
      ref.table = ref.column;
      ref.column = Peek().text;
      Advance();
    }
    return ref;
  }

  Status ParseSelectList(ast::SelectStatement* stmt) {
    if (IsSymbol("*")) {
      stmt->select_all = true;
      Advance();
      return Status::OK();
    }
    for (;;) {
      TCQ_ASSIGN_OR_RETURN(ast::ColumnRef ref, ParseColumnRef());
      stmt->select_list.push_back(std::move(ref));
      if (!IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseFromList(ast::SelectStatement* stmt) {
    for (;;) {
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected stream name near '" +
                                       Peek().text + "'");
      }
      ast::StreamRef ref;
      ref.stream = Peek().text;
      Advance();
      // Optional alias: a following identifier that is not a keyword.
      if (Peek().kind == TokKind::kIdent && !IsKeyword("WHERE") &&
          !IsKeyword("FOR")) {
        ref.alias = Peek().text;
        Advance();
      }
      stmt->from.push_back(std::move(ref));
      if (!IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Result<ast::Operand> ParseOperand() {
    if (Peek().kind == TokKind::kNumber) {
      std::string num = Peek().text;
      Advance();
      if (num.find('.') != std::string::npos) {
        return ast::Operand{Value::Double(std::stod(num))};
      }
      return ast::Operand{Value::Int64(std::stoll(num))};
    }
    if (Peek().kind == TokKind::kString) {
      std::string s = Peek().text;
      Advance();
      return ast::Operand{Value::String(std::move(s))};
    }
    TCQ_ASSIGN_OR_RETURN(ast::ColumnRef ref, ParseColumnRef());
    return ast::Operand{std::move(ref)};
  }

  Result<CmpOp> ParseCmpOp() {
    if (Peek().kind != TokKind::kSymbol) {
      return Status::InvalidArgument("expected comparison near '" +
                                     Peek().text + "'");
    }
    std::string s = Peek().text;
    Advance();
    if (s == "=" || s == "==") return CmpOp::kEq;
    if (s == "!=" || s == "<>") return CmpOp::kNe;
    if (s == "<") return CmpOp::kLt;
    if (s == "<=") return CmpOp::kLe;
    if (s == ">") return CmpOp::kGt;
    if (s == ">=") return CmpOp::kGe;
    return Status::InvalidArgument("unknown comparison operator '" + s + "'");
  }

  Status ParseWhere(ast::SelectStatement* stmt) {
    for (;;) {
      ast::Comparison cmp;
      TCQ_ASSIGN_OR_RETURN(cmp.lhs, ParseOperand());
      TCQ_ASSIGN_OR_RETURN(cmp.op, ParseCmpOp());
      TCQ_ASSIGN_OR_RETURN(cmp.rhs, ParseOperand());
      stmt->where.push_back(std::move(cmp));
      if (!IsKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  Result<Timestamp> ParseInt() {
    if (Peek().kind != TokKind::kNumber) {
      return Status::InvalidArgument("expected integer near '" + Peek().text +
                                     "'");
    }
    Timestamp v = std::stoll(Peek().text);
    Advance();
    return v;
  }

  // `t`, `t+N`, `t-N`, or `N`.
  Result<ast::WindowExpr> ParseWindowExpr() {
    ast::WindowExpr expr;
    if (Peek().kind == TokKind::kIdent && Peek().text == "t") {
      expr.uses_t = true;
      Advance();
      if (IsSymbol("+") || IsSymbol("-")) {
        int sign = Peek().text == "-" ? -1 : 1;
        Advance();
        TCQ_ASSIGN_OR_RETURN(Timestamp n, ParseInt());
        expr.offset = sign * n;
      }
      return expr;
    }
    TCQ_ASSIGN_OR_RETURN(expr.offset, ParseInt());
    return expr;
  }

  Status ParseForLoop(ast::ForLoop* loop) {
    TCQ_RETURN_IF_ERROR(ExpectSymbol("("));
    // init: `t = N` or empty (defaults to 0).
    if (!IsSymbol(";")) {
      if (!(Peek().kind == TokKind::kIdent && Peek().text == "t")) {
        return Status::InvalidArgument("for-loop must iterate 't'");
      }
      Advance();
      TCQ_RETURN_IF_ERROR(ExpectSymbol("="));
      TCQ_ASSIGN_OR_RETURN(loop->t_init, ParseInt());
    }
    TCQ_RETURN_IF_ERROR(ExpectSymbol(";"));
    // condition: `true`, or `t OP N`.
    if (IsKeyword("TRUE")) {
      loop->condition = {LoopCondition::Kind::kAlways, 0};
      Advance();
    } else {
      if (!(Peek().kind == TokKind::kIdent && Peek().text == "t")) {
        return Status::InvalidArgument("for-loop condition must test 't'");
      }
      Advance();
      TCQ_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      TCQ_ASSIGN_OR_RETURN(Timestamp bound, ParseInt());
      switch (op) {
        case CmpOp::kLt:
          loop->condition = {LoopCondition::Kind::kLt, bound};
          break;
        case CmpOp::kLe:
          loop->condition = {LoopCondition::Kind::kLe, bound};
          break;
        case CmpOp::kGt:
          loop->condition = {LoopCondition::Kind::kGt, bound};
          break;
        case CmpOp::kGe:
          loop->condition = {LoopCondition::Kind::kGe, bound};
          break;
        case CmpOp::kEq:
          loop->condition = {LoopCondition::Kind::kEq, bound};
          break;
        default:
          return Status::InvalidArgument("bad for-loop condition operator");
      }
    }
    TCQ_RETURN_IF_ERROR(ExpectSymbol(";"));
    // step: `t += N`, `t -= N`, `t++`... we accept `t += N`, `t -= N`,
    // `t = N` (one-shot snapshot idiom `t = -1`), or empty (defaults +1).
    if (!IsSymbol(")")) {
      if (!(Peek().kind == TokKind::kIdent && Peek().text == "t")) {
        return Status::InvalidArgument("for-loop step must assign 't'");
      }
      Advance();
      if (IsSymbol("++")) {
        Advance();
        loop->t_step = 1;
      } else if (IsSymbol("--")) {
        Advance();
        loop->t_step = -1;
      } else if (IsSymbol("+=")) {
        Advance();
        TCQ_ASSIGN_OR_RETURN(loop->t_step, ParseInt());
      } else if (IsSymbol("-=")) {
        Advance();
        TCQ_ASSIGN_OR_RETURN(Timestamp n, ParseInt());
        loop->t_step = -n;
      } else if (IsSymbol("=")) {
        Advance();
        TCQ_ASSIGN_OR_RETURN(Timestamp target, ParseInt());
        // `t = X`: treated as a step that leaves the loop (snapshot form
        // "for (; t==0; t = -1)").
        loop->t_step = target - loop->t_init;
        if (loop->t_step == 0) loop->t_step = -1;
      } else {
        return Status::InvalidArgument("bad for-loop step near '" +
                                       Peek().text + "'");
      }
    }
    TCQ_RETURN_IF_ERROR(ExpectSymbol(")"));
    TCQ_RETURN_IF_ERROR(ExpectSymbol("{"));
    while (!IsSymbol("}")) {
      if (!IsKeyword("WINDOWIS")) {
        return Status::InvalidArgument("expected WindowIs near '" +
                                       Peek().text + "'");
      }
      Advance();
      TCQ_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected stream alias in WindowIs");
      }
      ast::WindowIsStmt w;
      w.target = Peek().text;
      Advance();
      TCQ_RETURN_IF_ERROR(ExpectSymbol(","));
      TCQ_ASSIGN_OR_RETURN(w.left, ParseWindowExpr());
      TCQ_RETURN_IF_ERROR(ExpectSymbol(","));
      TCQ_ASSIGN_OR_RETURN(w.right, ParseWindowExpr());
      TCQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (IsSymbol(";")) Advance();
      loop->windows.push_back(std::move(w));
    }
    TCQ_RETURN_IF_ERROR(ExpectSymbol("}"));
    if (loop->windows.empty()) {
      return Status::InvalidArgument("for-loop has no WindowIs statements");
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ast::SelectStatement> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  TCQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace tcq
