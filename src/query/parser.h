// Recursive-descent parser for the TelegraphCQ query language ("a basic
// version of SQL" plus the §4.1 for-loop/WindowIs construct). Example, from
// the paper's sliding self-join:
//
//   SELECT c2.stockSymbol, c2.closingPrice
//   FROM ClosingStockPrices c1, ClosingStockPrices c2
//   WHERE c1.stockSymbol = 'MSFT'
//     AND c2.closingPrice > c1.closingPrice
//     AND c2.timestamp = c1.timestamp
//   for (t = ST; t < ST + 20; t += 1) {
//     WindowIs(c1, t - 4, t);
//     WindowIs(c2, t - 4, t);
//   }

#pragma once

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace tcq {

/// Parses one statement. Keywords are case-insensitive; identifiers are
/// case-sensitive. Strings use single quotes.
Result<ast::SelectStatement> ParseQuery(const std::string& text);

}  // namespace tcq
