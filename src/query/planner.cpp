#include "query/planner.h"

#include <set>

namespace tcq {

Result<SourceId> PlannedQuery::SourceOf(const std::string& alias) const {
  for (const auto& [a, entry] : bindings) {
    if (a == alias) return entry.source;
  }
  return Status::NotFound("no FROM binding named '" + alias + "'");
}

namespace {

/// Resolves a column reference to (source, field name).
Result<AttrRef> ResolveColumn(const PlannedQuery& pq,
                              const ast::ColumnRef& ref) {
  if (!ref.table.empty()) {
    for (const auto& [alias, entry] : pq.bindings) {
      if (alias == ref.table) {
        if (!entry.schema->IndexOf(ref.column, entry.source)) {
          return Status::NotFound("stream '" + alias + "' has no column '" +
                                  ref.column + "'");
        }
        return AttrRef{entry.source, ref.column};
      }
    }
    return Status::NotFound("no FROM binding named '" + ref.table + "'");
  }
  // Unqualified: must be unambiguous across bindings.
  std::optional<AttrRef> found;
  for (const auto& [alias, entry] : pq.bindings) {
    if (entry.schema->IndexOf(ref.column, entry.source)) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column '" + ref.column +
                                       "'; qualify it with an alias");
      }
      found = AttrRef{entry.source, ref.column};
    }
  }
  if (!found.has_value()) {
    return Status::NotFound("no column '" + ref.column + "' in any stream");
  }
  return *found;
}

CmpOp Flip(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;  // = and != are symmetric
  }
}

}  // namespace

Result<PlannedQuery> PlanQuery(
    const ast::SelectStatement& stmt, Catalog* catalog,
    const std::map<std::string, SourceId>* pinned_aliases) {
  PlannedQuery pq;
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }

  // Bind FROM entries. The first use of a physical stream binds its
  // canonical source id; repeated uses (self-joins) bind fresh alias ids.
  std::set<std::string> physical_seen;
  std::set<std::string> aliases_seen;
  for (const ast::StreamRef& ref : stmt.from) {
    const std::string& alias = ref.EffectiveAlias();
    if (!aliases_seen.insert(alias).second) {
      return Status::InvalidArgument("duplicate FROM alias '" + alias + "'");
    }
    Catalog::StreamEntry entry;
    if (physical_seen.insert(ref.stream).second) {
      TCQ_ASSIGN_OR_RETURN(entry, catalog->Lookup(ref.stream));
    } else if (pinned_aliases != nullptr) {
      auto pin = pinned_aliases->find(alias);
      if (pin == pinned_aliases->end()) {
        return Status::InvalidArgument("no pinned source id for self-join alias '" +
                                       alias + "'");
      }
      const Catalog::StreamEntry* pinned = catalog->LookupBySource(pin->second);
      if (pinned == nullptr || pinned->name != ref.stream) {
        return Status::InvalidArgument(
            "pinned source id " + std::to_string(pin->second) +
            " for alias '" + alias + "' does not back stream '" + ref.stream +
            "'");
      }
      entry = *pinned;
    } else {
      TCQ_ASSIGN_OR_RETURN(entry, catalog->InstantiateAlias(ref.stream));
    }
    pq.bindings.emplace_back(alias, std::move(entry));
  }
  for (const auto& [alias, entry] : pq.bindings) {
    pq.spec.extra_sources |= SourceBit(entry.source);
  }

  // Lower WHERE conjuncts: the CACQ decomposition.
  for (const ast::Comparison& cmp : stmt.where) {
    const auto* lcol = std::get_if<ast::ColumnRef>(&cmp.lhs);
    const auto* rcol = std::get_if<ast::ColumnRef>(&cmp.rhs);
    if (lcol != nullptr && rcol != nullptr) {
      TCQ_ASSIGN_OR_RETURN(AttrRef left, ResolveColumn(pq, *lcol));
      TCQ_ASSIGN_OR_RETURN(AttrRef right, ResolveColumn(pq, *rcol));
      PredicateRef pred = MakeCompareAttrs(left, cmp.op, right);
      pq.all_predicates.push_back(pred);
      if (left.source != right.source && cmp.op == CmpOp::kEq) {
        pq.spec.joins.push_back(JoinEdge{left, right});
      } else {
        pq.spec.residuals.push_back(pred);
      }
      continue;
    }
    if (lcol == nullptr && rcol == nullptr) {
      return Status::InvalidArgument(
          "constant comparison in WHERE is not supported");
    }
    // Normalize to column OP literal.
    AttrRef attr;
    Value literal;
    CmpOp op = cmp.op;
    if (lcol != nullptr) {
      TCQ_ASSIGN_OR_RETURN(attr, ResolveColumn(pq, *lcol));
      literal = std::get<Value>(cmp.rhs);
    } else {
      TCQ_ASSIGN_OR_RETURN(attr, ResolveColumn(pq, *rcol));
      literal = std::get<Value>(cmp.lhs);
      op = Flip(op);
    }
    pq.all_predicates.push_back(MakeCompareConst(attr, op, literal));
    pq.spec.filters.push_back(FilterFactor{attr, op, literal});
  }

  // Projection.
  if (!stmt.select_all) {
    std::vector<AttrRef> attrs;
    for (const ast::ColumnRef& col : stmt.select_list) {
      TCQ_ASSIGN_OR_RETURN(AttrRef a, ResolveColumn(pq, col));
      attrs.push_back(std::move(a));
    }
    pq.projection.emplace(std::move(attrs));
  }

  // Window loop.
  if (stmt.for_loop.has_value()) {
    const ast::ForLoop& loop = *stmt.for_loop;
    ForLoopSpec spec;
    spec.t_init = loop.t_init;
    spec.condition = loop.condition;
    spec.t_step = loop.t_step;
    if (spec.t_step == 0) {
      return Status::InvalidArgument("for-loop step must be nonzero");
    }
    for (const ast::WindowIsStmt& w : loop.windows) {
      TCQ_ASSIGN_OR_RETURN(SourceId source, pq.SourceOf(w.target));
      WindowBound left{w.left.uses_t ? 1 : 0, w.left.offset};
      WindowBound right{w.right.uses_t ? 1 : 0, w.right.offset};
      spec.windows.push_back(WindowIs{source, left, right});
    }
    pq.window_loop = std::move(spec);
  }

  return pq;
}

}  // namespace tcq
