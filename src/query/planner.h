// Planner: lowers a parsed statement to an adaptive plan description
// (paper §4.2.1: "the server parses, analyzes, and optimizes it into an
// adaptive plan, that is, a plan that includes the adaptive operators of
// Section 2"). The lowering performs the CACQ decomposition: single-variable
// factors, equality join edges, and residual multi-variable factors; plus a
// projection and an optional lowered window loop.

#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "cacq/query_registry.h"
#include "operators/projection.h"
#include "query/ast.h"
#include "query/catalog.h"
#include "window/window_spec.h"

namespace tcq {

struct PlannedQuery {
  /// FROM bindings in statement order: (alias, catalog entry). Self-joins
  /// bind the same physical stream under distinct logical source ids.
  std::vector<std::pair<std::string, Catalog::StreamEntry>> bindings;

  /// The CACQ decomposition, for shared continuous execution.
  CQSpec spec;

  /// Output projection (nullopt = SELECT *).
  std::optional<Projection> projection;

  /// Lowered window loop (nullopt = pure continuous query).
  std::optional<ForLoopSpec> window_loop;

  /// Every WHERE conjunct as a predicate, for the windowed execution path.
  std::vector<PredicateRef> all_predicates;

  /// The logical source the binding of `alias` maps to.
  Result<SourceId> SourceOf(const std::string& alias) const;
};

/// Plans a statement against the catalog. Self-join aliases allocate fresh
/// logical source ids via Catalog::InstantiateAlias — unless `pinned_aliases`
/// maps the binding's effective alias to a source id, in which case that
/// existing catalog entry is reused instead of allocating. Checkpoint restore
/// re-plans recorded statements with their recorded binding ids pinned, so a
/// restored query references exactly the sources its snapshot state names.
Result<PlannedQuery> PlanQuery(
    const ast::SelectStatement& stmt, Catalog* catalog,
    const std::map<std::string, SourceId>* pinned_aliases = nullptr);

}  // namespace tcq
