#include "server/telegraphcq.h"

#include <algorithm>
#include <chrono>

namespace tcq {

// --- WindowResultBuffer -------------------------------------------------------

void WindowResultBuffer::Push(WindowResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (result.kind) {
    case WindowResultKind::kFinal:
      // Only sealed windows count as fired; speculative revisions of the
      // same window would otherwise inflate the count arbitrarily.
      ++fired_;
      if (fired_counter_ != nullptr) fired_counter_->Inc();
      [[fallthrough]];
    case WindowResultKind::kSpeculative:
      tuples_ += result.tuples.size();
      if (tuples_counter_ != nullptr) {
        tuples_counter_->Inc(result.tuples.size());
      }
      break;
    case WindowResultKind::kRetraction:
      retractions_ += result.tuples.size();
      if (retractions_counter_ != nullptr) {
        retractions_counter_->Inc(result.tuples.size());
      }
      break;
  }
  results_.push_back(std::move(result));
}

void WindowResultBuffer::AttachMetrics(Counter* windows_fired,
                                       Counter* tuples,
                                       Counter* retractions) {
  std::lock_guard<std::mutex> lock(mu_);
  fired_counter_ = windows_fired;
  tuples_counter_ = tuples;
  retractions_counter_ = retractions;
}

uint64_t WindowResultBuffer::windows_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

uint64_t WindowResultBuffer::tuples_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuples_;
}

uint64_t WindowResultBuffer::retractions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retractions_;
}

bool WindowResultBuffer::Poll(WindowResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (results_.empty()) return false;
  *out = std::move(results_.front());
  results_.pop_front();
  return true;
}

bool WindowResultBuffer::Finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_ && results_.empty();
}

void WindowResultBuffer::MarkFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_ = true;
}

size_t WindowResultBuffer::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

// --- TelegraphCQ ---------------------------------------------------------------

TelegraphCQ::TelegraphCQ(Options opts, MetricsRegistryRef metrics)
    : opts_(opts),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      tracer_(std::make_shared<obs::Tracer>(opts.trace, metrics_)),
      executor_(opts.executor, metrics_, tracer_),
      wrapper_(opts.wrapper, metrics_, tracer_),
      spool_pool_(BufferPool::Options{opts.spool_buffer_pages,
                                      ReplacementPolicy::kLru}) {
  ingested_ = metrics_->GetCounter("tcq_server_tuples_ingested_total");
  if (opts_.system_streams.enabled) {
    // The reserved streams exist from construction on, so clients can submit
    // queries over them before Start(). Registration cannot fail here: the
    // catalog is empty and the names are unreachable through the public API.
    (void)DefineStreamInternal(obs::SystemStreamSource::kMetricsStream,
                               obs::SystemStreamSource::MetricsSchema());
    (void)DefineStreamInternal(obs::SystemStreamSource::kQueuesStream,
                               obs::SystemStreamSource::QueuesSchema());
    (void)DefineStreamInternal(obs::SystemStreamSource::kLatencyStream,
                               obs::SystemStreamSource::LatencySchema());
    system_streams_ = std::make_unique<obs::SystemStreamSource>(
        opts_.system_streams, metrics_, tracer_,
        [this](const std::string& stream,
               std::vector<obs::SystemStreamSource::Row> rows,
               Timestamp tick) {
          // Columnar-native publishing via the builder API; rows the
          // publisher races against shutdown are dropped by the typed
          // Status (never silently mid-batch).
          Result<BatchBuilder> batch = NewBatch(stream);
          if (!batch.ok()) return;
          for (auto& row : rows) {
            (void)batch->Append(tick, std::move(row.values));
          }
          (void)PushBuilt(std::move(*batch));
        });
  }
}

TelegraphCQ::~TelegraphCQ() { Stop(); }

Result<SourceId> TelegraphCQ::DefineStream(const std::string& name,
                                           const std::vector<Field>& fields) {
  return DefineStream(name, fields, StreamOptions());
}

Result<SourceId> TelegraphCQ::DefineStream(const std::string& name,
                                           const std::vector<Field>& fields,
                                           StreamOptions stream_opts) {
  if (name.rfind("tcq$", 0) == 0) {
    return Status::InvalidArgument(
        "stream names starting with 'tcq$' are reserved for introspection "
        "streams");
  }
  TCQ_ASSIGN_OR_RETURN(SourceId source, DefineStreamInternal(name, fields));
  if (stream_opts.punctuate) {
    std::lock_guard<std::mutex> lock(mu_);
    PhysicalStream& stream = streams_[name];
    stream.event_time = stream_opts;
    stream.late = metrics_->GetCounter(
        MetricName("tcq_wrapper_late_tuples_total", "stream", name));
  }
  return source;
}

Result<SourceId> TelegraphCQ::DefineStreamInternal(
    const std::string& name, const std::vector<Field>& fields) {
  std::lock_guard<std::mutex> lock(mu_);
  TCQ_ASSIGN_OR_RETURN(SourceId source, catalog_.DefineStream(name, fields));
  TCQ_ASSIGN_OR_RETURN(Catalog::StreamEntry entry, catalog_.Lookup(name));
  PhysicalStream stream;
  stream.name = name;
  stream.canonical = source;
  stream.schema = entry.schema;
  stream.ingested = metrics_->GetCounter(
      MetricName("tcq_server_stream_ingested_total", "stream", name));
  stream.spool_failed = metrics_->GetCounter(
      MetricName("tcq_server_spool_append_failed_total", "stream", name));
  if (!opts_.spool_dir.empty()) {
    TCQ_ASSIGN_OR_RETURN(
        stream.spool,
        StreamStore::Create(opts_.spool_dir + "/" + name + ".log",
                            entry.schema));
  }
  streams_[name] = std::move(stream);
  TCQ_RETURN_IF_ERROR(executor_.RegisterStream(source, entry.schema));
  return source;
}

Status TelegraphCQ::AttachSource(const std::string& stream_name,
                                 std::unique_ptr<StreamSource> source,
                                 std::unique_ptr<ArrivalProcess> arrivals) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + stream_name + "'");
  }
  if (started_) {
    return Status::FailedPrecondition("attach sources before Start()");
  }
  FjordConsumer feed =
      wrapper_.HostPullSource(std::move(source), std::move(arrivals));
  it->second.wrapper_feeds.push_back(std::move(feed));
  return Status::OK();
}

void TelegraphCQ::RouteBatch(PhysicalStream* stream, const TupleBatch& batch) {
  if (batch.empty() && batch.punctuations().empty()) return;
  ingested_->Inc(batch.size());
  stream->ingested->Inc(batch.size());
  if (stream->spool != nullptr) {
    // The spool is a row-shaped boundary: columnar batches materialize rows
    // here (and only here / SteM inserts / egress, DESIGN.md §11).
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!stream->spool->Append(batch.RowAt(i)).ok()) {
        stream->spool_failed->Inc();
      }
    }
  }
  // Columnarize once at the fabric entrance: every subscription below (and
  // the eddy prefilters downstream) shares this store by reference.
  const ColumnStore::Ref& cols = batch.columns();
  // The stream-level watermark lane, as VALUES: every subscription re-tags
  // them under its own logical source below, exactly like the rows. A
  // punctuating stream derives the lane here at the entrance — the only
  // point that sees the merge of all attached feeds, so its max-timestamp
  // scan is authoritative where a single feed's heartbeat is not (incoming
  // per-feed heartbeats are dropped and re-derived). A plain stream passes
  // the producer's lane through untouched.
  std::vector<Timestamp> lane;
  if (stream->event_time.punctuate) {
    if (cols != nullptr) {
      const int64_t* ts = cols->timestamps();
      for (size_t i = 0; i < batch.size(); ++i) {
        if (ts[i] < stream->last_punct) stream->late->Inc();
        if (ts[i] > stream->max_ts) stream->max_ts = ts[i];
      }
    } else {
      for (const Tuple& t : batch) {
        if (t.timestamp() < stream->last_punct) stream->late->Inc();
        if (t.timestamp() > stream->max_ts) stream->max_ts = t.timestamp();
      }
    }
    if (stream->max_ts != kMinTimestamp) {
      Timestamp wm = stream->max_ts - stream->event_time.disorder_bound;
      if (wm > stream->last_punct) {
        stream->last_punct = wm;
        lane.push_back(wm);
      }
    }
  } else {
    for (const Punctuation& p : batch.punctuations()) {
      lane.push_back(p.low_watermark);
    }
  }
  for (const Subscription& sub : stream->subs) {
    // A canonical-source batch whose tuples already carry the
    // subscription's schema passes through untouched; anything else is
    // re-tagged under the subscription's logical source (self-join alias).
    bool direct = sub.logical == stream->canonical;
    if (direct) {
      if (cols != nullptr) {
        direct = cols->schema().get() == sub.schema.get();
      } else {
        for (const Tuple& t : batch) {
          if (t.schema().get() != sub.schema.get()) {
            direct = false;
            break;
          }
        }
      }
    }
    if (direct) {
      if (lane.empty() && batch.punctuations().empty()) {
        sub.deliver(batch);
        continue;
      }
      // Lane present: deliver a copy carrying the re-tagged lane (cheap for
      // columnar batches — the store is shared by reference).
      TupleBatch with_lane = batch;
      with_lane.ClearPunctuations();
      for (Timestamp wm : lane) {
        with_lane.AddPunctuation(Punctuation{sub.logical, wm});
      }
      sub.deliver(with_lane);
      continue;
    }
    if (cols != nullptr) {
      // Zero-copy alias re-tag: a view over the same lanes under the
      // subscription's schema.
      if (ColumnStore::Ref view = ColumnStore::Retagged(cols, sub.schema)) {
        TupleBatch retagged(sub.logical, std::move(view));
        for (Timestamp wm : lane) {
          retagged.AddPunctuation(Punctuation{sub.logical, wm});
        }
        sub.deliver(retagged);
        continue;
      }
    }
    TupleBatch retagged(sub.logical);
    retagged.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Tuple t = batch.RowAt(i);
      retagged.push_back(Tuple::Make(sub.schema, t.values(), t.timestamp()));
    }
    for (Timestamp wm : lane) {
      retagged.AddPunctuation(Punctuation{sub.logical, wm});
    }
    sub.deliver(retagged);
  }
}

Status TelegraphCQ::BatchBuilder::Append(Timestamp timestamp,
                                         std::vector<Value> values) {
  // Whole-row validation first so a rejected row leaves the lanes intact.
  TCQ_RETURN_IF_ERROR(schema()->Validate(values));
  cols_.AppendTimestamp(timestamp);
  for (size_t c = 0; c < values.size(); ++c) {
    bool ok = cols_.Append(c, std::move(values[c]));
    (void)ok;
    assert(ok && "Schema::Validate admitted a value the lane rejects");
  }
  return Status::OK();
}

Result<TelegraphCQ::BatchBuilder> TelegraphCQ::NewBatch(
    const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + stream_name + "'");
  }
  if (it->second.closed) {
    return Status::FailedPrecondition("stream '" + stream_name +
                                      "' is closed");
  }
  return BatchBuilder(stream_name, it->second.schema);
}

Status TelegraphCQ::PushBuilt(BatchBuilder&& built) {
  if (built.num_rows() == 0) return Status::OK();
  ColumnStore::Ref cols = built.cols_.Finish();
  if (cols == nullptr) {
    // Unreachable through Append (it keeps lanes rectangular); kept as a
    // typed failure rather than an assert so a future builder extension
    // cannot turn it into a silent drop.
    return Status::InvalidArgument("batch builder lanes are ragged");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(built.stream_);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + built.stream_ + "'");
  }
  PhysicalStream& stream = it->second;
  if (stream.closed) {
    return Status::FailedPrecondition("stream '" + built.stream_ +
                                      "' is closed");
  }
  TupleBatch batch(stream.canonical, std::move(cols));
  RouteBatch(&stream, batch);
  return Status::OK();
}

Status TelegraphCQ::PushBatch(const std::string& stream_name,
                              std::vector<TupleBatchRow> rows) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + stream_name + "'");
  }
  PhysicalStream& stream = it->second;
  if (stream.closed) {
    return Status::FailedPrecondition("stream '" + stream_name +
                                      "' is closed");
  }
  // Atomic validation: reject the whole batch before any row is ingested.
  for (size_t i = 0; i < rows.size(); ++i) {
    Status s = stream.schema->Validate(rows[i].values);
    if (!s.ok()) {
      return Status::InvalidArgument("row " + std::to_string(i) + " of " +
                                     std::to_string(rows.size()) + ": " +
                                     s.message());
    }
  }
  if (rows.empty()) return Status::OK();
  // Row -> column transposition: PushBatch is a compat wrapper over the
  // same columnar ingest path PushBuilt takes. Validation above guarantees
  // every value fits its lane, so Finish() cannot go ragged.
  ColumnStoreBuilder builder(stream.schema);
  for (TupleBatchRow& row : rows) {
    builder.AppendTimestamp(row.timestamp);
    for (size_t c = 0; c < row.values.size(); ++c) {
      bool ok = builder.Append(c, std::move(row.values[c]));
      (void)ok;
      assert(ok && "Schema::Validate admitted a value the lane rejects");
    }
  }
  ColumnStore::Ref cols = builder.Finish();
  assert(cols != nullptr);
  TupleBatch batch(stream.canonical, std::move(cols));
  RouteBatch(&stream, batch);
  return Status::OK();
}

Status TelegraphCQ::Push(const std::string& stream_name,
                         std::vector<Value> values, Timestamp timestamp) {
  std::vector<TupleBatchRow> rows;
  rows.push_back(TupleBatchRow{std::move(values), timestamp});
  return PushBatch(stream_name, std::move(rows));
}

Status TelegraphCQ::CloseStream(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + stream_name + "'");
  }
  it->second.closed = true;
  // Executor-side close lets shared-CQ DUs drain to completion; windowed
  // subscriptions close their input fjords and fire remaining windows.
  for (const Subscription& sub : it->second.subs) {
    (void)executor_.CloseStream(sub.logical);
    if (sub.close) sub.close();
  }
  return Status::OK();
}

Status TelegraphCQ::SubscribeContinuous(const std::string& physical,
                                        const Catalog::StreamEntry& entry) {
  PhysicalStream& stream = streams_[physical];
  for (const Subscription& sub : stream.subs) {
    // Only the shared (owner==0) executor subscription dedups: windowed
    // queries also subscribe under this logical source, and their presence
    // must not swallow the executor feed for a later continuous query.
    if (sub.owner == 0 && sub.logical == entry.source) return Status::OK();
  }
  // Alias sources must be registered with the executor once.
  if (entry.source != stream.canonical) {
    Status s = executor_.RegisterStream(entry.source, entry.schema);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  Subscription sub;
  sub.logical = entry.source;
  sub.schema = entry.schema;
  sub.deliver = [this, logical = entry.source](const TupleBatch& b) {
    TupleBatch routed = b;
    routed.set_source(logical);
    (void)executor_.IngestBatch(std::move(routed));
  };
  stream.subs.push_back(std::move(sub));
  return Status::OK();
}

Result<TelegraphCQ::ClientHandle> TelegraphCQ::Submit(const std::string& sql,
                                                      SubmitOptions sub_opts) {
  TCQ_ASSIGN_OR_RETURN(ast::SelectStatement stmt, ParseQuery(sql));

  std::unique_lock<std::mutex> lock(mu_);
  TCQ_ASSIGN_OR_RETURN(PlannedQuery plan, PlanQuery(stmt, &catalog_));

  // Map each binding back to its physical stream.
  std::vector<std::pair<std::string, Catalog::StreamEntry>> bindings =
      plan.bindings;
  for (const auto& [alias, entry] : bindings) {
    if (!streams_.contains(entry.name)) {
      return Status::NotFound("stream '" + entry.name +
                              "' is not backed by a physical stream");
    }
  }

  ClientHandle handle;

  if (plan.window_loop.has_value()) {
    // Windowed query: its own DU fed by dedicated fjords.
    GlobalQueryId wid = next_window_query_id_++;
    auto buffer = std::make_shared<WindowResultBuffer>();
    std::string qlabel = "q" + std::to_string(wid);
    buffer->AttachMetrics(
        metrics_->GetCounter(
            MetricName("tcq_window_fired_total", "query", qlabel)),
        metrics_->GetCounter(
            MetricName("tcq_window_tuples_total", "query", qlabel)),
        metrics_->GetCounter(
            MetricName("tcq_window_retractions_total", "query", qlabel)));
    auto projection = plan.projection;
    WindowedQuery wq;
    wq.loop = *plan.window_loop;
    wq.predicates = plan.all_predicates;
    // The query runs on event time when every bound stream punctuates:
    // watermarks then drive window firing and arrival order stops
    // mattering (up to each stream's disorder bound). A non-punctuating
    // stream has no watermark, so mixing would stall the loop forever.
    bool all_punctuate = true;
    for (const auto& [alias, entry] : bindings) {
      if (!streams_[entry.name].event_time.punctuate) all_punctuate = false;
    }
    if (all_punctuate) wq.loop.semantics = TimeSemantics::kEvent;
    OnlineWindowRunner::Options runner_opts;
    runner_opts.speculate = sub_opts.speculate && all_punctuate;
    auto du = std::make_shared<WindowedQueryDispatchUnit>(
        "windowed" + std::to_string(wid), std::move(wq),
        [buffer, projection](const WindowResult& r) {
          if (!projection.has_value()) {
            buffer->Push(r);
            return;
          }
          WindowResult projected;
          projected.t = r.t;
          projected.kind = r.kind;
          projected.revision = r.revision;
          for (const Tuple& t : r.tuples) {
            // Project the values, then restore the revision tag: a
            // retraction must cancel the projected tuple it revises.
            auto p = projection->Apply(t);
            if (!p.ok()) continue;
            projected.tuples.push_back(
                t.IsRetraction() ? Tuple::Retraction(*p) : std::move(*p));
          }
          buffer->Push(std::move(projected));
        },
        /*quantum=*/64, runner_opts);
    for (const auto& [alias, entry] : bindings) {
      auto endpoints = Fjord::Make(FjordMode::kPush, opts_.egress_capacity,
                                   "win:" + alias, metrics_.get());
      du->AddInput(entry.source, endpoints.consumer);
      PhysicalStream& stream = streams_[entry.name];
      Subscription sub;
      sub.logical = entry.source;
      sub.schema = entry.schema;
      sub.owner = wid;
      auto producer = std::make_shared<FjordProducer>(endpoints.producer);
      Counter* win_dropped = metrics_->GetCounter(
          MetricName("tcq_window_input_dropped_total", "window",
                     "w" + std::to_string(wid)));
      sub.deliver = [producer, win_dropped](const TupleBatch& b) {
        // Push mode: drop on overload (windowed clients are best-effort
        // under backpressure) — but count what was dropped; the unconsumed
        // suffix stays in the offered batch by the ProduceBatch contract.
        TupleBatch offered = b;
        (void)producer->ProduceBatch(&offered);
        if (!offered.empty()) win_dropped->Inc(offered.size());
      };
      // CloseStream closes the input fjord so the DU sees end-of-stream and
      // fires the windows it is still holding open.
      sub.close = [producer] { producer->Close(); };
      stream.subs.push_back(std::move(sub));
    }
    // Host the windowed DU on its own EO so it cannot starve classes.
    auto eo = std::make_unique<ExecutionObject>(
        "win-eo" + std::to_string(wid), MakeRoundRobinScheduler(), metrics_);
    eo->AddDispatchUnit(du);
    if (started_) eo->Start();
    handle.id = wid;
    handle.windows = buffer;
    ClientInfo& client = clients_[handle.id];
    client.windowed = true;
    client.windows = buffer;
    client.window_du = du;
    client.window_eo = std::move(eo);
    for (const auto& [alias, entry] : bindings) {
      // Self-joins bind one physical stream under several aliases; count it
      // once per query.
      if (std::find(client.streams.begin(), client.streams.end(),
                    entry.name) == client.streams.end()) {
        client.streams.push_back(entry.name);
      }
    }
    return handle;
  }

  // Continuous query through the shared executor.
  for (const auto& [alias, entry] : bindings) {
    TCQ_RETURN_IF_ERROR(SubscribeContinuous(entry.name, entry));
  }
  auto egress = std::make_shared<PushEgress>(
      PushEgress::Options{opts_.egress_capacity, opts_.egress_shed}, metrics_,
      "client" + std::to_string(next_client_label_++));
  auto projection = plan.projection;
  Executor::Sink sink = [egress, projection](GlobalQueryId id,
                                             const Tuple& t) {
    // Punctuations (the class's merged watermark reaching the client) have
    // no columns to project; they pass through as-is.
    if (!projection.has_value() || !t.IsData()) {
      egress->Offer(Delivery{id, t});
      return;
    }
    auto p = projection->Apply(t);
    if (p.ok()) egress->Offer(Delivery{id, std::move(*p)});
  };
  lock.unlock();  // SubmitQuery blocks on admission; don't hold the mutex
  TCQ_ASSIGN_OR_RETURN(GlobalQueryId id,
                       executor_.SubmitQuery(plan.spec, std::move(sink)));
  handle.id = id;
  handle.results = egress;
  {
    std::lock_guard<std::mutex> relock(mu_);
    ClientInfo& client = clients_[id];
    client.egress = egress;
    for (const auto& [alias, entry] : bindings) {
      if (std::find(client.streams.begin(), client.streams.end(),
                    entry.name) == client.streams.end()) {
        client.streams.push_back(entry.name);
      }
    }
  }
  return handle;
}

Result<std::vector<Tuple>> TelegraphCQ::ScanHistory(const std::string& name,
                                                    Timestamp l,
                                                    Timestamp r) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + name + "'");
  }
  if (it->second.spool == nullptr) {
    return Status::FailedPrecondition(
        "stream '" + name + "' is not spooled (set Options::spool_dir)");
  }
  WindowedScanner scanner(it->second.spool.get(), &spool_pool_);
  std::vector<Tuple> out;
  TCQ_RETURN_IF_ERROR(scanner.Scan(l, r, &out));
  return out;
}

Status TelegraphCQ::Cancel(GlobalQueryId id) {
  std::shared_ptr<WindowResultBuffer> windows;
  std::unique_ptr<ExecutionObject> eo;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(id);
    if (it == clients_.end()) {
      return Status::NotFound("no query " + std::to_string(id));
    }
    if (it->second.windowed) {
      windows = it->second.windows;
      eo = std::move(it->second.window_eo);
      // Detach the query's subscriptions so its fjords stop filling.
      for (auto& [name, stream] : streams_) {
        std::erase_if(stream.subs, [id](const Subscription& s) {
          return s.owner == id;
        });
      }
    }
    clients_.erase(it);
  }
  if (windows != nullptr) {
    // Windowed queries never entered the executor: stop their dedicated EO
    // (outside mu_ — Stop joins the EO thread) and finish the buffer.
    if (eo != nullptr) eo->Stop();
    windows->MarkFinished();
    return Status::OK();
  }
  return executor_.RemoveQuery(id);
}

TelegraphCQ::Introspection TelegraphCQ::Introspect() const {
  Introspection out;
  out.metrics = metrics_->Snapshot();
  out.tuples_ingested = ingested_->Value();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, client] : clients_) {
    QueryStats qs;
    qs.id = id;
    qs.windowed = client.windowed;
    for (const std::string& name : client.streams) {
      auto it = streams_.find(name);
      if (it != streams_.end()) qs.tuples_in += it->second.ingested->Value();
    }
    if (client.egress != nullptr) {
      qs.tuples_out = client.egress->delivered();
      qs.shed = client.egress->shed();
    }
    if (client.windows != nullptr) {
      qs.windows_fired = client.windows->windows_fired();
      qs.tuples_out = client.windows->tuples_out();
      qs.retractions = client.windows->retractions();
    }
    out.queries.push_back(qs);
  }
  for (const auto& [name, stream] : streams_) {
    StreamStats ss;
    ss.name = name;
    ss.source = stream.canonical;
    ss.tuples_in = stream.ingested->Value();
    // Executor-side drops accrue against each logical subscription the
    // physical stream fans out to (the canonical id plus re-tagged aliases).
    ss.dropped = executor_.stream_tuples_dropped(stream.canonical);
    for (const Subscription& sub : stream.subs) {
      if (sub.logical != stream.canonical) {
        ss.dropped += executor_.stream_tuples_dropped(sub.logical);
      }
    }
    if (stream.late != nullptr) ss.late_tuples = stream.late->Value();
    out.streams.push_back(std::move(ss));
  }
  out.classes = executor_.Topology();
  out.class_merges = executor_.class_merges();
  out.class_migrations = executor_.class_migrations();
  out.class_gcs = executor_.class_gcs();
  return out;
}

void TelegraphCQ::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
  }
  executor_.Start();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, client] : clients_) {
      if (client.window_eo != nullptr) client.window_eo->Start();
    }
  }
  wrapper_.Start();
  stop_.store(false);
  pump_thread_ = std::thread([this] { PumpLoop(); });
  if (system_streams_ != nullptr) system_streams_->Start();
}

void TelegraphCQ::PumpLoop() {
  // Drains wrapper feeds into the routing fabric.
  while (!stop_.load(std::memory_order_relaxed)) {
    bool any = false;
    bool all_closed = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [name, stream] : streams_) {
        for (FjordConsumer& feed : stream.wrapper_feeds) {
          TupleBatch batch;
          batch.set_source(stream.canonical);
          QueueOp op = QueueOp::kOk;
          size_t got = feed.ConsumeBatch(&batch, 64, &op);
          if (got > 0) {
            RouteBatch(&stream, batch);
            any = true;
          }
          if (op == QueueOp::kWouldBlock) all_closed = false;
          if (!feed.Exhausted()) all_closed = false;
        }
        if (stream.wrapper_feeds.empty()) all_closed = false;
      }
    }
    if (!any) {
      if (all_closed) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void TelegraphCQ::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
  }
  // Stop the publisher first: it pushes into streams_ via PushBatch.
  if (system_streams_ != nullptr) system_streams_->Stop();
  wrapper_.Stop();
  stop_.store(true);
  if (pump_thread_.joinable()) pump_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, client] : clients_) {
      if (client.window_eo != nullptr) client.window_eo->Stop();
    }
  }
  executor_.Stop();
}

}  // namespace tcq
