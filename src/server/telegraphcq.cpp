#include "server/telegraphcq.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

namespace tcq {

// --- WindowResultBuffer -------------------------------------------------------

void WindowResultBuffer::Push(WindowResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (result.kind) {
    case WindowResultKind::kFinal:
      // Only sealed windows count as fired; speculative revisions of the
      // same window would otherwise inflate the count arbitrarily.
      ++fired_;
      if (fired_counter_ != nullptr) fired_counter_->Inc();
      [[fallthrough]];
    case WindowResultKind::kSpeculative:
      tuples_ += result.tuples.size();
      if (tuples_counter_ != nullptr) {
        tuples_counter_->Inc(result.tuples.size());
      }
      break;
    case WindowResultKind::kRetraction:
      retractions_ += result.tuples.size();
      if (retractions_counter_ != nullptr) {
        retractions_counter_->Inc(result.tuples.size());
      }
      break;
  }
  results_.push_back(std::move(result));
}

void WindowResultBuffer::AttachMetrics(Counter* windows_fired,
                                       Counter* tuples,
                                       Counter* retractions) {
  std::lock_guard<std::mutex> lock(mu_);
  fired_counter_ = windows_fired;
  tuples_counter_ = tuples;
  retractions_counter_ = retractions;
}

uint64_t WindowResultBuffer::windows_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

uint64_t WindowResultBuffer::tuples_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuples_;
}

uint64_t WindowResultBuffer::retractions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retractions_;
}

bool WindowResultBuffer::Poll(WindowResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (results_.empty()) return false;
  *out = std::move(results_.front());
  results_.pop_front();
  return true;
}

bool WindowResultBuffer::Finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_ && results_.empty();
}

void WindowResultBuffer::MarkFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_ = true;
}

size_t WindowResultBuffer::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

// --- TelegraphCQ ---------------------------------------------------------------

TelegraphCQ::TelegraphCQ(Options opts, MetricsRegistryRef metrics)
    : opts_(opts),
      metrics_(OrPrivateRegistry(std::move(metrics))),
      tracer_(std::make_shared<obs::Tracer>(opts.trace, metrics_)),
      executor_(opts.executor, metrics_, tracer_),
      wrapper_(opts.wrapper, metrics_, tracer_),
      spool_pool_(BufferPool::Options{opts.spool_buffer_pages,
                                      ReplacementPolicy::kLru}) {
  ingested_ = metrics_->GetCounter("tcq_server_tuples_ingested_total");
  ckpt_epochs_ = metrics_->GetCounter("tcq_checkpoint_epochs_total");
  ckpt_bytes_ = metrics_->GetCounter("tcq_checkpoint_bytes");
  ckpt_failures_ = metrics_->GetCounter("tcq_checkpoint_failures_total");
  ckpt_duration_us_ = metrics_->GetGauge("tcq_checkpoint_duration_us");
  restore_replayed_ = metrics_->GetCounter("tcq_restore_replay_tuples");
  restore_duration_us_ = metrics_->GetGauge("tcq_restore_duration_us");
  if (opts_.system_streams.enabled) {
    // The reserved streams exist from construction on, so clients can submit
    // queries over them before Start(). Registration cannot fail here: the
    // catalog is empty and the names are unreachable through the public API.
    (void)DefineStreamInternal(obs::SystemStreamSource::kMetricsStream,
                               obs::SystemStreamSource::MetricsSchema());
    (void)DefineStreamInternal(obs::SystemStreamSource::kQueuesStream,
                               obs::SystemStreamSource::QueuesSchema());
    (void)DefineStreamInternal(obs::SystemStreamSource::kLatencyStream,
                               obs::SystemStreamSource::LatencySchema());
    system_streams_ = std::make_unique<obs::SystemStreamSource>(
        opts_.system_streams, metrics_, tracer_,
        [this](const std::string& stream,
               std::vector<obs::SystemStreamSource::Row> rows,
               Timestamp tick) {
          // Columnar-native publishing via the builder API; rows the
          // publisher races against shutdown are dropped by the typed
          // Status (never silently mid-batch).
          Result<BatchBuilder> batch = NewBatch(stream);
          if (!batch.ok()) return;
          for (auto& row : rows) {
            (void)batch->Append(tick, std::move(row.values));
          }
          (void)PushBuilt(std::move(*batch));
        });
  }
}

TelegraphCQ::~TelegraphCQ() { Stop(); }

Result<SourceId> TelegraphCQ::DefineStream(const std::string& name,
                                           const std::vector<Field>& fields) {
  return DefineStream(name, fields, StreamOptions());
}

Result<SourceId> TelegraphCQ::DefineStream(const std::string& name,
                                           const std::vector<Field>& fields,
                                           StreamOptions stream_opts) {
  if (name.rfind("tcq$", 0) == 0) {
    return Status::InvalidArgument(
        "stream names starting with 'tcq$' are reserved for introspection "
        "streams");
  }
  TCQ_ASSIGN_OR_RETURN(SourceId source, DefineStreamInternal(name, fields));
  if (stream_opts.punctuate) {
    std::lock_guard<std::mutex> lock(mu_);
    PhysicalStream& stream = streams_[name];
    stream.event_time = stream_opts;
    stream.late = metrics_->GetCounter(
        MetricName("tcq_wrapper_late_tuples_total", "stream", name));
  }
  return source;
}

Result<SourceId> TelegraphCQ::DefineStreamInternal(
    const std::string& name, const std::vector<Field>& fields,
    bool reopen_spool) {
  std::lock_guard<std::mutex> lock(mu_);
  TCQ_ASSIGN_OR_RETURN(SourceId source, catalog_.DefineStream(name, fields));
  TCQ_ASSIGN_OR_RETURN(Catalog::StreamEntry entry, catalog_.Lookup(name));
  PhysicalStream stream;
  stream.name = name;
  stream.canonical = source;
  stream.schema = entry.schema;
  stream.ingested = metrics_->GetCounter(
      MetricName("tcq_server_stream_ingested_total", "stream", name));
  stream.spool_failed = metrics_->GetCounter(
      MetricName("tcq_server_spool_append_failed_total", "stream", name));
  if (!opts_.spool_dir.empty()) {
    const std::string path = opts_.spool_dir + "/" + name + ".log";
    if (reopen_spool) {
      // Restore path: keep the archived history and append past it. A
      // missing file (stream spooled for the first time) falls back to
      // a fresh store.
      Result<std::unique_ptr<StreamStore>> opened =
          StreamStore::Open(path, entry.schema);
      if (opened.ok()) {
        stream.spool = std::move(*opened);
      } else if (opened.status().code() == StatusCode::kNotFound) {
        TCQ_ASSIGN_OR_RETURN(stream.spool,
                             StreamStore::Create(path, entry.schema));
      } else {
        return opened.status();
      }
    } else {
      TCQ_ASSIGN_OR_RETURN(stream.spool,
                           StreamStore::Create(path, entry.schema));
    }
  }
  streams_[name] = std::move(stream);
  TCQ_RETURN_IF_ERROR(executor_.RegisterStream(source, entry.schema));
  return source;
}

Status TelegraphCQ::AttachSource(const std::string& stream_name,
                                 std::unique_ptr<StreamSource> source,
                                 std::unique_ptr<ArrivalProcess> arrivals) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + stream_name + "'");
  }
  if (started_) {
    return Status::FailedPrecondition("attach sources before Start()");
  }
  FjordConsumer feed =
      wrapper_.HostPullSource(std::move(source), std::move(arrivals));
  it->second.wrapper_feeds.push_back(std::move(feed));
  return Status::OK();
}

void TelegraphCQ::RouteBatch(PhysicalStream* stream, const TupleBatch& batch,
                             bool spool) {
  if (batch.empty() && batch.punctuations().empty()) return;
  ingested_->Inc(batch.size());
  stream->ingested->Inc(batch.size());
  if (spool && stream->spool != nullptr) {
    // The spool is a row-shaped boundary: columnar batches materialize rows
    // here (and only here / SteM inserts / egress, DESIGN.md §11).
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!stream->spool->Append(batch.RowAt(i)).ok()) {
        stream->spool_failed->Inc();
      }
    }
  }
  // Columnarize once at the fabric entrance: every subscription below (and
  // the eddy prefilters downstream) shares this store by reference.
  const ColumnStore::Ref& cols = batch.columns();
  // The stream-level watermark lane, as VALUES: every subscription re-tags
  // them under its own logical source below, exactly like the rows. A
  // punctuating stream derives the lane here at the entrance — the only
  // point that sees the merge of all attached feeds, so its max-timestamp
  // scan is authoritative where a single feed's heartbeat is not (incoming
  // per-feed heartbeats are dropped and re-derived). A plain stream passes
  // the producer's lane through untouched.
  std::vector<Timestamp> lane;
  if (stream->event_time.punctuate) {
    if (cols != nullptr) {
      const int64_t* ts = cols->timestamps();
      for (size_t i = 0; i < batch.size(); ++i) {
        if (ts[i] < stream->last_punct) stream->late->Inc();
        if (ts[i] > stream->max_ts) stream->max_ts = ts[i];
      }
    } else {
      for (const Tuple& t : batch) {
        if (t.timestamp() < stream->last_punct) stream->late->Inc();
        if (t.timestamp() > stream->max_ts) stream->max_ts = t.timestamp();
      }
    }
    if (stream->max_ts != kMinTimestamp) {
      Timestamp wm = stream->max_ts - stream->event_time.disorder_bound;
      if (wm > stream->last_punct) {
        stream->last_punct = wm;
        lane.push_back(wm);
      }
    }
  } else {
    for (const Punctuation& p : batch.punctuations()) {
      lane.push_back(p.low_watermark);
    }
  }
  for (const Subscription& sub : stream->subs) {
    // A canonical-source batch whose tuples already carry the
    // subscription's schema passes through untouched; anything else is
    // re-tagged under the subscription's logical source (self-join alias).
    bool direct = sub.logical == stream->canonical;
    if (direct) {
      if (cols != nullptr) {
        direct = cols->schema().get() == sub.schema.get();
      } else {
        for (const Tuple& t : batch) {
          if (t.schema().get() != sub.schema.get()) {
            direct = false;
            break;
          }
        }
      }
    }
    if (direct) {
      if (lane.empty() && batch.punctuations().empty()) {
        sub.deliver(batch);
        continue;
      }
      // Lane present: deliver a copy carrying the re-tagged lane (cheap for
      // columnar batches — the store is shared by reference).
      TupleBatch with_lane = batch;
      with_lane.ClearPunctuations();
      for (Timestamp wm : lane) {
        with_lane.AddPunctuation(Punctuation{sub.logical, wm});
      }
      sub.deliver(with_lane);
      continue;
    }
    if (cols != nullptr) {
      // Zero-copy alias re-tag: a view over the same lanes under the
      // subscription's schema.
      if (ColumnStore::Ref view = ColumnStore::Retagged(cols, sub.schema)) {
        TupleBatch retagged(sub.logical, std::move(view));
        for (Timestamp wm : lane) {
          retagged.AddPunctuation(Punctuation{sub.logical, wm});
        }
        sub.deliver(retagged);
        continue;
      }
    }
    TupleBatch retagged(sub.logical);
    retagged.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Tuple t = batch.RowAt(i);
      retagged.push_back(Tuple::Make(sub.schema, t.values(), t.timestamp()));
    }
    for (Timestamp wm : lane) {
      retagged.AddPunctuation(Punctuation{sub.logical, wm});
    }
    sub.deliver(retagged);
  }
}

Status TelegraphCQ::BatchBuilder::Append(Timestamp timestamp,
                                         std::vector<Value> values) {
  // Whole-row validation first so a rejected row leaves the lanes intact.
  TCQ_RETURN_IF_ERROR(schema()->Validate(values));
  cols_.AppendTimestamp(timestamp);
  for (size_t c = 0; c < values.size(); ++c) {
    bool ok = cols_.Append(c, std::move(values[c]));
    (void)ok;
    assert(ok && "Schema::Validate admitted a value the lane rejects");
  }
  return Status::OK();
}

Result<TelegraphCQ::BatchBuilder> TelegraphCQ::NewBatch(
    const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + stream_name + "'");
  }
  if (it->second.closed) {
    return Status::FailedPrecondition("stream '" + stream_name +
                                      "' is closed");
  }
  return BatchBuilder(stream_name, it->second.schema);
}

Status TelegraphCQ::PushBuilt(BatchBuilder&& built) {
  if (built.num_rows() == 0) return Status::OK();
  ColumnStore::Ref cols = built.cols_.Finish();
  if (cols == nullptr) {
    // Unreachable through Append (it keeps lanes rectangular); kept as a
    // typed failure rather than an assert so a future builder extension
    // cannot turn it into a silent drop.
    return Status::InvalidArgument("batch builder lanes are ragged");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(built.stream_);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + built.stream_ + "'");
  }
  PhysicalStream& stream = it->second;
  if (stream.closed) {
    return Status::FailedPrecondition("stream '" + built.stream_ +
                                      "' is closed");
  }
  TupleBatch batch(stream.canonical, std::move(cols));
  RouteBatch(&stream, batch);
  return Status::OK();
}

Status TelegraphCQ::PushBatch(const std::string& stream_name,
                              std::vector<TupleBatchRow> rows) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + stream_name + "'");
  }
  PhysicalStream& stream = it->second;
  if (stream.closed) {
    return Status::FailedPrecondition("stream '" + stream_name +
                                      "' is closed");
  }
  // Atomic validation: reject the whole batch before any row is ingested.
  for (size_t i = 0; i < rows.size(); ++i) {
    Status s = stream.schema->Validate(rows[i].values);
    if (!s.ok()) {
      return Status::InvalidArgument("row " + std::to_string(i) + " of " +
                                     std::to_string(rows.size()) + ": " +
                                     s.message());
    }
  }
  if (rows.empty()) return Status::OK();
  // Row -> column transposition: PushBatch is a compat wrapper over the
  // same columnar ingest path PushBuilt takes. Validation above guarantees
  // every value fits its lane, so Finish() cannot go ragged.
  ColumnStoreBuilder builder(stream.schema);
  for (TupleBatchRow& row : rows) {
    builder.AppendTimestamp(row.timestamp);
    for (size_t c = 0; c < row.values.size(); ++c) {
      bool ok = builder.Append(c, std::move(row.values[c]));
      (void)ok;
      assert(ok && "Schema::Validate admitted a value the lane rejects");
    }
  }
  ColumnStore::Ref cols = builder.Finish();
  assert(cols != nullptr);
  TupleBatch batch(stream.canonical, std::move(cols));
  RouteBatch(&stream, batch);
  return Status::OK();
}

Status TelegraphCQ::Push(const std::string& stream_name,
                         std::vector<Value> values, Timestamp timestamp) {
  std::vector<TupleBatchRow> rows;
  rows.push_back(TupleBatchRow{std::move(values), timestamp});
  return PushBatch(stream_name, std::move(rows));
}

Status TelegraphCQ::CloseStream(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + stream_name + "'");
  }
  it->second.closed = true;
  // Executor-side close lets shared-CQ DUs drain to completion; windowed
  // subscriptions close their input fjords and fire remaining windows.
  for (const Subscription& sub : it->second.subs) {
    (void)executor_.CloseStream(sub.logical);
    if (sub.close) sub.close();
  }
  return Status::OK();
}

Status TelegraphCQ::SubscribeContinuous(const std::string& physical,
                                        const Catalog::StreamEntry& entry) {
  PhysicalStream& stream = streams_[physical];
  for (const Subscription& sub : stream.subs) {
    // Only the shared (owner==0) executor subscription dedups: windowed
    // queries also subscribe under this logical source, and their presence
    // must not swallow the executor feed for a later continuous query.
    if (sub.owner == 0 && sub.logical == entry.source) return Status::OK();
  }
  // Alias sources must be registered with the executor once.
  if (entry.source != stream.canonical) {
    Status s = executor_.RegisterStream(entry.source, entry.schema);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  Subscription sub;
  sub.logical = entry.source;
  sub.schema = entry.schema;
  sub.deliver = [this, logical = entry.source](const TupleBatch& b) {
    TupleBatch routed = b;
    routed.set_source(logical);
    (void)executor_.IngestBatch(std::move(routed));
  };
  stream.subs.push_back(std::move(sub));
  return Status::OK();
}

Result<TelegraphCQ::ClientHandle> TelegraphCQ::Submit(const std::string& sql,
                                                      SubmitOptions sub_opts) {
  TCQ_ASSIGN_OR_RETURN(ast::SelectStatement stmt, ParseQuery(sql));

  std::unique_lock<std::mutex> lock(mu_);
  TCQ_ASSIGN_OR_RETURN(PlannedQuery plan, PlanQuery(stmt, &catalog_));

  // Map each binding back to its physical stream.
  std::vector<std::pair<std::string, Catalog::StreamEntry>> bindings =
      plan.bindings;
  for (const auto& [alias, entry] : bindings) {
    if (!streams_.contains(entry.name)) {
      return Status::NotFound("stream '" + entry.name +
                              "' is not backed by a physical stream");
    }
  }

  ClientHandle handle;

  if (plan.window_loop.has_value()) {
    if (sub_opts.history_reach != 0) {
      // Validate spooling up front so a failed backfill can only mean an
      // I/O or back-pressure fault, not a predictable misuse.
      for (const auto& [alias, entry] : bindings) {
        if (streams_[entry.name].spool == nullptr) {
          return Status::FailedPrecondition(
              "history_reach requires spooled streams (set "
              "Options::spool_dir); stream '" +
              entry.name + "' is not spooled");
        }
      }
    }
    GlobalQueryId wid = next_window_query_id_++;
    TCQ_ASSIGN_OR_RETURN(handle, AdmitWindowedLocked(plan, sql, sub_opts, wid));
    if (sub_opts.history_reach != 0) {
      Status backfill =
          BackfillWindowedLocked(&clients_[wid], sub_opts.history_reach);
      if (!backfill.ok()) {
        // Roll the admission back: a failed backfill must not leave a
        // half-primed query running.
        ClientInfo& client = clients_[wid];
        if (client.window_eo != nullptr) client.window_eo->Stop();
        for (auto& [name, stream] : streams_) {
          std::erase_if(stream.subs, [wid](const Subscription& s) {
            return s.owner == wid;
          });
        }
        clients_.erase(wid);
        return backfill;
      }
    }
    return handle;
  }
  if (sub_opts.history_reach != 0) {
    return Status::InvalidArgument(
        "history_reach applies to windowed queries only (continuous queries "
        "have no windows to backfill)");
  }

  // Continuous query through the shared executor.
  for (const auto& [alias, entry] : bindings) {
    TCQ_RETURN_IF_ERROR(SubscribeContinuous(entry.name, entry));
  }
  auto egress = std::make_shared<PushEgress>(
      PushEgress::Options{opts_.egress_capacity, opts_.egress_shed}, metrics_,
      "client" + std::to_string(next_client_label_++));
  auto projection = plan.projection;
  Executor::Sink sink = [egress, projection](GlobalQueryId id,
                                             const Tuple& t) {
    // Punctuations (the class's merged watermark reaching the client) have
    // no columns to project; they pass through as-is.
    if (!projection.has_value() || !t.IsData()) {
      egress->Offer(Delivery{id, t});
      return;
    }
    auto p = projection->Apply(t);
    if (p.ok()) egress->Offer(Delivery{id, std::move(*p)});
  };
  lock.unlock();  // SubmitQuery blocks on admission; don't hold the mutex
  TCQ_ASSIGN_OR_RETURN(GlobalQueryId id,
                       executor_.SubmitQuery(plan.spec, std::move(sink)));
  handle.id = id;
  handle.results = egress;
  {
    std::lock_guard<std::mutex> relock(mu_);
    ClientInfo& client = clients_[id];
    client.egress = egress;
    client.sql = sql;
    for (const auto& [alias, entry] : bindings) {
      client.bindings.emplace_back(alias, entry.source);
      if (std::find(client.streams.begin(), client.streams.end(),
                    entry.name) == client.streams.end()) {
        client.streams.push_back(entry.name);
      }
    }
  }
  return handle;
}

Result<TelegraphCQ::ClientHandle> TelegraphCQ::AdmitWindowedLocked(
    const PlannedQuery& plan, const std::string& sql,
    const SubmitOptions& sub_opts, GlobalQueryId wid) {
  const std::vector<std::pair<std::string, Catalog::StreamEntry>>& bindings =
      plan.bindings;
  ClientHandle handle;
  {
    // Windowed query: its own DU fed by dedicated fjords.
    auto buffer = std::make_shared<WindowResultBuffer>();
    std::string qlabel = "q" + std::to_string(wid);
    buffer->AttachMetrics(
        metrics_->GetCounter(
            MetricName("tcq_window_fired_total", "query", qlabel)),
        metrics_->GetCounter(
            MetricName("tcq_window_tuples_total", "query", qlabel)),
        metrics_->GetCounter(
            MetricName("tcq_window_retractions_total", "query", qlabel)));
    auto projection = plan.projection;
    WindowedQuery wq;
    wq.loop = *plan.window_loop;
    wq.predicates = plan.all_predicates;
    // The query runs on event time when every bound stream punctuates:
    // watermarks then drive window firing and arrival order stops
    // mattering (up to each stream's disorder bound). A non-punctuating
    // stream has no watermark, so mixing would stall the loop forever.
    bool all_punctuate = true;
    for (const auto& [alias, entry] : bindings) {
      if (!streams_[entry.name].event_time.punctuate) all_punctuate = false;
    }
    if (all_punctuate) wq.loop.semantics = TimeSemantics::kEvent;
    OnlineWindowRunner::Options runner_opts;
    runner_opts.speculate = sub_opts.speculate && all_punctuate;
    auto du = std::make_shared<WindowedQueryDispatchUnit>(
        "windowed" + std::to_string(wid), std::move(wq),
        [buffer, projection](const WindowResult& r) {
          if (!projection.has_value()) {
            buffer->Push(r);
            return;
          }
          WindowResult projected;
          projected.t = r.t;
          projected.kind = r.kind;
          projected.revision = r.revision;
          for (const Tuple& t : r.tuples) {
            // Project the values, then restore the revision tag: a
            // retraction must cancel the projected tuple it revises.
            auto p = projection->Apply(t);
            if (!p.ok()) continue;
            projected.tuples.push_back(
                t.IsRetraction() ? Tuple::Retraction(*p) : std::move(*p));
          }
          buffer->Push(std::move(projected));
        },
        /*quantum=*/64, runner_opts);
    std::vector<ClientInfo::WindowInput> inputs;
    for (const auto& [alias, entry] : bindings) {
      auto endpoints = Fjord::Make(FjordMode::kPush, opts_.egress_capacity,
                                   "win:" + alias, metrics_.get());
      du->AddInput(entry.source, endpoints.consumer);
      PhysicalStream& stream = streams_[entry.name];
      Subscription sub;
      sub.logical = entry.source;
      sub.schema = entry.schema;
      sub.owner = wid;
      auto producer = std::make_shared<FjordProducer>(endpoints.producer);
      Counter* win_dropped = metrics_->GetCounter(
          MetricName("tcq_window_input_dropped_total", "window",
                     "w" + std::to_string(wid)));
      sub.deliver = [producer, win_dropped](const TupleBatch& b) {
        // Push mode: drop on overload (windowed clients are best-effort
        // under backpressure) — but count what was dropped; the unconsumed
        // suffix stays in the offered batch by the ProduceBatch contract.
        TupleBatch offered = b;
        (void)producer->ProduceBatch(&offered);
        if (!offered.empty()) win_dropped->Inc(offered.size());
      };
      // CloseStream closes the input fjord so the DU sees end-of-stream and
      // fires the windows it is still holding open.
      sub.close = [producer] { producer->Close(); };
      stream.subs.push_back(std::move(sub));
      inputs.push_back(ClientInfo::WindowInput{entry.source, entry.name,
                                               entry.schema, endpoints.fjord,
                                               producer});
    }
    // Host the windowed DU on its own EO so it cannot starve classes.
    auto eo = std::make_unique<ExecutionObject>(
        "win-eo" + std::to_string(wid), MakeRoundRobinScheduler(), metrics_);
    eo->AddDispatchUnit(du);
    if (started_) eo->Start();
    handle.id = wid;
    handle.windows = buffer;
    ClientInfo& client = clients_[handle.id];
    client.windowed = true;
    client.windows = buffer;
    client.window_du = du;
    client.window_eo = std::move(eo);
    client.sql = sql;
    client.speculate = sub_opts.speculate;
    client.window_inputs = std::move(inputs);
    for (const auto& [alias, entry] : bindings) {
      client.bindings.emplace_back(alias, entry.source);
      // Self-joins bind one physical stream under several aliases; count it
      // once per query.
      if (std::find(client.streams.begin(), client.streams.end(),
                    entry.name) == client.streams.end()) {
        client.streams.push_back(entry.name);
      }
    }
    return handle;
  }
}

Result<std::vector<Tuple>> TelegraphCQ::ScanHistory(const std::string& name,
                                                    Timestamp l,
                                                    Timestamp r) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream '" + name + "'");
  }
  if (it->second.spool == nullptr) {
    return Status::FailedPrecondition(
        "stream '" + name + "' is not spooled (set Options::spool_dir)");
  }
  WindowedScanner scanner(it->second.spool.get(), &spool_pool_);
  std::vector<Tuple> out;
  TCQ_RETURN_IF_ERROR(scanner.Scan(l, r, &out));
  return out;
}

// --- Durable state (DESIGN.md §13) -------------------------------------------

namespace {

/// Pushes a batch into a windowed query's input fjord with bounded retry.
/// With an EO running the fjord drains concurrently, so the push just waits
/// for space; before Start() nothing drains, so the DU is stepped inline
/// between attempts. The unconsumed suffix (rows, then punctuations) stays
/// in the batch across retries by the ProduceBatch contract.
Status PushWindowInput(FjordProducer* producer, DispatchUnit* du,
                       bool eo_running, TupleBatch batch) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    QueueOp op = producer->ProduceBatch(&batch);
    if (batch.empty() && batch.punctuations().empty()) return Status::OK();
    if (op == QueueOp::kClosed) {
      return Status::FailedPrecondition(
          "window input fjord closed during backfill/replay");
    }
    if (eo_running) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    } else {
      while (du->Step() == DispatchUnit::StepResult::kProgress) {
      }
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::ResourceExhausted(
          "window input fjord stayed full during backfill/replay");
    }
  }
}

}  // namespace

Status TelegraphCQ::FlushSpools() {
  std::lock_guard<std::mutex> lock(mu_);
  if (opts_.spool_dir.empty()) {
    return Status::FailedPrecondition(
        "no spools to flush (set Options::spool_dir)");
  }
  for (auto& [name, stream] : streams_) {
    if (stream.spool != nullptr) TCQ_RETURN_IF_ERROR(stream.spool->Flush());
  }
  return Status::OK();
}

Status TelegraphCQ::DrainWindowedLocked() {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    bool busy = false;
    for (auto& [id, client] : clients_) {
      if (!client.windowed) continue;
      bool pending = false;
      for (const ClientInfo::WindowInput& in : client.window_inputs) {
        if (in.fjord->queue().size() > 0) pending = true;
      }
      if (pending && !started_) {
        // Nothing drains before Start(): step the DU inline.
        while (client.window_du->Step() ==
               DispatchUnit::StepResult::kProgress) {
        }
        pending = false;
        for (const ClientInfo::WindowInput& in : client.window_inputs) {
          if (in.fjord->queue().size() > 0) pending = true;
        }
      }
      busy = busy || pending;
    }
    if (!busy) return Status::OK();
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::TimedOut(
          "windowed query inputs did not drain (egress back-pressure?)");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

Status TelegraphCQ::BackfillWindowedLocked(ClientInfo* client,
                                           Timestamp reach) {
  for (const ClientInfo::WindowInput& in : client->window_inputs) {
    PhysicalStream& stream = streams_[in.stream];
    std::vector<Tuple> archive;
    TCQ_RETURN_IF_ERROR(stream.spool->ScanFrom(0, &archive));
    Timestamp latest = kMinTimestamp;
    for (const Tuple& t : archive) latest = std::max(latest, t.timestamp());
    // Backfill window: [latest - reach + 1, latest]; kMaxTimestamp (or a
    // reach that underflows past kMinTimestamp) takes the whole archive.
    Timestamp lo = kMinTimestamp;
    if (reach != kMaxTimestamp && latest > kMinTimestamp + reach) {
      lo = latest - reach + 1;
    }
    const bool eo_running = started_;
    size_t i = 0;
    while (i < archive.size()) {
      TupleBatch chunk;
      chunk.set_source(in.source);
      for (; i < archive.size() && chunk.size() < 256; ++i) {
        const Tuple& t = archive[i];
        if (t.timestamp() < lo) continue;
        chunk.push_back(t.schema().get() == in.schema.get()
                            ? t
                            : Tuple::Make(in.schema, t.values(),
                                          t.timestamp()));
      }
      TCQ_RETURN_IF_ERROR(PushWindowInput(in.producer.get(),
                                          client->window_du.get(), eo_running,
                                          std::move(chunk)));
    }
    if (stream.event_time.punctuate && stream.last_punct != kMinTimestamp) {
      // The stream's current watermark promise travels BEHIND the
      // historical rows, so an event-time loop fires the backfilled
      // windows immediately instead of waiting for fresh live traffic.
      TupleBatch punct;
      punct.set_source(in.source);
      punct.AddPunctuation(Punctuation{in.source, stream.last_punct});
      TCQ_RETURN_IF_ERROR(PushWindowInput(in.producer.get(),
                                          client->window_du.get(), eo_running,
                                          std::move(punct)));
    }
  }
  return Status::OK();
}

Result<uint64_t> TelegraphCQ::Checkpoint() {
  if (opts_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition(
        "no checkpoint location (set Options::checkpoint_dir)");
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t epoch = last_epoch_ + 1;
  // Quiesce: holding mu_ blocks every ingest path; the spools flush so the
  // replay positions recorded below are durable; the windowed inputs drain
  // so every runner parks at a quantum boundary.
  for (auto& [name, stream] : streams_) {
    if (stream.spool != nullptr) TCQ_RETURN_IF_ERROR(stream.spool->Flush());
  }
  TCQ_RETURN_IF_ERROR(DrainWindowedLocked());

  CheckpointWriter w(epoch);
  w.BeginSection("server", 1);
  w.PutU64(system_streams_ != nullptr ? system_streams_->ticks() : 0);
  // The catalog, recorded in id order for verbatim replay: id assignment
  // depends on the original interleaving of stream definitions and
  // self-join submissions, and every snapshot below keys state by these
  // ids, so a restore must reproduce the layout exactly.
  const SourceId ncat = catalog_.next_source();
  w.PutU32(static_cast<uint32_t>(ncat));
  for (SourceId id = 0; id < ncat; ++id) {
    const Catalog::StreamEntry* entry = catalog_.LookupBySource(id);
    if (entry == nullptr) {
      return Status::Internal("catalog source id " + std::to_string(id) +
                              " has no entry (ids should be dense)");
    }
    Result<Catalog::StreamEntry> canonical = catalog_.Lookup(entry->name);
    const bool is_alias = canonical.ok() && canonical->source != id;
    w.PutString(entry->name);
    w.PutBool(is_alias);
    if (!is_alias) w.PutSchema(*entry->schema);
  }
  w.PutU32(static_cast<uint32_t>(streams_.size()));
  for (const auto& [name, stream] : streams_) {
    w.PutString(name);
    w.PutBool(stream.event_time.punctuate);
    w.PutTimestamp(stream.event_time.disorder_bound);
    w.PutTimestamp(stream.max_ts);
    w.PutTimestamp(stream.last_punct);
    w.PutBool(stream.closed);
    w.PutU64(stream.spool != nullptr ? stream.spool->tuples_appended() : 0);
  }
  uint32_t ncont = 0, nwin = 0;
  for (const auto& [id, client] : clients_) {
    (client.windowed ? nwin : ncont) += 1;
  }
  w.PutU32(ncont);
  for (const auto& [id, client] : clients_) {
    if (client.windowed) continue;
    w.PutU64(id);
    w.PutString(client.sql);
    w.PutU32(static_cast<uint32_t>(client.bindings.size()));
    for (const auto& [alias, source] : client.bindings) {
      w.PutString(alias);
      w.PutU32(static_cast<uint32_t>(source));
    }
  }
  w.PutU32(nwin);
  for (const auto& [id, client] : clients_) {
    if (!client.windowed) continue;
    w.PutU64(id);
    w.PutString(client.sql);
    w.PutBool(client.speculate);
    w.PutU32(static_cast<uint32_t>(client.bindings.size()));
    for (const auto& [alias, source] : client.bindings) {
      w.PutString(alias);
      w.PutU32(static_cast<uint32_t>(source));
    }
  }
  w.EndSection();

  // Continuous state: the executor exports every query class (specs,
  // partition maps, SteM logs, seq horizons) behind its own quiesce.
  TCQ_RETURN_IF_ERROR(executor_.CheckpointTo(&w));

  // Windowed runners, in query-id order (restore reads them back in the
  // same order). A runner is only safely readable with its EO stopped.
  for (auto& [id, client] : clients_) {
    if (!client.windowed) continue;
    if (client.window_eo != nullptr) client.window_eo->Stop();
    auto* du = static_cast<WindowedQueryDispatchUnit*>(client.window_du.get());
    WriteCheckpointSection(&w, du->runner());
    if (client.window_eo != nullptr && started_) client.window_eo->Start();
  }

  const std::string path =
      opts_.checkpoint_dir + "/ckpt-" + std::to_string(epoch);
  TCQ_RETURN_IF_ERROR(w.WriteTo(path));
  last_epoch_ = epoch;
  ckpt_epochs_->Inc();
  std::error_code ec;
  const uint64_t bytes = std::filesystem::file_size(path, ec);
  if (!ec) ckpt_bytes_->Inc(bytes);
  ckpt_duration_us_->Set(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
  return epoch;
}

Result<uint64_t> TelegraphCQ::Restore() {
  if (opts_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition(
        "no checkpoint location (set Options::checkpoint_dir)");
  }
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return Status::FailedPrecondition("Restore() must run before Start()");
    }
    if (!clients_.empty() || ingested_->Value() != 0) {
      return Status::FailedPrecondition(
          "Restore() requires a freshly constructed server");
    }
  }

  // Latest epoch wins: a crash mid-checkpoint leaves the previous epoch's
  // file intact (temp-file + rename), so the newest complete file is the
  // recovery point.
  uint64_t epoch = 0;
  std::string path;
  {
    std::error_code ec;
    std::filesystem::directory_iterator dir(opts_.checkpoint_dir, ec);
    if (ec) {
      return Status::NotFound("cannot list checkpoint dir '" +
                              opts_.checkpoint_dir + "': " + ec.message());
    }
    for (const auto& e : dir) {
      const std::string fname = e.path().filename().string();
      if (fname.rfind("ckpt-", 0) != 0 || fname.size() == 5) continue;
      uint64_t n = 0;
      bool numeric = true;
      for (size_t i = 5; i < fname.size(); ++i) {
        if (fname[i] < '0' || fname[i] > '9') {
          numeric = false;
          break;
        }
        n = n * 10 + static_cast<uint64_t>(fname[i] - '0');
      }
      if (numeric && (path.empty() || n > epoch)) {
        epoch = n;
        path = e.path().string();
      }
    }
  }
  if (path.empty()) {
    return Status::NotFound("no checkpoint under '" + opts_.checkpoint_dir +
                            "'");
  }

  TCQ_ASSIGN_OR_RETURN(std::unique_ptr<CheckpointReader> r,
                       CheckpointReader::Open(path, &spool_pool_));
  TCQ_ASSIGN_OR_RETURN(CheckpointReader::Section sec, r->BeginSection());
  if (sec.tag != "server" || sec.version != 1) {
    return Status::IOError("checkpoint does not start with a v1 server "
                           "section (found '" +
                           sec.tag + "' v" + std::to_string(sec.version) +
                           ")");
  }
  TCQ_ASSIGN_OR_RETURN(uint64_t tick, r->GetU64());
  if (system_streams_ != nullptr) system_streams_->AdvanceTicksTo(tick);

  // 1. Catalog replay in id order: re-drive the original DefineStream /
  // InstantiateAlias calls so every recorded source id comes back exactly.
  TCQ_ASSIGN_OR_RETURN(uint32_t ncat, r->GetU32());
  for (uint32_t id = 0; id < ncat; ++id) {
    TCQ_ASSIGN_OR_RETURN(std::string name, r->GetString());
    TCQ_ASSIGN_OR_RETURN(bool is_alias, r->GetBool());
    SchemaRef schema;
    if (!is_alias) {
      TCQ_ASSIGN_OR_RETURN(schema, r->GetSchema());
    }
    const Catalog::StreamEntry* existing = catalog_.LookupBySource(id);
    if (existing != nullptr) {
      // Pre-defined at construction (tcq$ introspection streams).
      if (existing->name != name) {
        return Status::IOError(
            "checkpoint catalog id " + std::to_string(id) + " names '" +
            name + "' but this server already assigned it to '" +
            existing->name + "' (constructed with different Options?)");
      }
      continue;
    }
    if (is_alias) {
      TCQ_ASSIGN_OR_RETURN(Catalog::StreamEntry entry,
                           catalog_.InstantiateAlias(name));
      if (entry.source != id) {
        return Status::IOError("catalog replay assigned alias of '" + name +
                               "' id " + std::to_string(entry.source) +
                               ", checkpoint recorded " + std::to_string(id));
      }
    } else {
      TCQ_ASSIGN_OR_RETURN(
          SourceId got,
          DefineStreamInternal(name, schema->fields(), /*reopen_spool=*/true));
      if (got != id) {
        return Status::IOError("catalog replay assigned stream '" + name +
                               "' id " + std::to_string(got) +
                               ", checkpoint recorded " + std::to_string(id));
      }
    }
  }

  // 2. Per-stream event-time marks and spool replay positions.
  std::vector<std::pair<std::string, uint64_t>> replay;
  TCQ_ASSIGN_OR_RETURN(uint32_t nstreams, r->GetU32());
  for (uint32_t i = 0; i < nstreams; ++i) {
    TCQ_ASSIGN_OR_RETURN(std::string name, r->GetString());
    TCQ_ASSIGN_OR_RETURN(bool punctuate, r->GetBool());
    TCQ_ASSIGN_OR_RETURN(Timestamp disorder, r->GetTimestamp());
    TCQ_ASSIGN_OR_RETURN(Timestamp max_ts, r->GetTimestamp());
    TCQ_ASSIGN_OR_RETURN(Timestamp last_punct, r->GetTimestamp());
    TCQ_ASSIGN_OR_RETURN(bool closed, r->GetBool());
    TCQ_ASSIGN_OR_RETURN(uint64_t pos, r->GetU64());
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(name);
    if (it == streams_.end()) {
      return Status::IOError("checkpoint stream '" + name +
                             "' was not recreated by the catalog replay");
    }
    PhysicalStream& stream = it->second;
    stream.event_time.punctuate = punctuate;
    stream.event_time.disorder_bound = disorder;
    if (punctuate && stream.late == nullptr) {
      stream.late = metrics_->GetCounter(
          MetricName("tcq_wrapper_late_tuples_total", "stream", name));
    }
    stream.max_ts = max_ts;
    stream.last_punct = last_punct;
    stream.closed = closed;
    replay.emplace_back(name, pos);
  }

  // 3. Continuous clients: recreate egress plumbing and subscriptions under
  // the recorded ids; the executor re-admits the queries itself below.
  std::map<GlobalQueryId, Executor::Sink> sinks;
  TCQ_ASSIGN_OR_RETURN(uint32_t ncont, r->GetU32());
  for (uint32_t i = 0; i < ncont; ++i) {
    TCQ_ASSIGN_OR_RETURN(uint64_t gid, r->GetU64());
    TCQ_ASSIGN_OR_RETURN(std::string sql, r->GetString());
    TCQ_ASSIGN_OR_RETURN(uint32_t nbind, r->GetU32());
    std::map<std::string, SourceId> pinned;
    std::vector<std::pair<std::string, SourceId>> recorded;
    for (uint32_t b = 0; b < nbind; ++b) {
      TCQ_ASSIGN_OR_RETURN(std::string alias, r->GetString());
      TCQ_ASSIGN_OR_RETURN(uint32_t source, r->GetU32());
      pinned[alias] = source;
      recorded.emplace_back(alias, source);
    }
    TCQ_ASSIGN_OR_RETURN(ast::SelectStatement stmt, ParseQuery(sql));
    std::lock_guard<std::mutex> lock(mu_);
    TCQ_ASSIGN_OR_RETURN(PlannedQuery plan,
                         PlanQuery(stmt, &catalog_, &pinned));
    for (const auto& [alias, entry] : plan.bindings) {
      auto pin = pinned.find(alias);
      if (pin == pinned.end() || pin->second != entry.source) {
        return Status::IOError("restored plan for query " +
                               std::to_string(gid) + " bound alias '" +
                               alias + "' to a different source than the "
                               "checkpoint recorded");
      }
      TCQ_RETURN_IF_ERROR(SubscribeContinuous(entry.name, entry));
    }
    auto egress = std::make_shared<PushEgress>(
        PushEgress::Options{opts_.egress_capacity, opts_.egress_shed},
        metrics_, "client" + std::to_string(next_client_label_++));
    auto projection = plan.projection;
    sinks[gid] = [egress, projection](GlobalQueryId qid, const Tuple& t) {
      if (!projection.has_value() || !t.IsData()) {
        egress->Offer(Delivery{qid, t});
        return;
      }
      auto p = projection->Apply(t);
      if (p.ok()) egress->Offer(Delivery{qid, std::move(*p)});
    };
    ClientInfo& client = clients_[gid];
    client.egress = egress;
    client.sql = sql;
    client.bindings = std::move(recorded);
    for (const auto& [alias, entry] : plan.bindings) {
      if (std::find(client.streams.begin(), client.streams.end(),
                    entry.name) == client.streams.end()) {
        client.streams.push_back(entry.name);
      }
    }
  }

  // 4. Windowed client metadata (their runner sections come after the
  // executor's, in file order).
  struct WinRec {
    uint64_t wid = 0;
    std::string sql;
    bool speculate = false;
    std::map<std::string, SourceId> pinned;
    std::vector<std::pair<std::string, SourceId>> recorded;
  };
  std::vector<WinRec> wins;
  TCQ_ASSIGN_OR_RETURN(uint32_t nwin, r->GetU32());
  for (uint32_t i = 0; i < nwin; ++i) {
    WinRec rec;
    TCQ_ASSIGN_OR_RETURN(rec.wid, r->GetU64());
    TCQ_ASSIGN_OR_RETURN(rec.sql, r->GetString());
    TCQ_ASSIGN_OR_RETURN(rec.speculate, r->GetBool());
    TCQ_ASSIGN_OR_RETURN(uint32_t nbind, r->GetU32());
    for (uint32_t b = 0; b < nbind; ++b) {
      TCQ_ASSIGN_OR_RETURN(std::string alias, r->GetString());
      TCQ_ASSIGN_OR_RETURN(uint32_t source, r->GetU32());
      rec.pinned[alias] = source;
      rec.recorded.emplace_back(alias, source);
    }
    wins.push_back(std::move(rec));
  }
  TCQ_RETURN_IF_ERROR(r->EndSection());

  // 5. Executor state: query classes re-admitted under their original
  // global ids, SteM logs and seq horizons imported.
  TCQ_ASSIGN_OR_RETURN(
      uint64_t restored_queries,
      executor_.RestoreFrom(r.get(), [&sinks](GlobalQueryId qid) {
        auto it = sinks.find(qid);
        return it != sinks.end() ? it->second : Executor::Sink();
      }));
  (void)restored_queries;

  // 6. Windowed queries: re-admit under recorded ids (pinned re-planning),
  // then import each runner's snapshot.
  for (WinRec& rec : wins) {
    TCQ_ASSIGN_OR_RETURN(ast::SelectStatement stmt, ParseQuery(rec.sql));
    ClientInfo* client = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      TCQ_ASSIGN_OR_RETURN(PlannedQuery plan,
                           PlanQuery(stmt, &catalog_, &rec.pinned));
      for (const auto& [alias, entry] : plan.bindings) {
        auto pin = rec.pinned.find(alias);
        if (pin == rec.pinned.end() || pin->second != entry.source) {
          return Status::IOError("restored plan for query " +
                                 std::to_string(rec.wid) + " bound alias '" +
                                 alias + "' to a different source than the "
                                 "checkpoint recorded");
        }
      }
      SubmitOptions so;
      so.speculate = rec.speculate;
      TCQ_ASSIGN_OR_RETURN(ClientHandle handle,
                           AdmitWindowedLocked(plan, rec.sql, so, rec.wid));
      (void)handle;
      if (rec.wid + 1 > next_window_query_id_) {
        next_window_query_id_ = rec.wid + 1;
      }
      auto it = clients_.find(rec.wid);
      it->second.bindings = rec.recorded;
      client = &it->second;
    }
    auto* du = static_cast<WindowedQueryDispatchUnit*>(client->window_du.get());
    TCQ_RETURN_IF_ERROR(ReadCheckpointSection(r.get(), du->mutable_runner()));
  }

  // 7. Bring the dataflow up for the replay (the fjords must drain or the
  // chunks below would overflow them). Start() later re-invokes both —
  // idempotent.
  executor_.Start();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, client] : clients_) {
      if (client.window_eo != nullptr) client.window_eo->Start();
    }
  }

  // 8. Replay each stream's archived suffix past its snapshot high-water
  // mark, spool-bypassing (the tuples are already archived). Chunks yield
  // between pushes so windowed fjords keep headroom.
  uint64_t replayed = 0;
  for (const auto& [name, pos] : replay) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = streams_.find(name);
    if (it == streams_.end() || it->second.spool == nullptr) continue;
    PhysicalStream& stream = it->second;
    std::vector<Tuple> suffix;
    TCQ_RETURN_IF_ERROR(stream.spool->ScanFrom(pos, &suffix));
    size_t i = 0;
    while (i < suffix.size()) {
      TupleBatch chunk;
      chunk.set_source(stream.canonical);
      for (; i < suffix.size() && chunk.size() < 256; ++i) {
        chunk.push_back(suffix[i]);
      }
      replayed += chunk.size();
      RouteBatch(&stream, chunk, /*spool=*/false);
      lock.unlock();
      const auto bp_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      for (;;) {
        bool full = false;
        {
          std::lock_guard<std::mutex> g(mu_);
          for (auto& [id, client] : clients_) {
            if (!client.windowed) continue;
            for (const ClientInfo::WindowInput& in : client.window_inputs) {
              if (in.fjord->queue().size() > opts_.egress_capacity / 2) {
                full = true;
              }
            }
          }
        }
        if (!full || std::chrono::steady_clock::now() > bp_deadline) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      lock.lock();
    }
  }

  // 9. Re-deliver end-of-stream for streams that closed before the crash:
  // the restored subscriptions never saw the original CloseStream.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, stream] : streams_) {
      if (!stream.closed) continue;
      for (const Subscription& sub : stream.subs) {
        (void)executor_.CloseStream(sub.logical);
        if (sub.close) sub.close();
      }
    }
    last_epoch_ = epoch;
  }
  restore_replayed_->Inc(replayed);
  restore_duration_us_->Set(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return epoch;
}

std::vector<TelegraphCQ::ClientHandle> TelegraphCQ::Handles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClientHandle> out;
  for (const auto& [id, client] : clients_) {
    ClientHandle h;
    h.id = id;
    h.results = client.egress;
    h.windows = client.windows;
    out.push_back(std::move(h));
  }
  return out;
}

void TelegraphCQ::CheckpointLoop() {
  const auto interval =
      std::chrono::milliseconds(opts_.checkpoint_interval_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!checkpoint_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (std::chrono::steady_clock::now() < next) continue;
    next = std::chrono::steady_clock::now() + interval;
    if (!Checkpoint().ok()) ckpt_failures_->Inc();
  }
}

Status TelegraphCQ::Cancel(GlobalQueryId id) {
  std::shared_ptr<WindowResultBuffer> windows;
  std::unique_ptr<ExecutionObject> eo;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(id);
    if (it == clients_.end()) {
      return Status::NotFound("no query " + std::to_string(id));
    }
    if (it->second.windowed) {
      windows = it->second.windows;
      eo = std::move(it->second.window_eo);
      // Detach the query's subscriptions so its fjords stop filling.
      for (auto& [name, stream] : streams_) {
        std::erase_if(stream.subs, [id](const Subscription& s) {
          return s.owner == id;
        });
      }
    }
    clients_.erase(it);
  }
  if (windows != nullptr) {
    // Windowed queries never entered the executor: stop their dedicated EO
    // (outside mu_ — Stop joins the EO thread) and finish the buffer.
    if (eo != nullptr) eo->Stop();
    windows->MarkFinished();
    return Status::OK();
  }
  return executor_.RemoveQuery(id);
}

TelegraphCQ::Introspection TelegraphCQ::Introspect() const {
  Introspection out;
  out.metrics = metrics_->Snapshot();
  out.tuples_ingested = ingested_->Value();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, client] : clients_) {
    QueryStats qs;
    qs.id = id;
    qs.windowed = client.windowed;
    for (const std::string& name : client.streams) {
      auto it = streams_.find(name);
      if (it != streams_.end()) qs.tuples_in += it->second.ingested->Value();
    }
    if (client.egress != nullptr) {
      qs.tuples_out = client.egress->delivered();
      qs.shed = client.egress->shed();
    }
    if (client.windows != nullptr) {
      qs.windows_fired = client.windows->windows_fired();
      qs.tuples_out = client.windows->tuples_out();
      qs.retractions = client.windows->retractions();
    }
    out.queries.push_back(qs);
  }
  for (const auto& [name, stream] : streams_) {
    StreamStats ss;
    ss.name = name;
    ss.source = stream.canonical;
    ss.tuples_in = stream.ingested->Value();
    // Executor-side drops accrue against each logical subscription the
    // physical stream fans out to (the canonical id plus re-tagged aliases).
    ss.dropped = executor_.stream_tuples_dropped(stream.canonical);
    for (const Subscription& sub : stream.subs) {
      if (sub.logical != stream.canonical) {
        ss.dropped += executor_.stream_tuples_dropped(sub.logical);
      }
    }
    if (stream.late != nullptr) ss.late_tuples = stream.late->Value();
    out.streams.push_back(std::move(ss));
  }
  out.classes = executor_.Topology();
  out.class_merges = executor_.class_merges();
  out.class_migrations = executor_.class_migrations();
  out.class_gcs = executor_.class_gcs();
  out.checkpoint_epochs = ckpt_epochs_->Value();
  out.checkpoint_bytes = ckpt_bytes_->Value();
  out.restore_replay_tuples = restore_replayed_->Value();
  return out;
}

void TelegraphCQ::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
  }
  executor_.Start();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, client] : clients_) {
      if (client.window_eo != nullptr) client.window_eo->Start();
    }
  }
  wrapper_.Start();
  stop_.store(false);
  pump_thread_ = std::thread([this] { PumpLoop(); });
  if (system_streams_ != nullptr) system_streams_->Start();
  if (!opts_.checkpoint_dir.empty() && opts_.checkpoint_interval_ms > 0) {
    checkpoint_stop_.store(false);
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
}

void TelegraphCQ::PumpLoop() {
  // Drains wrapper feeds into the routing fabric.
  while (!stop_.load(std::memory_order_relaxed)) {
    bool any = false;
    bool all_closed = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [name, stream] : streams_) {
        for (FjordConsumer& feed : stream.wrapper_feeds) {
          TupleBatch batch;
          batch.set_source(stream.canonical);
          QueueOp op = QueueOp::kOk;
          size_t got = feed.ConsumeBatch(&batch, 64, &op);
          if (got > 0) {
            RouteBatch(&stream, batch);
            any = true;
          }
          if (op == QueueOp::kWouldBlock) all_closed = false;
          if (!feed.Exhausted()) all_closed = false;
        }
        if (stream.wrapper_feeds.empty()) all_closed = false;
      }
    }
    if (!any) {
      if (all_closed) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void TelegraphCQ::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
  }
  // The checkpointer goes first: it takes mu_ and stops/starts EOs.
  checkpoint_stop_.store(true);
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  // Stop the publisher next: it pushes into streams_ via PushBatch.
  if (system_streams_ != nullptr) system_streams_->Stop();
  wrapper_.Stop();
  stop_.store(true);
  if (pump_thread_.joinable()) pump_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, client] : clients_) {
      if (client.window_eo != nullptr) client.window_eo->Stop();
    }
  }
  executor_.Stop();
}

}  // namespace tcq
