// TelegraphCQ server facade: wires the Figure-5 architecture together —
// Wrapper (ingress) -> streamers -> Executor (EOs hosting shared-CQ and
// windowed DUs) -> Egress — behind the public API the examples use:
// define streams, attach sources, submit SQL, consume results.

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "egress/egress.h"
#include "exec/executor.h"
#include "ingress/wrapper.h"
#include "obs/system_streams.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/checkpoint.h"
#include "storage/scanner.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "query/planner.h"
#include "tuple/column_store.h"

namespace tcq {

/// Thread-safe buffer of fired windows for a windowed query's client.
class WindowResultBuffer {
 public:
  void Push(WindowResult result);
  /// Non-blocking: pops the oldest fired window.
  bool Poll(WindowResult* out);
  /// True once the query's loop finished and the buffer drained.
  bool Finished() const;
  void MarkFinished();
  size_t pending() const;

  /// Optionally mirrors fired-window / result-tuple counts into registry
  /// instruments (call before the first Push). `retractions` (may be null)
  /// counts retraction tuples pushed by speculative queries.
  void AttachMetrics(Counter* windows_fired, Counter* tuples,
                     Counter* retractions = nullptr);
  /// kFinal results only — speculative emissions never inflate this.
  uint64_t windows_fired() const;
  /// Tuples across kFinal and kSpeculative results (the additions stream).
  uint64_t tuples_out() const;
  /// Tuples across kRetraction results (the removals stream).
  uint64_t retractions() const;

 private:
  mutable std::mutex mu_;
  std::deque<WindowResult> results_;
  bool finished_ = false;
  uint64_t fired_ = 0;
  uint64_t tuples_ = 0;
  uint64_t retractions_ = 0;
  Counter* fired_counter_ = nullptr;
  Counter* tuples_counter_ = nullptr;
  Counter* retractions_counter_ = nullptr;
};

// Error contract of the server facade — ONE table shared by every public
// entry point (DefineStream, AttachSource, NewBatch / BatchBuilder::Append /
// PushBuilt, Push / PushBatch, CloseStream, Submit, ScanHistory, Cancel).
// Failures are always surfaced as a typed Status; nothing is silently
// dropped (engine-side sheds are counted and visible via Introspect()).
//   * kNotFound            — the named stream / query id does not exist;
//   * kInvalidArgument     — the request is malformed: schema mismatch
//                            (arity or field type, from batch-builder /
//                            push validation), unparsable SQL, bad plan,
//                            reserved "tcq$" stream name;
//   * kFailedPrecondition  — the request is well-formed but the engine is in
//                            the wrong state for it (stream closed, sources
//                            attached after Start(), tuples pushed to a
//                            stream no query consumes, unspooled history
//                            scan);
//   * kResourceExhausted   — back-pressure outlasted the retry budget;
//   * kIOError             — a checkpoint file is missing, torn, fails its
//                            checksum, or names state the current engine
//                            configuration cannot reproduce (Checkpoint /
//                            Restore only);
//   * kTimedOut            — the engine could not quiesce within the
//                            checkpoint drain budget (Checkpoint only).
// Methods state only the codes they add beyond this contract.
class TelegraphCQ {
 public:
  struct Options {
    Executor::Options executor;
    Wrapper::Options wrapper;
    size_t egress_capacity = 4096;
    ShedPolicy egress_shed = ShedPolicy::kBlock;
    /// When non-empty, every stream is also spooled to an append-only
    /// store under this directory in the background (paper §4.3: "data
    /// must be processed on-the-fly as it arrives and can be spooled to
    /// disk only in the background"), making history scannable.
    std::string spool_dir;
    size_t spool_buffer_pages = 64;
    /// Sampled dataflow tracing (DESIGN.md §9). Disabled by default;
    /// enabling it costs one relaxed atomic load per batch plus the sampled
    /// fraction's span recording.
    obs::TraceOptions trace;
    /// Reserved tcq$* introspection streams. When enabled, tcq$metrics /
    /// tcq$queues / tcq$latency are defined at construction and a publisher
    /// thread pushes engine snapshots into them while the server runs.
    obs::SystemStreamOptions system_streams;
    /// When non-empty, Checkpoint() / Restore() write and read epoch-stamped
    /// snapshot files "ckpt-<epoch>" under this directory (DESIGN.md §13).
    std::string checkpoint_dir;
    /// When > 0 (and checkpoint_dir is set), Start() launches a background
    /// checkpointer that calls Checkpoint() this often. Failures are counted
    /// in tcq_checkpoint_failures_total, never fatal.
    uint64_t checkpoint_interval_ms = 0;
  };

  /// Per-stream event-time policy (DESIGN.md §12). With `punctuate` set the
  /// server synthesizes punctuations at the fabric entrance: it scans every
  /// routed batch's timestamps and attaches the watermark promise
  /// `max_ts_seen - disorder_bound` to the batch's control lane. Synthesis
  /// happens AFTER the wrapper merge point, so it stays correct when several
  /// attached sources feed one stream (a single feed's heartbeat cannot
  /// speak for the merged stream; the entrance scan can — incoming per-feed
  /// heartbeats are therefore dropped and re-derived here).
  struct StreamOptions {
    bool punctuate = false;
    /// How far out of timestamp order tuples may arrive (same unit as
    /// tuple timestamps). Rows older than the promised watermark are late:
    /// counted in tcq_wrapper_late_tuples_total{stream=...} and dropped by
    /// event-time consumers.
    Timestamp disorder_bound = 0;
  };

  /// Per-query submission knobs.
  struct SubmitOptions {
    /// Windowed queries only: emit speculative early results for windows the
    /// watermark has not yet closed, revised via retraction tuples when late
    /// data changes them (DESIGN.md §12). Ignored for continuous queries.
    bool speculate = false;
    /// Windowed queries only: continuous-plus-historical admission
    /// (DESIGN.md §13). When > 0, the query's input fjords are primed with
    /// the spooled archive suffix reaching this far back (tuples with
    /// ts >= latest_archived - history_reach + 1; kMaxTimestamp = the whole
    /// archive) before live routing resumes, so the first windows fire over
    /// history the query never saw live. The splice is exact: backfill
    /// happens under the ingest lock, so no tuple is delivered twice.
    /// Requires Options::spool_dir; kFailedPrecondition when any bound
    /// stream is unspooled, kInvalidArgument on a continuous query.
    Timestamp history_reach = 0;
  };

  /// A submitted query's client handle. Exactly one of `results` (continuous
  /// queries) or `windows` (windowed queries) is non-null.
  struct ClientHandle {
    GlobalQueryId id = 0;
    std::shared_ptr<PushEgress> results;
    std::shared_ptr<WindowResultBuffer> windows;
  };

  /// Per-query view computed by Introspect().
  struct QueryStats {
    GlobalQueryId id = 0;
    bool windowed = false;
    /// Tuples ingested on the physical streams the query reads (an upper
    /// bound on what the query saw; shared streams count once per query).
    uint64_t tuples_in = 0;
    /// Results delivered to the client (continuous: egress deliveries;
    /// windowed: tuples across fired windows).
    uint64_t tuples_out = 0;
    uint64_t windows_fired = 0;  ///< windowed queries only
    uint64_t shed = 0;           ///< continuous queries only
    /// Retraction tuples delivered (speculative windowed queries only).
    uint64_t retractions = 0;
  };

  /// Per-physical-stream view computed by Introspect().
  struct StreamStats {
    std::string name;
    SourceId source = 0;
    /// Tuples routed into the fabric on this stream.
    uint64_t tuples_in = 0;
    /// Executor-side drops across the stream's logical subscriptions
    /// (unrouted — no query class consumed them — plus back-pressure and
    /// closed-stream drops).
    uint64_t dropped = 0;
    /// Tuples that arrived older than the stream's promised watermark
    /// (punctuating streams only; 0 otherwise).
    uint64_t late_tuples = 0;
  };

  /// One-stop introspection: the full metrics snapshot plus per-query and
  /// per-stream stats derived from it and from the client handles, plus the
  /// executor's live query-class topology (which class runs on which EO,
  /// over which streams) and its lifecycle counters.
  struct Introspection {
    MetricsSnapshot metrics;
    uint64_t tuples_ingested = 0;
    std::vector<QueryStats> queries;
    std::vector<StreamStats> streams;
    /// Live query classes (continuous queries only; windowed queries run on
    /// their own dedicated EOs outside the class system).
    std::vector<Executor::ClassInfo> classes;
    uint64_t class_merges = 0;      ///< bridging-query class merges so far
    uint64_t class_migrations = 0;  ///< rebalance DU migrations so far
    uint64_t class_gcs = 0;         ///< classes retired (last query removed)
    uint64_t checkpoint_epochs = 0;       ///< checkpoints completed so far
    uint64_t checkpoint_bytes = 0;        ///< bytes across all checkpoints
    uint64_t restore_replay_tuples = 0;   ///< spool tuples replayed on restore
  };

  /// One client-facing row of a PushBatch call. COMPAT shape for the
  /// row-oriented wrappers below; new code should build batches column-wise
  /// with NewBatch() / BatchBuilder / PushBuilt().
  struct TupleBatchRow {
    std::vector<Value> values;
    Timestamp timestamp = 0;
  };

  /// Column-wise batch construction — the PRIMARY ingestion surface
  /// (DESIGN.md §11). Obtain one with NewBatch(), append rows, hand it back
  /// with PushBuilt(): values land directly in typed columnar lanes, so the
  /// batch enters the dataflow columnar-native and the vectorized filter
  /// paths never pay a row -> column conversion. Rows materialize only at
  /// row-shaped boundaries (SteM inserts, spooling, egress). Move-only;
  /// a builder is bound to the stream it was created for.
  class BatchBuilder {
   public:
    BatchBuilder(BatchBuilder&&) = default;
    BatchBuilder& operator=(BatchBuilder&&) = default;
    BatchBuilder(const BatchBuilder&) = delete;
    BatchBuilder& operator=(const BatchBuilder&) = delete;

    /// Appends one row. kInvalidArgument on schema mismatch (arity or field
    /// type); the row is validated before any value is admitted, so a
    /// failed Append leaves the builder exactly as it was and the caller
    /// may repair the row and retry.
    Status Append(Timestamp timestamp, std::vector<Value> values);

    const std::string& stream() const { return stream_; }
    const SchemaRef& schema() const { return cols_.schema(); }
    size_t num_rows() const { return cols_.num_rows(); }

   private:
    friend class TelegraphCQ;
    BatchBuilder(std::string stream, SchemaRef schema)
        : stream_(std::move(stream)), cols_(std::move(schema)) {}

    std::string stream_;
    ColumnStoreBuilder cols_;
  };

  /// When `metrics` is null the server creates a private registry; every
  /// component it wires (wrapper, executor, EOs, eddies, SteMs, fjord
  /// queues, egress) reports into it, so Introspect() sees the whole engine.
  TelegraphCQ() : TelegraphCQ(Options()) {}
  explicit TelegraphCQ(Options opts, MetricsRegistryRef metrics = nullptr);
  ~TelegraphCQ();

  /// Defines a stream in the catalog and the executor. Names starting with
  /// "tcq$" are reserved for the engine's introspection streams and are
  /// rejected with kInvalidArgument. The StreamOptions overload opts the
  /// stream into event time: batches get punctuations synthesized at the
  /// fabric entrance, and windowed queries over the stream run with
  /// event-time (bounded-disorder) semantics.
  Result<SourceId> DefineStream(const std::string& name,
                                const std::vector<Field>& fields);
  Result<SourceId> DefineStream(const std::string& name,
                                const std::vector<Field>& fields,
                                StreamOptions stream_opts);

  /// Attaches a wrapper-hosted pull source feeding the named stream
  /// (`arrivals` nullptr = as fast as possible).
  /// kNotFound for an unknown stream; kFailedPrecondition after Start().
  Status AttachSource(const std::string& stream,
                      std::unique_ptr<StreamSource> source,
                      std::unique_ptr<ArrivalProcess> arrivals = nullptr);

  /// Starts a column-wise batch bound to the named stream's schema.
  /// kNotFound for an unknown stream; kFailedPrecondition for a closed
  /// stream.
  Result<BatchBuilder> NewBatch(const std::string& stream);

  /// PRIMARY push-server ingestion: ingests a built batch under one
  /// lock/lookup, routed batch-at-a-time through the dataflow in columnar
  /// form. Every row was validated by BatchBuilder::Append, so ingestion is
  /// all-or-nothing by construction. Timestamps must be non-decreasing
  /// across rows and calls. An empty builder is a no-op. kNotFound /
  /// kFailedPrecondition as for NewBatch (the stream may have closed in
  /// between).
  Status PushBuilt(BatchBuilder&& batch);

  /// COMPAT row-oriented wrapper over the columnar ingest path: delivers a
  /// whole batch of row-shaped TupleBatchRows. Validation is atomic: every
  /// row is checked against the stream's schema before any is ingested, so
  /// a kInvalidArgument return ("row i of n: ...") means NO row of the
  /// batch entered the engine. Timestamps must be non-decreasing across
  /// rows and calls. kNotFound for an unknown stream; kFailedPrecondition
  /// for a closed stream.
  Status PushBatch(const std::string& stream, std::vector<TupleBatchRow> rows);

  /// COMPAT single-row convenience wrapper over PushBatch (a batch of one).
  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp timestamp);

  /// Declares a pushed stream finished (windowed queries over it can fire
  /// their remaining windows). Idempotent: closing a closed stream is OK.
  /// kNotFound for an unknown stream.
  Status CloseStream(const std::string& stream);

  /// Parses, plans, and submits a query; returns the client handle.
  Result<ClientHandle> Submit(const std::string& sql) {
    return Submit(sql, SubmitOptions());
  }
  Result<ClientHandle> Submit(const std::string& sql, SubmitOptions sub_opts);

  /// Scans a spooled stream's history for tuples with l <= ts <= r
  /// (requires Options::spool_dir). Reads go through the buffer pool.
  Result<std::vector<Tuple>> ScanHistory(const std::string& stream,
                                         Timestamp l, Timestamp r);

  // --- Durable state (DESIGN.md §13) -----------------------------------------

  /// Seals every spool's partial tail page to disk, bounding the loss window
  /// to tuples routed after the call (the background spooler's fsync point,
  /// surfaced so tests and operators can force it). kFailedPrecondition
  /// without Options::spool_dir.
  Status FlushSpools();

  /// Takes an epoch-stamped snapshot of every state-holding layer — SteMs,
  /// PSoup-side structures, window runners, eddy routing/lineage, sharded
  /// partition maps, per-stream event-time marks and spool positions — into
  /// checkpoint_dir/ckpt-<epoch>, riding the quiesce protocol: ingest is
  /// blocked, fjords drain, spools flush, then state exports section by
  /// section. Returns the epoch. The server must be Start()ed (or have
  /// empty queues): draining relies on the execution objects. kTimedOut if
  /// the engine cannot quiesce; kFailedPrecondition without checkpoint_dir.
  Result<uint64_t> Checkpoint();

  /// Rebuilds the engine from the latest ckpt-<N> under checkpoint_dir plus
  /// a spool replay of everything archived past each stream's snapshot
  /// high-water mark. Must run on a freshly constructed server (same
  /// Options) before Start(), AttachSource, or any ingest: streams are
  /// re-defined, recorded queries re-planned under their original source
  /// ids and query ids, snapshot state imported, and the spool suffix
  /// re-routed (spool-bypassing, so the archive is not re-appended).
  /// Returns the restored epoch. kNotFound when no checkpoint exists;
  /// kFailedPrecondition on a non-fresh server or without checkpoint_dir.
  Result<uint64_t> Restore();

  /// Handles of every live query, restored ones included — the way a client
  /// reconnects to its egress / window buffer after Restore().
  std::vector<ClientHandle> Handles() const;

  /// Cancels a query — continuous or windowed. For a windowed query the
  /// dedicated execution object is stopped, its subscriptions are detached,
  /// and the client's window buffer is marked finished. kNotFound for an
  /// id no live query owns (including double-cancel).
  Status Cancel(GlobalQueryId id);

  void Start();
  void Stop();

  const Catalog& catalog() const { return catalog_; }
  Executor& executor() { return executor_; }
  uint64_t tuples_ingested() const { return ingested_->Value(); }
  const MetricsRegistryRef& metrics() const { return metrics_; }
  const obs::TracerRef& tracer() const { return tracer_; }

  /// Post-mortem dump of the trace flight recorder: the last N raw spans
  /// across all recording threads, ordered by start time.
  std::vector<obs::Span> DumpFlightRecorder() const {
    return tracer_->DumpFlightRecorder();
  }

  /// Snapshots every instrument in the registry and derives per-query
  /// stats. Cheap enough to poll (one pass over the instrument map).
  Introspection Introspect() const;

 private:
  struct Subscription {
    SourceId logical = 0;
    SchemaRef schema;
    /// Windowed subscriptions are owned by one query (detached on Cancel);
    /// continuous subscriptions are shared by every query on the logical
    /// source (owner stays 0).
    GlobalQueryId owner = 0;
    std::function<void(const TupleBatch&)> deliver;
    /// Invoked by CloseStream so end-of-stream reaches the subscriber
    /// (windowed queries close their input fjords and fire what remains).
    std::function<void()> close;
  };
  struct PhysicalStream {
    std::string name;
    SourceId canonical = 0;
    SchemaRef schema;
    std::vector<Subscription> subs;
    std::vector<FjordConsumer> wrapper_feeds;
    std::unique_ptr<StreamStore> spool;
    bool closed = false;
    Counter* ingested = nullptr;
    /// Background-spool append failures — counted, never silently dropped.
    Counter* spool_failed = nullptr;
    /// Event-time synthesis state (all guarded by mu_, like subs):
    /// max event timestamp routed so far, the last watermark promised, and
    /// the late-arrival counter shared with the wrapper's per-source one
    /// when the source is named after the stream.
    StreamOptions event_time;
    Timestamp max_ts = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    Counter* late = nullptr;
  };
  /// What Introspect() and Cancel() need to remember about a submitted
  /// query. Windowed queries own their dispatch unit and execution object.
  struct ClientInfo {
    bool windowed = false;
    std::vector<std::string> streams;  // physical stream names it reads
    std::shared_ptr<PushEgress> egress;
    std::shared_ptr<WindowResultBuffer> windows;
    std::shared_ptr<DispatchUnit> window_du;
    std::unique_ptr<ExecutionObject> window_eo;
    /// Checkpoint record: the submitted SQL plus the (alias -> source id)
    /// bindings its plan resolved, so a restore can re-plan with the ids
    /// pinned (self-join aliases are allocated at plan time and would
    /// otherwise come back different).
    std::string sql;
    bool speculate = false;
    std::vector<std::pair<std::string, SourceId>> bindings;
    /// Windowed queries: one injection point per FROM binding — the "win:"
    /// fjord producer plus the fjord itself (for drain probes) and the
    /// binding's logical schema (for alias re-tagging). History backfill and
    /// restore replay push through these instead of the drop-on-overload
    /// subscription path, with bounded retry.
    struct WindowInput {
      SourceId source = 0;
      std::string stream;  // physical stream name
      SchemaRef schema;
      std::shared_ptr<Fjord> fjord;
      std::shared_ptr<FjordProducer> producer;
    };
    std::vector<WindowInput> window_inputs;
  };

  /// Routes a whole physical batch to every logical subscription (re-tagged
  /// per subscription for self-join aliases). `spool` false bypasses the
  /// background spool append — the restore replay path, which re-routes
  /// tuples that are already archived.
  void RouteBatch(PhysicalStream* stream, const TupleBatch& batch,
                  bool spool = true);
  /// DefineStream minus the tcq$ reservation check — the path the engine
  /// itself uses to register the reserved introspection streams. With
  /// `reopen_spool` an existing spool file is opened and appended to
  /// (restore) instead of truncated (fresh definition).
  Result<SourceId> DefineStreamInternal(const std::string& name,
                                        const std::vector<Field>& fields,
                                        bool reopen_spool = false);
  /// Ensures the executor knows `entry` and tuples reach it.
  Status SubscribeContinuous(const std::string& physical,
                             const Catalog::StreamEntry& entry);
  /// The windowed half of Submit(), callable with an explicit query id
  /// (restore re-admits under recorded ids). Caller holds mu_.
  Result<ClientHandle> AdmitWindowedLocked(const PlannedQuery& plan,
                                           const std::string& sql,
                                           const SubmitOptions& sub_opts,
                                           GlobalQueryId wid);
  /// Primes a freshly admitted windowed query's fjords with the archived
  /// suffix reaching `reach` back (SubmitOptions::history_reach). Caller
  /// holds mu_, so live routing is blocked and the splice is exact.
  Status BackfillWindowedLocked(ClientInfo* client, Timestamp reach);
  /// Waits until every windowed query's input fjords are empty (their EOs
  /// drain them; pre-Start the DUs are stepped inline). Caller holds mu_.
  Status DrainWindowedLocked();
  void CheckpointLoop();
  void PumpLoop();

  Options opts_;
  // Declared before executor_/wrapper_: they receive it at construction.
  MetricsRegistryRef metrics_;
  // Likewise before executor_/wrapper_ (both hold a reference).
  obs::TracerRef tracer_;
  Catalog catalog_;
  Executor executor_;
  Wrapper wrapper_;
  BufferPool spool_pool_;
  std::unique_ptr<obs::SystemStreamSource> system_streams_;
  mutable std::mutex mu_;
  std::map<std::string, PhysicalStream> streams_;
  std::map<GlobalQueryId, ClientInfo> clients_;
  std::thread pump_thread_;
  std::atomic<bool> stop_{false};
  Counter* ingested_;
  bool started_ = false;
  GlobalQueryId next_window_query_id_ = 1u << 20;  // distinct id space
  uint64_t next_client_label_ = 0;  // egress labels (gid unknown pre-admit)
  // Durable-state instruments and checkpointer state (DESIGN.md §13).
  Counter* ckpt_epochs_;
  Counter* ckpt_bytes_;
  Counter* ckpt_failures_;
  Gauge* ckpt_duration_us_;
  Counter* restore_replayed_;
  Gauge* restore_duration_us_;
  uint64_t last_epoch_ = 0;  // guarded by mu_
  std::thread checkpoint_thread_;
  std::atomic<bool> checkpoint_stop_{false};
};

}  // namespace tcq
