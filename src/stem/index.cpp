#include "stem/index.h"

#include <algorithm>

namespace tcq {

void HashIndex::Lookup(const Value& key, const EntryLog& log,
                       std::vector<uint64_t>* out) {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  std::vector<uint64_t>& ids = it->second;
  // Ids are appended in increasing order; dead ones form a prefix.
  size_t dead = 0;
  while (dead < ids.size() && ids[dead] < log.base()) ++dead;
  if (dead > 0) ids.erase(ids.begin(), ids.begin() + static_cast<long>(dead));
  if (ids.empty()) {
    buckets_.erase(it);
    return;
  }
  out->insert(out->end(), ids.begin(), ids.end());
}

void HashIndex::Vacuum(const EntryLog& log) {
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    std::vector<uint64_t>& ids = it->second;
    size_t dead = 0;
    while (dead < ids.size() && ids[dead] < log.base()) ++dead;
    if (dead > 0)
      ids.erase(ids.begin(), ids.begin() + static_cast<long>(dead));
    if (ids.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace tcq
