// In-memory indexes that back SteMs ("to speed processing, SteMs can be
// augmented with indexes", paper §2.2). The hash index supports equality
// probes; the scan list supports arbitrary-predicate probes (non-equijoins).

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {

/// One stored build tuple with its global arrival sequence number.
struct StemEntry {
  Tuple tuple;
  Timestamp seq = 0;
};

/// Append-only entry log with FIFO eviction from the front. Entry ids are
/// absolute (monotonically increasing); ids below `base()` are evicted.
class EntryLog {
 public:
  /// Appends and returns the absolute id.
  uint64_t Append(StemEntry entry) {
    entries_.push_back(std::move(entry));
    return base_ + entries_.size() - 1;
  }

  /// Pops the oldest live entry.
  void PopFront() {
    entries_.pop_front();
    ++base_;
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  uint64_t base() const { return base_; }
  uint64_t end() const { return base_ + entries_.size(); }

  bool IsLive(uint64_t id) const { return id >= base_ && id < end(); }

  const StemEntry& Get(uint64_t id) const { return entries_[id - base_]; }
  const StemEntry& Front() const { return entries_.front(); }

 private:
  std::deque<StemEntry> entries_;
  uint64_t base_ = 0;
};

/// Equality hash index over an attribute: key value -> absolute entry ids.
/// Eviction is lazy: probes prune bucket prefixes that fell below the log
/// base, so no work is spent on buckets never probed again.
class HashIndex {
 public:
  void Insert(const Value& key, uint64_t id) { buckets_[key].push_back(id); }

  /// Appends live ids matching `key` to `out`, pruning dead ones.
  void Lookup(const Value& key, const EntryLog& log,
              std::vector<uint64_t>* out);

  size_t num_buckets() const { return buckets_.size(); }

  /// Drops buckets that became entirely dead (called occasionally).
  void Vacuum(const EntryLog& log);

 private:
  std::unordered_map<Value, std::vector<uint64_t>, ValueHash> buckets_;
};

}  // namespace tcq
