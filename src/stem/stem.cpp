#include "stem/stem.h"

#include <cassert>

#include "obs/trace.h"

namespace tcq {

SteM::SteM(std::string name, SourceId source, SchemaRef schema,
           StemOptions opts, MetricsRegistryRef metrics)
    : name_(std::move(name)),
      source_(source),
      schema_(std::move(schema)),
      opts_(std::move(opts)),
      metrics_(OrPrivateRegistry(std::move(metrics))) {
  builds_ = metrics_->GetCounter(
      MetricName("tcq_stem_builds_total", "stem", name_));
  probes_ = metrics_->GetCounter(
      MetricName("tcq_stem_probes_total", "stem", name_));
  matches_ = metrics_->GetCounter(
      MetricName("tcq_stem_matches_total", "stem", name_));
  evictions_ = metrics_->GetCounter(
      MetricName("tcq_stem_evictions_total", "stem", name_));
  live_entries_ = metrics_->GetGauge(
      MetricName("tcq_stem_live_entries", "stem", name_));
  if (!opts_.key_attr.empty()) EnsureIndex(opts_.key_attr);
}

size_t SteM::ResolveField(const std::string& attr) const {
  auto idx = schema_->IndexOf(attr, source_);
  if (!idx) idx = schema_->IndexOf(attr);
  assert(idx.has_value() && "SteM index attribute not in schema");
  return *idx;
}

SteM::AttrIndex* SteM::FindIndex(const std::string& attr) {
  for (AttrIndex& ai : indexes_) {
    if (ai.attr == attr) return &ai;
  }
  return nullptr;
}

void SteM::EnsureIndex(const std::string& attr) {
  if (FindIndex(attr) != nullptr) return;
  AttrIndex ai;
  ai.attr = attr;
  ai.field = ResolveField(attr);
  // Backfill from live entries so late index creation sees earlier builds.
  for (uint64_t id = log_.base(); id < log_.end(); ++id) {
    ai.index.Insert(log_.Get(id).tuple.at(ai.field), id);
  }
  indexes_.push_back(std::move(ai));
}

void SteM::Build(const Tuple& tuple, Timestamp seq) {
  builds_->Inc();
  obs::TraceContext& tc = obs::CurrentTrace();
  int64_t t0 = tc.tracer != nullptr ? NowMicros() : 0;
  uint64_t id = log_.Append(StemEntry{tuple, seq});
  for (AttrIndex& ai : indexes_) ai.index.Insert(tuple.at(ai.field), id);
  EnforceCapacity();
  live_entries_->Set(static_cast<int64_t>(log_.size()));
  if (tc.tracer != nullptr) {
    tc.tracer->Record(obs::SpanKind::kStemBuild, source_, 0, t0,
                      NowMicros() - t0);
  }
}

void SteM::EnforceCapacity() {
  if (opts_.max_count == 0) return;
  while (log_.size() > opts_.max_count) {
    log_.PopFront();
    evictions_->Inc();
  }
}

void SteM::ProbeEq(const Value& key, Timestamp seq_bound,
                   std::vector<const StemEntry*>* out) {
  assert(!opts_.key_attr.empty() &&
         "default ProbeEq requires a key_attr; use the attr overload");
  ProbeEq(opts_.key_attr, key, seq_bound, out);
}

void SteM::ProbeEq(const std::string& attr, const Value& key,
                   Timestamp seq_bound, std::vector<const StemEntry*>* out) {
  AttrIndex* ai = FindIndex(attr);
  assert(ai != nullptr && "ProbeEq on unindexed attribute");
  probes_->Inc();
  obs::TraceContext& tc = obs::CurrentTrace();
  int64_t t0 = tc.tracer != nullptr ? NowMicros() : 0;
  scratch_ids_.clear();
  ai->index.Lookup(key, log_, &scratch_ids_);
  for (uint64_t id : scratch_ids_) {
    if (!log_.IsLive(id)) continue;
    const StemEntry& e = log_.Get(id);
    if (e.seq < seq_bound) {
      out->push_back(&e);
      matches_->Inc();
    }
  }
  if (tc.tracer != nullptr) {
    tc.tracer->Record(obs::SpanKind::kStemProbe, source_, 0, t0,
                      NowMicros() - t0);
  }
}

void SteM::ProbeScan(Timestamp seq_bound, std::vector<const StemEntry*>* out) {
  probes_->Inc();
  obs::TraceContext& tc = obs::CurrentTrace();
  int64_t t0 = tc.tracer != nullptr ? NowMicros() : 0;
  for (uint64_t id = log_.base(); id < log_.end(); ++id) {
    const StemEntry& e = log_.Get(id);
    if (e.seq < seq_bound) {
      out->push_back(&e);
      matches_->Inc();
    }
  }
  if (tc.tracer != nullptr) {
    tc.tracer->Record(obs::SpanKind::kStemProbe, source_, 0, t0,
                      NowMicros() - t0);
  }
}

void SteM::AdvanceTime(Timestamp now) {
  if (opts_.window == 0) return;
  Timestamp cutoff = now - opts_.window;
  while (!log_.empty() && log_.Front().tuple.timestamp() <= cutoff) {
    log_.PopFront();
    evictions_->Inc();
  }
  live_entries_->Set(static_cast<int64_t>(log_.size()));
}

void SteM::ExportTo(CheckpointWriter* w) const {
  w->PutU32(source_);
  w->PutU64(log_.size());
  ForEachEntry([w](const Tuple& tuple, Timestamp seq) {
    w->PutTuple(tuple);
    w->PutI64(seq);
  });
}

Status SteM::RestoreFrom(CheckpointReader* r) {
  TCQ_ASSIGN_OR_RETURN(uint32_t source, r->GetU32());
  if (source != source_) {
    return Status::IOError("stem checkpoint is for source " +
                           std::to_string(source) + ", restoring source " +
                           std::to_string(source_));
  }
  if (!log_.empty()) {
    return Status::FailedPrecondition(
        "stem restore requires an empty SteM (" + name_ + " has " +
        std::to_string(log_.size()) + " entries)");
  }
  TCQ_ASSIGN_OR_RETURN(uint64_t count, r->GetU64());
  for (uint64_t i = 0; i < count; ++i) {
    TCQ_ASSIGN_OR_RETURN(Tuple tuple, r->GetTuple());
    TCQ_ASSIGN_OR_RETURN(int64_t seq, r->GetI64());
    Build(tuple, seq);
  }
  return Status::OK();
}

SteMProbe::SteMProbe(std::string name, SteM* stem, JoinSpec spec)
    : EddyModule(std::move(name)), stem_(stem), spec_(std::move(spec)) {
  assert(spec_.probe_key.has_value() == spec_.build_key.has_value() &&
         "probe_key and build_key must be set together");
  if (spec_.build_key) stem_->EnsureIndex(spec_.build_key->name);
  if (spec_.required_override != 0) {
    required_ = spec_.required_override;
  } else if (spec_.probe_key) {
    required_ = SourceBit(spec_.probe_key->source);
  } else {
    // Scan join: require the probe-side sources of every predicate that
    // touches the SteM's source.
    required_ = 0;
    for (const auto& p : spec_.predicates) {
      if (p->sources() & SourceBit(stem_->source())) {
        required_ |= p->sources() & ~SourceBit(stem_->source());
      }
    }
  }
}

bool SteMProbe::AppliesTo(SourceSet sources) const {
  // A tuple probes this SteM iff it does not yet span the SteM's source but
  // does span everything the join predicate needs on the probe side.
  if (sources & SourceBit(stem_->source())) return false;
  return (required_ & ~sources) == 0;
}

SchemaRef SteMProbe::ConcatSchemaFor(const SchemaRef& input) {
  const Schema* key = input.get();
  for (const auto& [cached_key, cached] : schema_cache_) {
    if (cached_key == key) return cached;
  }
  SchemaRef out = Schema::Concat(input, stem_->schema());
  schema_cache_.emplace_back(key, out);
  return out;
}

EddyModule::Action SteMProbe::Process(const Envelope& env,
                                      std::vector<Envelope>* out) {
  scratch_.clear();
  if (spec_.probe_key) {
    const Value* key = ResolveAttr(env.tuple, *spec_.probe_key);
    assert(key != nullptr && "probe key attribute missing");
    stem_->ProbeEq(spec_.build_key->name, *key, env.seq_max, &scratch_);
  } else {
    stem_->ProbeScan(env.seq_max, &scratch_);
  }
  if (scratch_.empty()) return Action::kDrop;
  SchemaRef out_schema = ConcatSchemaFor(env.tuple.schema());
  for (const StemEntry* e : scratch_) {
    Tuple child = Tuple::Concat(env.tuple, e->tuple, out_schema);
    // The hashed equality already holds; enforce every other predicate that
    // just became evaluable on the concatenation.
    bool ok = true;
    for (const auto& p : spec_.predicates) {
      if (p->CanEval(child) && !p->Eval(child)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    out->push_back(
        Envelope{std::move(child), 0, std::max(env.seq_max, e->seq)});
  }
  return Action::kExpand;
}

}  // namespace tcq
