// SteM (State Module): "a temporary repository of tuples, essentially
// corresponding to half of a traditional join operator" (paper §2.2).
// Supports insert (build), search (probe), and delete (eviction). A pair of
// hash-indexed SteMs routed by an eddy implements an adaptive symmetric hash
// join; a SteM can also act as a rendezvous buffer or a lookup cache for
// asynchronous index joins.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "eddy/module.h"
#include "operators/predicate.h"
#include "stem/index.h"
#include "storage/checkpoint.h"
#include "tuple/tuple.h"

namespace tcq {

/// Eviction configuration. Both knobs may be active at once.
struct StemOptions {
  /// Attribute (on this SteM's source) used as the equality-probe key.
  /// Empty string = scan-only SteM (no initial hash index). Additional
  /// indexes can be added later with EnsureIndex (one per join edge).
  std::string key_attr;
  /// Keep at most this many build tuples (FIFO eviction); 0 = unbounded.
  size_t max_count = 0;
  /// Evict build tuples with timestamp <= now - window when AdvanceTime is
  /// called; 0 = unbounded. Assumes per-stream monotone timestamps.
  Timestamp window = 0;
};

class SteM : public Checkpointable {
 public:
  /// When `metrics` is null the SteM observes itself in a private registry;
  /// instruments are labeled with the SteM's name.
  SteM(std::string name, SourceId source, SchemaRef schema, StemOptions opts,
       MetricsRegistryRef metrics = nullptr);

  const std::string& name() const { return name_; }
  SourceId source() const { return source_; }
  const SchemaRef& schema() const { return schema_; }
  bool has_hash_index() const { return !indexes_.empty(); }
  const StemOptions& options() const { return opts_; }

  /// Ensures a hash index exists on `attr` (one per join edge touching this
  /// SteM's source), backfilling it from the live entries.
  void EnsureIndex(const std::string& attr);

  /// Inserts a build tuple with its global arrival sequence number.
  void Build(const Tuple& tuple, Timestamp seq);

  /// Equality probe on the index over the SteM's default key attribute:
  /// appends entries whose key equals `key` and whose seq is strictly below
  /// `seq_bound` (the exactly-once match rule).
  void ProbeEq(const Value& key, Timestamp seq_bound,
               std::vector<const StemEntry*>* out);

  /// Equality probe on the index over `attr` (must exist via key_attr or
  /// EnsureIndex).
  void ProbeEq(const std::string& attr, const Value& key, Timestamp seq_bound,
               std::vector<const StemEntry*>* out);

  /// Scan probe: every live entry with seq < seq_bound.
  void ProbeScan(Timestamp seq_bound, std::vector<const StemEntry*>* out);

  /// Advances this SteM's notion of stream time, evicting expired entries
  /// under the window policy.
  void AdvanceTime(Timestamp now);

  /// Visits every live build entry in arrival order (oldest first) with its
  /// original sequence number. The sharded executor uses this to
  /// redistribute stored state across shard replicas on re-partition.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (uint64_t id = log_.base(); id < log_.end(); ++id) {
      const StemEntry& e = log_.Get(id);
      fn(e.tuple, e.seq);
    }
  }

  size_t size() const { return log_.size(); }

  // --- Durable state (DESIGN.md §13) -----------------------------------------
  // Exports the live entry log (tuples with ORIGINAL seqs, arrival order).
  // Restore requires an empty SteM built for the same source; entries go
  // back in through Build, which rebuilds every hash index as a side effect.
  std::string CheckpointTag() const override { return "stem"; }
  uint32_t CheckpointVersion() const override { return 1; }
  void ExportTo(CheckpointWriter* w) const override;
  Status RestoreFrom(CheckpointReader* r) override;

  // Thin reads over the metrics registry.
  uint64_t builds() const { return builds_->Value(); }
  uint64_t probes() const { return probes_->Value(); }
  uint64_t matches() const { return matches_->Value(); }
  uint64_t evictions() const { return evictions_->Value(); }

 private:
  struct AttrIndex {
    std::string attr;
    size_t field = 0;  // position of attr in the schema
    HashIndex index;
  };

  void EnforceCapacity();
  AttrIndex* FindIndex(const std::string& attr);
  size_t ResolveField(const std::string& attr) const;

  std::string name_;
  SourceId source_;
  SchemaRef schema_;
  StemOptions opts_;
  EntryLog log_;
  std::vector<AttrIndex> indexes_;
  std::vector<uint64_t> scratch_ids_;
  MetricsRegistryRef metrics_;
  Counter* builds_;
  Counter* probes_;
  Counter* matches_;
  Counter* evictions_;
  Gauge* live_entries_;
};

/// The join description a SteM probe enforces between the probing tuple and
/// the SteM's stored source. Build one SteMProbe per join-predicate edge
/// touching the SteM's source, so any tuple sharing a predicate with the
/// source can probe it (the completeness requirement of §2.2).
struct JoinSpec {
  /// Equality pair: probe-side attribute (on an already-spanned source) and
  /// build-side attribute (on the SteM's source). Unset => scan join.
  std::optional<AttrRef> probe_key;
  std::optional<AttrRef> build_key;
  /// The query's join predicates; each is enforced on a concatenation as
  /// soon as it becomes evaluable. (Re-checking ones an ancestor already
  /// passed is harmless.)
  std::vector<PredicateRef> predicates;
  /// Sources the probing tuple must span before using this module. Zero =
  /// derive automatically (probe_key's source, else predicate sources that
  /// co-occur with the SteM's source).
  SourceSet required_override = 0;
};

/// Eddy module that probes a SteM: consumes the probing tuple and emits its
/// concatenations with matching builds (paper Fig. 2 dataflow).
class SteMProbe : public EddyModule {
 public:
  SteMProbe(std::string name, SteM* stem, JoinSpec spec);

  bool AppliesTo(SourceSet sources) const override;

  Action Process(const Envelope& env, std::vector<Envelope>* out) override;

  SourceSet contributes() const override {
    return SourceBit(stem_->source()) | required_;
  }

  SteM* stem() const { return stem_; }

 private:
  SchemaRef ConcatSchemaFor(const SchemaRef& input);

  SteM* stem_;
  JoinSpec spec_;
  /// Sources the probing tuple must already span.
  SourceSet required_;
  std::vector<std::pair<const Schema*, SchemaRef>> schema_cache_;
  std::vector<const StemEntry*> scratch_;
};

}  // namespace tcq
