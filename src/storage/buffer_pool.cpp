#include "storage/buffer_pool.h"

#include <cassert>

namespace tcq {

const char* ReplacementPolicyName(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kMru:
      return "mru";
    case ReplacementPolicy::kClock:
      return "clock";
  }
  return "?";
}

Result<const std::string*> BufferPool::Fetch(const PageProvider* provider,
                                             uint64_t page_id) {
  FrameKey key{provider, page_id};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    ++hits_;
    it->second.referenced = true;
    if (opts_.policy != ReplacementPolicy::kClock) {
      // Move to the most-recent end.
      auto pos = recency_pos_.find(key);
      recency_.erase(pos->second);
      recency_.push_back(key);
      pos->second = std::prev(recency_.end());
    }
    return &it->second.data;
  }

  ++misses_;
  while (frames_.size() >= opts_.capacity_pages) EvictOne();

  Frame frame;
  TCQ_RETURN_IF_ERROR(provider->ReadPage(page_id, &frame.data));
  auto [ins, ok] = frames_.emplace(key, std::move(frame));
  assert(ok);
  if (opts_.policy == ReplacementPolicy::kClock) {
    clock_ring_.push_back(key);
  } else {
    recency_.push_back(key);
    recency_pos_[key] = std::prev(recency_.end());
  }
  return &ins->second.data;
}

void BufferPool::EvictOne() {
  assert(!frames_.empty());
  ++evictions_;
  FrameKey victim{nullptr, 0};
  switch (opts_.policy) {
    case ReplacementPolicy::kLru:
      victim = recency_.front();
      recency_.pop_front();
      recency_pos_.erase(victim);
      break;
    case ReplacementPolicy::kMru:
      victim = recency_.back();
      recency_.pop_back();
      recency_pos_.erase(victim);
      break;
    case ReplacementPolicy::kClock: {
      // Sweep: clear reference bits until an unreferenced frame is found.
      for (;;) {
        if (clock_ring_.empty()) return;
        clock_hand_ %= clock_ring_.size();
        FrameKey cand = clock_ring_[clock_hand_];
        auto it = frames_.find(cand);
        if (it == frames_.end()) {
          clock_ring_.erase(clock_ring_.begin() +
                            static_cast<long>(clock_hand_));
          continue;
        }
        if (it->second.referenced) {
          it->second.referenced = false;
          ++clock_hand_;
          continue;
        }
        victim = cand;
        clock_ring_.erase(clock_ring_.begin() +
                          static_cast<long>(clock_hand_));
        break;
      }
      break;
    }
  }
  frames_.erase(victim);
}

void BufferPool::Invalidate(const PageProvider* provider) {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->first.provider == provider) {
      if (opts_.policy == ReplacementPolicy::kClock) {
        std::erase(clock_ring_, it->first);
      } else {
        auto pos = recency_pos_.find(it->first);
        if (pos != recency_pos_.end()) {
          recency_.erase(pos->second);
          recency_pos_.erase(pos);
        }
      }
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace tcq
