// Buffer pool over stream-store pages. The paper (§4.3) notes that the
// buffer manager "must be tuned to both accept new bursty streaming data, as
// well as service queries that access historical data", and that windowed
// read workloads resemble periodic broadcast-disk patterns [AAFZ95] rather
// than classic OLTP — hence pluggable replacement policies, including an
// MRU-style one that behaves well under cyclic scans.

#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "storage/stream_store.h"

namespace tcq {

enum class ReplacementPolicy {
  kLru,    ///< classic least-recently-used
  kMru,    ///< most-recently-used: optimal for repeated cyclic scans
  kClock,  ///< second-chance approximation of LRU
};

const char* ReplacementPolicyName(ReplacementPolicy p);

class BufferPool {
 public:
  struct Options {
    size_t capacity_pages = 64;
    ReplacementPolicy policy = ReplacementPolicy::kLru;
  };

  BufferPool() : BufferPool(Options()) {}
  explicit BufferPool(Options opts) : opts_(opts) {}

  /// Returns the page contents, reading through the provider on a miss.
  /// The returned pointer is valid until the next Fetch (frames are
  /// recycled); callers decode immediately.
  Result<const std::string*> Fetch(const PageProvider* provider,
                                   uint64_t page_id);

  /// Drops every cached page of a provider (e.g. a store being destroyed).
  void Invalidate(const PageProvider* provider);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t cached_pages() const { return frames_.size(); }
  double HitRate() const {
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / double(total);
  }

 private:
  struct FrameKey {
    const PageProvider* provider;
    uint64_t page_id;
    bool operator==(const FrameKey&) const = default;
  };
  struct FrameKeyHash {
    size_t operator()(const FrameKey& k) const {
      return std::hash<const void*>{}(k.provider) ^
             (std::hash<uint64_t>{}(k.page_id) * 0x9e3779b97f4a7c15ull);
    }
  };
  struct Frame {
    std::string data;
    bool referenced = true;  // for the clock policy
  };

  void EvictOne();

  Options opts_;
  std::unordered_map<FrameKey, Frame, FrameKeyHash> frames_;
  // Recency list: front = next eviction candidate under LRU (back = most
  // recent). MRU evicts from the back.
  std::list<FrameKey> recency_;
  std::unordered_map<FrameKey, std::list<FrameKey>::iterator, FrameKeyHash>
      recency_pos_;
  size_t clock_hand_ = 0;
  std::vector<FrameKey> clock_ring_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace tcq
