#include "storage/checkpoint.h"

#include <cassert>
#include <cstdio>
#include <cstring>

namespace tcq {

namespace {

/// Per-page payload capacity: the rest is the [u32 used] header.
constexpr size_t kPagePayload = kPageSize - sizeof(uint32_t);
/// Logical-stream header: magic + format version + epoch.
constexpr size_t kStreamHeaderSize = 2 * sizeof(uint32_t) + sizeof(uint64_t);

uint64_t Fnv1a(const std::string& data) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void AppendRaw(std::string* buf, T v) {
  buf->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

}  // namespace

// --- CheckpointWriter -------------------------------------------------------

CheckpointWriter::CheckpointWriter(uint64_t epoch) : epoch_(epoch) {
  AppendRaw<uint32_t>(&body_, kCheckpointMagic);
  AppendRaw<uint32_t>(&body_, kCheckpointFormatVersion);
  AppendRaw<uint64_t>(&body_, epoch_);
}

void CheckpointWriter::BeginSection(const std::string& tag, uint32_t version) {
  assert(!in_section_ && "nested checkpoint sections are not supported");
  in_section_ = true;
  open_tag_ = tag;
  open_version_ = version;
  section_.clear();
}

void CheckpointWriter::EndSection() {
  assert(in_section_ && "EndSection without BeginSection");
  in_section_ = false;
  AppendRaw<uint32_t>(&body_, static_cast<uint32_t>(open_tag_.size()));
  body_ += open_tag_;
  AppendRaw<uint32_t>(&body_, open_version_);
  AppendRaw<uint64_t>(&body_, static_cast<uint64_t>(section_.size()));
  body_ += section_;
  AppendRaw<uint64_t>(&body_, Fnv1a(section_));
  section_.clear();
}

void CheckpointWriter::Raw(const void* data, size_t n) {
  assert(in_section_ && "checkpoint data must live inside a section");
  section_.append(static_cast<const char*>(data), n);
}

void CheckpointWriter::PutU8(uint8_t v) { Raw(&v, sizeof(v)); }
void CheckpointWriter::PutU16(uint16_t v) { Raw(&v, sizeof(v)); }
void CheckpointWriter::PutU32(uint32_t v) { Raw(&v, sizeof(v)); }
void CheckpointWriter::PutU64(uint64_t v) { Raw(&v, sizeof(v)); }
void CheckpointWriter::PutI64(int64_t v) { Raw(&v, sizeof(v)); }
void CheckpointWriter::PutDouble(double v) { Raw(&v, sizeof(v)); }

void CheckpointWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  Raw(s.data(), s.size());
}

void CheckpointWriter::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      PutI64(v.AsInt64());
      break;
    case ValueType::kDouble:
      PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      PutString(v.AsString());
      break;
  }
}

void CheckpointWriter::PutSchema(const Schema& schema) {
  PutU32(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    PutString(f.name);
    PutU8(static_cast<uint8_t>(f.type));
    PutU32(f.source);
  }
}

uint32_t CheckpointWriter::InternSchema(const SchemaRef& schema) {
  for (size_t i = 0; i < schema_table_.size(); ++i) {
    // Pointer identity: tuples of one stream (and join intermediates of one
    // cached concat) share a SchemaRef. Equal-by-value schemas under
    // distinct pointers just intern twice — correct, merely larger.
    if (schema_table_[i] == schema) return static_cast<uint32_t>(i);
  }
  schema_table_.push_back(schema);
  return static_cast<uint32_t>(schema_table_.size() - 1);
}

void CheckpointWriter::PutTuple(const Tuple& t) {
  assert(!t.IsPunctuation() && "punctuations are not checkpointable tuples");
  size_t before = schema_table_.size();
  uint32_t id = InternSchema(t.schema());
  PutU32(id);
  if (schema_table_.size() > before) PutSchema(*t.schema());
  PutU8(static_cast<uint8_t>(t.kind()));
  PutI64(t.timestamp());
  PutU16(static_cast<uint16_t>(t.num_fields()));
  for (size_t i = 0; i < t.num_fields(); ++i) PutValue(t.at(i));
}

Status CheckpointWriter::WriteTo(const std::string& path) {
  assert(!in_section_ && "cannot write with an open section");
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create checkpoint at " + tmp);
  }
  std::string page;
  page.reserve(kPageSize);
  for (size_t pos = 0; pos < body_.size(); pos += kPagePayload) {
    size_t used = std::min(kPagePayload, body_.size() - pos);
    page.clear();
    AppendRaw<uint32_t>(&page, static_cast<uint32_t>(used));
    page.append(body_, pos, used);
    page.resize(kPageSize, '\0');
    if (std::fwrite(page.data(), 1, kPageSize, f) != kPageSize) {
      std::fclose(f);
      std::remove(tmp.c_str());
      return Status::IOError("checkpoint write failed on " + tmp);
    }
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError("checkpoint flush failed on " + tmp);
  }
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("checkpoint rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

// --- CheckpointReader -------------------------------------------------------

Result<std::unique_ptr<CheckpointReader>> CheckpointReader::Open(
    const std::string& path, BufferPool* pool) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot size checkpoint " + path);
  }
  long size = std::ftell(f);
  if (size < 0 || static_cast<size_t>(size) % kPageSize != 0) {
    std::fclose(f);
    return Status::IOError("checkpoint " + path +
                           " is not page-aligned (torn write?)");
  }
  auto reader = std::unique_ptr<CheckpointReader>(new CheckpointReader(
      path, f, static_cast<uint64_t>(size) / kPageSize, pool));
  TCQ_RETURN_IF_ERROR(reader->ReadHeader());
  return reader;
}

CheckpointReader::~CheckpointReader() {
  if (pool_ != nullptr) pool_->Invalidate(this);
  if (file_ != nullptr) std::fclose(file_);
}

Status CheckpointReader::ReadPage(uint64_t page_id, std::string* out) const {
  if (page_id >= num_pages_) {
    return Status::OutOfRange("checkpoint page " + std::to_string(page_id) +
                              " out of range");
  }
  out->resize(kPageSize);
  if (std::fseek(file_, static_cast<long>(page_id * kPageSize), SEEK_SET) !=
          0 ||
      std::fread(out->data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("checkpoint read failed on " + path_);
  }
  return Status::OK();
}

Status CheckpointReader::Pull(void* out, size_t n) {
  char* dst = static_cast<char*>(out);
  while (n > 0) {
    if (!page_loaded_) {
      if (page_ >= num_pages_) {
        return Status::IOError("truncated checkpoint " + path_);
      }
      const std::string* page = nullptr;
      if (pool_ != nullptr) {
        TCQ_ASSIGN_OR_RETURN(page, pool_->Fetch(this, page_));
      } else {
        TCQ_RETURN_IF_ERROR(ReadPage(page_, &scratch_));
        page = &scratch_;
      }
      if (page->size() != kPageSize) {
        return Status::IOError("short checkpoint page in " + path_);
      }
      std::memcpy(&page_used_, page->data(), sizeof(uint32_t));
      if (page_used_ == 0 || page_used_ > kPagePayload) {
        return Status::IOError("corrupt page header in " + path_);
      }
      page_loaded_ = true;
    }
    if (off_ >= page_used_) {
      ++page_;
      off_ = 0;
      page_loaded_ = false;
      continue;
    }
    // Re-fetch under the pool (the frame pointer is only stable until the
    // next Fetch, and decoding may interleave with spool scans).
    const std::string* page = nullptr;
    if (pool_ != nullptr) {
      TCQ_ASSIGN_OR_RETURN(page, pool_->Fetch(this, page_));
    } else {
      page = &scratch_;
    }
    size_t take = std::min<size_t>(n, page_used_ - off_);
    std::memcpy(dst, page->data() + sizeof(uint32_t) + off_, take);
    dst += take;
    off_ += static_cast<uint32_t>(take);
    n -= take;
  }
  return Status::OK();
}

Status CheckpointReader::ReadHeader() {
  uint32_t magic = 0;
  TCQ_RETURN_IF_ERROR(Pull(&magic, sizeof(magic)));
  if (magic != kCheckpointMagic) {
    return Status::IOError("bad checkpoint magic in " + path_);
  }
  TCQ_RETURN_IF_ERROR(Pull(&format_version_, sizeof(format_version_)));
  if (format_version_ > kCheckpointFormatVersion) {
    return Status::IOError("checkpoint format v" +
                           std::to_string(format_version_) +
                           " is newer than this build supports");
  }
  return Pull(&epoch_, sizeof(epoch_));
}

bool CheckpointReader::AtEnd() const {
  if (page_ >= num_pages_) return true;
  if (page_ + 1 == num_pages_ && page_loaded_ && off_ >= page_used_) {
    return true;
  }
  return false;
}

Result<CheckpointReader::Section> CheckpointReader::BeginSection() {
  if (in_section_) {
    return Status::Internal("BeginSection with a section already open");
  }
  uint32_t tag_len = 0;
  TCQ_RETURN_IF_ERROR(Pull(&tag_len, sizeof(tag_len)));
  if (tag_len > 256) {
    return Status::IOError("implausible section tag length in " + path_);
  }
  Section sec;
  sec.tag.resize(tag_len);
  TCQ_RETURN_IF_ERROR(Pull(sec.tag.data(), tag_len));
  TCQ_RETURN_IF_ERROR(Pull(&sec.version, sizeof(sec.version)));
  TCQ_RETURN_IF_ERROR(Pull(&sec.length, sizeof(sec.length)));
  if (sec.length > num_pages_ * kPagePayload) {
    return Status::IOError("section '" + sec.tag + "' length exceeds file");
  }
  section_buf_.resize(sec.length);
  TCQ_RETURN_IF_ERROR(Pull(section_buf_.data(), sec.length));
  uint64_t want = 0;
  TCQ_RETURN_IF_ERROR(Pull(&want, sizeof(want)));
  if (Fnv1a(section_buf_) != want) {
    return Status::IOError("checksum mismatch in section '" + sec.tag +
                           "' of " + path_);
  }
  in_section_ = true;
  cur_section_ = sec;
  section_pos_ = 0;
  return sec;
}

Status CheckpointReader::EndSection() {
  if (!in_section_) {
    return Status::Internal("EndSection without an open section");
  }
  in_section_ = false;
  if (section_pos_ != section_buf_.size()) {
    return Status::IOError("section '" + cur_section_.tag + "' has " +
                           std::to_string(section_buf_.size() - section_pos_) +
                           " undecoded bytes (version skew?)");
  }
  return Status::OK();
}

Status CheckpointReader::SectionBytes(void* out, size_t n) {
  if (!in_section_) {
    return Status::Internal("checkpoint read outside any section");
  }
  if (section_pos_ + n > section_buf_.size()) {
    return Status::IOError("truncated section '" + cur_section_.tag + "'");
  }
  std::memcpy(out, section_buf_.data() + section_pos_, n);
  section_pos_ += n;
  return Status::OK();
}

Result<uint8_t> CheckpointReader::GetU8() {
  uint8_t v = 0;
  TCQ_RETURN_IF_ERROR(SectionBytes(&v, sizeof(v)));
  return v;
}

Result<uint16_t> CheckpointReader::GetU16() {
  uint16_t v = 0;
  TCQ_RETURN_IF_ERROR(SectionBytes(&v, sizeof(v)));
  return v;
}

Result<uint32_t> CheckpointReader::GetU32() {
  uint32_t v = 0;
  TCQ_RETURN_IF_ERROR(SectionBytes(&v, sizeof(v)));
  return v;
}

Result<uint64_t> CheckpointReader::GetU64() {
  uint64_t v = 0;
  TCQ_RETURN_IF_ERROR(SectionBytes(&v, sizeof(v)));
  return v;
}

Result<int64_t> CheckpointReader::GetI64() {
  int64_t v = 0;
  TCQ_RETURN_IF_ERROR(SectionBytes(&v, sizeof(v)));
  return v;
}

Result<bool> CheckpointReader::GetBool() {
  TCQ_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  return v != 0;
}

Result<double> CheckpointReader::GetDouble() {
  double v = 0;
  TCQ_RETURN_IF_ERROR(SectionBytes(&v, sizeof(v)));
  return v;
}

Result<std::string> CheckpointReader::GetString() {
  TCQ_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  std::string s;
  s.resize(len);
  TCQ_RETURN_IF_ERROR(SectionBytes(s.data(), len));
  return s;
}

Result<Value> CheckpointReader::GetValue() {
  TCQ_ASSIGN_OR_RETURN(uint8_t type, GetU8());
  switch (static_cast<ValueType>(type)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      TCQ_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value::Bool(b != 0);
    }
    case ValueType::kInt64: {
      TCQ_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Int64(v);
    }
    case ValueType::kTimestamp: {
      TCQ_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::TimestampVal(v);
    }
    case ValueType::kDouble: {
      TCQ_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case ValueType::kString: {
      TCQ_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    default:
      return Status::IOError("unknown value type tag in checkpoint");
  }
}

Result<SchemaRef> CheckpointReader::GetSchema() {
  TCQ_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Field f;
    TCQ_ASSIGN_OR_RETURN(f.name, GetString());
    TCQ_ASSIGN_OR_RETURN(uint8_t type, GetU8());
    if (type > static_cast<uint8_t>(ValueType::kTimestamp)) {
      return Status::IOError("unknown field type tag in checkpoint schema");
    }
    f.type = static_cast<ValueType>(type);
    TCQ_ASSIGN_OR_RETURN(f.source, GetU32());
    fields.push_back(std::move(f));
  }
  return Schema::Make(std::move(fields));
}

Result<Tuple> CheckpointReader::GetTuple() {
  TCQ_ASSIGN_OR_RETURN(uint32_t schema_id, GetU32());
  SchemaRef schema;
  if (schema_id == schema_table_.size()) {
    TCQ_ASSIGN_OR_RETURN(schema, GetSchema());
    schema_table_.push_back(schema);
  } else if (schema_id < schema_table_.size()) {
    schema = schema_table_[schema_id];
  } else {
    return Status::IOError("checkpoint tuple references unknown schema id " +
                           std::to_string(schema_id));
  }
  TCQ_ASSIGN_OR_RETURN(uint8_t kind, GetU8());
  if (kind != static_cast<uint8_t>(TupleKind::kData) &&
      kind != static_cast<uint8_t>(TupleKind::kRetraction)) {
    return Status::IOError("unexpected tuple kind in checkpoint");
  }
  TCQ_ASSIGN_OR_RETURN(int64_t ts, GetI64());
  TCQ_ASSIGN_OR_RETURN(uint16_t n, GetU16());
  if (n != schema->num_fields()) {
    return Status::IOError("checkpoint tuple arity does not match schema");
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    TCQ_ASSIGN_OR_RETURN(Value v, GetValue());
    values.push_back(std::move(v));
  }
  Tuple t = Tuple::Make(std::move(schema), std::move(values), ts);
  if (kind == static_cast<uint8_t>(TupleKind::kRetraction)) {
    return Tuple::Retraction(t);
  }
  return t;
}

// --- Section helpers --------------------------------------------------------

void WriteCheckpointSection(CheckpointWriter* w, const Checkpointable& c) {
  w->BeginSection(c.CheckpointTag(), c.CheckpointVersion());
  c.ExportTo(w);
  w->EndSection();
}

Status ReadCheckpointSection(CheckpointReader* r, Checkpointable* c) {
  TCQ_ASSIGN_OR_RETURN(CheckpointReader::Section sec, r->BeginSection());
  if (sec.tag != c->CheckpointTag()) {
    return Status::IOError("expected checkpoint section '" +
                           c->CheckpointTag() + "', found '" + sec.tag + "'");
  }
  if (sec.version > c->CheckpointVersion()) {
    return Status::IOError("section '" + sec.tag + "' v" +
                           std::to_string(sec.version) +
                           " is newer than this build supports");
  }
  TCQ_RETURN_IF_ERROR(c->RestoreFrom(r));
  return r->EndSection();
}

}  // namespace tcq
