// Checkpoint files: epoch-stamped, schema-versioned snapshots of the
// engine's in-memory state (DESIGN.md §13). Every state-holding layer
// (SteMs, PSoup's structures, window runners, eddy registries, shard
// partition maps) implements the Checkpointable surface below and
// serializes itself into tagged sections of one logical byte stream.
//
// The stream is paginated into StreamStore-sized pages so checkpoint reads
// share the buffer pool with historical scans (a CheckpointReader IS a
// PageProvider), and tuples reuse the TupleCodec value conventions so the
// two on-disk formats stay bit-compatible where they overlap.
//
// Layout:
//   file   := page*                      (each page exactly kPageSize bytes)
//   page   := [u32 used][payload][0-pad] (logical stream = concat payloads)
//   stream := header section*
//   header := [u32 magic "TCQp"][u32 format_version][u64 epoch]
//   section:= [string tag][u32 version][u64 len][payload][u64 fnv1a(payload)]
// with string = [u32 len][bytes], value = [u8 type][payload] exactly as
// TupleCodec writes it, and tuple = [u32 schema_id][i64 ts][u16 n][value*]
// where schema ids intern into a per-file table (id == table size means a
// new schema whose inline definition follows).
//
// Writers buffer in memory and publish with write-to-temp + rename, so a
// crash mid-checkpoint leaves the previous epoch's file intact. Readers
// verify the per-section checksum up front and return typed kIOError for
// any truncation or corruption — never a crash.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/stream_store.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {

/// "TCQp" little-endian.
constexpr uint32_t kCheckpointMagic = 0x70514354;
constexpr uint32_t kCheckpointFormatVersion = 1;

/// Accumulates one checkpoint in memory, then paginates it to disk.
/// All Put* calls must happen inside a BeginSection/EndSection pair.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(uint64_t epoch);

  uint64_t epoch() const { return epoch_; }

  void BeginSection(const std::string& tag, uint32_t version);
  void EndSection();

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v);
  void PutTimestamp(Timestamp t) { PutI64(t); }
  void PutString(const std::string& s);
  /// Same wire form as TupleCodec: [u8 type][payload].
  void PutValue(const Value& v);
  /// Inline schema definition: [u32 nfields]([string name][u8 type][u32 src])*
  void PutSchema(const Schema& schema);
  /// Interned-schema tuple (data or retraction kind; never punctuation).
  void PutTuple(const Tuple& t);

  /// Bytes of the logical stream accumulated so far (header + sections).
  size_t logical_size() const { return body_.size() + section_.size(); }

  /// Paginates the stream into `path` (temp file + rename: all-or-nothing).
  /// No section may be open. The writer can be written again after edits,
  /// but is typically single-shot.
  Status WriteTo(const std::string& path);

 private:
  void Raw(const void* data, size_t n);
  uint32_t InternSchema(const SchemaRef& schema);

  uint64_t epoch_;
  std::string body_;     ///< header + closed sections
  std::string section_;  ///< open section payload
  bool in_section_ = false;
  std::string open_tag_;
  uint32_t open_version_ = 0;
  std::vector<SchemaRef> schema_table_;
};

/// Reads a checkpoint file back. Implements PageProvider so page fetches go
/// through the shared BufferPool (pass null to read pages directly).
/// Sections must be consumed in file order: schema interning spans sections,
/// so skipping one could orphan later tuples' schema ids.
class CheckpointReader : public PageProvider {
 public:
  struct Section {
    std::string tag;
    uint32_t version = 0;
    uint64_t length = 0;
  };

  static Result<std::unique_ptr<CheckpointReader>> Open(
      const std::string& path, BufferPool* pool = nullptr);
  ~CheckpointReader() override;

  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  uint64_t epoch() const { return epoch_; }
  uint32_t format_version() const { return format_version_; }

  // PageProvider: raw checkpoint pages, for buffer-pool caching.
  Status ReadPage(uint64_t page_id, std::string* out) const override;
  uint64_t NumPages() const override { return num_pages_; }

  /// True once every logical byte has been consumed.
  bool AtEnd() const;

  /// Reads the next section header and its whole payload (verifying the
  /// trailing checksum immediately, so Get* never sees corrupt bytes).
  Result<Section> BeginSection();
  /// Version of the currently open section.
  uint32_t section_version() const { return cur_section_.version; }
  /// Closes the current section; kIOError if undecoded payload remains.
  Status EndSection();

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<bool> GetBool();
  Result<double> GetDouble();
  Result<Timestamp> GetTimestamp() { return GetI64(); }
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<SchemaRef> GetSchema();
  Result<Tuple> GetTuple();

 private:
  CheckpointReader(std::string path, std::FILE* file, uint64_t num_pages,
                   BufferPool* pool)
      : path_(std::move(path)), file_(file), num_pages_(num_pages),
        pool_(pool) {}

  Status ReadHeader();
  /// Copies `n` logical-stream bytes at the cursor into `out`.
  Status Pull(void* out, size_t n);
  Status SectionBytes(void* out, size_t n);

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t num_pages_ = 0;
  BufferPool* pool_ = nullptr;
  mutable std::string scratch_;  ///< poolless page buffer

  // Logical cursor over the page payloads.
  uint64_t page_ = 0;
  uint32_t off_ = 0;        ///< within the current page's payload
  uint32_t page_used_ = 0;  ///< of the current page (0 = not yet fetched)
  bool page_loaded_ = false;

  uint32_t format_version_ = 0;
  uint64_t epoch_ = 0;

  bool in_section_ = false;
  Section cur_section_;
  std::string section_buf_;
  size_t section_pos_ = 0;

  std::vector<SchemaRef> schema_table_;
};

/// A state-holding component that can snapshot itself into a checkpoint
/// section and rebuild from one. Implementations must be quiescent for the
/// duration of both calls (the checkpointer rides the quiesce protocol).
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Section tag identifying the component kind (e.g. "stem", "psoup").
  virtual std::string CheckpointTag() const = 0;
  /// Schema version of the component's section payload. Bump on any layout
  /// change; RestoreFrom may consult reader->section_version() to accept
  /// older layouts.
  virtual uint32_t CheckpointVersion() const = 0;

  virtual void ExportTo(CheckpointWriter* w) const = 0;
  virtual Status RestoreFrom(CheckpointReader* r) = 0;
};

/// Writes one component as a tagged, versioned, checksummed section.
void WriteCheckpointSection(CheckpointWriter* w, const Checkpointable& c);

/// Reads the next section, validating it carries `c`'s tag at a version the
/// component supports, and restores into `c`.
Status ReadCheckpointSection(CheckpointReader* r, Checkpointable* c);

}  // namespace tcq
