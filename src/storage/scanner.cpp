#include "storage/scanner.h"

namespace tcq {

Status WindowedScanner::Scan(Timestamp l, Timestamp r,
                             std::vector<Tuple>* out) {
  for (uint64_t page_id : store_->PagesInRange(l, r)) {
    ++pages_visited_;
    std::vector<Tuple> tuples;
    if (page_id >= store_->pages_sealed()) {
      // The in-memory tail page is still mutable; caching it in the pool
      // would serve stale snapshots. Read it directly.
      std::string tail;
      TCQ_RETURN_IF_ERROR(store_->ReadPage(page_id, &tail));
      TCQ_RETURN_IF_ERROR(store_->DecodePage(tail, &tuples));
    } else {
      TCQ_ASSIGN_OR_RETURN(const std::string* page,
                           pool_->Fetch(store_, page_id));
      TCQ_RETURN_IF_ERROR(store_->DecodePage(*page, &tuples));
    }
    for (Tuple& t : tuples) {
      if (t.timestamp() >= l && t.timestamp() <= r) {
        out->push_back(std::move(t));
      }
    }
  }
  return Status::OK();
}

Status WindowedScanner::ScanWindow(const WindowInstance& inst, SourceId source,
                                   std::vector<Tuple>* out) {
  auto range = inst.RangeFor(source);
  if (!range.has_value()) {
    return Status::InvalidArgument("window instance has no range for s" +
                                   std::to_string(source));
  }
  return Scan(range->first, range->second, out);
}

}  // namespace tcq
