// Windowed scanner (paper §4.2.3): "tuples in buffer pool pages are accessed
// via a 'scanner' operator, which is similar to the standard scan operators
// in classic systems, except that it is driven by window descriptors."
// Reads only the pages whose timestamp range intersects the window.

#pragma once

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/stream_store.h"
#include "window/window_spec.h"

namespace tcq {

class WindowedScanner {
 public:
  WindowedScanner(const StreamStore* store, BufferPool* pool)
      : store_(store), pool_(pool) {}

  /// Appends all stored tuples with l <= ts <= r to `out`.
  Status Scan(Timestamp l, Timestamp r, std::vector<Tuple>* out);

  /// Scans the window instance's range for this store's stream.
  Status ScanWindow(const WindowInstance& inst, SourceId source,
                    std::vector<Tuple>* out);

  uint64_t pages_visited() const { return pages_visited_; }

 private:
  const StreamStore* store_;
  BufferPool* pool_;
  uint64_t pages_visited_ = 0;
};

}  // namespace tcq
