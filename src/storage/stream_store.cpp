#include "storage/stream_store.h"

#include <cassert>
#include <cstring>

namespace tcq {

namespace {

template <typename T>
void PutRaw(std::string* buf, T v) {
  buf->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetRaw(const std::string& buf, size_t* pos, T* out) {
  if (*pos + sizeof(T) > buf.size()) return false;
  std::memcpy(out, buf.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

constexpr size_t kPageHeaderSize = sizeof(uint32_t);

}  // namespace

size_t TupleCodec::Encode(const Tuple& tuple, std::string* buf) const {
  size_t start = buf->size();
  PutRaw<int64_t>(buf, tuple.timestamp());
  uint16_t n = static_cast<uint16_t>(tuple.num_fields());
  PutRaw<uint16_t>(buf, n);
  for (size_t i = 0; i < n; ++i) {
    const Value& v = tuple.at(i);
    PutRaw<uint8_t>(buf, static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        PutRaw<uint8_t>(buf, v.AsBool() ? 1 : 0);
        break;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        PutRaw<int64_t>(buf, v.AsInt64());
        break;
      case ValueType::kDouble:
        PutRaw<double>(buf, v.AsDouble());
        break;
      case ValueType::kString: {
        PutRaw<uint32_t>(buf, static_cast<uint32_t>(v.AsString().size()));
        buf->append(v.AsString());
        break;
      }
    }
  }
  return buf->size() - start;
}

Result<Tuple> TupleCodec::Decode(const std::string& buf, size_t* pos) const {
  int64_t ts = 0;
  uint16_t n = 0;
  if (!GetRaw(buf, pos, &ts) || !GetRaw(buf, pos, &n)) {
    return Status::IOError("truncated tuple header");
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint8_t type = 0;
    if (!GetRaw(buf, pos, &type)) return Status::IOError("truncated value");
    switch (static_cast<ValueType>(type)) {
      case ValueType::kNull:
        values.push_back(Value::Null());
        break;
      case ValueType::kBool: {
        uint8_t b = 0;
        if (!GetRaw(buf, pos, &b)) return Status::IOError("truncated bool");
        values.push_back(Value::Bool(b != 0));
        break;
      }
      case ValueType::kInt64: {
        int64_t v = 0;
        if (!GetRaw(buf, pos, &v)) return Status::IOError("truncated int64");
        values.push_back(Value::Int64(v));
        break;
      }
      case ValueType::kTimestamp: {
        int64_t v = 0;
        if (!GetRaw(buf, pos, &v)) {
          return Status::IOError("truncated timestamp");
        }
        values.push_back(Value::TimestampVal(v));
        break;
      }
      case ValueType::kDouble: {
        double v = 0;
        if (!GetRaw(buf, pos, &v)) return Status::IOError("truncated double");
        values.push_back(Value::Double(v));
        break;
      }
      case ValueType::kString: {
        uint32_t len = 0;
        if (!GetRaw(buf, pos, &len) || *pos + len > buf.size()) {
          return Status::IOError("truncated string");
        }
        values.push_back(Value::String(buf.substr(*pos, len)));
        *pos += len;
        break;
      }
      default:
        return Status::IOError("unknown value type tag");
    }
  }
  // Corrupt pages can decode into plausible-looking garbage; cross-check
  // the row against the schema (arity + types, nulls allowed) so damage is
  // a typed error at the decode boundary, never a crash downstream.
  if (n != schema_->num_fields()) {
    return Status::IOError("decoded tuple arity " + std::to_string(n) +
                           " does not match schema (" +
                           std::to_string(schema_->num_fields()) + " fields)");
  }
  if (!schema_->Validate(values).ok()) {
    return Status::IOError("decoded tuple violates schema " +
                           schema_->ToString());
  }
  return Tuple::Make(schema_, std::move(values), ts);
}

Result<std::unique_ptr<StreamStore>> StreamStore::Create(
    const std::string& path, SchemaRef schema) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot create stream store at " + path);
  }
  return std::unique_ptr<StreamStore>(
      new StreamStore(path, f, std::move(schema)));
}

Result<std::unique_ptr<StreamStore>> StreamStore::Open(const std::string& path,
                                                       SchemaRef schema) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::NotFound("no stream store at " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot size stream store " + path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot size stream store " + path);
  }
  auto store =
      std::unique_ptr<StreamStore>(new StreamStore(path, f, std::move(schema)));
  // Whole pages only: a torn trailing fragment (crash mid-write) is
  // discarded, and the next seal overwrites it.
  uint64_t pages = static_cast<uint64_t>(size) / kPageSize;
  store->sealed_ = pages;  // so ReadPage targets the sealed range
  std::string page;
  std::vector<Tuple> tuples;
  for (uint64_t p = 0; p < pages; ++p) {
    TCQ_RETURN_IF_ERROR(store->ReadPage(p, &page));
    tuples.clear();
    TCQ_RETURN_IF_ERROR(store->DecodePage(page, &tuples));
    PageMeta meta;
    for (const Tuple& t : tuples) {
      meta.min_ts = std::min(meta.min_ts, t.timestamp());
      meta.max_ts = std::max(meta.max_ts, t.timestamp());
      ++meta.count;
    }
    store->metas_.push_back(meta);
    store->appended_ += meta.count;
  }
  return store;
}

StreamStore::~StreamStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status StreamStore::Append(const Tuple& tuple) {
  std::string encoded;
  codec_.Encode(tuple, &encoded);
  if (encoded.size() + kPageHeaderSize > kPageSize) {
    return Status::InvalidArgument("tuple larger than a page");
  }
  if (kPageHeaderSize + current_page_.size() + encoded.size() > kPageSize) {
    TCQ_RETURN_IF_ERROR(SealCurrentPage());
  }
  current_page_ += encoded;
  ++current_meta_.count;
  current_meta_.min_ts = std::min(current_meta_.min_ts, tuple.timestamp());
  current_meta_.max_ts = std::max(current_meta_.max_ts, tuple.timestamp());
  ++appended_;
  return Status::OK();
}

Status StreamStore::SealCurrentPage() {
  if (current_meta_.count == 0) return Status::OK();
  std::string page;
  page.reserve(kPageSize);
  PutRaw<uint32_t>(&page, current_meta_.count);
  page += current_page_;
  page.resize(kPageSize, '\0');
  if (std::fseek(file_, static_cast<long>(sealed_ * kPageSize), SEEK_SET) !=
          0 ||
      std::fwrite(page.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("write failed on " + path_);
  }
  metas_.push_back(current_meta_);
  ++sealed_;
  current_page_.clear();
  current_meta_ = PageMeta{};
  return Status::OK();
}

Status StreamStore::Flush() {
  TCQ_RETURN_IF_ERROR(SealCurrentPage());
  std::fflush(file_);
  return Status::OK();
}

uint64_t StreamStore::NumPages() const {
  return sealed_ + (current_meta_.count > 0 ? 1 : 0);
}

Status StreamStore::ReadPage(uint64_t page_id, std::string* out) const {
  if (page_id < sealed_) {
    out->resize(kPageSize);
    if (std::fseek(file_, static_cast<long>(page_id * kPageSize), SEEK_SET) !=
            0 ||
        std::fread(out->data(), 1, kPageSize, file_) != kPageSize) {
      return Status::IOError("read failed on " + path_);
    }
    return Status::OK();
  }
  if (page_id == sealed_ && current_meta_.count > 0) {
    // In-memory tail page.
    out->clear();
    PutRaw<uint32_t>(out, current_meta_.count);
    *out += current_page_;
    return Status::OK();
  }
  return Status::OutOfRange("page " + std::to_string(page_id) +
                            " out of range");
}

Status StreamStore::DecodePage(const std::string& page,
                               std::vector<Tuple>* out) const {
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetRaw(page, &pos, &count)) {
    return Status::IOError("truncated page header");
  }
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    TCQ_ASSIGN_OR_RETURN(Tuple t, codec_.Decode(page, &pos));
    out->push_back(std::move(t));
  }
  return Status::OK();
}

Status StreamStore::ScanFrom(uint64_t start_index,
                             std::vector<Tuple>* out) const {
  uint64_t cum = 0;
  uint64_t pages = NumPages();
  std::string page;
  std::vector<Tuple> tuples;
  for (uint64_t p = 0; p < pages; ++p) {
    uint32_t count = p < sealed_ ? metas_[p].count : current_meta_.count;
    if (cum + count <= start_index) {
      cum += count;
      continue;
    }
    TCQ_RETURN_IF_ERROR(ReadPage(p, &page));
    tuples.clear();
    TCQ_RETURN_IF_ERROR(DecodePage(page, &tuples));
    size_t skip = start_index > cum ? static_cast<size_t>(start_index - cum)
                                    : 0;
    out->insert(out->end(), tuples.begin() + skip, tuples.end());
    cum += count;
  }
  return Status::OK();
}

std::vector<uint64_t> StreamStore::PagesInRange(Timestamp l,
                                                Timestamp r) const {
  std::vector<uint64_t> out;
  for (uint64_t p = 0; p < sealed_; ++p) {
    if (metas_[p].max_ts >= l && metas_[p].min_ts <= r) out.push_back(p);
  }
  if (current_meta_.count > 0 && current_meta_.max_ts >= l &&
      current_meta_.min_ts <= r) {
    out.push_back(sealed_);
  }
  return out;
}

}  // namespace tcq
