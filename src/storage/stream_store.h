// Append-only stream storage (paper §4.3): "data must be processed on the
// fly as it arrives and can be spooled to disk only in the background...
// we are designing a storage subsystem that exploits the sequential write
// workload". Tuples are serialized into fixed-size pages; full pages are
// appended to a segment file; per-page [min_ts, max_ts] metadata supports
// windowed scans that touch only relevant pages.

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/tuple.h"

namespace tcq {

constexpr size_t kPageSize = 8192;

/// Serializes tuple values (schema-directed). The timestamp rides along so
/// deserialization restores the full tuple.
class TupleCodec {
 public:
  explicit TupleCodec(SchemaRef schema) : schema_(std::move(schema)) {}

  /// Appends the encoding of `tuple` to `buf`. Returns encoded size.
  size_t Encode(const Tuple& tuple, std::string* buf) const;

  /// Decodes one tuple starting at buf[*pos]; advances *pos.
  Result<Tuple> Decode(const std::string& buf, size_t* pos) const;

  const SchemaRef& schema() const { return schema_; }

 private:
  SchemaRef schema_;
};

/// Read access to immutable pages, keyed by page id. The buffer pool caches
/// on top of this.
class PageProvider {
 public:
  virtual ~PageProvider() = default;
  virtual Status ReadPage(uint64_t page_id, std::string* out) const = 0;
  virtual uint64_t NumPages() const = 0;
};

/// One stream's on-disk log. Not thread-safe (one writer per stream, as in
/// the Wrapper -> streamer -> disk path).
class StreamStore : public PageProvider {
 public:
  struct PageMeta {
    Timestamp min_ts = kMaxTimestamp;
    Timestamp max_ts = kMinTimestamp;
    uint32_t count = 0;
  };

  /// Creates (truncates) the backing file.
  static Result<std::unique_ptr<StreamStore>> Create(const std::string& path,
                                                     SchemaRef schema);

  /// Re-opens an existing log for append, rebuilding page metadata by
  /// scanning and decoding every page (recovery path). Tuples in a tail
  /// page that was never flushed are gone — the accepted loss window; what
  /// WAS flushed is fully recovered. kNotFound when no file exists.
  static Result<std::unique_ptr<StreamStore>> Open(const std::string& path,
                                                   SchemaRef schema);

  ~StreamStore() override;

  /// Appends a tuple (timestamps must be non-decreasing for page pruning to
  /// be exact; out-of-order input degrades pruning, not correctness).
  Status Append(const Tuple& tuple);

  /// Forces the current partial page to disk.
  Status Flush();

  /// Reads a sealed page (or the in-memory tail page) into `out`.
  Status ReadPage(uint64_t page_id, std::string* out) const override;
  uint64_t NumPages() const override;

  /// Decodes every tuple in a page buffer.
  Status DecodePage(const std::string& page, std::vector<Tuple>* out) const;

  /// Page ids whose [min_ts, max_ts] intersects [l, r].
  std::vector<uint64_t> PagesInRange(Timestamp l, Timestamp r) const;

  /// Appends to `out` every stored tuple from append index `start_index`
  /// (0-based, in append order) onward — the replay path: a checkpoint
  /// records tuples_appended() as its high-water mark and recovery replays
  /// the suffix. Prefix pages are skipped via their counts without
  /// decoding.
  Status ScanFrom(uint64_t start_index, std::vector<Tuple>* out) const;

  const PageMeta& page_meta(uint64_t page_id) const {
    return metas_[page_id];
  }
  uint64_t tuples_appended() const { return appended_; }
  uint64_t pages_sealed() const { return sealed_; }
  const SchemaRef& schema() const { return codec_.schema(); }
  const std::string& path() const { return path_; }

 private:
  StreamStore(std::string path, std::FILE* file, SchemaRef schema)
      : path_(std::move(path)), file_(file), codec_(std::move(schema)) {}

  Status SealCurrentPage();

  std::string path_;
  std::FILE* file_;
  TupleCodec codec_;
  std::string current_page_;
  PageMeta current_meta_;
  std::vector<PageMeta> metas_;  // sealed pages + (last) tail if flushed
  uint64_t appended_ = 0;
  uint64_t sealed_ = 0;
};

}  // namespace tcq
