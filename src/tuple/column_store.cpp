#include "tuple/column_store.h"

#include <algorithm>
#include <cstring>

namespace tcq {

// --- Arena -------------------------------------------------------------------

void* Arena::Allocate(size_t bytes) {
  if (bytes == 0) bytes = kAlignment;
  size_t need = (bytes + kAlignment - 1) & ~(kAlignment - 1);
  Chunk* chunk = chunks_.empty() ? nullptr : &chunks_.back();
  if (chunk == nullptr || chunk->capacity - chunk->used < need) {
    Chunk fresh;
    // Double-ish growth keeps the chunk count logarithmic; the common case
    // (one batch, lanes sized up-front) fits in a single chunk.
    size_t cap = std::max(need + kAlignment, size_t{4096});
    if (!chunks_.empty()) cap = std::max(cap, chunks_.back().capacity * 2);
    fresh.data = std::make_unique<std::byte[]>(cap);
    fresh.capacity = cap;
    chunks_.push_back(std::move(fresh));
    chunk = &chunks_.back();
  }
  // Align the returned pointer within the chunk.
  auto base = reinterpret_cast<uintptr_t>(chunk->data.get()) + chunk->used;
  uintptr_t aligned = (base + kAlignment - 1) & ~(uintptr_t{kAlignment} - 1);
  size_t pad = aligned - base;
  chunk->used += pad + bytes;
  bytes_ += pad + bytes;
  return reinterpret_cast<void*>(aligned);
}

// --- Column ------------------------------------------------------------------

Value Column::ValueAt(size_t row) const {
  if (nulls != nullptr && nulls[row]) return Value::Null();
  switch (rep) {
    case ColumnRep::kInt64:
      return is_timestamp ? Value::TimestampVal(i64[row])
                          : Value::Int64(i64[row]);
    case ColumnRep::kDouble:
      return Value::Double(f64[row]);
    case ColumnRep::kBool:
      return Value::Bool(b8[row] != 0);
    case ColumnRep::kString:
      return Value::String(str[row]);
    case ColumnRep::kGeneric:
      return generic[row];
  }
  return Value::Null();
}

// --- ColumnStore -------------------------------------------------------------

namespace {

/// Picks the lane representation for a column by scanning the actual values:
/// a typed lane only when every non-null value has exactly the type the lane
/// materializes, so the columnar view reproduces rows bit-for-bit.
ColumnRep ClassifyColumn(const Tuple* rows, size_t n, size_t col,
                         bool* any_null, bool* is_timestamp) {
  *any_null = false;
  ValueType seen = ValueType::kNull;
  for (size_t r = 0; r < n; ++r) {
    const Value& v = rows[r].at(col);
    if (v.is_null()) {
      *any_null = true;
      continue;
    }
    ValueType t = v.type();
    if (seen == ValueType::kNull) {
      seen = t;
    } else if (seen != t) {
      return ColumnRep::kGeneric;
    }
  }
  switch (seen) {
    case ValueType::kInt64:
      return ColumnRep::kInt64;
    case ValueType::kTimestamp:
      *is_timestamp = true;
      return ColumnRep::kInt64;
    case ValueType::kDouble:
      return ColumnRep::kDouble;
    case ValueType::kBool:
      return ColumnRep::kBool;
    case ValueType::kString:
      return ColumnRep::kString;
    case ValueType::kNull:  // all-null column
    default:
      return ColumnRep::kGeneric;
  }
}

}  // namespace

ColumnStore::Ref ColumnStore::FromRows(const Tuple* rows, size_t n) {
  if (n == 0) return nullptr;
  if (!rows[0].valid()) return nullptr;
  const SchemaRef& schema = rows[0].schema();
  for (size_t r = 1; r < n; ++r) {
    // Pointer identity: one stream's tuples share the schema object. Equal
    // but distinct schemas would also columnarize, but never occur on the
    // batched ingest paths and aren't worth the deep compare.
    if (!rows[r].valid() || rows[r].schema().get() != schema.get()) {
      return nullptr;
    }
  }
  auto store = std::shared_ptr<ColumnStore>(new ColumnStore());
  store->schema_ = schema;
  store->rows_ = n;
  size_t num_cols = schema->num_fields();
  store->cols_.resize(num_cols);

  int64_t* stamps = store->arena_.AllocateArray<int64_t>(n);
  for (size_t r = 0; r < n; ++r) stamps[r] = rows[r].timestamp();
  store->stamps_ = stamps;

  for (size_t c = 0; c < num_cols; ++c) {
    Column& col = store->cols_[c];
    col.declared = schema->field(c).type;
    bool any_null = false;
    col.rep = ClassifyColumn(rows, n, c, &any_null, &col.is_timestamp);
    uint8_t* nulls = nullptr;
    if (any_null && col.rep != ColumnRep::kGeneric) {
      nulls = store->arena_.AllocateArray<uint8_t>(n);
      std::memset(nulls, 0, n);
      col.nulls = nulls;
    }
    switch (col.rep) {
      case ColumnRep::kInt64: {
        int64_t* lane = store->arena_.AllocateArray<int64_t>(n);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].at(c);
          if (v.is_null()) {
            nulls[r] = 1;
            lane[r] = 0;
          } else {
            lane[r] = col.is_timestamp ? v.AsTimestamp() : v.AsInt64();
          }
        }
        col.i64 = lane;
        break;
      }
      case ColumnRep::kDouble: {
        double* lane = store->arena_.AllocateArray<double>(n);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].at(c);
          if (v.is_null()) {
            nulls[r] = 1;
            lane[r] = 0;
          } else {
            lane[r] = v.AsDouble();
          }
        }
        col.f64 = lane;
        break;
      }
      case ColumnRep::kBool: {
        uint8_t* lane = store->arena_.AllocateArray<uint8_t>(n);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].at(c);
          if (v.is_null()) {
            nulls[r] = 1;
            lane[r] = 0;
          } else {
            lane[r] = v.AsBool() ? 1 : 0;
          }
        }
        col.b8 = lane;
        break;
      }
      case ColumnRep::kString: {
        auto lane = std::make_unique<std::vector<std::string>>(n);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].at(c);
          if (v.is_null()) {
            nulls[r] = 1;
          } else {
            (*lane)[r] = v.AsString();
          }
        }
        col.str = lane->data();
        store->string_lanes_.push_back(std::move(lane));
        break;
      }
      case ColumnRep::kGeneric: {
        auto lane = std::make_unique<std::vector<Value>>();
        lane->reserve(n);
        for (size_t r = 0; r < n; ++r) lane->push_back(rows[r].at(c));
        col.generic = lane->data();
        store->generic_lanes_.push_back(std::move(lane));
        break;
      }
    }
  }
  return store;
}

ColumnStore::Ref ColumnStore::Retagged(const Ref& base, SchemaRef schema) {
  if (base == nullptr || schema == nullptr) return nullptr;
  const SchemaRef& from = base->schema();
  if (from->num_fields() != schema->num_fields()) return nullptr;
  for (size_t i = 0; i < from->num_fields(); ++i) {
    if (from->field(i).type != schema->field(i).type) return nullptr;
  }
  auto store = std::shared_ptr<ColumnStore>(new ColumnStore());
  store->schema_ = std::move(schema);
  store->rows_ = base->rows_;
  store->cols_ = base->cols_;  // lane pointers; storage stays with `base`
  store->stamps_ = base->stamps_;
  store->parent_ = base;
  return store;
}

Tuple ColumnStore::MaterializeRow(size_t row) const {
  assert(row < rows_);
  std::vector<Value> values;
  values.reserve(cols_.size());
  for (const Column& col : cols_) values.push_back(col.ValueAt(row));
  return Tuple::Make(schema_, std::move(values),
                     static_cast<Timestamp>(stamps_[row]));
}

// --- ColumnStoreBuilder ------------------------------------------------------

ColumnStoreBuilder::ColumnStoreBuilder(SchemaRef schema)
    : schema_(std::move(schema)) {
  lanes_.resize(schema_->num_fields());
  for (size_t c = 0; c < lanes_.size(); ++c) {
    switch (schema_->field(c).type) {
      case ValueType::kInt64:
        lanes_[c].rep = ColumnRep::kInt64;
        break;
      case ValueType::kTimestamp:
        lanes_[c].rep = ColumnRep::kInt64;
        lanes_[c].is_timestamp = true;
        break;
      case ValueType::kDouble:
        lanes_[c].rep = ColumnRep::kDouble;
        break;
      case ValueType::kBool:
        lanes_[c].rep = ColumnRep::kBool;
        break;
      case ValueType::kString:
        lanes_[c].rep = ColumnRep::kString;
        break;
      default:
        lanes_[c].rep = ColumnRep::kGeneric;
        break;
    }
  }
}

void ColumnStoreBuilder::DemoteToGeneric(size_t col) {
  Lane& lane = lanes_[col];
  std::vector<Value> generic;
  generic.reserve(lane.n);
  for (size_t r = 0; r < lane.n; ++r) {
    if (lane.any_null && r < lane.nulls.size() && lane.nulls[r]) {
      generic.push_back(Value::Null());
      continue;
    }
    switch (lane.rep) {
      case ColumnRep::kInt64:
        generic.push_back(lane.is_timestamp ? Value::TimestampVal(lane.i64[r])
                                            : Value::Int64(lane.i64[r]));
        break;
      case ColumnRep::kDouble:
        generic.push_back(Value::Double(lane.f64[r]));
        break;
      case ColumnRep::kBool:
        generic.push_back(Value::Bool(lane.b8[r] != 0));
        break;
      case ColumnRep::kString:
        generic.push_back(Value::String(lane.str[r]));
        break;
      case ColumnRep::kGeneric:
        generic.push_back(lane.generic[r]);
        break;
    }
  }
  lane.rep = ColumnRep::kGeneric;
  lane.generic = std::move(generic);
  lane.i64.clear();
  lane.f64.clear();
  lane.b8.clear();
  lane.str.clear();
  lane.nulls.clear();
  lane.any_null = false;
}

bool ColumnStoreBuilder::Append(size_t col, Value v) {
  if (col >= lanes_.size()) return false;
  const Field& field = schema_->field(col);
  if (!v.is_null()) {
    ValueType t = v.type();
    bool both_time_like =
        (t == ValueType::kInt64 && field.type == ValueType::kTimestamp) ||
        (t == ValueType::kTimestamp && field.type == ValueType::kInt64);
    if (t != field.type && !both_time_like) return false;
    // A time-like value of the "other" flavor is legal but cannot live in
    // the typed lane without changing its type on the way back out; the
    // whole column falls back to exact Value storage.
    if (both_time_like && lanes_[col].rep != ColumnRep::kGeneric) {
      DemoteToGeneric(col);
    }
  }
  Lane& lane = lanes_[col];
  if (v.is_null() && lane.rep != ColumnRep::kGeneric) {
    if (!lane.any_null) {
      lane.any_null = true;
      lane.nulls.assign(lane.n, 0);
    }
    lane.nulls.push_back(1);
    switch (lane.rep) {
      case ColumnRep::kInt64:
        lane.i64.push_back(0);
        break;
      case ColumnRep::kDouble:
        lane.f64.push_back(0);
        break;
      case ColumnRep::kBool:
        lane.b8.push_back(0);
        break;
      case ColumnRep::kString:
        lane.str.emplace_back();
        break;
      default:
        break;
    }
    ++lane.n;
    return true;
  }
  if (lane.any_null) lane.nulls.push_back(0);
  switch (lane.rep) {
    case ColumnRep::kInt64:
      lane.i64.push_back(lane.is_timestamp ? v.AsTimestamp() : v.AsInt64());
      break;
    case ColumnRep::kDouble:
      lane.f64.push_back(v.AsDouble());
      break;
    case ColumnRep::kBool:
      lane.b8.push_back(v.AsBool() ? 1 : 0);
      break;
    case ColumnRep::kString:
      lane.str.push_back(v.AsString());
      break;
    case ColumnRep::kGeneric:
      lane.generic.push_back(std::move(v));
      break;
  }
  ++lane.n;
  return true;
}

ColumnStore::Ref ColumnStoreBuilder::Finish() {
  size_t n = stamps_.size();
  for (const Lane& lane : lanes_) {
    if (lane.n != n) return nullptr;  // ragged: caller reports the column
  }
  auto store = std::shared_ptr<ColumnStore>(new ColumnStore());
  store->schema_ = schema_;
  store->rows_ = n;
  store->cols_.resize(lanes_.size());

  int64_t* stamps = store->arena_.AllocateArray<int64_t>(n);
  std::copy(stamps_.begin(), stamps_.end(), stamps);
  store->stamps_ = stamps;

  for (size_t c = 0; c < lanes_.size(); ++c) {
    Lane& lane = lanes_[c];
    Column& col = store->cols_[c];
    col.declared = schema_->field(c).type;
    col.rep = lane.rep;
    col.is_timestamp = lane.is_timestamp;
    if (lane.any_null) {
      uint8_t* nulls = store->arena_.AllocateArray<uint8_t>(n);
      std::copy(lane.nulls.begin(), lane.nulls.end(), nulls);
      col.nulls = nulls;
    }
    switch (lane.rep) {
      case ColumnRep::kInt64: {
        int64_t* p = store->arena_.AllocateArray<int64_t>(n);
        std::copy(lane.i64.begin(), lane.i64.end(), p);
        col.i64 = p;
        break;
      }
      case ColumnRep::kDouble: {
        double* p = store->arena_.AllocateArray<double>(n);
        std::copy(lane.f64.begin(), lane.f64.end(), p);
        col.f64 = p;
        break;
      }
      case ColumnRep::kBool: {
        uint8_t* p = store->arena_.AllocateArray<uint8_t>(n);
        std::copy(lane.b8.begin(), lane.b8.end(), p);
        col.b8 = p;
        break;
      }
      case ColumnRep::kString: {
        auto owned =
            std::make_unique<std::vector<std::string>>(std::move(lane.str));
        col.str = owned->data();
        store->string_lanes_.push_back(std::move(owned));
        break;
      }
      case ColumnRep::kGeneric: {
        auto owned =
            std::make_unique<std::vector<Value>>(std::move(lane.generic));
        col.generic = owned->data();
        store->generic_lanes_.push_back(std::move(owned));
        break;
      }
    }
  }
  return store;
}

}  // namespace tcq
