// Columnar storage for TupleBatch (DESIGN.md §11). A ColumnStore holds one
// contiguous typed lane per schema attribute plus a timestamp lane, all
// carved out of a per-batch bump arena, so predicate evaluation can sweep a
// whole batch with tight auto-vectorizable loops instead of chasing one
// shared_ptr<TupleData> per row. Row-shaped Tuples are materialized lazily,
// only at boundaries that still need them (SteM insert, fjord queues, egress
// emit).
//
// The store is immutable once built and shared by reference, so re-tagging a
// batch under another logical source (self-join aliases) is a zero-copy
// schema swap over the same lanes — quickstream's pass-through buffer idiom.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tuple/tuple.h"

namespace tcq {

/// Bump allocator owning the fixed-width lanes of one ColumnStore. Chunks
/// are cache-line aligned so lane sweeps start aligned and never share a
/// line with unrelated data.
class Arena {
 public:
  static constexpr size_t kAlignment = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocates `bytes` (kAlignment-aligned). Never returns nullptr.
  void* Allocate(size_t bytes);

  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    return static_cast<T*>(Allocate(n * sizeof(T)));
  }

  size_t bytes_allocated() const { return bytes_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };
  std::vector<Chunk> chunks_;
  size_t bytes_ = 0;
};

/// How a column's values are physically stored.
enum class ColumnRep : uint8_t {
  kInt64,    ///< contiguous int64_t lane (int64 OR timestamp values)
  kDouble,   ///< contiguous double lane
  kBool,     ///< contiguous uint8_t lane (0/1)
  kString,   ///< std::string vector (strings don't vectorize; kept simple)
  kGeneric,  ///< Value vector fallback (mixed/null-typed columns)
};

/// One attribute's lane: a read-only view into the owning ColumnStore.
/// Exactly one of the data pointers matching `rep` is non-null. `nulls` is a
/// byte-per-row validity mask (1 = null) or nullptr when no row is null —
/// kernels check `has_nulls()` once and take the branch-free path.
struct Column {
  ValueType declared = ValueType::kNull;  ///< schema field type
  ColumnRep rep = ColumnRep::kGeneric;
  bool is_timestamp = false;  ///< i64 lane materializes as TimestampVal
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const uint8_t* b8 = nullptr;
  const std::string* str = nullptr;
  const Value* generic = nullptr;
  const uint8_t* nulls = nullptr;

  bool has_nulls() const { return nulls != nullptr; }
  bool IsNull(size_t row) const { return nulls != nullptr && nulls[row]; }

  /// Materializes one cell (exact round-trip of the ingested Value).
  Value ValueAt(size_t row) const;
};

/// Byte-per-row selection mask over a batch: 1 = row selected. Byte masks
/// (not bit-packed) so filter kernels update them with vectorizable
/// load-compare-and-store loops.
class SelectionVector {
 public:
  SelectionVector() = default;
  explicit SelectionVector(size_t n, bool initially_selected = true)
      : mask_(n, initially_selected ? 1 : 0) {}

  size_t size() const { return mask_.size(); }
  bool Test(size_t i) const { return mask_[i] != 0; }
  void Set(size_t i) { mask_[i] = 1; }
  void Clear(size_t i) { mask_[i] = 0; }
  void Reset(size_t n, bool selected) { mask_.assign(n, selected ? 1 : 0); }

  size_t CountSelected() const {
    size_t c = 0;
    for (uint8_t m : mask_) c += (m != 0);
    return c;
  }
  bool AnySelected() const {
    for (uint8_t m : mask_) {
      if (m != 0) return true;
    }
    return false;
  }

  uint8_t* mask() { return mask_.data(); }
  const uint8_t* mask() const { return mask_.data(); }

 private:
  std::vector<uint8_t> mask_;
};

/// Immutable column-major payload of one TupleBatch.
class ColumnStore {
 public:
  using Ref = std::shared_ptr<const ColumnStore>;

  /// Builds a store from row-shaped tuples. Returns nullptr when the rows
  /// are not columnarizable as one batch: mixed schema identities (eddy
  /// intermediates travel per-tuple) or invalid tuples. Each column picks
  /// the widest exact representation: a typed lane when every non-null value
  /// has exactly the declared type, a generic Value lane otherwise, so
  /// row -> column -> row round-trips are value- and type-exact.
  static Ref FromRows(const Tuple* rows, size_t n);

  /// Zero-copy re-tag: a view over `base`'s lanes under another schema
  /// (same arity and field types — self-join aliases rename sources, not
  /// shapes). Returns nullptr when the schemas are not layout-compatible.
  static Ref Retagged(const Ref& base, SchemaRef schema);

  const SchemaRef& schema() const { return schema_; }
  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const {
    assert(i < cols_.size());
    return cols_[i];
  }
  const int64_t* timestamps() const { return stamps_; }

  Value ValueAt(size_t col, size_t row) const {
    return cols_[col].ValueAt(row);
  }

  /// Materializes one row as a Tuple under this store's schema.
  Tuple MaterializeRow(size_t row) const;

  size_t arena_bytes() const { return arena_.bytes_allocated(); }

 private:
  friend class ColumnStoreBuilder;
  ColumnStore() = default;

  SchemaRef schema_;
  size_t rows_ = 0;
  Arena arena_;
  std::vector<Column> cols_;
  // Variable-width / fallback lanes (indexed via Column pointers).
  std::vector<std::unique_ptr<std::vector<std::string>>> string_lanes_;
  std::vector<std::unique_ptr<std::vector<Value>>> generic_lanes_;
  const int64_t* stamps_ = nullptr;
  Ref parent_;  ///< keeps a re-tagged view's lane owner alive
};

/// Accumulates values column-wise against a declared schema and finishes
/// into an immutable ColumnStore. The server's BatchBuilder rides on this;
/// the engine's own ingest paths use it to build columnar-native batches.
class ColumnStoreBuilder {
 public:
  explicit ColumnStoreBuilder(SchemaRef schema);

  const SchemaRef& schema() const { return schema_; }
  /// Rows are delimited by the timestamp lane.
  size_t num_rows() const { return stamps_.size(); }
  size_t lane_size(size_t col) const { return lanes_[col].n; }

  void AppendTimestamp(Timestamp ts) { stamps_.push_back(ts); }

  /// Appends the next value of column `col`. Returns false when `col` is out
  /// of range or the value cannot inhabit the declared field type (same
  /// acceptance rule as Schema::Validate: null fits anywhere, int64 and
  /// timestamp are interchangeable). The value is stored exactly as given.
  bool Append(size_t col, Value v);

  /// Finishes the batch. Fails (nullptr) when column lanes are ragged:
  /// every column must have exactly one value per appended timestamp.
  ColumnStore::Ref Finish();

 private:
  struct Lane {
    ColumnRep rep = ColumnRep::kGeneric;
    bool is_timestamp = false;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint8_t> b8;
    std::vector<std::string> str;
    std::vector<Value> generic;
    std::vector<uint8_t> nulls;
    bool any_null = false;
    size_t n = 0;
  };
  void DemoteToGeneric(size_t col);

  SchemaRef schema_;
  std::vector<Timestamp> stamps_;
  std::vector<Lane> lanes_;
};

}  // namespace tcq
