#include "tuple/schema.h"

#include <sstream>

namespace tcq {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (const Field& f : fields_) sources_ |= SourceBit(f.source);
}

SchemaRef Schema::Concat(const SchemaRef& left, const SchemaRef& right) {
  std::vector<Field> fields = left->fields();
  fields.insert(fields.end(), right->fields().begin(), right->fields().end());
  return Make(std::move(fields));
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::IndexOf(const std::string& name,
                                      SourceId source) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].source == source && fields_[i].name == name) return i;
  }
  return std::nullopt;
}

Status Schema::Validate(const std::vector<Value>& values) const {
  if (values.size() != fields_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " != schema arity " +
        std::to_string(fields_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) continue;
    if (values[i].type() != fields_[i].type) {
      // int64 is acceptable where timestamp is declared and vice versa.
      bool both_time_like =
          (values[i].type() == ValueType::kInt64 &&
           fields_[i].type == ValueType::kTimestamp) ||
          (values[i].type() == ValueType::kTimestamp &&
           fields_[i].type == ValueType::kInt64);
      if (!both_time_like) {
        return Status::InvalidArgument(
            "field '" + fields_[i].name + "' expects " +
            ValueTypeName(fields_[i].type) + " got " +
            ValueTypeName(values[i].type()));
      }
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << ":" << ValueTypeName(fields_[i].type) << "@s"
       << fields_[i].source;
  }
  os << ")";
  return os.str();
}

}  // namespace tcq
