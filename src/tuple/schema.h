// Schema: ordered, named, typed fields of a stream or intermediate tuple.
// Eddy intermediates span several base streams ("homogeneous tuples spanning
// the same set of tables", paper §2.2), so schemas can be concatenated and
// every field remembers which base stream it came from.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/value.h"

namespace tcq {

/// Base streams/tables are identified by a small integer id; a set of them is
/// a bitmask (at most 32 sources per eddy, far beyond any practical plan).
using SourceId = uint32_t;
using SourceSet = uint32_t;

inline constexpr SourceSet SourceBit(SourceId id) {
  return SourceSet{1} << id;
}

/// Upper bound on distinct SourceIds, tied to the actual SourceSet width so
/// widening SourceSet automatically widens every loop written against this
/// constant (no silently truncated footprints).
inline constexpr SourceId kMaxSources = sizeof(SourceSet) * 8;
static_assert(SourceBit(kMaxSources - 1) != 0,
              "kMaxSources must not overflow SourceSet");

/// Calls fn(SourceId) for every set bit of `set`, ascending. Prefer this over
/// hand-written `for (s = 0; s < 32; ...)` loops: it costs O(popcount) and
/// cannot miss high bits if SourceSet is ever widened.
template <typename Fn>
inline void ForEachSource(SourceSet set, Fn&& fn) {
  while (set != 0) {
    fn(static_cast<SourceId>(__builtin_ctzll(set)));
    set &= set - 1;
  }
}

struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
  /// The base stream this field originates from.
  SourceId source = 0;

  bool operator==(const Field&) const = default;
};

class Schema;
using SchemaRef = std::shared_ptr<const Schema>;

/// Immutable field list. Shared by reference between all tuples of a stream.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  static SchemaRef Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  /// Concatenation for join outputs. Duplicate names are qualified by their
  /// position, so lookups by name find the first occurrence.
  static SchemaRef Concat(const SchemaRef& left, const SchemaRef& right);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the first field with this name, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Index of the field `name` restricted to fields of `source`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name, SourceId source) const;

  /// All base sources contributing fields.
  SourceSet sources() const { return sources_; }

  /// Validates that a value row matches the schema arity and types
  /// (null is allowed in any field).
  Status Validate(const std::vector<Value>& values) const;

  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
  SourceSet sources_ = 0;
};

}  // namespace tcq
