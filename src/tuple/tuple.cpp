#include "tuple/tuple.h"

#include <algorithm>
#include <sstream>

namespace tcq {

Tuple Tuple::Make(SchemaRef schema, std::vector<Value> values,
                  Timestamp timestamp) {
  auto data = std::make_shared<TupleData>();
  data->sources = schema->sources();
  data->schema = std::move(schema);
  data->values = std::move(values);
  data->timestamp = timestamp;
  return Tuple(std::move(data));
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right,
                    SchemaRef out_schema) {
  auto data = std::make_shared<TupleData>();
  data->schema = std::move(out_schema);
  data->values.reserve(left.num_fields() + right.num_fields());
  data->values = left.values();
  data->values.insert(data->values.end(), right.values().begin(),
                      right.values().end());
  data->timestamp = std::max(left.timestamp(), right.timestamp());
  data->sources = left.sources() | right.sources();
  return Tuple(std::move(data));
}

Tuple Tuple::MakePunctuation(SourceId source, Timestamp low_watermark) {
  // Control tuples share one immutable empty schema; building it lazily here
  // keeps header dependencies one-way (schema.h does not know about kinds).
  static const SchemaRef kEmptySchema = Schema::Make({});
  auto data = std::make_shared<TupleData>();
  data->schema = kEmptySchema;
  data->timestamp = low_watermark;
  data->sources = SourceBit(source);
  data->kind = TupleKind::kPunctuation;
  return Tuple(std::move(data));
}

Tuple Tuple::Retraction(const Tuple& t) {
  assert(t.valid() && t.IsData() && "only data results can be retracted");
  auto data = std::make_shared<TupleData>(*t.data_);
  data->kind = TupleKind::kRetraction;
  return Tuple(std::move(data));
}

Punctuation Tuple::AsPunctuation() const {
  assert(IsPunctuation() && "not a punctuation tuple");
  Punctuation p;
  p.source = static_cast<SourceId>(__builtin_ctzll(
      data_->sources != 0 ? data_->sources : SourceSet{1}));
  p.low_watermark = data_->timestamp;
  return p;
}

const Value& Tuple::Get(const std::string& name) const {
  auto idx = data_->schema->IndexOf(name);
  assert(idx.has_value() && "no such field");
  return data_->values[*idx];
}

std::string Tuple::ToString() const {
  if (!valid()) return "<invalid>";
  std::ostringstream os;
  if (IsPunctuation()) {
    Punctuation p = AsPunctuation();
    os << "[punct src=" << p.source << " wm=" << p.low_watermark << "]";
    return os.str();
  }
  if (IsRetraction()) os << "retract";
  os << "[t=" << data_->timestamp << " ";
  for (size_t i = 0; i < data_->values.size(); ++i) {
    if (i) os << ", ";
    os << data_->schema->field(i).name << "=" << data_->values[i].ToString();
  }
  os << "]";
  return os.str();
}

bool Tuple::operator==(const Tuple& other) const {
  if (data_ == other.data_) return true;
  if (!valid() || !other.valid()) return false;
  return data_->timestamp == other.data_->timestamp &&
         data_->kind == other.data_->kind &&
         data_->values == other.data_->values;
}

}  // namespace tcq
