// Tuple: an immutable record flowing through the dataflow. Copies are cheap
// (shared payload) because eddies, SteMs, and the CACQ lineage machinery all
// hold references to the same record concurrently.

#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace tcq {

/// Envelope kind: what a record flowing through the dataflow *means*.
/// Ordinary results are kData; kPunctuation carries an event-time low
/// watermark (no later tuple from that source will have ts < low_watermark);
/// kRetraction withdraws a previously emitted result (CEDR-style
/// speculation, DESIGN.md §12).
enum class TupleKind : uint8_t {
  kData = 0,
  kPunctuation = 1,
  kRetraction = 2,
};

/// A source's event-time promise: every future tuple from `source` has
/// timestamp >= low_watermark. Travels in-band as a control tuple (or on a
/// TupleBatch's control lane) so ordering relative to data is preserved.
struct Punctuation {
  SourceId source = 0;
  Timestamp low_watermark = kMinTimestamp;

  bool operator==(const Punctuation& other) const {
    return source == other.source && low_watermark == other.low_watermark;
  }
};

/// Immutable payload shared by all copies of a Tuple.
struct TupleData {
  SchemaRef schema;
  std::vector<Value> values;
  /// Stream timestamp (logical sequence number or physical time, per the
  /// stream's declared notion of time — paper §4.1).
  Timestamp timestamp = 0;
  /// Which base streams this (possibly intermediate) tuple spans.
  SourceSet sources = 0;
  /// Envelope kind (data / punctuation / retraction).
  TupleKind kind = TupleKind::kData;
};

class Tuple {
 public:
  Tuple() = default;

  /// Builds a base-stream tuple. The source set is taken from the schema.
  static Tuple Make(SchemaRef schema, std::vector<Value> values,
                    Timestamp timestamp);

  /// Concatenates two tuples into a join intermediate using a precomputed
  /// output schema (see Schema::Concat). The result timestamp is the max of
  /// the inputs' *event* times (the moment the match could first exist).
  static Tuple Concat(const Tuple& left, const Tuple& right,
                      SchemaRef out_schema);

  /// Builds an in-band control tuple carrying `{source, low_watermark}`.
  /// Payload-free (empty schema); timestamp mirrors the watermark so
  /// time-ordered paths keep control and data in relative order.
  static Tuple MakePunctuation(SourceId source, Timestamp low_watermark);

  /// Tags a copy of `t` as a retraction: same schema/values/timestamp, but
  /// kind = kRetraction. Consumers subtract it from accumulated results.
  static Tuple Retraction(const Tuple& t);

  bool valid() const { return data_ != nullptr; }

  const SchemaRef& schema() const { return data_->schema; }
  size_t num_fields() const { return data_->values.size(); }
  const Value& at(size_t i) const {
    assert(i < data_->values.size());
    return data_->values[i];
  }
  const std::vector<Value>& values() const { return data_->values; }
  Timestamp timestamp() const { return data_->timestamp; }
  SourceSet sources() const { return data_->sources; }
  TupleKind kind() const { return data_->kind; }
  bool IsData() const { return data_->kind == TupleKind::kData; }
  bool IsPunctuation() const {
    return data_->kind == TupleKind::kPunctuation;
  }
  bool IsRetraction() const { return data_->kind == TupleKind::kRetraction; }

  /// The punctuation this control tuple carries; asserts IsPunctuation().
  Punctuation AsPunctuation() const;

  /// Value of the named field; asserts that the field exists.
  const Value& Get(const std::string& name) const;

  std::string ToString() const;

  bool operator==(const Tuple& other) const;

 private:
  explicit Tuple(std::shared_ptr<const TupleData> data)
      : data_(std::move(data)) {}

  std::shared_ptr<const TupleData> data_;
};

// The batched-pipeline unit, TupleBatch, lives in tuple/tuple_batch.h: a
// contiguous same-source run of tuples with a small-batch inline buffer.

}  // namespace tcq
