// Tuple: an immutable record flowing through the dataflow. Copies are cheap
// (shared payload) because eddies, SteMs, and the CACQ lineage machinery all
// hold references to the same record concurrently.

#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace tcq {

/// Immutable payload shared by all copies of a Tuple.
struct TupleData {
  SchemaRef schema;
  std::vector<Value> values;
  /// Stream timestamp (logical sequence number or physical time, per the
  /// stream's declared notion of time — paper §4.1).
  Timestamp timestamp = 0;
  /// Which base streams this (possibly intermediate) tuple spans.
  SourceSet sources = 0;
};

class Tuple {
 public:
  Tuple() = default;

  /// Builds a base-stream tuple. The source set is taken from the schema.
  static Tuple Make(SchemaRef schema, std::vector<Value> values,
                    Timestamp timestamp);

  /// Concatenates two tuples into a join intermediate using a precomputed
  /// output schema (see Schema::Concat). The result timestamp is the max of
  /// the inputs' (the moment the match could first exist).
  static Tuple Concat(const Tuple& left, const Tuple& right,
                      SchemaRef out_schema);

  bool valid() const { return data_ != nullptr; }

  const SchemaRef& schema() const { return data_->schema; }
  size_t num_fields() const { return data_->values.size(); }
  const Value& at(size_t i) const {
    assert(i < data_->values.size());
    return data_->values[i];
  }
  const std::vector<Value>& values() const { return data_->values; }
  Timestamp timestamp() const { return data_->timestamp; }
  SourceSet sources() const { return data_->sources; }

  /// Value of the named field; asserts that the field exists.
  const Value& Get(const std::string& name) const;

  std::string ToString() const;

  bool operator==(const Tuple& other) const;

 private:
  explicit Tuple(std::shared_ptr<const TupleData> data)
      : data_(std::move(data)) {}

  std::shared_ptr<const TupleData> data_;
};

// The batched-pipeline unit, TupleBatch, lives in tuple/tuple_batch.h: a
// contiguous same-source run of tuples with a small-batch inline buffer.

}  // namespace tcq
