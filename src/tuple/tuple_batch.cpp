#include "tuple/tuple_batch.h"

namespace tcq {

void TupleBatch::EnsureRows() const {
  if (rows_valid_) return;
  assert(cols_ != nullptr);
  rows_.clear();
  rows_.reserve(cols_->num_rows());
  for (size_t r = 0; r < cols_->num_rows(); ++r) {
    rows_.push_back(cols_->MaterializeRow(r));
  }
  rows_valid_ = true;
}

const ColumnStore::Ref& TupleBatch::columns() const {
  static const ColumnStore::Ref kNull;
  if (cols_ != nullptr) return cols_;
  if (cols_failed_) return kNull;
  if (!rows_valid_ || rows_.empty()) return kNull;
  cols_ = ColumnStore::FromRows(rows_.data(), rows_.size());
  if (cols_ == nullptr) {
    cols_failed_ = true;
    return kNull;
  }
  return cols_;
}

TupleBatch TupleBatch::Filter(const SelectionVector& sel) const {
  assert(sel.size() == size());
  TupleBatch out(source_);
  out.puncts_ = puncts_;  // the control lane is never filtered away
  size_t keep = sel.CountSelected();
  if (keep == 0) return out;
  out.rows_.reserve(keep);
  if (rows_valid_) {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (sel.Test(i)) out.rows_.push_back(rows_[i]);
    }
  } else {
    for (size_t i = 0; i < cols_->num_rows(); ++i) {
      if (sel.Test(i)) out.rows_.push_back(cols_->MaterializeRow(i));
    }
  }
  return out;
}

}  // namespace tcq
