// TupleBatch: a contiguous run of tuples from ONE base stream, the unit the
// batched dataflow pipeline moves end-to-end (wrapper -> fjords -> executor
// -> shared eddy). Propagating batches amortizes the per-tuple lock
// acquisition, catalog lookup, and routing decision that otherwise dominate
// the ingest hot path, while per-tuple semantics are preserved (every batch
// entry point degrades to a batch of one).
//
// Small batches (the common case for low-rate streams flushed on delay) live
// in an inline buffer; only batches larger than kInlineCapacity allocate.

#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "tuple/tuple.h"

namespace tcq {

class TupleBatch {
 public:
  /// Batches at or below this size never touch the heap.
  static constexpr size_t kInlineCapacity = 8;

  TupleBatch() = default;
  explicit TupleBatch(SourceId source) : source_(source) {}

  TupleBatch(const TupleBatch& other) { CopyFrom(other); }
  TupleBatch& operator=(const TupleBatch& other) {
    if (this != &other) {
      clear();
      CopyFrom(other);
    }
    return *this;
  }
  TupleBatch(TupleBatch&& other) noexcept { MoveFrom(std::move(other)); }
  TupleBatch& operator=(TupleBatch&& other) noexcept {
    if (this != &other) {
      clear();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  /// The base stream every tuple in the batch belongs to. Meaningful only
  /// for ingest batches (intermediates span several sources).
  SourceId source() const { return source_; }
  void set_source(SourceId source) { source_ = source; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(Tuple t) {
    if (size_ < kInlineCapacity) {
      inline_[size_] = std::move(t);
    } else {
      if (size_ == kInlineCapacity && heap_.empty()) Spill();
      heap_.push_back(std::move(t));
    }
    ++size_;
  }

  Tuple& operator[](size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const Tuple& operator[](size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  const Tuple& front() const { return (*this)[0]; }
  const Tuple& back() const { return (*this)[size_ - 1]; }

  /// Contiguous storage: inline until the batch spills, heap after.
  /// Invariant: elements live in heap_ iff heap_ is non-empty.
  Tuple* data() { return heap_.empty() ? inline_.data() : heap_.data(); }
  const Tuple* data() const {
    return heap_.empty() ? inline_.data() : heap_.data();
  }

  Tuple* begin() { return data(); }
  Tuple* end() { return data() + size_; }
  const Tuple* begin() const { return data(); }
  const Tuple* end() const { return data() + size_; }

  void clear() {
    for (size_t i = 0; i < size_ && i < kInlineCapacity; ++i) {
      inline_[i] = Tuple();
    }
    heap_.clear();
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n > kInlineCapacity) {
      if (heap_.empty() && size_ > 0) Spill();
      heap_.reserve(n);
    }
  }

  /// Drops the first `n` tuples (used after a partial batch enqueue).
  void DropFront(size_t n) {
    assert(n <= size_);
    if (n == 0) return;
    Tuple* d = data();
    for (size_t i = n; i < size_; ++i) d[i - n] = std::move(d[i]);
    if (heap_.empty()) {
      for (size_t i = size_ - n; i < size_; ++i) inline_[i] = Tuple();
    } else {
      heap_.resize(size_ - n);
    }
    size_ -= n;
  }

 private:
  /// Moves the inline elements into heap_ (called when the batch outgrows
  /// the inline buffer).
  void Spill() {
    heap_.reserve(kInlineCapacity * 2);
    for (size_t i = 0; i < size_; ++i) {
      heap_.push_back(std::move(inline_[i]));
      inline_[i] = Tuple();
    }
  }

  void CopyFrom(const TupleBatch& other) {
    source_ = other.source_;
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) push_back(other[i]);
  }

  void MoveFrom(TupleBatch&& other) {
    source_ = other.source_;
    if (!other.heap_.empty()) {
      heap_ = std::move(other.heap_);
    } else {
      inline_ = std::move(other.inline_);
    }
    size_ = other.size_;
    other.heap_.clear();
    other.size_ = 0;
  }

  SourceId source_ = 0;
  size_t size_ = 0;
  std::array<Tuple, kInlineCapacity> inline_;
  std::vector<Tuple> heap_;
};

}  // namespace tcq
