// TupleBatch: a run of tuples from ONE base stream, the unit the batched
// dataflow pipeline moves end-to-end (wrapper -> fjords -> executor ->
// shared eddy). Propagating batches amortizes the per-tuple lock
// acquisition, catalog lookup, and routing decision that otherwise dominate
// the ingest hot path, while per-tuple semantics are preserved (every batch
// entry point degrades to a batch of one).
//
// Since DESIGN.md §11 a batch carries up to two representations of the same
// rows:
//   - row-shaped:   std::vector<Tuple>, the legacy layout every operator
//                   still understands;
//   - column-major: an immutable shared ColumnStore (one contiguous typed
//                   lane per attribute over a per-batch arena), the layout
//                   the vectorized filter kernels sweep.
// At least one representation is always present; the other is materialized
// lazily on first demand and cached. Mutating the rows (push_back, DropFront,
// non-const element access) invalidates the cached columns; the columns
// themselves are immutable and shared by reference, so copying a batch never
// duplicates lane storage.

#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "tuple/column_store.h"
#include "tuple/tuple.h"

namespace tcq {

class TupleBatch {
 public:
  TupleBatch() = default;
  explicit TupleBatch(SourceId source) : source_(source) {}

  /// Wraps an already-columnar payload (server BatchBuilder, zero-copy
  /// re-tag). Rows materialize lazily if some consumer still needs them.
  TupleBatch(SourceId source, ColumnStore::Ref columns)
      : source_(source), cols_(std::move(columns)) {
    rows_valid_ = (cols_ == nullptr);
  }

  TupleBatch(const TupleBatch& other) = default;
  TupleBatch& operator=(const TupleBatch& other) = default;

  TupleBatch(TupleBatch&& other) noexcept
      : source_(other.source_),
        rows_(std::move(other.rows_)),
        rows_valid_(other.rows_valid_),
        cols_(std::move(other.cols_)),
        cols_failed_(other.cols_failed_),
        puncts_(std::move(other.puncts_)) {
    other.ResetToEmpty();
  }
  TupleBatch& operator=(TupleBatch&& other) noexcept {
    if (this != &other) {
      source_ = other.source_;
      rows_ = std::move(other.rows_);
      rows_valid_ = other.rows_valid_;
      cols_ = std::move(other.cols_);
      cols_failed_ = other.cols_failed_;
      puncts_ = std::move(other.puncts_);
      other.ResetToEmpty();
    }
    return *this;
  }

  /// The base stream every tuple in the batch belongs to. Meaningful only
  /// for ingest batches (intermediates span several sources).
  SourceId source() const { return source_; }
  void set_source(SourceId source) { source_ = source; }

  /// Row count. Control-lane punctuations are NOT rows; a batch with only
  /// punctuations reports size() == 0 / empty() == true, so paths that must
  /// forward lane-only batches check `empty() && punctuations().empty()`.
  size_t size() const {
    if (rows_valid_) return rows_.size();
    return cols_ ? cols_->num_rows() : 0;
  }
  bool empty() const { return size() == 0; }

  void push_back(Tuple t) {
    // In-band control tuples divert onto the control lane, so any path that
    // pops tuples into a batch (e.g. BoundedQueue::TryPopBatch) is
    // automatically lane-aware without knowing about punctuations.
    if (t.valid() && t.IsPunctuation()) {
      puncts_.push_back(t.AsPunctuation());
      return;
    }
    EnsureRows();
    InvalidateColumns();
    rows_.push_back(std::move(t));
  }

  /// Mutable element access invalidates the cached columnar view.
  Tuple& operator[](size_t i) {
    EnsureRows();
    InvalidateColumns();
    assert(i < rows_.size());
    return rows_[i];
  }
  const Tuple& operator[](size_t i) const {
    EnsureRows();
    assert(i < rows_.size());
    return rows_[i];
  }
  const Tuple& front() const { return (*this)[0]; }
  const Tuple& back() const { return (*this)[size() - 1]; }

  /// Contiguous row storage. The non-const overload hands out mutable rows,
  /// so it drops the cached columns; prefer RowAt()/columns() on read paths
  /// to keep columnar-native batches unmaterialized.
  Tuple* data() {
    EnsureRows();
    InvalidateColumns();
    return rows_.data();
  }
  const Tuple* data() const {
    EnsureRows();
    return rows_.data();
  }

  Tuple* begin() { return data(); }
  Tuple* end() {
    Tuple* d = data();
    return d + rows_.size();
  }
  const Tuple* begin() const { return data(); }
  const Tuple* end() const { return data() + size(); }

  /// One row, without forcing full row materialization of a columnar-native
  /// batch. Cheap (shared payload copy) when rows exist; builds one Tuple
  /// from the lanes otherwise.
  Tuple RowAt(size_t i) const {
    if (rows_valid_) {
      assert(i < rows_.size());
      return rows_[i];
    }
    assert(cols_ && i < cols_->num_rows());
    return cols_->MaterializeRow(i);
  }

  /// The column-major view of this batch, built on first demand. Returns
  /// nullptr when the rows are not columnarizable (mixed schema identities,
  /// invalid tuples, empty batch); the negative result is cached until the
  /// next mutation.
  const ColumnStore::Ref& columns() const;

  /// Rows selected by `sel` (byte mask, sel.size() == size()), preserving
  /// order and the source tag. Columnar-native batches materialize only the
  /// selected rows — dropped rows are never copied.
  TupleBatch Filter(const SelectionVector& sel) const;

  /// Control lane: punctuations that apply AFTER the rows of this batch.
  /// (Delaying a watermark's application is always safe — it only defers
  /// window firing — so collapsing intra-batch ordering to "rows first,
  /// then lane" preserves correctness.)
  const std::vector<Punctuation>& punctuations() const { return puncts_; }
  void AddPunctuation(const Punctuation& p) { puncts_.push_back(p); }
  void ClearPunctuations() { puncts_.clear(); }

  /// Drops the first `n` lane entries (after a partial control flush).
  void DropFrontPunctuations(size_t n) {
    assert(n <= puncts_.size());
    puncts_.erase(puncts_.begin(), puncts_.begin() + static_cast<ptrdiff_t>(n));
  }

  void clear() {
    rows_.clear();
    rows_valid_ = true;
    cols_ = nullptr;
    cols_failed_ = false;
    puncts_.clear();
  }

  void reserve(size_t n) {
    EnsureRows();
    rows_.reserve(n);
  }

  /// Drops the first `n` tuples (used after a partial batch enqueue).
  void DropFront(size_t n) {
    assert(n <= size());
    if (n == 0) return;
    EnsureRows();
    InvalidateColumns();
    rows_.erase(rows_.begin(), rows_.begin() + static_cast<ptrdiff_t>(n));
  }

 private:
  /// Materializes the row representation from the columns (lazy; const
  /// because it only fills a cache).
  void EnsureRows() const;

  void InvalidateColumns() {
    cols_ = nullptr;
    cols_failed_ = false;
  }

  void ResetToEmpty() {
    rows_.clear();
    rows_valid_ = true;
    cols_ = nullptr;
    cols_failed_ = false;
    puncts_.clear();
  }

  SourceId source_ = 0;
  // Invariant: rows_valid_ || cols_ != nullptr (an empty batch is
  // rows_valid_ with no rows). Both may be set: they describe the same rows.
  mutable std::vector<Tuple> rows_;
  mutable bool rows_valid_ = true;
  mutable ColumnStore::Ref cols_;
  mutable bool cols_failed_ = false;  ///< FromRows declined; don't retry
  /// Control lane (see punctuations()). Orthogonal to the row/column
  /// representations; copies share nothing with the lanes.
  std::vector<Punctuation> puncts_;
};

}  // namespace tcq
