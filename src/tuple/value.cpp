#include "tuple/value.h"

#include <cassert>
#include <cmath>
#include <functional>
#include <sstream>

namespace tcq {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

Value Value::TimestampVal(Timestamp t) {
  Value v;
  v.repr_ = TimestampBox{t};
  return v;
}

ValueType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt64;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
    case 5:
      return ValueType::kTimestamp;
  }
  return ValueType::kNull;
}

int64_t Value::AsInt64() const {
  if (auto* p = std::get_if<TimestampBox>(&repr_)) return p->t;
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const { return std::get<double>(repr_); }

Timestamp Value::AsTimestamp() const {
  if (auto* p = std::get_if<int64_t>(&repr_)) return *p;
  return std::get<TimestampBox>(repr_).t;
}

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(std::get<int64_t>(repr_));
    case ValueType::kDouble:
      return std::get<double>(repr_);
    case ValueType::kTimestamp:
      return static_cast<double>(std::get<TimestampBox>(repr_).t);
    case ValueType::kBool:
      return std::get<bool>(repr_) ? 1.0 : 0.0;
    default:
      assert(false && "ToDouble on non-numeric Value");
      return std::nan("");
  }
}

int Value::Compare(const Value& other) const {
  bool ln = is_null(), rn = other.is_null();
  if (ln || rn) return (ln ? 0 : 1) - (rn ? 0 : 1);
  if (is_numeric() && other.is_numeric()) {
    // Compare exactly when both are integral to avoid double rounding.
    bool li = type() != ValueType::kDouble;
    bool ri = other.type() != ValueType::kDouble;
    if (li && ri) {
      int64_t a = AsInt64(), b = other.AsInt64();
      return (a > b) - (a < b);
    }
    double a = ToDouble(), b = other.ToDouble();
    return (a > b) - (a < b);
  }
  if (type() == ValueType::kBool && other.type() == ValueType::kBool) {
    return int(AsBool()) - int(other.AsBool());
  }
  if (type() == ValueType::kString && other.type() == ValueType::kString) {
    int c = AsString().compare(other.AsString());
    return (c > 0) - (c < 0);
  }
  assert(false && "comparison across incompatible Value families");
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueType::kBool:
      return std::hash<bool>{}(AsBool());
    case ValueType::kInt64:
    case ValueType::kTimestamp: {
      int64_t i = AsInt64();
      double d = static_cast<double>(i);
      // Hash integral doubles like their int64 so 2 and 2.0 collide.
      if (static_cast<int64_t>(d) == i) return std::hash<double>{}(d);
      return std::hash<int64_t>{}(i);
    }
    case ValueType::kDouble:
      return std::hash<double>{}(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::kNull:
      os << "null";
      break;
    case ValueType::kBool:
      os << (AsBool() ? "true" : "false");
      break;
    case ValueType::kInt64:
      os << AsInt64();
      break;
    case ValueType::kDouble:
      os << AsDouble();
      break;
    case ValueType::kString:
      os << '"' << AsString() << '"';
      break;
    case ValueType::kTimestamp:
      os << "@" << AsTimestamp();
      break;
  }
  return os.str();
}

}  // namespace tcq
