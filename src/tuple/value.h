// Value: the dynamically typed cell used in tuples. TelegraphCQ streams carry
// relational records; we support the types the paper's examples use
// (ClosingStockPrices: long timestamp, char(4) symbol, float price) plus
// bool/null for predicate results and missing sensor readings.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/clock.h"

namespace tcq {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

/// Returns the lowercase name of a type ("int64", "string", ...).
const char* ValueTypeName(ValueType t);

/// A single dynamically typed cell.
///
/// Ordering: values of the same numeric family (int64/double/timestamp)
/// compare numerically across types; strings compare lexicographically;
/// null compares less than everything else. Cross-family comparisons between
/// numeric and string are invalid and assert in debug builds.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(bool b) : repr_(b) {}
  explicit Value(int64_t i) : repr_(i) {}
  explicit Value(double d) : repr_(d) {}
  explicit Value(std::string s) : repr_(std::move(s)) {}
  explicit Value(const char* s) : repr_(std::string(s)) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(b); }
  static Value Int64(int64_t i) { return Value(i); }
  static Value Double(double d) { return Value(d); }
  static Value String(std::string s) { return Value(std::move(s)); }
  static Value TimestampVal(Timestamp t);

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt64 || t == ValueType::kDouble ||
           t == ValueType::kTimestamp;
  }

  /// Typed accessors; require the matching type.
  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  Timestamp AsTimestamp() const;

  /// Numeric coercion: int64/double/timestamp -> double. Asserts otherwise.
  double ToDouble() const;

  /// Three-way comparison per the ordering rules above: -1, 0, +1.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable hash usable for SteM hash indexes and grouped filters. Numeric
  /// family members that compare equal hash equally.
  size_t Hash() const;

  std::string ToString() const;

 private:
  struct TimestampBox {
    Timestamp t;
    bool operator==(const TimestampBox&) const = default;
  };
  std::variant<std::monostate, bool, int64_t, double, std::string, TimestampBox>
      repr_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace tcq
