#include "window/time.h"

namespace tcq {

void WatermarkTracker::Update(SourceId source, Timestamp ts) {
  auto [it, inserted] = marks_.try_emplace(source, ts);
  if (!inserted && it->second < ts) it->second = ts;
}

WatermarkTracker::PunctResult WatermarkTracker::OnPunctuation(
    const Punctuation& p) {
  auto [it, inserted] = marks_.try_emplace(p.source, p.low_watermark);
  if (inserted) {
    ++punct_applied_;
    return PunctResult::kAdvanced;
  }
  if (p.low_watermark > it->second) {
    it->second = p.low_watermark;
    ++punct_applied_;
    return PunctResult::kAdvanced;
  }
  if (p.low_watermark == it->second) return PunctResult::kDuplicate;
  ++punct_regressed_;
  return PunctResult::kRegressed;
}

Timestamp WatermarkTracker::WatermarkOf(SourceId source) const {
  auto it = marks_.find(source);
  return it == marks_.end() ? kMinTimestamp : it->second;
}

Timestamp WatermarkTracker::MinWatermark(SourceSet sources) const {
  // Empty source set => vacuous min = kMaxTimestamp: a participant that owns
  // no sources must never pin a merged watermark at kMinTimestamp forever.
  // (A non-empty set containing an unseen source still yields kMinTimestamp,
  // via WatermarkOf — "no progress yet" stays distinguishable from "nothing
  // to wait for".)
  Timestamp min = kMaxTimestamp;
  ForEachSource(sources,
                [&](SourceId s) { min = std::min(min, WatermarkOf(s)); });
  return min;
}

Timestamp WatermarkTracker::GlobalWatermark() const {
  Timestamp min = kMaxTimestamp;
  for (const auto& [s, ts] : marks_) min = std::min(min, ts);
  return min == kMaxTimestamp ? kMinTimestamp : min;
}

bool WatermarkTracker::Ordered(SourceId a, Timestamp ta, SourceId b,
                               Timestamp tb) const {
  Timestamp joint = std::min(WatermarkOf(a), WatermarkOf(b));
  return ta <= joint && tb <= joint;
}

void ShardMergedWatermark::Reset(size_t shards) {
  per_shard_.assign(shards, WatermarkTracker());
  merged_ = WatermarkTracker();
}

std::optional<Timestamp> ShardMergedWatermark::Observe(size_t shard,
                                                       const Punctuation& p) {
  if (shard >= per_shard_.size()) return std::nullopt;
  per_shard_[shard].OnPunctuation(p);
  // Merged = min over every shard's view of this source. A shard that has
  // not yet consumed the broadcast reports kMinTimestamp and pins the min.
  Timestamp merged = kMaxTimestamp;
  for (const WatermarkTracker& t : per_shard_) {
    merged = std::min(merged, t.WatermarkOf(p.source));
  }
  if (merged == kMinTimestamp) return std::nullopt;
  Timestamp before = merged_.WatermarkOf(p.source);
  merged_.Update(p.source, merged);
  if (merged_.WatermarkOf(p.source) > before) return merged;
  return std::nullopt;
}

void TimeTransform::Observe(Timestamp seq, Timestamp ts) {
  if (!by_seq_.empty()) {
    // Keep both coordinates monotone.
    if (seq <= by_seq_.back().first) return;
    if (ts < by_seq_.back().second) ts = by_seq_.back().second;
  }
  by_seq_.emplace_back(seq, ts);
}

Timestamp TimeTransform::ToPhysical(Timestamp seq) const {
  if (by_seq_.empty()) return kMinTimestamp;
  auto it = std::upper_bound(
      by_seq_.begin(), by_seq_.end(), seq,
      [](Timestamp v, const auto& p) { return v < p.first; });
  if (it == by_seq_.begin()) return kMinTimestamp;
  return std::prev(it)->second;
}

Timestamp TimeTransform::ToLogical(Timestamp ts) const {
  if (by_seq_.empty()) return kMinTimestamp;
  auto it = std::upper_bound(
      by_seq_.begin(), by_seq_.end(), ts,
      [](Timestamp v, const auto& p) { return v < p.second; });
  if (it == by_seq_.begin()) return kMinTimestamp;
  return std::prev(it)->first;
}

}  // namespace tcq
