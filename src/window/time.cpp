#include "window/time.h"

namespace tcq {

void WatermarkTracker::Update(SourceId source, Timestamp ts) {
  auto [it, inserted] = marks_.try_emplace(source, ts);
  if (!inserted && it->second < ts) it->second = ts;
}

Timestamp WatermarkTracker::WatermarkOf(SourceId source) const {
  auto it = marks_.find(source);
  return it == marks_.end() ? kMinTimestamp : it->second;
}

Timestamp WatermarkTracker::MinWatermark(SourceSet sources) const {
  // Empty source set => vacuous min = kMaxTimestamp: a participant that owns
  // no sources must never pin a merged watermark at kMinTimestamp forever.
  // (A non-empty set containing an unseen source still yields kMinTimestamp,
  // via WatermarkOf — "no progress yet" stays distinguishable from "nothing
  // to wait for".)
  Timestamp min = kMaxTimestamp;
  ForEachSource(sources,
                [&](SourceId s) { min = std::min(min, WatermarkOf(s)); });
  return min;
}

Timestamp WatermarkTracker::GlobalWatermark() const {
  Timestamp min = kMaxTimestamp;
  for (const auto& [s, ts] : marks_) min = std::min(min, ts);
  return min == kMaxTimestamp ? kMinTimestamp : min;
}

bool WatermarkTracker::Ordered(SourceId a, Timestamp ta, SourceId b,
                               Timestamp tb) const {
  Timestamp joint = std::min(WatermarkOf(a), WatermarkOf(b));
  return ta <= joint && tb <= joint;
}

void TimeTransform::Observe(Timestamp seq, Timestamp ts) {
  if (!by_seq_.empty()) {
    // Keep both coordinates monotone.
    if (seq <= by_seq_.back().first) return;
    if (ts < by_seq_.back().second) ts = by_seq_.back().second;
  }
  by_seq_.emplace_back(seq, ts);
}

Timestamp TimeTransform::ToPhysical(Timestamp seq) const {
  if (by_seq_.empty()) return kMinTimestamp;
  auto it = std::upper_bound(
      by_seq_.begin(), by_seq_.end(), seq,
      [](Timestamp v, const auto& p) { return v < p.first; });
  if (it == by_seq_.begin()) return kMinTimestamp;
  return std::prev(it)->second;
}

Timestamp TimeTransform::ToLogical(Timestamp ts) const {
  if (by_seq_.empty()) return kMinTimestamp;
  auto it = std::upper_bound(
      by_seq_.begin(), by_seq_.end(), ts,
      [](Timestamp v, const auto& p) { return v < p.second; });
  if (it == by_seq_.begin()) return kMinTimestamp;
  return std::prev(it)->first;
}

}  // namespace tcq
