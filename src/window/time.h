// Time handling for loosely synchronized distributed sources (paper §4.1.1):
// "we treat time as a partial order, rather than as a complete order".
// Each stream advances its own watermark; an operation over several streams
// may only rely on the region of the timeline all of them have passed. The
// paper also allows "multiple simultaneous notions of time" — logical
// sequence numbers or physical timestamps — with transformations between
// them.

#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "common/clock.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

/// Notions of time a stream can be windowed by (§4.1.2).
enum class TimeDomain {
  kLogical,   ///< tuple sequence number: window memory needs known a priori
  kPhysical,  ///< wall-clock: memory depends on arrival-rate fluctuations
};

/// Tracks per-source watermarks and exposes the joint (partial-order) lower
/// bound: the latest instant that EVERY involved stream has reached. A
/// window [l, r] over a set of streams is complete once MinWatermark >= r.
class WatermarkTracker {
 public:
  /// Advances `source`'s watermark to `ts` (monotone; regressions ignored).
  void Update(SourceId source, Timestamp ts);

  /// Watermark of one source (kMinTimestamp if never updated).
  Timestamp WatermarkOf(SourceId source) const;

  /// The joint watermark of the given sources: min over their watermarks.
  /// Sources never seen yield kMinTimestamp (nothing is complete yet); the
  /// EMPTY set yields kMaxTimestamp (vacuous min — a participant with no
  /// sources never holds a merged watermark back).
  Timestamp MinWatermark(SourceSet sources) const;

  /// Joint watermark over every known source.
  Timestamp GlobalWatermark() const;

  /// Two timestamps from different sources are only comparable up to the
  /// joint watermark; both-below means their order is decided.
  bool Ordered(SourceId a, Timestamp ta, SourceId b, Timestamp tb) const;

 private:
  std::map<SourceId, Timestamp> marks_;
};

/// Transforms a stream's notion of time, e.g. logical sequence numbers into
/// the physical timestamps observed at arrival (the paper's algebra allows
/// "a stream defined using one notion of time to be transformed into a
/// stream using another"). Records (logical, physical) correspondence pairs
/// and interpolates.
class TimeTransform {
 public:
  /// Registers that logical instant `seq` occurred at physical time `ts`.
  void Observe(Timestamp seq, Timestamp ts);

  /// Physical time of a logical instant (nearest observation at or before;
  /// kMinTimestamp when nothing observed yet).
  Timestamp ToPhysical(Timestamp seq) const;

  /// Latest logical instant at or before a physical time (kMinTimestamp
  /// when nothing observed yet).
  Timestamp ToLogical(Timestamp ts) const;

  size_t observations() const { return by_seq_.size(); }

 private:
  // Monotone map seq -> ts (both ascending).
  std::vector<std::pair<Timestamp, Timestamp>> by_seq_;
};

}  // namespace tcq
