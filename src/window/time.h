// Time handling for loosely synchronized distributed sources (paper §4.1.1):
// "we treat time as a partial order, rather than as a complete order".
// Each stream advances its own watermark; an operation over several streams
// may only rely on the region of the timeline all of them have passed. The
// paper also allows "multiple simultaneous notions of time" — logical
// sequence numbers or physical timestamps — with transformations between
// them.

#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

/// Notions of time a stream can be windowed by (§4.1.2).
enum class TimeDomain {
  kLogical,   ///< tuple sequence number: window memory needs known a priori
  kPhysical,  ///< wall-clock: memory depends on arrival-rate fluctuations
};

/// Which timeline drives window completion (DESIGN.md §12).
enum class TimeSemantics {
  /// Legacy: watermarks advance from observed DATA timestamps; correct only
  /// when each stream arrives in timestamp order.
  kArrival,
  /// Watermarks advance ONLY on punctuations; tuples may arrive out of
  /// order up to the source's disorder bound, and a window fires when the
  /// joint watermark strictly passes its right edge.
  kEvent,
};

/// Tracks per-source watermarks and exposes the joint (partial-order) lower
/// bound: the latest instant that EVERY involved stream has reached. A
/// window [l, r] over a set of streams is complete once MinWatermark >= r.
class WatermarkTracker {
 public:
  /// Outcome of applying a punctuation (see OnPunctuation).
  enum class PunctResult {
    kAdvanced,   ///< the source's watermark moved forward
    kDuplicate,  ///< equal to the current watermark: idempotent no-op
    kRegressed,  ///< below the current watermark: rejected (promise violated)
  };

  /// Advances `source`'s watermark to `ts` (monotone; regressions ignored).
  void Update(SourceId source, Timestamp ts);

  /// Applies a source-issued punctuation: the promise that no future tuple
  /// from `p.source` has timestamp < p.low_watermark. Watermarks are
  /// monotone, so duplicates (shard broadcast delivers each punctuation to
  /// every replica) are no-ops and regressions are rejected and counted.
  PunctResult OnPunctuation(const Punctuation& p);

  uint64_t punctuations_applied() const { return punct_applied_; }
  uint64_t punctuations_regressed() const { return punct_regressed_; }

  /// Every per-source mark (checkpoint export; restore re-drives Update,
  /// which leaves the punctuation counters at zero — counters restart).
  const std::map<SourceId, Timestamp>& marks() const { return marks_; }

  /// Watermark of one source (kMinTimestamp if never updated).
  Timestamp WatermarkOf(SourceId source) const;

  /// The joint watermark of the given sources: min over their watermarks.
  /// Sources never seen yield kMinTimestamp (nothing is complete yet); the
  /// EMPTY set yields kMaxTimestamp (vacuous min — a participant with no
  /// sources never holds a merged watermark back).
  Timestamp MinWatermark(SourceSet sources) const;

  /// Joint watermark over every known source.
  Timestamp GlobalWatermark() const;

  /// Two timestamps from different sources are only comparable up to the
  /// joint watermark; both-below means their order is decided.
  bool Ordered(SourceId a, Timestamp ta, SourceId b, Timestamp tb) const;

 private:
  std::map<SourceId, Timestamp> marks_;
  uint64_t punct_applied_ = 0;
  uint64_t punct_regressed_ = 0;
};

/// Min-combines watermarks across the replicas of a sharded query class.
/// Punctuations are BROADCAST to every shard (data rows partition, control
/// must not), so each shard independently reports what it has applied; the
/// merged watermark of a source is the min over all shards' reports, and it
/// only moves once every shard has seen the broadcast (an unseen shard
/// reports kMinTimestamp, holding the merge back — exactly the barrier the
/// broadcast provides).
class ShardMergedWatermark {
 public:
  /// (Re)sizes to `shards` replicas, discarding prior state. Called on
  /// construction and after a repartition: post-repartition sources re-earn
  /// their watermarks from the next punctuation onward, which can only
  /// DELAY window firing — never un-fire a window — so it is safe.
  void Reset(size_t shards);

  /// Applies shard `shard`'s copy of punctuation `p`. Returns the new merged
  /// watermark for p.source iff the merge advanced, nullopt otherwise
  /// (duplicate, regression, or still waiting on other shards).
  std::optional<Timestamp> Observe(size_t shard, const Punctuation& p);

  /// Current merged watermark of one source (kMinTimestamp until every
  /// shard has reported it).
  Timestamp MergedOf(SourceId source) const { return merged_.WatermarkOf(source); }

  size_t shard_count() const { return per_shard_.size(); }

 private:
  std::vector<WatermarkTracker> per_shard_;
  WatermarkTracker merged_;
};

/// Transforms a stream's notion of time, e.g. logical sequence numbers into
/// the physical timestamps observed at arrival (the paper's algebra allows
/// "a stream defined using one notion of time to be transformed into a
/// stream using another"). Records (logical, physical) correspondence pairs
/// and interpolates.
class TimeTransform {
 public:
  /// Registers that logical instant `seq` occurred at physical time `ts`.
  void Observe(Timestamp seq, Timestamp ts);

  /// Physical time of a logical instant (nearest observation at or before;
  /// kMinTimestamp when nothing observed yet).
  Timestamp ToPhysical(Timestamp seq) const;

  /// Latest logical instant at or before a physical time (kMinTimestamp
  /// when nothing observed yet).
  Timestamp ToLogical(Timestamp ts) const;

  size_t observations() const { return by_seq_.size(); }

 private:
  // Monotone map seq -> ts (both ascending).
  std::vector<std::pair<Timestamp, Timestamp>> by_seq_;
};

}  // namespace tcq
