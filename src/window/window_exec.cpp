#include "window/window_exec.h"

#include <algorithm>
#include <cassert>

namespace tcq {

void StreamHistory::Append(const Tuple& tuple) {
  if (tuples_.empty() || tuples_.back().timestamp() <= tuple.timestamp()) {
    tuples_.push_back(tuple);
    return;
  }
  // Slightly out-of-order arrival: insert at the right position.
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), tuple.timestamp(),
      [](Timestamp ts, const Tuple& t) { return ts < t.timestamp(); });
  tuples_.insert(it, tuple);
}

void StreamHistory::Range(Timestamp l, Timestamp r,
                          std::vector<Tuple>* out) const {
  auto lo = std::lower_bound(
      tuples_.begin(), tuples_.end(), l,
      [](const Tuple& t, Timestamp ts) { return t.timestamp() < ts; });
  for (auto it = lo; it != tuples_.end() && it->timestamp() <= r; ++it) {
    out->push_back(*it);
  }
}

void StreamHistory::PruneBefore(Timestamp cutoff) {
  while (!tuples_.empty() && tuples_.front().timestamp() < cutoff) {
    tuples_.pop_front();
  }
}

SourceSet WindowedQuery::Sources() const {
  SourceSet s = 0;
  for (const WindowIs& w : loop.windows) s |= SourceBit(w.source);
  return s;
}

namespace {

// Joins the per-source window contents with early predicate pruning.
void JoinWindows(const std::vector<SourceId>& order,
                 const std::vector<std::vector<Tuple>>& contents,
                 const std::vector<PredicateRef>& predicates, size_t depth,
                 const Tuple& acc, std::vector<Tuple>* out) {
  if (depth == contents.size()) {
    out->push_back(acc);
    return;
  }
  for (const Tuple& t : contents[depth]) {
    Tuple next =
        depth == 0
            ? t
            : Tuple::Concat(acc, t, Schema::Concat(acc.schema(), t.schema()));
    bool viable = true;
    for (const auto& p : predicates) {
      if (p->CanEval(next) && !p->Eval(next)) {
        viable = false;
        break;
      }
    }
    if (viable) JoinWindows(order, contents, predicates, depth + 1, next, out);
  }
}

WindowResult EvaluateInstance(const WindowedQuery& query,
                              const WindowInstance& inst,
                              const std::map<SourceId, StreamHistory>& hist) {
  WindowResult result;
  result.t = inst.t;
  std::vector<SourceId> order;
  std::vector<std::vector<Tuple>> contents;
  for (const auto& [source, range] : inst.ranges) {
    order.push_back(source);
    contents.emplace_back();
    auto it = hist.find(source);
    if (it != hist.end()) {
      it->second.Range(range.first, range.second, &contents.back());
    }
    if (contents.back().empty()) return result;  // empty join input
  }
  JoinWindows(order, contents, query.predicates, 0, Tuple(), &result.tuples);
  return result;
}

}  // namespace

std::vector<WindowResult> RunOverHistory(
    const WindowedQuery& query,
    const std::map<SourceId, StreamHistory>& history, uint64_t max_windows) {
  std::vector<WindowResult> out;
  WindowIterator iter(query.loop);
  for (uint64_t n = 0; iter.HasNext() && n < max_windows; ++n) {
    out.push_back(EvaluateInstance(query, iter.Next(), history));
  }
  return out;
}

OnlineWindowRunner::OnlineWindowRunner(WindowedQuery query, Options opts)
    : query_(std::move(query)), opts_(opts), iter_(query_.loop) {
  if (iter_.HasNext()) pending_ = iter_.Next();
}

void OnlineWindowRunner::Ingest(SourceId source, const Tuple& tuple) {
  if (tuple.IsPunctuation()) {
    OnPunctuation(tuple.AsPunctuation());
    return;
  }
  if (query_.loop.semantics == TimeSemantics::kEvent) {
    // A watermark of W promises no future tuple with ts < W; one arriving
    // anyway exceeded its source's disorder bound. Dropping it (counted,
    // typed) keeps fired windows immutable rather than silently wrong.
    if (tuple.timestamp() < watermarks_.WatermarkOf(source)) {
      ++late_beyond_bound_;
      return;
    }
    if (auto it = prune_floor_.find(source);
        it != prune_floor_.end() && tuple.timestamp() < it->second) {
      // In time, but below every remaining window's left end: it can never
      // be read again, so don't buffer it.
      ++late_behind_loop_;
      return;
    }
    history_[source].Append(tuple);  // the deque IS the reorder buffer
    spec_dirty_ = true;
    return;
  }
  history_[source].Append(tuple);
  watermarks_.Update(source, tuple.timestamp());
}

void OnlineWindowRunner::OnPunctuation(const Punctuation& p) {
  watermarks_.OnPunctuation(p);
}

void OnlineWindowRunner::AdvanceWatermark(SourceId source, Timestamp ts) {
  watermarks_.Update(source, ts);
}

void OnlineWindowRunner::Poll(const Callback& cb) {
  const bool event = query_.loop.semantics == TimeSemantics::kEvent;
  while (pending_.has_value()) {
    bool complete = true;
    for (const auto& [source, range] : pending_->ranges) {
      Timestamp w = watermarks_.WatermarkOf(source);
      if (event) {
        // Right ends are inclusive: ts == r tuples may still arrive while
        // W == r, so completion needs W strictly past r (kMaxTimestamp ==
        // stream closed counts too).
        if (w <= range.second && w != kMaxTimestamp) {
          complete = false;
          break;
        }
      } else if (w < range.second) {
        complete = false;
        break;
      }
    }
    if (!complete) {
      if (event && opts_.speculate && spec_dirty_) {
        spec_dirty_ = false;
        EmitDelta(cb, EvaluateInstance(query_, *pending_, history_).tuples,
                  WindowResultKind::kSpeculative);
      }
      break;
    }
    WindowResult full = EvaluateInstance(query_, *pending_, history_);
    if (event && opts_.speculate) {
      // Seal as a delta: retract what no longer holds, then emit the final
      // additions. `sum(additions) - sum(retractions)` == full.tuples.
      EmitDelta(cb, full.tuples, WindowResultKind::kFinal);
    } else {
      cb(full);
    }
    pending_ = iter_.HasNext() ? std::optional(iter_.Next()) : std::nullopt;
    spec_emitted_.clear();
    spec_revision_ = 0;
    spec_dirty_ = !history_.empty();
    MaybePrune();
  }
}

void OnlineWindowRunner::EmitDelta(const Callback& cb,
                                   const std::vector<Tuple>& now,
                                   WindowResultKind kind) {
  Timestamp t = pending_->t;
  std::map<std::string, std::pair<Tuple, size_t>> current;
  for (const Tuple& tp : now) {
    auto [it, inserted] = current.try_emplace(tp.ToString(), tp, 0);
    ++it->second.second;
  }
  WindowResult retract;
  retract.t = t;
  retract.kind = WindowResultKind::kRetraction;
  for (const auto& [key, emitted] : spec_emitted_) {
    size_t have = 0;
    if (auto it = current.find(key); it != current.end()) {
      have = it->second.second;
    }
    for (size_t i = have; i < emitted.second; ++i) {
      retract.tuples.push_back(Tuple::Retraction(emitted.first));
    }
  }
  if (!retract.tuples.empty()) {
    retract.revision = ++spec_revision_;
    retractions_ += retract.tuples.size();
    cb(retract);
  }
  WindowResult add;
  add.t = t;
  add.kind = kind;
  for (const auto& [key, cur] : current) {
    size_t emitted = 0;
    if (auto it = spec_emitted_.find(key); it != spec_emitted_.end()) {
      emitted = it->second.second;
    }
    for (size_t i = emitted; i < cur.second; ++i) {
      add.tuples.push_back(cur.first);
    }
  }
  // kFinal always fires (even empty) so consumers see the window seal;
  // kSpeculative only fires when it adds something.
  if (!add.tuples.empty() || kind == WindowResultKind::kFinal) {
    add.revision = ++spec_revision_;
    if (kind == WindowResultKind::kSpeculative) {
      speculative_ += add.tuples.size();
    }
    cb(add);
  }
  spec_emitted_ = std::move(current);
}

void OnlineWindowRunner::MaybePrune() {
  if (!pending_.has_value()) {
    // Loop exhausted: nothing will ever be read again.
    for (auto& [source, hist] : history_) hist.PruneBefore(kMaxTimestamp);
    return;
  }
  // Safe to prune below the minimum left end of all future windows. For
  // forward-moving loops with left ends that advance with t, that minimum
  // is the current instance's left end; otherwise keep everything.
  if (query_.loop.t_step <= 0) return;
  for (const auto& [source, range] : pending_->ranges) {
    bool left_advances = false;
    for (const WindowIs& w : query_.loop.windows) {
      if (w.source == source && w.left.t_coef > 0) left_advances = true;
    }
    if (left_advances) {
      history_[source].PruneBefore(range.first);
      Timestamp& floor =
          prune_floor_.try_emplace(source, kMinTimestamp).first->second;
      floor = std::max(floor, range.first);
    }
  }
}

size_t OnlineWindowRunner::buffered_tuples() const {
  size_t n = 0;
  for (const auto& [source, hist] : history_) n += hist.size();
  return n;
}

void OnlineWindowRunner::ExportTo(CheckpointWriter* w) const {
  w->PutBool(pending_.has_value());
  if (pending_.has_value()) w->PutTimestamp(pending_->t);
  const auto& marks = watermarks_.marks();
  w->PutU32(static_cast<uint32_t>(marks.size()));
  for (const auto& [source, ts] : marks) {
    w->PutU32(source);
    w->PutTimestamp(ts);
  }
  w->PutU32(static_cast<uint32_t>(history_.size()));
  std::vector<Tuple> tuples;
  for (const auto& [source, hist] : history_) {
    w->PutU32(source);
    tuples.clear();
    hist.Range(kMinTimestamp, kMaxTimestamp, &tuples);
    w->PutU64(tuples.size());
    for (const Tuple& t : tuples) w->PutTuple(t);
  }
  w->PutU32(static_cast<uint32_t>(prune_floor_.size()));
  for (const auto& [source, floor] : prune_floor_) {
    w->PutU32(source);
    w->PutTimestamp(floor);
  }
  w->PutU64(late_beyond_bound_);
  w->PutU64(late_behind_loop_);
  w->PutU64(retractions_);
  w->PutU64(speculative_);
  w->PutU64(spec_emitted_.size());
  for (const auto& [key, entry] : spec_emitted_) {
    w->PutTuple(entry.first);
    w->PutU64(entry.second);
  }
  w->PutU64(spec_revision_);
  w->PutBool(spec_dirty_);
}

Status OnlineWindowRunner::RestoreFrom(CheckpointReader* r) {
  TCQ_ASSIGN_OR_RETURN(bool has_pending, r->GetBool());
  // Re-drive a fresh iterator to the recorded loop position. The loop is
  // deterministic, so matching the pending instant reproduces the iterator
  // state exactly; a bounded search turns a mismatched query into a typed
  // error instead of a spin.
  iter_ = WindowIterator(query_.loop);
  pending_.reset();
  if (has_pending) {
    TCQ_ASSIGN_OR_RETURN(Timestamp pending_t, r->GetTimestamp());
    bool found = false;
    for (uint64_t i = 0; i < (1u << 20) && iter_.HasNext(); ++i) {
      WindowInstance inst = iter_.Next();
      if (inst.t == pending_t) {
        pending_ = std::move(inst);
        found = true;
        break;
      }
      if (query_.loop.t_step > 0 && inst.t > pending_t) break;
    }
    if (!found) {
      return Status::IOError(
          "window_runner checkpoint pending instant " +
          std::to_string(pending_t) +
          " is not an instance of the restored query's loop");
    }
  } else {
    // Recorded loop was exhausted; exhaust ours too.
    for (uint64_t i = 0; i < (1u << 20) && iter_.HasNext(); ++i) iter_.Next();
  }
  TCQ_ASSIGN_OR_RETURN(uint32_t nmarks, r->GetU32());
  for (uint32_t i = 0; i < nmarks; ++i) {
    TCQ_ASSIGN_OR_RETURN(uint32_t source, r->GetU32());
    TCQ_ASSIGN_OR_RETURN(Timestamp ts, r->GetTimestamp());
    watermarks_.Update(source, ts);
  }
  history_.clear();
  TCQ_ASSIGN_OR_RETURN(uint32_t nhist, r->GetU32());
  for (uint32_t i = 0; i < nhist; ++i) {
    TCQ_ASSIGN_OR_RETURN(uint32_t source, r->GetU32());
    TCQ_ASSIGN_OR_RETURN(uint64_t count, r->GetU64());
    StreamHistory& hist = history_[source];
    for (uint64_t j = 0; j < count; ++j) {
      TCQ_ASSIGN_OR_RETURN(Tuple t, r->GetTuple());
      hist.Append(t);
    }
  }
  prune_floor_.clear();
  TCQ_ASSIGN_OR_RETURN(uint32_t nfloor, r->GetU32());
  for (uint32_t i = 0; i < nfloor; ++i) {
    TCQ_ASSIGN_OR_RETURN(uint32_t source, r->GetU32());
    TCQ_ASSIGN_OR_RETURN(Timestamp floor, r->GetTimestamp());
    prune_floor_[source] = floor;
  }
  TCQ_ASSIGN_OR_RETURN(late_beyond_bound_, r->GetU64());
  TCQ_ASSIGN_OR_RETURN(late_behind_loop_, r->GetU64());
  TCQ_ASSIGN_OR_RETURN(retractions_, r->GetU64());
  TCQ_ASSIGN_OR_RETURN(speculative_, r->GetU64());
  spec_emitted_.clear();
  TCQ_ASSIGN_OR_RETURN(uint64_t nspec, r->GetU64());
  for (uint64_t i = 0; i < nspec; ++i) {
    TCQ_ASSIGN_OR_RETURN(Tuple t, r->GetTuple());
    TCQ_ASSIGN_OR_RETURN(uint64_t count, r->GetU64());
    std::string key = t.ToString();
    spec_emitted_.emplace(std::move(key),
                          std::make_pair(std::move(t), count));
  }
  TCQ_ASSIGN_OR_RETURN(spec_revision_, r->GetU64());
  TCQ_ASSIGN_OR_RETURN(spec_dirty_, r->GetBool());
  return Status::OK();
}

std::vector<WindowAggregateResult> RunAggregateOverHistory(
    const ForLoopSpec& loop, AggFn fn, const AttrRef& value_attr,
    const StreamHistory& history, uint64_t max_windows,
    size_t* peak_state_bytes) {
  std::vector<WindowAggregateResult> out;
  WindowClass cls = loop.Classify();
  size_t peak = 0;
  WindowIterator iter(loop);

  if (cls == WindowClass::kLandmark) {
    // Incremental O(1)-state strategy: consecutive windows share the fixed
    // left end; only the newly exposed suffix is added.
    LandmarkAggregator agg(fn);
    Timestamp fed_through = kMinTimestamp;
    for (uint64_t n = 0; iter.HasNext() && n < max_windows; ++n) {
      WindowInstance inst = iter.Next();
      auto range = inst.ranges.front().second;
      if (fed_through == kMinTimestamp) fed_through = range.first - 1;
      std::vector<Tuple> fresh;
      history.Range(fed_through + 1, range.second, &fresh);
      for (const Tuple& t : fresh) {
        const Value* v = ResolveAttr(t, value_attr);
        assert(v != nullptr);
        agg.Add(*v, t.timestamp());
      }
      fed_through = range.second;
      out.push_back({inst.t, agg.Result()});
      peak = std::max(peak, agg.StateBytes());
    }
  } else if (cls == WindowClass::kSliding) {
    // Incremental with window retention: feed new suffix, expire old prefix.
    WindowInstance first_peek = WindowIterator(loop).Next();
    Timestamp width = first_peek.ranges.front().second.second -
                      first_peek.ranges.front().second.first + 1;
    SlidingAggregator agg(fn, width);
    Timestamp fed_through = kMinTimestamp;
    for (uint64_t n = 0; iter.HasNext() && n < max_windows; ++n) {
      WindowInstance inst = iter.Next();
      auto range = inst.ranges.front().second;
      if (fed_through == kMinTimestamp) fed_through = range.first - 1;
      std::vector<Tuple> fresh;
      history.Range(fed_through + 1, range.second, &fresh);
      for (const Tuple& t : fresh) {
        const Value* v = ResolveAttr(t, value_attr);
        assert(v != nullptr);
        agg.Add(*v, t.timestamp());
      }
      fed_through = range.second;
      agg.AdvanceTime(range.second);
      out.push_back({inst.t, agg.Result()});
      peak = std::max(peak, agg.StateBytes());
    }
  } else {
    // Snapshot / hopping / backward: recompute each window from history
    // (hop > width means windows share nothing; backward windows revisit
    // the past arbitrarily).
    for (uint64_t n = 0; iter.HasNext() && n < max_windows; ++n) {
      WindowInstance inst = iter.Next();
      auto range = inst.ranges.front().second;
      LandmarkAggregator agg(fn);
      std::vector<Tuple> content;
      history.Range(range.first, range.second, &content);
      for (const Tuple& t : content) {
        const Value* v = ResolveAttr(t, value_attr);
        assert(v != nullptr);
        agg.Add(*v, t.timestamp());
      }
      out.push_back({inst.t, agg.Result()});
      peak = std::max(peak, agg.StateBytes() + content.size() * sizeof(Tuple));
    }
  }
  if (peak_state_bytes != nullptr) *peak_state_bytes = peak;
  return out;
}

}  // namespace tcq
