// Execution of windowed continuous queries (paper §4.1): "for every instant
// in time, a window on a stream defines a set of tuples over which the query
// is to be executed... the output of a query is presented to the end-user as
// a sequence of sets, each set being associated with an instant in time."
//
// Two modes are provided:
//  * offline: evaluate a for-loop query over fully arrived histories (how
//    PSoup applies new queries to old data);
//  * online: ingest tuples, advance per-stream watermarks, and fire each
//    window instance as soon as every involved stream has passed its right
//    end (partial-order time, §4.1.1).

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "operators/aggregate.h"
#include "operators/predicate.h"
#include "storage/checkpoint.h"
#include "window/time.h"
#include "window/window_spec.h"

namespace tcq {

/// Per-source history buffer ordered by timestamp (streams deliver in
/// timestamp order; slight disorder is tolerated by insertion position).
class StreamHistory {
 public:
  void Append(const Tuple& tuple);

  /// Appends to `out` all tuples with l <= ts <= r.
  void Range(Timestamp l, Timestamp r, std::vector<Tuple>* out) const;

  /// Drops tuples with ts < cutoff (reclaims memory once no remaining
  /// window can reach back before `cutoff`).
  void PruneBefore(Timestamp cutoff);

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

 private:
  std::deque<Tuple> tuples_;
};

/// What a WindowResult means to the consumer (CEDR-style delta contract,
/// DESIGN.md §12). In speculation mode a window's true content is the
/// accumulation `sum(additions) - sum(retractions)` over its results.
enum class WindowResultKind : uint8_t {
  kFinal,        ///< window sealed; tuples are the final additions
  kSpeculative,  ///< early additions; may later be retracted
  kRetraction,   ///< withdraws previously emitted tuples (kind-tagged)
};

/// One fired window: the loop instant and the query's result set over it.
struct WindowResult {
  Timestamp t = 0;
  std::vector<Tuple> tuples;
  WindowResultKind kind = WindowResultKind::kFinal;
  /// Monotone per-window revision (0 for a never-revised final result).
  uint64_t revision = 0;
};

/// A windowed query: the for-loop plus a conjunctive predicate set (filters
/// and join conditions). Self-joins are expressed by feeding one physical
/// stream to two SourceIds.
struct WindowedQuery {
  ForLoopSpec loop;
  std::vector<PredicateRef> predicates;

  /// Sources involved (from the loop's WindowIs statements).
  SourceSet Sources() const;
};

/// Offline evaluation: runs the entire (bounded) loop over given histories.
/// `max_windows` guards against unbounded loops.
std::vector<WindowResult> RunOverHistory(
    const WindowedQuery& query,
    const std::map<SourceId, StreamHistory>& history,
    uint64_t max_windows = 1u << 16);

/// Online evaluation: fires windows as watermarks pass their right ends.
///
/// Two time semantics (query.loop.semantics):
///  * kArrival (legacy): each data tuple advances its stream's watermark; a
///    window [l, r] fires once every watermark reaches r. Correct only for
///    in-order streams.
///  * kEvent: watermarks advance ONLY on punctuations; the per-source
///    history deque is the bounded-disorder reorder buffer, and a window
///    [l, r] fires once every involved watermark strictly passes r (a
///    watermark of W promises no future tuple with ts < W, so r is settled
///    when W > r). Tuples older than their source's watermark are provably
///    late — counted and dropped with a typed reason, never silently wrong.
///
/// Opt-in speculation (Options::speculate, kEvent only): Poll additionally
/// emits early results for the head window as data arrives — kSpeculative
/// additions and kRetraction withdrawals — and seals it with a kFinal delta
/// once complete. Accumulating additions minus retractions reproduces the
/// exact final window (CEDR's consistency spectrum in miniature).
class OnlineWindowRunner : public Checkpointable {
 public:
  using Callback = std::function<void(const WindowResult&)>;

  struct Options {
    /// Emit early (revisable) results for incomplete windows.
    bool speculate = false;
  };

  /// Typed reasons for dropping a late tuple (kEvent mode only).
  enum class LateDrop {
    kBeyondBound,  ///< ts < its source's watermark: punctuation promise broken
    kBehindLoop,   ///< ts below every remaining window's left end
  };

  explicit OnlineWindowRunner(WindowedQuery query)
      : OnlineWindowRunner(std::move(query), Options()) {}
  OnlineWindowRunner(WindowedQuery query, Options opts);

  /// Buffers a tuple (and, in kArrival mode, advances its stream's
  /// watermark). Control tuples are diverted to OnPunctuation; late data
  /// tuples (kEvent mode) are counted and dropped.
  void Ingest(SourceId source, const Tuple& tuple);

  /// Applies a source punctuation to the watermark tracker (regressions are
  /// rejected and counted there).
  void OnPunctuation(const Punctuation& p);

  /// Declares that `source` has progressed to `ts` even without a tuple
  /// (stream close / loop exhaustion path).
  void AdvanceWatermark(SourceId source, Timestamp ts);

  /// Fires every complete, not-yet-fired window in loop order; with
  /// speculation on, also revises the (incomplete) head window.
  void Poll(const Callback& cb);

  /// True once the loop is exhausted AND every instance has fired.
  bool Done() const { return !pending_.has_value(); }

  size_t buffered_tuples() const;
  uint64_t late_dropped(LateDrop reason) const {
    return reason == LateDrop::kBeyondBound ? late_beyond_bound_
                                            : late_behind_loop_;
  }
  uint64_t retractions_emitted() const { return retractions_; }
  uint64_t speculative_emitted() const { return speculative_; }
  const WatermarkTracker& watermarks() const { return watermarks_; }

  // --- Durable state (DESIGN.md §13) -----------------------------------------
  // Exports the loop position (the pending window's instant), per-source
  // watermarks, the reorder/history deques, prune floors, late/speculation
  // counters, and the speculation multiset. Restore requires a runner freshly
  // constructed over the SAME query: the loop iterator is re-driven until it
  // reaches the recorded pending instant, so already-fired windows never
  // re-fire. The watermark tracker's punctuation counters restart at zero.
  std::string CheckpointTag() const override { return "window_runner"; }
  uint32_t CheckpointVersion() const override { return 1; }
  void ExportTo(CheckpointWriter* w) const override;
  Status RestoreFrom(CheckpointReader* r) override;

 private:
  /// White-box access for delta-contract tests: SPJ window content is
  /// monotone in arrivals, so the retraction branch of EmitDelta is
  /// unreachable through Ingest alone — it exists for revising operators
  /// (aggregates, negation) and is pinned down via this peer.
  friend struct WindowRunnerTestPeer;

  void MaybePrune();
  /// Diffs the head window's current content against what speculation
  /// already emitted; issues kRetraction / `kind` results for the delta.
  void EmitDelta(const Callback& cb, const std::vector<Tuple>& now,
                 WindowResultKind kind);

  WindowedQuery query_;
  Options opts_;
  WindowIterator iter_;
  std::optional<WindowInstance> pending_;  // next unfired window
  WatermarkTracker watermarks_;
  std::map<SourceId, StreamHistory> history_;
  std::map<SourceId, Timestamp> prune_floor_;
  uint64_t late_beyond_bound_ = 0;
  uint64_t late_behind_loop_ = 0;
  uint64_t retractions_ = 0;
  uint64_t speculative_ = 0;
  // Speculation state for the head window: what we have emitted so far,
  // as a counting multiset keyed by Tuple::ToString().
  std::map<std::string, std::pair<Tuple, size_t>> spec_emitted_;
  uint64_t spec_revision_ = 0;
  bool spec_dirty_ = false;  ///< new data since the last speculative pass
};

/// (value, t) pair per fired window.
struct WindowAggregateResult {
  Timestamp t = 0;
  Value value;
};

/// Runs an aggregate windowed query over a single stream history, returning
/// one value per window. Strategy is chosen from the loop's classification.
std::vector<WindowAggregateResult> RunAggregateOverHistory(
    const ForLoopSpec& loop, AggFn fn, const AttrRef& value_attr,
    const StreamHistory& history, uint64_t max_windows = 1u << 16,
    size_t* peak_state_bytes = nullptr);

}  // namespace tcq
