// Execution of windowed continuous queries (paper §4.1): "for every instant
// in time, a window on a stream defines a set of tuples over which the query
// is to be executed... the output of a query is presented to the end-user as
// a sequence of sets, each set being associated with an instant in time."
//
// Two modes are provided:
//  * offline: evaluate a for-loop query over fully arrived histories (how
//    PSoup applies new queries to old data);
//  * online: ingest tuples, advance per-stream watermarks, and fire each
//    window instance as soon as every involved stream has passed its right
//    end (partial-order time, §4.1.1).

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "operators/aggregate.h"
#include "operators/predicate.h"
#include "window/time.h"
#include "window/window_spec.h"

namespace tcq {

/// Per-source history buffer ordered by timestamp (streams deliver in
/// timestamp order; slight disorder is tolerated by insertion position).
class StreamHistory {
 public:
  void Append(const Tuple& tuple);

  /// Appends to `out` all tuples with l <= ts <= r.
  void Range(Timestamp l, Timestamp r, std::vector<Tuple>* out) const;

  /// Drops tuples with ts < cutoff (reclaims memory once no remaining
  /// window can reach back before `cutoff`).
  void PruneBefore(Timestamp cutoff);

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

 private:
  std::deque<Tuple> tuples_;
};

/// One fired window: the loop instant and the query's result set over it.
struct WindowResult {
  Timestamp t = 0;
  std::vector<Tuple> tuples;
};

/// A windowed query: the for-loop plus a conjunctive predicate set (filters
/// and join conditions). Self-joins are expressed by feeding one physical
/// stream to two SourceIds.
struct WindowedQuery {
  ForLoopSpec loop;
  std::vector<PredicateRef> predicates;

  /// Sources involved (from the loop's WindowIs statements).
  SourceSet Sources() const;
};

/// Offline evaluation: runs the entire (bounded) loop over given histories.
/// `max_windows` guards against unbounded loops.
std::vector<WindowResult> RunOverHistory(
    const WindowedQuery& query,
    const std::map<SourceId, StreamHistory>& history,
    uint64_t max_windows = 1u << 16);

/// Online evaluation: fires windows as watermarks pass their right ends.
class OnlineWindowRunner {
 public:
  using Callback = std::function<void(const WindowResult&)>;

  explicit OnlineWindowRunner(WindowedQuery query);

  /// Appends a tuple and advances its stream's watermark.
  void Ingest(SourceId source, const Tuple& tuple);

  /// Declares that `source` has progressed to `ts` even without a tuple
  /// (punctuation/heartbeat).
  void AdvanceWatermark(SourceId source, Timestamp ts);

  /// Fires every complete, not-yet-fired window in loop order.
  void Poll(const Callback& cb);

  /// True once the loop is exhausted AND every instance has fired.
  bool Done() const { return !pending_.has_value(); }

  size_t buffered_tuples() const;

 private:
  void MaybePrune();

  WindowedQuery query_;
  WindowIterator iter_;
  std::optional<WindowInstance> pending_;  // next unfired window
  WatermarkTracker watermarks_;
  std::map<SourceId, StreamHistory> history_;
};

/// (value, t) pair per fired window.
struct WindowAggregateResult {
  Timestamp t = 0;
  Value value;
};

/// Runs an aggregate windowed query over a single stream history, returning
/// one value per window. Strategy is chosen from the loop's classification.
std::vector<WindowAggregateResult> RunAggregateOverHistory(
    const ForLoopSpec& loop, AggFn fn, const AttrRef& value_attr,
    const StreamHistory& history, uint64_t max_windows = 1u << 16,
    size_t* peak_state_bytes = nullptr);

}  // namespace tcq
