#include "window/window_spec.h"

#include <cassert>
#include <sstream>

namespace tcq {

std::string WindowBound::ToString() const {
  std::ostringstream os;
  if (t_coef == 0) {
    os << offset;
  } else {
    if (t_coef == 1) {
      os << "t";
    } else {
      os << t_coef << "*t";
    }
    if (offset > 0) os << "+" << offset;
    if (offset < 0) os << offset;
  }
  return os.str();
}

bool LoopCondition::Holds(Timestamp t) const {
  switch (kind) {
    case Kind::kAlways:
      return true;
    case Kind::kLt:
      return t < bound;
    case Kind::kLe:
      return t <= bound;
    case Kind::kGt:
      return t > bound;
    case Kind::kGe:
      return t >= bound;
    case Kind::kEq:
      return t == bound;
  }
  return false;
}

std::string LoopCondition::ToString() const {
  switch (kind) {
    case Kind::kAlways:
      return "true";
    case Kind::kLt:
      return "t < " + std::to_string(bound);
    case Kind::kLe:
      return "t <= " + std::to_string(bound);
    case Kind::kGt:
      return "t > " + std::to_string(bound);
    case Kind::kGe:
      return "t >= " + std::to_string(bound);
    case Kind::kEq:
      return "t == " + std::to_string(bound);
  }
  return "?";
}

std::string WindowIs::ToString() const {
  return "WindowIs(s" + std::to_string(source) + ", " + left.ToString() +
         ", " + right.ToString() + ")";
}

const char* WindowClassName(WindowClass c) {
  switch (c) {
    case WindowClass::kSnapshot:
      return "snapshot";
    case WindowClass::kLandmark:
      return "landmark";
    case WindowClass::kSliding:
      return "sliding";
    case WindowClass::kHopping:
      return "hopping";
    case WindowClass::kBackward:
      return "backward";
    case WindowClass::kMixed:
      return "mixed";
  }
  return "?";
}

WindowClass ForLoopSpec::Classify() const {
  assert(!windows.empty());
  auto classify_one = [&](const WindowIs& w) -> WindowClass {
    bool left_moves = w.left.t_coef != 0;
    bool right_moves = w.right.t_coef != 0;
    auto iters = IterationCount();
    bool single = iters.has_value() && *iters <= 1;
    if (single || (!left_moves && !right_moves)) return WindowClass::kSnapshot;
    if (t_step < 0) return WindowClass::kBackward;
    if (!left_moves && right_moves) return WindowClass::kLandmark;
    // Both ends move: sliding vs hopping by hop size vs width.
    Timestamp width = w.right.Eval(t_init) - w.left.Eval(t_init) + 1;
    Timestamp hop = (w.right.Eval(t_init + t_step) - w.right.Eval(t_init));
    return hop > width ? WindowClass::kHopping : WindowClass::kSliding;
  };
  WindowClass first = classify_one(windows.front());
  for (size_t i = 1; i < windows.size(); ++i) {
    if (classify_one(windows[i]) != first) return WindowClass::kMixed;
  }
  return first;
}

bool ForLoopSpec::Bounded() const {
  using K = LoopCondition::Kind;
  switch (condition.kind) {
    case K::kAlways:
      return false;
    case K::kEq:
      return true;
    case K::kLt:
    case K::kLe:
      return t_step > 0 || !condition.Holds(t_init);
    case K::kGt:
    case K::kGe:
      return t_step < 0 || !condition.Holds(t_init);
  }
  return false;
}

std::optional<uint64_t> ForLoopSpec::IterationCount(uint64_t limit) const {
  if (!Bounded()) return std::nullopt;
  uint64_t n = 0;
  Timestamp t = t_init;
  while (condition.Holds(t)) {
    if (++n > limit) return std::nullopt;
    if (condition.kind == LoopCondition::Kind::kEq && t_step == 0) break;
    t += t_step;
    if (t_step == 0) break;  // degenerate: at most one iteration counted
  }
  return n;
}

std::string ForLoopSpec::ToString() const {
  std::ostringstream os;
  os << "for (t=" << t_init << "; " << condition.ToString()
     << "; t+=" << t_step << ") { ";
  for (const WindowIs& w : windows) os << w.ToString() << "; ";
  os << "}";
  return os.str();
}

ForLoopSpec ForLoopSpec::Snapshot(SourceId source, Timestamp left,
                                  Timestamp right) {
  // for (; t == 0; t = -1) { WindowIs(S, left, right); } — paper example 1.
  ForLoopSpec spec;
  spec.t_init = 0;
  spec.condition = {LoopCondition::Kind::kEq, 0};
  spec.t_step = -1;
  spec.windows.push_back(
      {source, WindowBound::Constant(left), WindowBound::Constant(right)});
  return spec;
}

ForLoopSpec ForLoopSpec::Landmark(SourceId source, Timestamp fixed_left,
                                  Timestamp t_begin, Timestamp t_end) {
  ForLoopSpec spec;
  spec.t_init = t_begin;
  spec.condition = {LoopCondition::Kind::kLe, t_end};
  spec.t_step = 1;
  spec.windows.push_back(
      {source, WindowBound::Constant(fixed_left), WindowBound::AtT()});
  return spec;
}

ForLoopSpec ForLoopSpec::Sliding(std::vector<SourceId> sources,
                                 Timestamp width, Timestamp t_begin,
                                 Timestamp t_end, Timestamp hop) {
  ForLoopSpec spec;
  spec.t_init = t_begin;
  spec.condition = {LoopCondition::Kind::kLe, t_end};
  spec.t_step = hop;
  for (SourceId s : sources) {
    spec.windows.push_back(
        {s, WindowBound::AtT(-(width - 1)), WindowBound::AtT()});
  }
  return spec;
}

ForLoopSpec ForLoopSpec::Backward(SourceId source, Timestamp width,
                                  Timestamp now, Timestamp hop,
                                  uint64_t count) {
  ForLoopSpec spec;
  spec.t_init = now;
  spec.condition = {LoopCondition::Kind::kGt,
                    now - static_cast<Timestamp>(count) * hop};
  spec.t_step = -hop;
  spec.windows.push_back(
      {source, WindowBound::AtT(-(width - 1)), WindowBound::AtT()});
  return spec;
}

std::optional<std::pair<Timestamp, Timestamp>> WindowInstance::RangeFor(
    SourceId source) const {
  for (const auto& [s, range] : ranges) {
    if (s == source) return range;
  }
  return std::nullopt;
}

WindowInstance WindowIterator::Next() {
  assert(HasNext());
  WindowInstance inst;
  inst.t = t_;
  for (const WindowIs& w : spec_.windows) {
    inst.ranges.emplace_back(
        w.source, std::make_pair(w.left.Eval(t_), w.right.Eval(t_)));
  }
  t_ += spec_.t_step;
  if (spec_.t_step == 0) {
    // Degenerate loop; force termination after one instance.
    spec_.condition = {LoopCondition::Kind::kEq, t_ - 1};
  }
  return inst;
}

}  // namespace tcq
