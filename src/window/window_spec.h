// The TelegraphCQ window mechanism (paper §4.1.1): a for-loop declares the
// sequence of windows over which a continuous query is executed:
//
//   for (t = init; continue_condition(t); change(t)) {
//     WindowIs(StreamA, left_end(t), right_end(t));
//     WindowIs(StreamB, left_end(t), right_end(t));
//   }
//
// Window ends are affine in the loop variable (left = coef*t + offset),
// which covers every example in the paper: snapshot ([1,5]), landmark
// ([101, t]), sliding ([t-9, t]), hopping (t += 5), and backward-moving
// windows (negative step). Both ends are inclusive.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "tuple/schema.h"
#include "window/time.h"

namespace tcq {

/// An affine bound: coef * t + offset.
struct WindowBound {
  int64_t t_coef = 0;
  Timestamp offset = 0;

  Timestamp Eval(Timestamp t) const { return t_coef * t + offset; }

  static WindowBound Constant(Timestamp v) { return {0, v}; }
  static WindowBound AtT(Timestamp delta = 0) { return {1, delta}; }

  std::string ToString() const;
  bool operator==(const WindowBound&) const = default;
};

/// Loop continuation condition on t.
struct LoopCondition {
  enum class Kind { kAlways, kLt, kLe, kGt, kGe, kEq };
  Kind kind = Kind::kAlways;
  Timestamp bound = 0;

  bool Holds(Timestamp t) const;
  std::string ToString() const;
};

/// `WindowIs(stream, left(t), right(t))`.
struct WindowIs {
  SourceId source = 0;
  WindowBound left;
  WindowBound right;

  std::string ToString() const;
};

/// The window classes the paper discusses (§4.1.1, §4.1.2).
enum class WindowClass {
  kSnapshot,  ///< executes exactly once over one fixed window
  kLandmark,  ///< fixed left end, advancing right end
  kSliding,   ///< both ends advance; hop <= width
  kHopping,   ///< both ends advance; hop > width (stream portions skipped)
  kBackward,  ///< windows move backwards in time (browsing history)
  kMixed,     ///< per-stream windows differ in class
};

const char* WindowClassName(WindowClass c);

/// One for-loop: a group of streams sharing the same window transition
/// behaviour (the paper allows one loop per such group).
struct ForLoopSpec {
  Timestamp t_init = 0;
  LoopCondition condition;
  /// t += step each iteration (may be negative for backward windows; must
  /// be nonzero unless the condition bounds the loop to one iteration).
  Timestamp t_step = 1;
  std::vector<WindowIs> windows;
  /// Which timeline completes windows (DESIGN.md §12): kArrival trusts data
  /// order (legacy); kEvent fires only on punctuation-driven watermarks and
  /// tolerates bounded disorder.
  TimeSemantics semantics = TimeSemantics::kArrival;

  /// Classifies the loop's windows.
  WindowClass Classify() const;

  /// True when the loop terminates on its own.
  bool Bounded() const;

  /// Number of iterations if bounded (and <= limit), else nullopt.
  std::optional<uint64_t> IterationCount(uint64_t limit = 1u << 20) const;

  std::string ToString() const;

  // --- Convenience factories for the paper's §4.1 examples ------------------

  /// Example 1: snapshot — one window [left, right] on one stream.
  static ForLoopSpec Snapshot(SourceId source, Timestamp left,
                              Timestamp right);

  /// Example 2: landmark — [fixed_left, t] for t in [t_begin, t_end].
  static ForLoopSpec Landmark(SourceId source, Timestamp fixed_left,
                              Timestamp t_begin, Timestamp t_end);

  /// Example 3/5: sliding — [t - width + 1, t] for t in [t_begin, t_end],
  /// hopping by `hop` (hop > width skips data, per §4.1.2).
  static ForLoopSpec Sliding(std::vector<SourceId> sources, Timestamp width,
                             Timestamp t_begin, Timestamp t_end,
                             Timestamp hop = 1);

  /// Backward browsing: [t - width + 1, t] for t starting at `now` and
  /// moving back by `hop` for `count` windows.
  static ForLoopSpec Backward(SourceId source, Timestamp width, Timestamp now,
                              Timestamp hop, uint64_t count);
};

/// One materialized loop iteration: the value of t and each stream's
/// concrete [left, right] range.
struct WindowInstance {
  Timestamp t = 0;
  std::vector<std::pair<SourceId, std::pair<Timestamp, Timestamp>>> ranges;

  std::optional<std::pair<Timestamp, Timestamp>> RangeFor(
      SourceId source) const;
};

/// Iterates the for-loop lazily (loops may be unbounded).
class WindowIterator {
 public:
  explicit WindowIterator(const ForLoopSpec& spec)
      : spec_(spec), t_(spec.t_init) {}

  /// True if another window instance exists.
  bool HasNext() const { return spec_.condition.Holds(t_); }

  /// Returns the next instance and advances t.
  WindowInstance Next();

  Timestamp current_t() const { return t_; }

 private:
  ForLoopSpec spec_;
  Timestamp t_;
};

}  // namespace tcq
